#!/usr/bin/env python3
"""Impact assessment: what did the attackers actually steal?

The paper's motivating threat (Section 3) is credential harvesting: a
counterfeit mail/VPN login server with a valid certificate collects
cleartext credentials from every user who signs in during a redirection
window, while ICAP-style tunneling keeps the service working so nobody
notices.  This example replays a deterministic user population against
the simulated Internet for every hijacked campaign of the paper scenario
and measures the harvest — making the paper's "asymmetric threat" point
concrete: hours of DNS control translate into a durable credential
foothold.

Run:  python examples/impact_assessment.py    (~20 s)
"""

from repro.analysis.longitudinal import attacks_by_year, format_yearly
from repro.world.impact import ImpactModel, format_impact
from repro.world.scenarios import paper_study


def main() -> None:
    print("Building the full paper scenario...\n")
    study = paper_study()

    print("Replaying user logins against the hijack windows...\n")
    model = ImpactModel(study.world, users_per_domain=40, logins_per_user_per_day=2)
    report = model.assess(study.ground_truth)

    print(format_impact(report, top=20))
    print()

    hit = report.domains_with_theft
    print(
        f"{len(hit)}/{len(report.domains)} hijacked organizations lost credentials; "
        "every captured login presented a browser-trusted certificate to the user."
    )
    print()

    print("Attack timeline (cf. Section 5.2's longitudinal observations):\n")
    print(format_yearly(attacks_by_year(study.ground_truth)))
    print(
        "\nNote the 2018 Sea Turtle wave and the post-disclosure 2020 wave —\n"
        "public reporting did not end this class of attack."
    )


if __name__ == "__main__":
    main()
