#!/usr/bin/env python3
"""Tutorial: build your own scenario with the public API.

Walks through the full authoring workflow a downstream user needs:
stand up a world, register hosting providers and victims, script an
attack with the campaign API, generate the datasets, run the pipeline,
and interrogate the evidence — then export everything to JSONL and
re-hunt it from disk to show the persistence round-trip.

Run:  python examples/custom_scenario.py
"""

import tempfile
from datetime import date
from pathlib import Path

from repro.core.render import render_classification
from repro.core.types import DetectionType
from repro.io import save_as2org, save_ct, save_pdns, save_scan_dataset
from repro.net.timeline import DateInterval
from repro.world import (
    AttackerProfile,
    CampaignMode,
    CampaignSpec,
    Capability,
    Organization,
    Sector,
    World,
    populate_background,
    run_campaign,
)
from repro.world.sim import run_study


def main() -> None:
    # 1. A world: one year of weekly scans, seeded and deterministic.
    world = World(seed=99, start=date(2020, 1, 1), end=date(2020, 12, 31))

    # 2. Hosting: a municipal ISP for the victim, a cheap cloud for the
    #    attacker.  Providers feed the routing/geo/AS2Org tables used to
    #    annotate scan records.
    city_isp = world.add_provider("city-isp", 65010, [("10.130.0.0/16", "FI")])
    cheap_cloud = world.add_provider(
        "cheap-cloud", 64777, [("203.0.113.0/25", "MD"), ("203.0.113.128/25", "SC")]
    )

    # 3. The victim: a city government running webmail and a VPN head-end,
    #    with DNSSEC enabled (the attacker will strip it).
    victim = world.setup_domain(
        "riverdalecity.fi",
        city_isp,
        organization=Organization("City of Riverdale", Sector.LOCAL_GOVERNMENT, "FI"),
        services=("www", "mail", "vpn"),
        dnssec=True,
    )

    # 4. The attack: a registrar-compromise campaign (capability path b)
    #    targeting the VPN endpoint for two days in September.
    spec = CampaignSpec(
        victim=victim,
        sector=Sector.LOCAL_GOVERNMENT,
        victim_cc="FI",
        mode=CampaignMode.T1,
        expected_detection=DetectionType.T1,
        hijack_date=date(2020, 9, 14),
        attacker=AttackerProfile(name="crimeware-crew", ns_domain="dns-parking.biz"),
        attacker_provider=cheap_cloud,
        target_subdomain="vpn",
        ca_name="Let's Encrypt",
        redirect_span_days=2,
        capability=Capability.REGISTRAR,
    )
    truth = run_campaign(world, spec)
    print(f"campaign executed: cert crt.sh id {truth.crtsh_id}, "
          f"attacker {truth.attacker_ips[0]} (AS{truth.attacker_asn})\n")

    # 5. Benign mass so the pipeline has something to NOT flag.
    populate_background(world, 60, DateInterval(world.start, world.end))

    # 6. Generate the analyst's datasets and run the five steps.
    study = run_study(world)
    report = study.run_pipeline()

    period = next(p for p in study.periods if p.contains(spec.hijack_date))
    print(render_classification(report.classifications[("riverdalecity.fi", period.index)]))
    print()

    finding = report.finding_for("riverdalecity.fi")
    assert finding is not None and finding.detection is DetectionType.T1
    print(f"VERDICT: {finding.domain} {finding.verdict.value.upper()} "
          f"({finding.detection.value}); attacker NS {list(finding.attacker_ns)}")
    assert not [f for f in report.findings if f.domain != "riverdalecity.fi"]
    print("no false positives across the benign background\n")

    # 7. Persistence: export the study, then anyone can re-hunt it.
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp)
        save_scan_dataset(study.scan, out / "scan.jsonl")
        save_pdns(study.pdns, out / "pdns.jsonl")
        save_ct(study.ct_log, study.revocations, out / "ct.jsonl")
        save_as2org(study.as2org, out / "as2org.jsonl")
        total_bytes = sum(f.stat().st_size for f in out.iterdir())
        print(f"study exported: {len(list(out.iterdir()))} JSONL files, "
              f"{total_bytes // 1024} KiB — replay with "
              f"`repro-hunt hunt --dir <dir>`")


if __name__ == "__main__":
    main()
