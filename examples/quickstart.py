#!/usr/bin/env python3
"""Quickstart: build a small world, hijack a domain, catch the attacker.

Stands up a one-year synthetic Internet with a benign background, runs
one DNS infrastructure hijack against a government domain (the attacker
compromises the registrar account, passes Let's Encrypt's DNS-01 check
during a two-hour delegation hijack, and briefly redirects the mail
subdomain), then runs the paper's five-step pipeline over the generated
scan / passive-DNS / CT datasets and prints the verdict with evidence.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.core.report import format_findings_table, format_funnel


def main() -> None:
    print("Building world (1 hijack + 25 benign domains, year 2018)...")
    run = api.run_study("small")
    study, report = run.study, run.report
    print(
        f"  datasets: {len(study.scan)} scan records, {len(study.pdns)} pDNS rows, "
        f"{len(study.ct_log)} CT entries\n"
    )

    print("The five-step pipeline ran over them...\n")

    print(format_funnel(report.funnel))
    print()
    print(format_findings_table(report.findings))
    print()

    for finding in report.hijacked():
        truth = study.ground_truth.record_for(finding.domain)
        print(f"VERDICT: {finding.domain} was HIJACKED ({finding.detection.value})")
        print(f"  targeted subdomain : {finding.subdomain}.{finding.domain}")
        print(f"  attacker IPs       : {', '.join(finding.attacker_ips)}")
        print(f"  rogue nameservers  : {', '.join(finding.attacker_ns)}")
        print(f"  malicious cert     : crt.sh id {finding.crtsh_id} ({finding.issuer_ca})")
        print(f"  ground truth says  : hijacked on {truth.hijack_date} — correct!")


if __name__ == "__main__":
    main()
