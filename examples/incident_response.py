#!/usr/bin/env python3
"""Incident response: from verdicts to actionable artifacts.

The detection pipeline ends with verdicts; an operator's work starts
there.  This example takes the full paper study's findings and produces
the three response artifacts the library supports:

1. campaign attribution — which victims share an actor's infrastructure
   (the paper's Section 5.6 reasoning, automated with graph clustering);
2. per-victim incident timelines — the ordered evidence trail an
   analyst audits against their own logs (the Section 5.1 narrative);
3. victim notifications — the CERT-outreach reports of Section 6.

Run:  python examples/incident_response.py    (~10 s)
"""

from repro.analysis.attribution import cluster_campaigns, format_clusters
from repro.analysis.notification import build_notification
from repro.analysis.timeline import format_timeline, reconstruct_timeline
from repro import api


def main() -> None:
    print("Building the full paper scenario and running the pipeline...\n")
    run = api.run_study("paper")
    study, report = run.study, run.report

    print("1. CAMPAIGN ATTRIBUTION (shared attacker infrastructure)\n")
    clusters = cluster_campaigns(report.findings)
    print(format_clusters(clusters, top=6))
    print()

    print("2. INCIDENT TIMELINE (the Kyrgyzstan ministry)\n")
    finding = report.finding_for("mfa.gov.kg")
    events = reconstruct_timeline(finding, study.scan, study.pdns, study.crtsh)
    print(format_timeline("mfa.gov.kg", events))
    print()

    print("3. VICTIM NOTIFICATION (ready for CERT outreach)\n")
    notification = build_notification(finding)
    print(f"-> deliver to: {notification.cert_contact}")
    print()
    print(notification.body)


if __name__ == "__main__":
    main()
