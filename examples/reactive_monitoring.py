#!/usr/bin/env python3
"""Reactive monitoring — the paper's Section 7.1 future-work intervention.

Retroactive identification finds victims months or years later; the
paper suggests the same signals could work in near real time by
triggering a reactive DNS measurement whenever Certificate Transparency
shows a new certificate for a watched domain.  This example registers
the study's victims with a :class:`ReactiveMonitor`, replays the CT log,
and shows that every maliciously obtained certificate raises an alert
*at issuance time* — while the hijack window is still open — whereas
legitimate renewals stay silent.

Run:  python examples/reactive_monitoring.py    (~10 s)
"""

from datetime import datetime

from repro.core.reactive import ReactiveMonitor
from repro.world.scenarios import paper_study


def main() -> None:
    print("Building the full paper scenario...\n")
    study = paper_study()
    world = study.world

    monitor = ReactiveMonitor(world.resolver)
    baseline_at = datetime(2017, 2, 1)
    for record in study.ground_truth.records:
        monitor.watch_from_current_state(record.domain, baseline_at)
    print(f"Watching {len(monitor.watched())} domains; replaying "
          f"{len(world.ct_log)} CT log entries...\n")

    alerts = monitor.scan_log(world.ct_log)

    print(f"{'issued':<12} {'domain':<24} {'reason':<18} {'crt.sh id':>10}  observed")
    print("-" * 100)
    for alert in sorted(alerts, key=lambda a: a.issued_on):
        observed = (
            f"ns={list(alert.observed_ns)[:1]}"
            if alert.reason == "rogue-delegation"
            else f"ip={list(alert.observed_ips)}"
        )
        print(
            f"{alert.issued_on.isoformat():<12} {alert.domain:<24} "
            f"{alert.reason:<18} {alert.crtsh_id:>10}  {observed}"
        )
    print()

    # Score against ground truth: every maliciously obtained certificate
    # should alert; no legitimate certificate should.
    malicious_ids = {
        r.crtsh_id for r in study.ground_truth.records if r.crtsh_id
    }
    alerted_ids = {a.crtsh_id for a in alerts}
    caught = malicious_ids & alerted_ids
    false_alarms = alerted_ids - malicious_ids
    print(
        f"caught {len(caught)}/{len(malicious_ids)} malicious certificates at "
        f"issuance time; {len(false_alarms)} false alarms over "
        f"{len(world.ct_log)} issuances"
    )
    print(
        "\nTakeaway: with CT-triggered reactive measurement, the months-long\n"
        "retroactive hunt becomes a same-hour alert — while the stolen\n"
        "credentials are not yet used and the certificate can still be revoked."
    )


if __name__ == "__main__":
    main()
