#!/usr/bin/env python3
"""The Kyrgyzstan hijacks — the paper's Section 5.1 walkthrough.

Reproduces the case study end to end on synthetic data encoding the real
campaign: in December 2020 the delegations of mfa.gov.kg (Ministry of
Foreign Affairs) and invest.gov.kg were briefly pointed at
ns{1,2}.kg-infocom.ru, Let's Encrypt certificates for their mail
subdomains were obtained during the windows, and the counterfeit servers
lived in AS48282 (VDSINA, Russia).  Deployment maps flag those two
directly (pattern T1); pivoting on the rogue nameservers then reveals
fiu.gov.kg and infocom.kg, which have no scan-visible infrastructure of
their own.

Run:  python examples/kyrgyzstan_case_study.py
"""

from repro import api
from repro.core.render import render_classification
from repro.core.types import DetectionType


def main() -> None:
    print("Building the Kyrgyzstan scenario (2020-2021)...\n")
    run = api.run_study("kyrgyzstan")
    study, report = run.study, run.report

    # Step-by-step narrative, mirroring Section 5.1.
    print("STEP 1-2: the deployment map of mfa.gov.kg (2020H2):\n")
    period = next(p for p in study.periods if p.label == "2020H2")
    classification = report.classifications[("mfa.gov.kg", period.index)]
    print(render_classification(classification))
    print()

    print("STEP 3-4: shortlisting + corroboration:\n")
    for result in report.inspections:
        if result.domain not in ("mfa.gov.kg", "invest.gov.kg"):
            continue
        evidence = result.evidence
        print(f"  {result.domain}: {result.verdict.value.upper()} ({result.detection.value})")
        for row in evidence.ns_changes:
            print(
                f"    pDNS: delegation briefly pointed at {row.rdata} "
                f"({row.first_seen} .. {row.last_seen})"
            )
        for row in evidence.a_redirects[:2]:
            print(
                f"    pDNS: {row.rrname} resolved to {row.rdata} "
                f"({row.first_seen} .. {row.last_seen})"
            )
        if result.malicious_cert:
            cert = result.malicious_cert
            print(
                f"    CT:   crt.sh id {cert.crtsh_id} for "
                f"{cert.certificate.common_name} issued {cert.issued_on} "
                f"by {cert.issuer}"
            )
        print()

    print("STEP 5: pivoting on the attacker infrastructure:\n")
    print(f"  confirmed attacker nameservers: {sorted(report.attacker_ns)}")
    for pivot in report.pivots:
        print(
            f"  -> {pivot.domain} found via {pivot.via} "
            f"({pivot.detection.value}); malicious cert: "
            f"{pivot.malicious_cert.crtsh_id if pivot.malicious_cert else 'n/a'}"
        )
    print()

    found = {f.domain: f.detection for f in report.findings}
    expected = {
        "mfa.gov.kg": DetectionType.T1,
        "invest.gov.kg": DetectionType.T1,
        "fiu.gov.kg": DetectionType.P_NS,
        "infocom.kg": DetectionType.P_NS,
    }
    assert found == expected, found
    print("All four .kg victims recovered with the paper's detection types.")


if __name__ == "__main__":
    main()
