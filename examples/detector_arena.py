#!/usr/bin/env python3
"""Detector arena: every registered method, side by side.

The funnel pipeline is one detector among peers now.  This example lists
everything in the registry, sweeps the full roster across the "small"
scenario pack, and prints the leaderboard — then degrades the world (a
pDNS blackout plus dropped scan weeks) and runs the sweep again to show
which methods survive broken telemetry.

Run:  python examples/detector_arena.py
"""

from repro import api
from repro.detect.arena import format_arena


def main() -> None:
    print("Registered detectors:")
    for name in api.list_detectors():
        print(f"  - {name}")
    print()

    print("Sweeping all detectors over the 'small' pack...\n")
    result = api.run_arena(packs=["small"])
    print(format_arena(result))
    print()

    faults = "pdns.blackouts=2,pdns.blackout_days=60,scan.drop_weeks=0.2"
    print(f"Same sweep with degraded telemetry ({faults})...\n")
    degraded = api.run_arena(packs=["small"], faults=faults, fault_seed=5)
    print(format_arena(degraded))
    print()
    print(
        "Takeaway: methods that lean on a single data channel collapse when\n"
        "that channel goes dark; the funnel's corroboration needs pDNS, while\n"
        "the certificate detector keeps working from CT alone."
    )


if __name__ == "__main__":
    main()
