#!/usr/bin/env python3
"""The full study: every Table 2/3 victim, Sea Turtle and beyond.

Builds the complete paper scenario — 41 hijacked and 24 targeted domains
across 25 countries, executed with the real attacker playbook against a
four-year synthetic Internet — runs the pipeline, scores the verdicts
against ground truth, and prints the headline tables: the victims
(Table 2/3 layout), the sector breakdown (Table 4), the attacker
networks (Table 5), and the malicious-certificate analysis (Table 9).

Run:  python examples/sea_turtle_campaign.py    (~10 s)
"""

from repro.analysis.attacker_infra import attacker_network_table, format_network_table
from repro.analysis.certificates import (
    ca_breakdown,
    certificate_table,
    format_certificate_table,
    revocation_breakdown,
)
from repro.analysis.evaluation import evaluate_report
from repro.analysis.sectors import format_sector_table, sector_table
from repro.core.report import format_findings_table, format_funnel
from repro import api


def main() -> None:
    print("Building the full paper scenario (this takes a few seconds)...\n")
    run = api.run_study("paper")
    study, report = run.study, run.report

    print(format_funnel(report.funnel))
    print()

    print("HIJACKED DOMAINS (cf. paper Table 2)\n")
    print(format_findings_table(report.hijacked()))
    print()
    print("TARGETED DOMAINS (cf. paper Table 3)\n")
    print(format_findings_table(report.targeted()))
    print()

    identified = {f.domain for f in report.findings}
    print("AFFECTED ORGANIZATIONS BY SECTOR (cf. paper Table 4)\n")
    print(format_sector_table(sector_table(study.ground_truth, identified)))
    print()
    print("NETWORKS USED BY ATTACKERS (cf. paper Table 5)\n")
    print(format_network_table(attacker_network_table(study.ground_truth, identified)))
    print()

    rows = certificate_table(report, study.crtsh)
    print("SUSPICIOUSLY OBTAINED CERTIFICATES (cf. paper Table 9)\n")
    print(format_certificate_table(rows))
    print()
    print(f"  issuing CAs: {ca_breakdown(rows)}")
    print(f"  revocation:  {revocation_breakdown(rows)}")
    print()

    evaluation = evaluate_report(report, study.ground_truth)
    print(
        f"SCORE: {evaluation.n_detection_correct}/{evaluation.n_expected} victims "
        f"recovered with the paper's exact detection type; "
        f"{len(evaluation.false_positives)} false positives "
        f"(precision {evaluation.precision:.2f}, recall {evaluation.recall:.2f})"
    )


if __name__ == "__main__":
    main()
