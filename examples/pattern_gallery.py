#!/usr/bin/env python3
"""Pattern gallery: the canonical deployment-map shapes of Figures 3-5.

The gallery itself lives in the package (``repro.analysis.gallery``) so
``repro-hunt gallery`` works from an installed wheel; this example just
delegates to it.

Run:  python examples/pattern_gallery.py
"""

from repro.analysis.gallery import main

if __name__ == "__main__":
    main()
