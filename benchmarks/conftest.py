"""Shared benchmark fixtures.

Heavy artifacts (the full paper study and its pipeline report) are built
once per session; individual benches then measure their stage of
interest with ``benchmark.pedantic`` and attach the paper-vs-measured
comparison to ``benchmark.extra_info`` so it lands in the JSON output.
"""

from __future__ import annotations

import pytest

from repro.world.scenarios import kyrgyzstan_world, paper_study
from repro.world.sim import run_study


@pytest.fixture(scope="session")
def paper():
    return paper_study()


@pytest.fixture(scope="session")
def paper_report(paper):
    return paper.run_pipeline()


@pytest.fixture(scope="session")
def kyrgyz_study():
    return run_study(kyrgyzstan_world())


def show(title: str, lines: list[str]) -> None:
    """Print a paper-vs-measured block (visible with pytest -s)."""
    print()
    print(f"=== {title} ===")
    for line in lines:
        print(line)
