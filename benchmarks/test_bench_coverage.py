"""Section 4.6 — the passive-DNS coverage limitation, measured.

The paper's corroboration is "limited to those networks where passive
DNS traffic is gathered".  We degrade the sensor network — applying its
coverage probability even to actively-queried names — and rebuild the
same world's datasets at several coverage levels.  As coverage falls,
direct T1 confirmations lose their pDNS evidence: some survive through
the shared-infrastructure T1* pass, some only through the pivot, and at
zero coverage every verdict needing pDNS disappears — exactly the
paper's argument that its results are a (possibly severe) lower bound.
"""

from repro.analysis.evaluation import evaluate_report
from repro.world.randomized import RandomWorldConfig, random_world
from repro.world.sim import run_study

from conftest import show

COVERAGES = (1.0, 0.5, 0.2, 0.0)


def _world():
    return random_world(
        seed=55, config=RandomWorldConfig(n_victims=8, n_background=30)
    )


def test_pdns_coverage_limitation(benchmark):
    def run_all():
        outcomes = []
        for coverage in COVERAGES:
            study = run_study(
                _world(), pdns_coverage=coverage, degraded_sensors=True
            )
            report = study.run_pipeline()
            evaluation = evaluate_report(report, study.ground_truth)
            outcomes.append(
                (
                    coverage,
                    evaluation.recall,
                    len(report.hijacked()),
                    len(report.targeted()),
                    len(study.pdns),
                )
            )
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    show(
        "Section 4.6 pDNS coverage limitation (measured)",
        [f"{'coverage':>9} {'recall':>7} {'hijacked':>9} {'targeted':>9} {'pdns rows':>10}"]
        + [
            f"{coverage:>9.0%} {recall:>7.2f} {hijacked:>9} {targeted:>9} {rows:>10}"
            for coverage, recall, hijacked, targeted, rows in outcomes
        ],
    )

    by_coverage = {c: (r, h, t, rows) for c, r, h, t, rows in outcomes}
    # Full coverage: everything recovered.
    assert by_coverage[1.0][0] == 1.0
    # Recall degrades monotonically (weakly) as sensors go blind.
    recalls = [r for _, r, _, _, _ in outcomes]
    assert all(a >= b for a, b in zip(recalls, recalls[1:]))
    # With no pDNS at all, corroboration-dependent verdicts are gone —
    # hijacked counts collapse, and at best a truly-anomalous prelude
    # survives *downgraded* to "targeted".
    assert by_coverage[0.0][0] < by_coverage[1.0][0]
    hijacked_counts = [h for _, _, h, _, _ in outcomes]
    assert all(a >= b for a, b in zip(hijacked_counts, hijacked_counts[1:]))
    assert by_coverage[0.0][1] == 0

    benchmark.extra_info["recall_by_coverage"] = {
        str(c): r for c, r, _, _, _ in outcomes
    }
