"""Stage cache — cold/warm wall-clock and probe overhead on forced miss.

Three questions, answered with numbers rather than asserted (a loaded CI
host jitters more than some of the effects being measured):

* what does a warm run cost relative to an uncached one?  At simulated
  scale the pipeline kernels are cheap, so unpickling a stored result is
  not dramatically faster than recomputing it — the cache pays off in
  sweeps (downstream-only recomputation) and when kernels are expensive;
* what does the *probe* cost on a run that misses everything — the
  inputs/config digests, the chain fingerprints, and the disk lookups —
  as a fraction of an uncached run (target < 2%, reported not asserted);
* the payoff case: with an injected per-task slowdown standing in for
  expensive kernels, a warm run skips the slow work entirely.
"""

import time

from repro.cache import StageCache
from repro.exec import SerialBackend
from repro.faults import FaultPlan
from repro.world.scenarios import paper_study

from conftest import show

N_BACKGROUND = 150
ROUNDS = 3

SLOW_SPEC = "workers.slow=1.0,workers.slow_ms=2"


def _timed(study, **kwargs):
    t0 = time.perf_counter()
    report = study.run_pipeline(backend=SerialBackend(), **kwargs)
    return time.perf_counter() - t0, report


def test_cold_vs_warm_run(benchmark, tmp_path):
    study = paper_study(seed=7, n_background=N_BACKGROUND)
    cache = StageCache(tmp_path / "cache")

    _timed(study)  # warm-up: allocator, imports, lazy tables

    uncached_time, uncached_report = _timed(study)
    cold_time, cold_report = _timed(study, cache=cache)

    warm_time = float("inf")
    warm_report = None
    for _ in range(ROUNDS):
        elapsed, warm_report = _timed(study, cache=cache)
        warm_time = min(warm_time, elapsed)

    _report, metrics = benchmark.pedantic(
        lambda: study.profile_pipeline(backend=SerialBackend(), cache=cache),
        rounds=1,
        iterations=1,
    )

    # The differential invariant, end to end.
    assert cold_report == uncached_report
    assert warm_report == uncached_report
    assert metrics.cache["misses"] == 0

    stats = cache.stats()
    show(
        "Stage cache: cold vs warm (paper scenario, serial)",
        [
            f"uncached : {uncached_time * 1e3:8.1f} ms",
            f"cold     : {cold_time * 1e3:8.1f} ms  (probe + store)",
            f"warm     : {warm_time * 1e3:8.1f} ms  (best of {ROUNDS})",
            f"entries  : {stats.entries} ({stats.total_bytes / 1e6:.1f} MB)",
            f"warm hits: {metrics.cache['hits']}",
        ],
    )
    benchmark.extra_info["uncached_ms"] = round(uncached_time * 1e3, 1)
    benchmark.extra_info["cold_ms"] = round(cold_time * 1e3, 1)
    benchmark.extra_info["warm_ms"] = round(warm_time * 1e3, 1)
    benchmark.extra_info["cache_bytes"] = stats.total_bytes


def test_probe_overhead_on_forced_miss(benchmark, tmp_path):
    """What the executor adds per run *before* any stage result exists:
    deriving the run key from a fresh input bundle (component digests
    memoized on the study's datasets), fingerprinting every cacheable
    stage, and looking each fingerprint up in a cache that misses.

    This is the steady-state probe path — the store path (pickling and
    writing entries) is a one-time cold cost reported by the cold/warm
    bench above.
    """
    from repro.cache.fingerprint import derive_run_key, stage_fingerprint
    from repro.core.pipeline import PipelineConfig, PipelineInputs, build_stages

    study = paper_study(seed=7, n_background=N_BACKGROUND)
    cache = StageCache(tmp_path / "never-filled")
    config = PipelineConfig()
    empty_plan = FaultPlan.from_spec(None)
    stages = build_stages()

    def probe_run():
        # Exactly what a cache-enabled run adds: a fresh bundle is
        # built per run, keyed, and every cacheable stage is probed.
        inputs = PipelineInputs.from_study(study)
        run_key = derive_run_key(inputs, empty_plan, config)
        chain = []
        misses = 0
        for stage in stages:
            chain.append((stage.name, stage.cache_version, stage.config_deps))
            if stage.products and cache.get(
                stage_fingerprint(run_key, chain)
            ) is None:
                misses += 1
        return misses

    uncached_time, _report = _timed(study)
    probe_run()  # warm-up: primes the per-component digest memos

    probe_time = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        misses = probe_run()
        probe_time = min(probe_time, time.perf_counter() - t0)
    assert misses == sum(1 for s in stages if s.products)

    benchmark.pedantic(probe_run, rounds=1, iterations=1)

    overhead = probe_time / uncached_time
    show(
        "Cache probe overhead on forced miss (target < 2%)",
        [
            f"uncached run : {uncached_time * 1e3:8.1f} ms",
            f"probe, all-miss : {probe_time * 1e3:8.3f} ms "
            f"({misses} stages, best of {ROUNDS})",
            f"overhead     : {overhead:+.2%} of an uncached run",
        ],
    )
    benchmark.extra_info["uncached_ms"] = round(uncached_time * 1e3, 1)
    benchmark.extra_info["probe_ms"] = round(probe_time * 1e3, 3)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)


def test_warm_run_skips_injected_slowdown(benchmark, tmp_path):
    """The payoff case: when kernels are expensive (here simulated with
    a deterministic per-task slowdown), a warm run skips them."""
    study = paper_study(seed=7, n_background=N_BACKGROUND)
    cache = StageCache(tmp_path / "cache")
    plan = FaultPlan.from_spec(SLOW_SPEC, seed=3)

    cold_time, cold_report = _timed(study, faults=plan, cache=cache)
    warm_time = float("inf")
    warm_report = None
    for _ in range(ROUNDS):
        elapsed, warm_report = _timed(study, faults=plan, cache=cache)
        warm_time = min(warm_time, elapsed)

    benchmark.pedantic(
        lambda: study.run_pipeline(
            backend=SerialBackend(), faults=plan, cache=cache
        ),
        rounds=1,
        iterations=1,
    )

    assert warm_report == cold_report
    show(
        "Warm run under injected slowdown (workers.slow=1.0, 2 ms/task)",
        [
            f"cold (slowed) : {cold_time * 1e3:8.1f} ms",
            f"warm          : {warm_time * 1e3:8.1f} ms (best of {ROUNDS})",
            f"speedup       : {cold_time / warm_time:5.1f}x",
        ],
    )
    benchmark.extra_info["cold_ms"] = round(cold_time * 1e3, 1)
    benchmark.extra_info["warm_ms"] = round(warm_time * 1e3, 1)
