"""Fault layer — empty-plan overhead and a degraded-run profile.

The tentpole invariant says an empty fault plan must be *byte*-identical
to no plan; this bench checks it is also *cost*-identical: the empty
plan adds one ``is_empty`` test per run and a no-op ``install_faults``,
so the measured overhead should be indistinguishable from timing noise
(target < 2%; reported, not asserted, because a single-core CI host
jitters more than the effect being measured).  The second bench profiles
a heavily degraded run end to end — dropped scans, sensor blackouts,
delayed CT, worker crashes — as the worst-case cost of the machinery.
"""

import time

from repro.exec import SerialBackend
from repro.faults import FaultPlan, FaultSpec
from repro.world.scenarios import paper_study

from conftest import show

N_BACKGROUND = 150
ROUNDS = 3

DEGRADED_SPEC = (
    "scan.drop_weeks=0.2,scan.drop_ports=0.1,pdns.blackouts=2,"
    "ct.delay_days=30,routing.stale=0.15,workers.crash=0.3,workers.slow=0.2,"
    "workers.slow_ms=1,workers.backoff_ms=1"
)


def _timed(study, faults):
    t0 = time.perf_counter()
    report = study.run_pipeline(backend=SerialBackend(), faults=faults)
    return time.perf_counter() - t0, report


def _time_runs(study, faults, rounds=ROUNDS):
    best = float("inf")
    report = None
    for _ in range(rounds):
        elapsed, report = _timed(study, faults)
        best = min(best, elapsed)
    return best, report


def test_empty_plan_overhead(benchmark):
    study = paper_study(seed=7, n_background=N_BACKGROUND)
    empty = FaultPlan.from_spec(None)

    _timed(study, faults=None)  # warm-up: caches, allocator, imports

    # Interleave the two arms in alternating order so machine-level
    # drift hits both equally, then compare best-of-N to best-of-N.
    no_plan_time = empty_time = float("inf")
    no_plan_report = empty_report = None
    for i in range(ROUNDS):
        arms = [(None, "none"), (empty, "empty")]
        if i % 2:
            arms.reverse()
        for faults, label in arms:
            elapsed, report = _timed(study, faults=faults)
            if label == "none":
                no_plan_time = min(no_plan_time, elapsed)
                no_plan_report = report
            else:
                empty_time = min(empty_time, elapsed)
                empty_report = report

    benchmark.pedantic(
        lambda: study.run_pipeline(backend=SerialBackend(), faults=empty),
        rounds=1,
        iterations=1,
    )

    assert empty_report == no_plan_report  # the byte-identity invariant

    overhead = (empty_time - no_plan_time) / no_plan_time
    show(
        "Empty fault plan overhead (target < 2%)",
        [
            f"no plan     : {no_plan_time * 1e3:8.1f} ms (best of {ROUNDS})",
            f"empty plan  : {empty_time * 1e3:8.1f} ms (best of {ROUNDS})",
            f"overhead    : {overhead:+.2%}",
        ],
    )
    benchmark.extra_info["no_plan_ms"] = round(no_plan_time * 1e3, 1)
    benchmark.extra_info["empty_plan_ms"] = round(empty_time * 1e3, 1)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)


def test_degraded_run_profile(benchmark):
    study = paper_study(seed=7, n_background=N_BACKGROUND)
    plan = FaultPlan.from_spec(FaultSpec.parse(DEGRADED_SPEC), seed=5)

    clean_time, _clean = _time_runs(study, faults=None, rounds=1)

    def degraded_run():
        return study.profile_pipeline(backend=SerialBackend(), faults=plan)

    _report, metrics = benchmark.pedantic(degraded_run, rounds=1, iterations=1)

    dq = metrics.data_quality
    assert dq["degraded"] is True
    lines = [
        f"clean run    : {clean_time * 1e3:8.1f} ms",
        f"degraded run : {metrics.wall_seconds * 1e3:8.1f} ms",
        f"scan losses  : {len(dq['scan']['dropped_dates'])} scans, "
        f"{dq['scan']['dropped_records']} records",
        f"pdns         : {len(dq['pdns']['blackouts'])} blackouts, "
        f"{dq['pdns']['rows_dropped']} rows dropped, "
        f"{dq['pdns']['rows_trimmed']} trimmed",
        f"workers      : {dq['workers']['crashes']} crashes, "
        f"{dq['workers']['retries']} retries",
    ]
    for stage in metrics.stages:
        lines.append(
            f"  {stage.name:<16} {stage.wall_seconds * 1e3:8.1f} ms "
            f"in={stage.n_in} out={stage.n_out}"
        )
    show("Degraded run profile", lines)
    benchmark.extra_info["clean_ms"] = round(clean_time * 1e3, 1)
    benchmark.extra_info["degraded_ms"] = round(metrics.wall_seconds * 1e3, 1)
    benchmark.extra_info["worker_crashes"] = dq["workers"]["crashes"]
