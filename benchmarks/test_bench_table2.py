"""Table 2 — the 41 hijacked domains.

The headline reproduction: the pipeline must recover every hijacked
domain through the same detection channel the paper reports, with the
right attacker infrastructure.  The benchmark measures a full pipeline
run over the paper-scenario datasets.
"""

from repro.analysis.evaluation import evaluate_report
from repro.core.report import format_findings_table
from repro.core.types import DetectionType, Verdict
from repro.world.scenarios import HIJACKED_ROWS

from conftest import show

PAPER_TYPE_COUNTS = {"T1": 20, "T1*": 2, "T2": 6, "P-IP": 7, "P-NS": 6}


def test_table2_hijacked_domains(benchmark, paper, paper_report):
    report = benchmark.pedantic(
        lambda: paper.run_pipeline(), rounds=3, iterations=1
    )

    hijacked = report.hijacked()
    show(
        "Table 2: hijacked domains (measured)",
        format_findings_table(hijacked).splitlines(),
    )

    # 41 hijacked domains, with the paper's detection-type split.
    assert len(hijacked) == 41
    measured_counts: dict[str, int] = {}
    for finding in hijacked:
        measured_counts[finding.detection.value] = (
            measured_counts.get(finding.detection.value, 0) + 1
        )
    assert measured_counts == PAPER_TYPE_COUNTS

    # Per-domain: detection type, attacker IP, ASN all as reported.
    by_domain = {f.domain: f for f in hijacked}
    for row in HIJACKED_ROWS:
        finding = by_domain[row.domain]
        assert finding.detection.value == row.detection, row.domain
        assert row.ip in finding.attacker_ips, row.domain
        assert finding.attacker_asn == row.asn, row.domain

    # Corroboration flags: 39 domains have pDNS evidence; the two T1*
    # rows do not (the paper's x marks).
    no_pdns = {f.domain for f in hijacked if not f.pdns_corroborated}
    assert no_pdns == {"apc.gov.ae", "moh.gov.kw"}
    no_ct = {f.domain for f in hijacked if not f.ct_corroborated}
    assert no_ct == {"embassy.ly"}

    evaluation = evaluate_report(report, paper.ground_truth)
    assert evaluation.false_positives == []
    benchmark.extra_info["hijacked"] = len(hijacked)
    benchmark.extra_info["type_counts"] = measured_counts
