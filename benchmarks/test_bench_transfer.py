"""Classifier transfer — the "no training data" argument, quantified.

Section 5.2's validation notes the methodology "is not a machine
learning approach subject to overfitting — there is no training or
training data."  We make that concrete: train the feature classifier on
one study, apply it to a completely different world (fresh victims,
providers, dates), and compare against the constructive pipeline, which
carries no fitted state at all.  The pipeline's recall is invariant by
construction; the classifier's transfer recall depends on how well the
training distribution happened to cover the new world.
"""

from repro.analysis.evaluation import evaluate_report
from repro.baseline.model import train_baseline
from repro.world.randomized import RandomWorldConfig, random_world
from repro.world.sim import run_study

from conftest import show


def test_classifier_transfer(benchmark, paper):
    # Train on the paper study's labels.
    classifier = train_baseline(
        paper.scan, paper.pdns, paper.periods, paper.ground_truth
    )

    # A world the classifier never saw.
    target = run_study(
        random_world(seed=77, config=RandomWorldConfig(n_victims=8, n_background=60))
    )
    truth = target.ground_truth.domains()

    def transfer():
        """Apply the paper-trained model to the target study's features."""
        import numpy as np

        from repro.baseline.features import domain_features

        flagged = set()
        candidates = truth | set(list(target.scan.domains())[:60])
        for domain in sorted(candidates):
            for period in target.periods:
                if not target.scan.scan_dates_in(period):
                    continue
                features = np.array(
                    [domain_features(domain, target.scan, target.pdns, period)]
                )
                if classifier.model.predict_proba(features)[0] >= 0.5:
                    flagged.add(domain)
                    break
        return flagged

    flagged = benchmark.pedantic(transfer, rounds=1, iterations=1)

    # The constructive pipeline on the same world.
    report = target.run_pipeline()
    evaluation = evaluate_report(report, target.ground_truth)

    classifier_recall = len(flagged & truth) / len(truth)
    classifier_fp = len(flagged - truth)
    show(
        "Classifier transfer vs constructive pipeline (measured)",
        [
            f"{'method':<24} {'recall':>7} {'FP':>4}",
            f"{'classifier (trained on paper study)':<24} {classifier_recall:>7.2f} {classifier_fp:>4}",
            f"{'constructive pipeline (no training)':<24} {evaluation.recall:>7.2f} "
            f"{len(evaluation.false_positives):>4}",
        ],
    )

    # The pipeline transfers perfectly because it fits nothing.
    assert evaluation.recall == 1.0
    assert evaluation.false_positives == []
    # The classifier is not allowed to beat it (it can at best match),
    # and any shortfall/false alarms illustrate the transfer gap.
    assert classifier_recall <= 1.0

    benchmark.extra_info["classifier_recall"] = round(classifier_recall, 3)
    benchmark.extra_info["classifier_fp"] = classifier_fp
    benchmark.extra_info["pipeline_recall"] = evaluation.recall
