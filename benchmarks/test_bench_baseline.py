"""Section 2.1 comparison — constructive pipeline vs an ML classifier.

The paper positions its attack-requirement-driven methodology against
classifier approaches (Houser et al.).  We train a logistic-regression
baseline over pDNS/scan features on the paper study's ground truth and
compare precision/recall against the pipeline: the classifier attains
high recall but pays in precision on benign lookalikes, while the
constructive pipeline keeps precision at 1.0.  The benchmark measures
baseline training.
"""

from repro.baseline.model import train_baseline
from repro.detect.arena import score_sets

from conftest import show


def test_baseline_vs_pipeline(benchmark, paper, paper_report):
    classifier = benchmark.pedantic(
        lambda: train_baseline(
            paper.scan, paper.pdns, paper.periods, paper.ground_truth
        ),
        rounds=1,
        iterations=1,
    )

    truth = paper.ground_truth.domains()
    # Evaluate both methods over every scan-visible domain.
    candidates = [d for d in paper.scan.domains()]
    flagged = classifier.flagged_domains(candidates)
    pipeline_found = {f.domain for f in paper_report.findings}

    rows = [
        score_sets("ml-baseline", flagged, truth),
        score_sets("pipeline", pipeline_found, truth),
    ]
    lines = [f"{'method':<14} {'precision':>10} {'recall':>8} {'F1':>8}"]
    for row in rows:
        lines.append(
            f"{row.method:<14} {row.precision:>10.2f} {row.recall:>8.2f} {row.f1:>8.2f}"
        )
    lines.append(f"baseline flagged {len(flagged)} domains; pipeline {len(pipeline_found)}")
    show("Baseline comparison (measured)", lines)

    baseline_row = next(r for r in rows if r.method == "ml-baseline")
    pipeline_row = next(r for r in rows if r.method == "pipeline")

    # The pipeline wins on precision (the paper's core argument: no
    # training, no overfitting, constructive requirements).
    assert pipeline_row.precision == 1.0
    assert pipeline_row.recall >= 0.95
    assert pipeline_row.f1 >= baseline_row.f1
    # The classifier is still a meaningful detector (decent recall).
    assert baseline_row.recall >= 0.5

    benchmark.extra_info["baseline_precision"] = round(baseline_row.precision, 3)
    benchmark.extra_info["baseline_recall"] = round(baseline_row.recall, 3)
    benchmark.extra_info["pipeline_precision"] = round(pipeline_row.precision, 3)
    benchmark.extra_info["pipeline_recall"] = round(pipeline_row.recall, 3)
