"""Sensitivity sweeps + randomized-world robustness.

Two generalization checks beyond the fixed paper scenario:

* threshold sweeps over the design knobs the paper set by judgment
  (transient threshold, visibility floor, corroboration window) — the
  defaults must sit on the recall plateau;
* randomized campaign worlds (fresh victims, dates, clouds, modes per
  seed) — recall must stay perfect with zero false positives.
"""

from repro.analysis.evaluation import evaluate_report
from repro.analysis.sweeps import (
    format_sweep,
    sweep_corroboration_window,
    sweep_transient_threshold,
    sweep_visibility_floor,
)
from repro.world.randomized import RandomWorldConfig, random_world
from repro.world.sim import run_study

from conftest import show


def test_threshold_sweeps(benchmark, paper):
    transient = benchmark.pedantic(
        lambda: sweep_transient_threshold(paper, values=[30, 91, 183]),
        rounds=1,
        iterations=1,
    )
    visibility = sweep_visibility_floor(paper, values=[0.6, 0.8, 0.95])
    window = sweep_corroboration_window(paper, values=[2, 30, 60])

    for result in (transient, visibility, window):
        show(f"Sweep: {result.parameter}", format_sweep(result).splitlines())

    # The paper's defaults sit on the recall plateau.
    def at(result, value):
        return next(p for p in result.points if p.value == value)

    assert at(transient, 91.0).recall == 1.0
    assert at(visibility, 0.8).recall == 1.0
    assert at(window, 30.0).recall == 1.0
    # The methodology is broadly insensitive to its thresholds — recall
    # holds over wide ranges (a robustness result in itself) — but a
    # degenerate two-day corroboration window must finally bind.
    assert at(window, 2.0).recall < 1.0
    benchmark.extra_info["default_recall"] = 1.0


def test_randomized_world_robustness(benchmark):
    def run_seeds():
        outcomes = []
        for seed in (11, 12, 13):
            study = run_study(
                random_world(seed=seed, config=RandomWorldConfig(n_victims=6, n_background=30))
            )
            report = study.run_pipeline()
            evaluation = evaluate_report(report, study.ground_truth)
            outcomes.append((seed, evaluation.recall, len(evaluation.false_positives)))
        return outcomes

    outcomes = benchmark.pedantic(run_seeds, rounds=1, iterations=1)
    show(
        "Randomized-world robustness (seed, recall, false positives)",
        [f"seed={s}  recall={r:.2f}  FP={fp}" for s, r, fp in outcomes],
    )
    assert all(recall == 1.0 for _, recall, _ in outcomes)
    assert all(fp == 0 for _, _, fp in outcomes)
    benchmark.extra_info["seeds"] = [s for s, _, _ in outcomes]
