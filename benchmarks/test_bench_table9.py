"""Table 9 — suspiciously obtained certificates.

Per hijacked domain: crt.sh id, issuing CA, and retroactive revocation
status.  The paper's splits: 28 Let's Encrypt + 12 Comodo (embassy.ly
used no TLS), only 4 revoked, and Let's Encrypt statuses unknowable
because it publishes no CRL.
"""

from repro.analysis.certificates import (
    ca_breakdown,
    certificate_table,
    format_certificate_table,
    revocation_breakdown,
)

from conftest import show


def test_table9_malicious_certificates(benchmark, paper, paper_report):
    rows = benchmark.pedantic(
        lambda: certificate_table(paper_report, paper.crtsh), rounds=5, iterations=1
    )

    show("Table 9: suspiciously obtained certificates (measured)",
         format_certificate_table(rows).splitlines())

    assert len(rows) == 41

    cas = ca_breakdown(rows)
    assert cas == {"Let's Encrypt": 28, "Comodo": 12}

    statuses = revocation_breakdown(rows)
    assert statuses["revoked"] == 4
    assert statuses["unknown"] == 28      # every LE cert: OCSP-only, expired
    assert statuses["no-certificate"] == 1  # embassy.ly
    assert statuses.get("good", 0) == 8   # unrevoked Comodo certs, CRL-visible

    revoked = {r.domain for r in rows if r.revocation and r.revocation.value == "revoked"}
    assert revoked == {"asp.gov.al", "cyta.com.cy", "netnod.se", "pch.net"}

    # Every certificate-bearing row has a crt.sh id and a DV issuer.
    for row in rows:
        if row.issuer:
            assert row.crtsh_id > 0, row.domain

    benchmark.extra_info["ca_split"] = cas
    benchmark.extra_info["revoked"] = len(revoked)
