"""Figure 4 — transition patterns X1-X3.

Canonical expansion (same cert / new cert) and migration shapes must
classify as transitions with the right sub-pattern.
"""

import sys
from datetime import date
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests"))

from helpers import PERIOD, ScanSketch, make_cert, scan_dates  # noqa: E402
from repro.core.deployment import build_deployment_map  # noqa: E402
from repro.core.patterns import classify  # noqa: E402
from repro.core.types import PatternKind, SubPattern  # noqa: E402

from conftest import show  # noqa: E402

DATES = scan_dates()


def canonical_transition_sketches():
    x1_cert = make_cert("www.a.com", 1, date(2018, 12, 1))
    x1 = (
        ScanSketch("a.com")
        .presence(DATES, "10.0.0.1", 100, "US", x1_cert)
        .presence(DATES[12:], "20.0.0.1", 200, "DE", x1_cert)
    )

    x2_cert = make_cert("www.b.com", 2, date(2018, 12, 1))
    x2_cloud = make_cert("cdn.b.com", 3, date(2019, 3, 25))
    x2 = (
        ScanSketch("b.com")
        .presence(DATES, "10.1.0.1", 101, "US", x2_cert)
        .presence(DATES[12:], "20.1.0.1", 201, "DE", x2_cloud)
    )

    x3_old = make_cert("www.c.com", 4, date(2018, 12, 1))
    x3_new = make_cert("www.c.com", 5, date(2019, 3, 25))
    x3 = (
        ScanSketch("c.com")
        .presence(DATES[:14], "10.2.0.1", 102, "US", x3_old)
        .presence(DATES[13:], "20.2.0.1", 202, "DE", x3_new)
    )
    return {"X1": x1, "X2": x2, "X3": x3}


def test_fig4_transition_patterns(benchmark):
    sketches = canonical_transition_sketches()
    maps = {
        label: build_deployment_map(s.domain, s.records, PERIOD, DATES)
        for label, s in sketches.items()
    }

    results = benchmark.pedantic(
        lambda: {label: classify(m) for label, m in maps.items()},
        rounds=10,
        iterations=1,
    )

    lines = [
        f"{label}: kind={c.kind.value} subpatterns={[p.value for p in c.subpatterns]}"
        for label, c in results.items()
    ]
    show("Figure 4: transition patterns (measured classification)", lines)

    expected = {"X1": SubPattern.X1, "X2": SubPattern.X2, "X3": SubPattern.X3}
    for label, subpattern in expected.items():
        assert results[label].kind is PatternKind.TRANSITION, label
        assert subpattern in results[label].subpatterns, label
    benchmark.extra_info["all_transitions"] = True
