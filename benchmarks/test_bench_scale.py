"""Pipeline scalability — the feasibility argument.

The paper runs its pipeline over 22M domains of four years of weekly
scans; our reproduction must demonstrate the same linear-ish scaling on
the simulator so the approach extrapolates.  Measures end-to-end
pipeline wall time at two population sizes and checks growth is roughly
linear (well under quadratic).
"""

import time
from datetime import date

from repro.net.timeline import DateInterval
from repro.world.behaviors import populate_background
from repro.world.sim import run_study
from repro.world.world import World

from conftest import show

SMALL, LARGE = 300, 1200


def build_study(n_domains: int, seed: int):
    world = World(seed=seed, start=date(2019, 1, 1), end=date(2019, 12, 31))
    populate_background(world, n_domains, DateInterval(world.start, world.end))
    return run_study(world)


def test_pipeline_scaling(benchmark):
    small_study = build_study(SMALL, seed=41)
    large_study = build_study(LARGE, seed=42)

    t0 = time.perf_counter()
    small_report = small_study.run_pipeline()
    small_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    large_report = benchmark.pedantic(large_study.run_pipeline, rounds=1, iterations=1)
    large_time = time.perf_counter() - t0

    per_map_small = small_time / max(small_report.funnel.n_maps, 1)
    per_map_large = large_time / max(large_report.funnel.n_maps, 1)
    show(
        "Pipeline scaling (measured)",
        [
            f"{SMALL:>6} domains: {small_report.funnel.n_maps:>6} maps, "
            f"{small_time * 1e3:8.1f} ms  ({per_map_small * 1e6:6.1f} us/map)",
            f"{LARGE:>6} domains: {large_report.funnel.n_maps:>6} maps, "
            f"{large_time * 1e3:8.1f} ms  ({per_map_large * 1e6:6.1f} us/map)",
        ],
    )

    # 4x the domains must cost clearly less than 4x per-map time
    # (i.e. total growth well below quadratic).
    assert per_map_large <= per_map_small * 4

    benchmark.extra_info["maps_small"] = small_report.funnel.n_maps
    benchmark.extra_info["maps_large"] = large_report.funnel.n_maps
    benchmark.extra_info["us_per_map"] = round(per_map_large * 1e6, 1)
