"""Table 4 — affected organizations by sector.

The sector breakdown over the 65 identified victims must match the
paper row-for-row (Government Ministry 12/11, Government Organization
4/6, ...).  The benchmark measures the table computation.
"""

from repro.analysis.sectors import PAPER_TABLE4, format_sector_table, sector_table

from conftest import show


def test_table4_sector_breakdown(benchmark, paper, paper_report):
    identified = {f.domain for f in paper_report.findings}

    rows = benchmark.pedantic(
        lambda: sector_table(paper.ground_truth, identified), rounds=10, iterations=1
    )

    show("Table 4: affected organizations by sector (measured)",
         format_sector_table(rows).splitlines())

    measured = {r.sector: (r.hijacked, r.targeted) for r in rows}
    assert measured == PAPER_TABLE4

    assert sum(r.hijacked for r in rows) == 41
    assert sum(r.targeted for r in rows) == 24
    # Governments dominate — the paper's key qualitative observation.
    government = sum(
        r.total for r in rows if r.sector.startswith(("Government", "Local Government"))
    )
    assert government >= 40
    benchmark.extra_info["sectors"] = len(rows)
