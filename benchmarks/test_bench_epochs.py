"""Epoch engine economics — incremental latency vs the full-rerun
counterfactual.

The epoch layer exists so a ≤1% weekly delta over a 10⁵–10⁶-domain
study costs O(delta) work, not O(dataset).  This module measures the
headline quantity via the same producer that fills the ``epochs``
section of BENCH_perf.json (:func:`repro.obs.perf.measure_epochs`):

* ``epoch_seconds`` — a warm :func:`repro.epochs.run_epoch`: overlay
  merge, dirty-set computation, O(delta) seeding of the deployment
  entry from the base run's banked products, then the seeded run;
* ``full_seconds`` — the honest counterfactual an analyst without the
  epoch engine pays: rebuild the merged table from the concatenated
  row stream, then a cold run against a fresh cache.

Two hard CI floors ride along: the incremental report must be
byte-identical to the full rerun's, and the speedup must clear 10× at
a 1% delta (measured ~20× at 10⁵ domains).  ``REPRO_BENCH_EPOCH_DOMAINS``
scales the population (default 100 000).
"""

import os

from conftest import show

from repro.obs.perf import measure_epochs

N_DOMAINS = int(os.environ.get("REPRO_BENCH_EPOCH_DOMAINS", "100000"))
FLOOR_SPEEDUP = 10.0


def test_epoch_latency_floor(benchmark):
    summary = benchmark.pedantic(
        lambda: measure_epochs(N_DOMAINS), rounds=1, iterations=1
    )
    show(
        f"Epoch engine at {N_DOMAINS} domains, 1% delta (measured)",
        [
            f"base run:   {summary['base_seconds'] * 1e3:8.1f} ms (banks the cache)",
            f"epoch run:  {summary['epoch_seconds'] * 1e3:8.1f} ms "
            f"(dirty {summary['domains_dirty']}, reused {summary['domains_reused']})",
            f"full rerun: {summary['full_seconds'] * 1e3:8.1f} ms "
            f"(rebuild {summary['rebuild_seconds'] * 1e3:.1f} "
            f"+ cold run {summary['full_run_seconds'] * 1e3:.1f})",
            f"speedup: {summary['speedup']:.1f}x   identical: {summary['identical']}",
        ],
    )

    # Identity is non-negotiable: reuse optimizes work, never answers.
    assert summary["identical"], "incremental report diverged from full rerun"
    assert summary["seeded"], "epoch run failed to seed from base products"
    # The dirty set must stay delta-sized, not population-sized.
    assert summary["domains_dirty"] < N_DOMAINS * 0.1, summary
    assert summary["domains_reused"] > N_DOMAINS * 0.9, summary
    assert summary["speedup"] >= FLOOR_SPEEDUP, (
        f"epoch speedup {summary['speedup']}x under the {FLOOR_SPEEDUP}x floor"
    )
