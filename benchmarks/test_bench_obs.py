"""Observability layer — disabled-tracing overhead and a traced profile.

The tentpole invariant says tracing is opt-in with near-zero cost when
off: a disabled tracer turns every record call into a single attribute
test, and the always-on metrics registry is a handful of dict writes per
stage.  The first bench *asserts* that budget — a profiled run with a
disabled tracer stays within 2% of a plain ``run_pipeline`` — using
interleaved best-of-N arms (plus re-measures) so single-core CI jitter
hits both sides equally.  The second bench profiles a fully traced run
and reports the span tree's size and export weight.
"""

import time

from repro.exec import SerialBackend
from repro.obs import Tracer
from repro.world.scenarios import paper_study

from conftest import show

N_BACKGROUND = 150
ROUNDS = 5
#: The asserted ceiling for disabled-tracing overhead.
MAX_OVERHEAD = 0.02
#: Re-measure attempts before the assert is allowed to fail — a single
#: scheduler hiccup should not fail the build over a no-op code path.
RETRIES = 2


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _measure_overhead(study):
    """Best-of-N for both arms, interleaved in alternating order."""
    disabled = Tracer(enabled=False)
    plain_time = obs_time = float("inf")
    for i in range(ROUNDS):
        arms = [("plain", lambda: study.run_pipeline(backend=SerialBackend())),
                ("obs", lambda: study.profile_pipeline(
                    backend=SerialBackend(), tracer=disabled))]
        if i % 2:
            arms.reverse()
        for label, fn in arms:
            elapsed, _ = _timed(fn)
            if label == "plain":
                plain_time = min(plain_time, elapsed)
            else:
                obs_time = min(obs_time, elapsed)
    return plain_time, obs_time


def test_disabled_tracing_overhead(benchmark):
    study = paper_study(seed=7, n_background=N_BACKGROUND)
    study.run_pipeline(backend=SerialBackend())  # warm-up

    plain_time, obs_time = _measure_overhead(study)
    overhead = (obs_time - plain_time) / plain_time
    attempts = 1
    while overhead >= MAX_OVERHEAD and attempts <= RETRIES:
        plain_time, obs_time = _measure_overhead(study)
        overhead = (obs_time - plain_time) / plain_time
        attempts += 1

    benchmark.pedantic(
        lambda: study.profile_pipeline(
            backend=SerialBackend(), tracer=Tracer(enabled=False)
        ),
        rounds=1,
        iterations=1,
    )

    show(
        f"Disabled-tracing overhead (asserted < {MAX_OVERHEAD:.0%})",
        [
            f"plain run        : {plain_time * 1e3:8.1f} ms (best of {ROUNDS})",
            f"disabled tracer  : {obs_time * 1e3:8.1f} ms (best of {ROUNDS})",
            f"overhead         : {overhead:+.2%} ({attempts} measurement pass(es))",
        ],
    )
    benchmark.extra_info["plain_ms"] = round(plain_time * 1e3, 1)
    benchmark.extra_info["disabled_tracer_ms"] = round(obs_time * 1e3, 1)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)
    assert overhead < MAX_OVERHEAD, (
        f"disabled tracing cost {overhead:.2%} (> {MAX_OVERHEAD:.0%}) "
        f"after {attempts} measurement passes"
    )


def test_traced_run_profile(benchmark):
    study = paper_study(seed=7, n_background=N_BACKGROUND)
    tracer = Tracer()

    def traced_run():
        return study.profile_pipeline(backend=SerialBackend(), tracer=tracer)

    _report, metrics = benchmark.pedantic(traced_run, rounds=1, iterations=1)

    spans = tracer.spans
    by_category = {}
    for span in spans:
        by_category[span.category] = by_category.get(span.category, 0) + 1
    chrome_bytes = len(str(tracer.to_chrome()))
    jsonl_bytes = len(tracer.to_jsonl())
    counters = metrics.metrics["counters"]
    show(
        "Traced run profile",
        [
            f"wall             : {metrics.wall_seconds * 1e3:8.1f} ms",
            f"spans            : {len(spans)} "
            f"({', '.join(f'{k}={v}' for k, v in sorted(by_category.items()))})",
            f"chrome export    : ~{chrome_bytes / 1024:.1f} KiB",
            f"jsonl export     : ~{jsonl_bytes / 1024:.1f} KiB",
            f"pdns lookups     : {counters['inspection.pdns_lookups']}",
            f"ct searches      : {counters['inspection.ct_searches']}",
        ],
    )
    benchmark.extra_info["n_spans"] = len(spans)
    benchmark.extra_info["chrome_kib"] = round(chrome_bytes / 1024, 1)
