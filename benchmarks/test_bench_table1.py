"""Table 1 — annotated IP scan data for kyvernisi.gr, April 2019.

Regenerates the paper's example table: the weekly scan rows for the
victim domain around its hijack, annotated with ports, ASN, country,
crt.sh id, issuer, trust, and sensitivity.  The benchmark measures the
annotation join itself (the hot path of dataset construction).
"""

from datetime import date

from repro.ipintel.asnames import as_name
from repro.scan.annotate import Annotator
from repro.scan.engine import ScanEngine

from conftest import show


def test_table1_kyvernisi_scan_rows(benchmark, paper):
    world = paper.world
    records = [
        r
        for r in paper.scan.records_for("kyvernisi.gr")
        if date(2019, 3, 25) <= r.scan_date <= date(2019, 5, 5)
    ]
    assert records, "kyvernisi.gr must be scan-visible in April 2019"

    # Benchmark: re-annotate the raw observations for this window.
    engine = ScanEngine(world.hosts, seed=world.seed)
    raw = [o for o in engine.scan(records[0].scan_date)]

    def annotate():
        return Annotator(world.routing, world.geo, world.trust).annotate(raw)

    benchmark.pedantic(annotate, rounds=3, iterations=1)

    lines = [
        f"{'Scan Date':<12} {'IP Address':<16} {'Ports':<18} {'ASN':<7} {'CC':<3} "
        f"{'crt.sh ID':>10} {'Issuing CA':<15} {'Trust':<5} {'Sens':<5} Name(s)"
    ]
    for r in sorted(records, key=lambda x: (x.scan_date, x.ip)):
        lines.append(
            f"{r.scan_date.isoformat():<12} {r.ip:<16} {str(list(r.ports)):<18} "
            f"{r.asn:<7} {r.country:<3} {r.crtsh_id:>10} {r.issuer:<15} "
            f"{'T' if r.trusted else 'F':<5} {'T' if r.sensitive else 'F':<5} "
            f"{list(r.names)}"
        )
    show("Table 1: kyvernisi.gr, April 2019 (measured)", lines)

    # Shape checks mirroring the paper's table: a stable Greek deployment
    # and one transient Vultr/NL appearance with a fresh Let's Encrypt cert.
    asns = {r.asn for r in records}
    assert 35506 in asns, "stable Greek government deployment"
    assert 20473 in asns, "transient Vultr deployment"
    transient = [r for r in records if r.asn == 20473]
    assert all(r.country == "NL" for r in transient)
    assert all(r.issuer == "Let's Encrypt" for r in transient)
    assert all(r.trusted and r.sensitive for r in transient)
    assert {"mail.kyvernisi.gr"} == {n for r in transient for n in r.names}
    assert as_name(20473) == "Vultr"
    # The transient appears in at most two weekly scans (Section 5.3).
    assert len({r.scan_date for r in transient}) <= 2

    benchmark.extra_info["rows"] = len(records)
    benchmark.extra_info["transient_scans"] = len({r.scan_date for r in transient})
