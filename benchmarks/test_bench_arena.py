"""The detector arena over the full paper scenario.

Sweeps every registered detector across the paper pack (the other packs
are covered by ``repro-hunt arena``, which produces the committed
``BENCH_arena.json``) and records each method's precision/recall/F1 and
detection latency.  The funnel must top the leaderboard here: the
paper's core argument is that the constructive method dominates the
feature baselines on its own scenario.
"""

from repro.detect.arena import run_arena

from conftest import show


def test_arena_paper_pack(benchmark, paper):
    result = benchmark.pedantic(
        lambda: run_arena(packs=["paper"], studies={"paper": paper}),
        rounds=1,
        iterations=1,
    )

    rows = result.leaderboard()
    lines = [f"{'detector':<18} {'mean F1':>8} {'P':>6} {'R':>6} {'detect s':>9}"]
    for row in rows:
        lines.append(
            f"{row['detector']:<18} {row['mean_f1']:>8.3f} "
            f"{row['mean_precision']:>6.2f} {row['mean_recall']:>6.2f} "
            f"{row['total_detect_seconds']:>9.3f}"
        )
    show("Detector arena, paper pack (measured)", lines)

    by_name = {row["detector"]: row for row in rows}
    funnel = by_name["funnel"]
    # The constructive funnel dominates on its own scenario.
    assert funnel["mean_precision"] == 1.0
    assert funnel["mean_f1"] >= max(
        row["mean_f1"] for name, row in by_name.items() if name != "funnel"
    )
    # Every shipped detector beats doing nothing (recalls something).
    for name, row in by_name.items():
        assert row["mean_recall"] > 0.0, name

    for row in rows:
        benchmark.extra_info[f"{row['detector']}_f1"] = row["mean_f1"]
        benchmark.extra_info[f"{row['detector']}_detect_s"] = row[
            "total_detect_seconds"
        ]
