"""Table 3 — the 24 targeted (prelude-only) domains.

All 24 T2-prelude victims must be classified TARGETED, not hijacked:
22 with no corroboration (truly anomalous transients), and the two
pDNS-visible redirections without a suspicious certificate
(justice.gov.ma, ais.gov.vn).  The benchmark measures the inspection
stage over the shortlist.
"""

from repro.core.inspection import Inspector
from repro.core.report import format_findings_table
from repro.core.types import Verdict
from repro.world.scenarios import TARGETED_ROWS

from conftest import show


def test_table3_targeted_domains(benchmark, paper, paper_report):
    inspector = Inspector(paper.pdns, paper.crtsh)
    entries = paper_report.shortlist

    benchmark.pedantic(
        lambda: [inspector.inspect(e) for e in entries], rounds=3, iterations=1
    )

    targeted = paper_report.targeted()
    show(
        "Table 3: targeted domains (measured)",
        format_findings_table(targeted).splitlines(),
    )

    assert len(targeted) == 24
    by_domain = {f.domain: f for f in targeted}
    for row in TARGETED_ROWS:
        finding = by_domain[row.domain]
        assert finding.verdict is Verdict.TARGETED, row.domain
        assert row.ip in finding.attacker_ips, row.domain
        assert finding.attacker_asn == row.asn, row.domain
        # No targeted domain has a suspicious certificate (crt column all x).
        assert finding.crtsh_id == 0, row.domain

    with_pdns = {f.domain for f in targeted if f.pdns_corroborated}
    assert with_pdns == {"justice.gov.ma", "ais.gov.vn"}

    # Infrastructure reuse noted in the paper: 194.152.42.16 targets four
    # domains across .ae and .sa; AS45102 targets eight TLDs.
    reused_ip_victims = {
        f.domain for f in targeted if "194.152.42.16" in f.attacker_ips
    }
    assert reused_ip_victims == {"milmail.ae", "mocaf.gov.ae", "moi.gov.ae", "cmail.sa"}
    alibaba_tlds = {
        f.domain.split(".")[-1] for f in targeted if f.attacker_asn == 45102
    }
    assert len(alibaba_tlds) >= 7

    benchmark.extra_info["targeted"] = len(targeted)
