"""Columnar data plane — the perf claims of the ScanTable rewrite.

Measures, on the scale benchmark's largest world, the two quantities the
columnar deployment kernel was built for:

* the deployment-map stage, before (row-at-a-time over record objects)
  vs after (encode over column slices + decode via interned pools) —
  required to be at least 2x faster kernel-to-kernel;
* the worker/cache payload of the stage — pickled object-graph maps
  before vs the run-length int encoding after — required to shrink at
  least 3x.

Everything is measured here, on this machine, via the same
``measure_deployment_kernel`` the ``repro-hunt profile --json`` command
records into ``BENCH_perf.json``.
"""

import platform
import sys
from pathlib import Path

from repro.obs.perf import (
    PERF_SCHEMA,
    measure_dataset,
    measure_deployment_kernel,
    write_perf_summary,
)

from conftest import show
from test_bench_scale import LARGE, build_study

#: The measurement of record: the repo-root document the acceptance
#: numbers live in, regenerated whenever this benchmark runs.
BENCH_PERF = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def test_columnar_kernel_speedup_and_payload(benchmark):
    study = build_study(LARGE, seed=42)
    dataset, periods = study.scan, study.periods

    result = benchmark.pedantic(
        measure_deployment_kernel, args=(dataset, periods), rounds=1, iterations=1
    )
    footprint = measure_dataset(dataset)

    show(
        "Columnar deployment kernel (measured)",
        [
            f"maps: {result['maps']}  records: {footprint['records']}  "
            f"domains: {footprint['domains']}",
            f"kernel   before {result['legacy_seconds'] * 1e3:8.1f} ms   "
            f"after {result['columnar_seconds'] * 1e3:8.1f} ms   "
            f"speedup {result['speedup']:.2f}x",
            f"roundtrip before {result['legacy_roundtrip_seconds'] * 1e3:8.1f} ms   "
            f"after {result['columnar_roundtrip_seconds'] * 1e3:8.1f} ms   "
            f"stage speedup {result['roundtrip_speedup']:.2f}x",
            f"payload  before {result['legacy_payload_bytes']:>9} B   "
            f"after {result['encoded_payload_bytes']:>9} B   "
            f"ratio {result['payload_ratio']:.2f}x",
            f"dataset pickle: columnar {footprint['columnar_pickle_bytes']} B, "
            f"row objects {footprint['legacy_pickle_bytes']} B, "
            f"columns resident {footprint['column_bytes']} B",
        ],
    )

    # The PR's acceptance thresholds, asserted on the measurement
    # itself: the stage (kernel + worker-payload round-trip, what the
    # pipeline actually pays) at least 2x, payload at least 3x.  The
    # bare kernel comparison typically lands >=2x as well but is the
    # noisier number, so it only gets a sanity floor here.
    assert result["roundtrip_speedup"] >= 2.0
    assert result["payload_ratio"] >= 3.0
    assert result["speedup"] >= 1.2

    benchmark.extra_info.update(
        {
            "kernel_speedup": result["speedup"],
            "stage_speedup": result["roundtrip_speedup"],
            "payload_ratio": result["payload_ratio"],
            "encoded_payload_bytes": result["encoded_payload_bytes"],
        }
    )

    write_perf_summary(
        BENCH_PERF,
        {
            "schema": PERF_SCHEMA,
            "python": platform.python_version(),
            "implementation": sys.implementation.name,
            "world": {"domains": LARGE, "seed": 42, "benchmark": "scale"},
            "dataset": footprint,
            "deployment_kernel": result,
        },
    )
