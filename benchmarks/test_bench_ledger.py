"""Telemetry layer — ledger + events overhead and a recorded profile.

The run ledger and the heartbeat event stream ride the same budget the
tracer does: observation must be near-free.  The first bench *asserts*
that a profiled run writing a ledger record and streaming JSONL events
stays within 2% of a plain ``run_pipeline`` — interleaved best-of-N
arms plus re-measures, so single-core CI jitter hits both sides
equally.  (The ledger appends once per run and the event stream emits a
handful of lines per stage, so the budget is generous; the assert is a
tripwire against accidental per-task work creeping into either path.)
The second bench profiles a fully recorded run and reports the ledger
record and event-stream weight.
"""

import time

from repro.exec import SerialBackend
from repro.obs import RunLedger
from repro.obs.events import JsonlEventSink, read_events
from repro.world.scenarios import paper_study

from conftest import show

N_BACKGROUND = 150
ROUNDS = 7
#: The asserted ceiling for ledger + events overhead.
MAX_OVERHEAD = 0.02
#: Re-measure attempts before the assert is allowed to fail — on a
#: shared single core the noise floor is well above the real ~1% cost.
RETRIES = 3


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _instrumented_run(study, root):
    ledger = RunLedger(root / "ledger")
    sink = JsonlEventSink(root / "events.jsonl")
    try:
        return study.profile_pipeline(
            backend=SerialBackend(), events=sink, ledger=ledger
        )
    finally:
        sink.close()


def _measure_overhead(study, root):
    """Best-of-N for both arms, interleaved in alternating order."""
    plain_time = ledger_time = float("inf")
    for i in range(ROUNDS):
        arms = [("plain", lambda: study.run_pipeline(backend=SerialBackend())),
                ("ledger", lambda: _instrumented_run(study, root))]
        if i % 2:
            arms.reverse()
        for label, fn in arms:
            elapsed, _ = _timed(fn)
            if label == "plain":
                plain_time = min(plain_time, elapsed)
            else:
                ledger_time = min(ledger_time, elapsed)
    return plain_time, ledger_time


def test_ledger_and_events_overhead(benchmark, tmp_path):
    study = paper_study(seed=7, n_background=N_BACKGROUND)
    study.run_pipeline(backend=SerialBackend())  # warm-up
    _instrumented_run(study, tmp_path)  # warm the ledger/events paths too

    plain_time, ledger_time = _measure_overhead(study, tmp_path)
    overhead = (ledger_time - plain_time) / plain_time
    attempts = 1
    while overhead >= MAX_OVERHEAD and attempts <= RETRIES:
        plain_time, ledger_time = _measure_overhead(study, tmp_path)
        overhead = (ledger_time - plain_time) / plain_time
        attempts += 1

    benchmark.pedantic(
        lambda: _instrumented_run(study, tmp_path),
        rounds=1,
        iterations=1,
    )

    show(
        f"Ledger + events overhead (asserted < {MAX_OVERHEAD:.0%})",
        [
            f"plain run        : {plain_time * 1e3:8.1f} ms (best of {ROUNDS})",
            f"ledger + events  : {ledger_time * 1e3:8.1f} ms (best of {ROUNDS})",
            f"overhead         : {overhead:+.2%} ({attempts} measurement pass(es))",
        ],
    )
    benchmark.extra_info["plain_ms"] = round(plain_time * 1e3, 1)
    benchmark.extra_info["ledger_events_ms"] = round(ledger_time * 1e3, 1)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)
    assert overhead < MAX_OVERHEAD, (
        f"ledger + events cost {overhead:.2%} (> {MAX_OVERHEAD:.0%}) "
        f"after {attempts} measurement passes"
    )


def test_recorded_run_profile(benchmark, tmp_path):
    study = paper_study(seed=7, n_background=N_BACKGROUND)
    ledger = RunLedger(tmp_path / "ledger")
    events_path = tmp_path / "events.jsonl"

    def recorded_run():
        sink = JsonlEventSink(events_path)
        try:
            return study.profile_pipeline(
                backend=SerialBackend(), events=sink, ledger=ledger,
                memory=True,
            )
        finally:
            sink.close()

    _report, metrics = benchmark.pedantic(recorded_run, rounds=1, iterations=1)

    record = ledger.load(ledger.latest().run_id)
    record_path = next((ledger.root / "records").rglob("*.json"))
    stream = read_events(events_path)
    show(
        "Recorded run profile",
        [
            f"wall             : {metrics.wall_seconds * 1e3:8.1f} ms",
            f"ledger record    : ~{record_path.stat().st_size / 1024:.1f} KiB "
            f"({record.run_id})",
            f"event stream     : {len(stream)} events, "
            f"~{events_path.stat().st_size / 1024:.1f} KiB",
            f"peak rss         : {record.peak_rss_bytes / 1048576:.0f} MiB",
            f"stages recorded  : {len(record.stages)}",
        ],
    )
    benchmark.extra_info["n_events"] = len(stream)
    benchmark.extra_info["record_kib"] = round(record_path.stat().st_size / 1024, 1)
