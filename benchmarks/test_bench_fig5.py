"""Figure 5 — transient patterns T1 and T2.

The suspicious shapes: a brief foreign-AS deployment serving a NEW
certificate (T1) or the victim's own STABLE certificate (T2, the proxy
prelude).  Also checks the three-month threshold boundary that separates
transients from transitions.
"""

import sys
from datetime import date
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests"))

from helpers import PERIOD, ScanSketch, make_cert, scan_dates  # noqa: E402
from repro.core.deployment import build_deployment_map  # noqa: E402
from repro.core.patterns import classify  # noqa: E402
from repro.core.types import PatternKind, SubPattern  # noqa: E402

from conftest import show  # noqa: E402

DATES = scan_dates()


def canonical_transient_sketches():
    stable_a = make_cert("www.a.com", 1, date(2018, 12, 1))
    rogue = make_cert("mail.a.com", 2, date(2019, 3, 20), issuer="Let's Encrypt", days=90)
    t1 = (
        ScanSketch("a.com")
        .presence(DATES, "10.0.0.1", 100, "US", stable_a)
        .presence(DATES[12:13], "203.0.113.5", 666, "NL", rogue)
    )

    stable_b = make_cert("mail.b.com", 3, date(2018, 12, 1))
    t2 = (
        ScanSketch("b.com")
        .presence(DATES, "10.1.0.1", 101, "US", stable_b)
        .presence(DATES[12:14], "203.0.113.9", 666, "NL", stable_b)
    )
    return {"T1": t1, "T2": t2}


def test_fig5_transient_patterns(benchmark):
    sketches = canonical_transient_sketches()
    maps = {
        label: build_deployment_map(s.domain, s.records, PERIOD, DATES)
        for label, s in sketches.items()
    }
    results = benchmark.pedantic(
        lambda: {label: classify(m) for label, m in maps.items()},
        rounds=10,
        iterations=1,
    )

    lines = [
        f"{label}: kind={c.kind.value} subpatterns={[p.value for p in c.subpatterns]}"
        for label, c in results.items()
    ]
    show("Figure 5: transient patterns (measured classification)", lines)

    for label, subpattern in (("T1", SubPattern.T1), ("T2", SubPattern.T2)):
        assert results[label].kind is PatternKind.TRANSIENT, label
        assert results[label].subpatterns == (subpattern,), label

    # Threshold boundary: a 12-scan (~3 month) deployment is transient,
    # a 15-scan one is not (the paper's free-certificate-lifetime rule).
    stable = make_cert("www.c.com", 4, date(2018, 12, 1))
    alien_short = make_cert("mail.c.com", 5, date(2019, 1, 10), issuer="Let's Encrypt")
    at_threshold = (
        ScanSketch("c.com")
        .presence(DATES, "10.2.0.1", 102, "US", stable)
        .presence(DATES[2:14], "203.0.113.7", 666, "NL", alien_short)
    )
    map_ = build_deployment_map("c.com", at_threshold.records, PERIOD, DATES)
    assert classify(map_).kind is PatternKind.TRANSIENT

    beyond = (
        ScanSketch("d.com")
        .presence(DATES, "10.3.0.1", 103, "US", make_cert("www.d.com", 6, date(2018, 12, 1)))
        .presence(DATES[2:17], "203.0.113.8", 666, "NL",
                  make_cert("mail.d.com", 7, date(2019, 1, 10), issuer="Let's Encrypt"))
    )
    map_ = build_deployment_map("d.com", beyond.records, PERIOD, DATES)
    assert classify(map_).kind is not PatternKind.TRANSIENT
    benchmark.extra_info["threshold_days"] = 91
