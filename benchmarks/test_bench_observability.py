"""Section 5.3 — observability statistics.

Paper claims measured on our data:
* ~51% of hijacked domains show pDNS attack evidence for at most one day;
* >50% of malicious certificates appear in scans within 8 days of issuance;
* >50% of malicious certificates appear in exactly one weekly scan and
  another ~20% in two;
* daily zone files are blind to nearly all hijacks (pch.net's
  midnight-crossing redirection being the exception).
"""

from repro.analysis.observability import observability_stats

from conftest import show


def test_observability_statistics(benchmark, paper, paper_report):
    stats = benchmark.pedantic(
        lambda: observability_stats(
            paper.ground_truth, paper.pdns, paper.scan,
            world=paper.world, report=paper_report,
        ),
        rounds=3,
        iterations=1,
    )

    one_scan = stats.frac_cert_seen_in_exactly(1)
    two_scans = stats.frac_cert_seen_in_exactly(2)
    lines = [
        f"{'metric':<46} {'paper':>8}   {'measured':>8}",
        f"{'pDNS attack evidence <= 1 day':<46} {'51%':>8}   {stats.frac_pdns_at_most_one_day:>8.0%}",
        f"{'malicious cert in scans <= 8 days':<46} {'>50%':>8}   {stats.frac_cert_visible_within_8_days:>8.0%}",
        f"{'malicious cert in exactly 1 scan':<46} {'>50%':>8}   {one_scan:>8.0%}",
        f"{'malicious cert in exactly 2 scans':<46} {'~20%':>8}   {two_scans:>8.0%}",
        f"{'hijacks invisible to daily zone files':<46} {'~all':>8}   {stats.frac_zone_blind:>8.0%}",
    ]
    show("Section 5.3 observability (paper vs measured)", lines)

    # Around half of the attacks are one-day events in pDNS.
    assert 0.40 <= stats.frac_pdns_at_most_one_day <= 0.85
    # Certificates deploy quickly: visible within 8 days for most.
    assert stats.frac_cert_visible_within_8_days >= 0.5
    # Brief serving windows: one weekly scan dominates, two is next.
    assert one_scan >= 0.4
    assert one_scan + two_scans >= 0.7
    # Zone files blind except midnight-crossing redirections (pch.net).
    assert stats.frac_zone_blind >= 0.8
    assert stats.zone_visible_days.get("pch.net", 0) >= 1

    benchmark.extra_info["pdns_le_1_day"] = round(stats.frac_pdns_at_most_one_day, 3)
    benchmark.extra_info["cert_le_8_days"] = round(stats.frac_cert_visible_within_8_days, 3)
    benchmark.extra_info["one_scan"] = round(one_scan, 3)
    benchmark.extra_info["zone_blind"] = round(stats.frac_zone_blind, 3)
