"""Section 7.2 — the mitigation matrix.

The discussion section's central claim: "defenses at any single entity
are conditional on the defenses of the entities upstream."  We execute
the same T1 campaign against every (capability path x mitigation)
combination and record whether the attack completed — 2FA falls to a
stolen session, Registry Lock gates both the account and registrar
channels, and nothing below the registry stops a registry compromise.
"""

from datetime import date

import pytest

from repro.core.types import DetectionType
from repro.world.attacker import (
    AttackerProfile,
    CampaignBlocked,
    CampaignMode,
    CampaignSpec,
    Capability,
    run_campaign,
)
from repro.world.entities import Sector
from repro.world.world import World

from conftest import show

MITIGATIONS = ("none", "2fa", "registry-lock")
PATHS = (Capability.ACCOUNT, Capability.REGISTRAR, Capability.REGISTRY)

#: What Section 7.2's trust analysis predicts.
EXPECTED = {
    ("none", Capability.ACCOUNT): True,
    ("none", Capability.REGISTRAR): True,
    ("none", Capability.REGISTRY): True,
    ("2fa", Capability.ACCOUNT): True,       # stolen session carries the 2FA
    ("2fa", Capability.REGISTRAR): True,
    ("2fa", Capability.REGISTRY): True,
    ("registry-lock", Capability.ACCOUNT): False,
    ("registry-lock", Capability.REGISTRAR): False,
    ("registry-lock", Capability.REGISTRY): True,  # upstream compromise wins
}


def _attempt(mitigation: str, capability: Capability) -> bool:
    """Run one campaign; returns True if the hijack completed."""
    world = World(seed=29, start=date(2019, 1, 1), end=date(2019, 12, 31))
    provider = world.add_provider("victim-isp", 65001, [("10.128.0.0/16", "GR")])
    attacker_provider = world.add_provider("bullet", 64666, [("203.0.113.0/24", "NL")])
    victim = world.setup_domain("ministry.gr", provider, services=("www", "mail"))
    if mitigation == "2fa":
        victim.registrar.account(victim.credential.username).two_factor = True
    elif mitigation == "registry-lock":
        world.registry_for("ministry.gr").lock_domain("ministry.gr")
    spec = CampaignSpec(
        victim=victim,
        sector=Sector.GOVERNMENT_MINISTRY,
        victim_cc="GR",
        mode=CampaignMode.T1,
        expected_detection=DetectionType.T1,
        hijack_date=date(2019, 8, 10),
        attacker=AttackerProfile(name="actor", ns_domain="rogue.net"),
        attacker_provider=attacker_provider,
        target_subdomain="mail",
        ca_name="Let's Encrypt",
        capability=capability,
    )
    try:
        record = run_campaign(world, spec)
    except CampaignBlocked:
        return False
    return record.crtsh_id > 0


def test_mitigation_matrix(benchmark):
    def run_matrix():
        return {
            (mitigation, path): _attempt(mitigation, path)
            for mitigation in MITIGATIONS
            for path in PATHS
        }

    outcomes = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    lines = [f"{'mitigation':<15}" + "".join(f"{p.value:>12}" for p in PATHS)]
    for mitigation in MITIGATIONS:
        cells = "".join(
            f"{('HIJACKED' if outcomes[(mitigation, p)] else 'blocked'):>12}"
            for p in PATHS
        )
        lines.append(f"{mitigation:<15}{cells}")
    show("Section 7.2 mitigation matrix (capability path vs defense)", lines)

    for key, expected in EXPECTED.items():
        assert outcomes[key] == expected, key

    benchmark.extra_info["blocked_cells"] = sum(
        1 for success in outcomes.values() if not success
    )
