"""Executor backends — serial vs process-pool on a scaled population.

The paper's pipeline is embarrassingly parallel in steps 1 and 4 (each
domain's deployment maps and each shortlist entry's inspection are
independent), which is what makes the 22M-domain run feasible.  This
bench runs the same scaled background population through both backends,
verifies the determinism contract (identical reports), and records the
measured speedup.  On a single-core host the pool cannot win — workers
timeshare one CPU and pay the transfer overhead — so the speedup ratio
is reported rather than asserted; the report equality always is.
"""

import os
import time

from repro.exec import ProcessPoolBackend, SerialBackend
from repro.world.scenarios import paper_study

from conftest import show

#: Paper scenario scaled up: the victims keep the shortlist (and so the
#: inspection fan-out) non-empty, the background provides the volume.
N_BACKGROUND = 900
JOBS = 4


def test_executor_backends(benchmark):
    study = paper_study(seed=7, n_background=N_BACKGROUND)

    t0 = time.perf_counter()
    serial_report, serial_metrics = study.profile_pipeline(backend=SerialBackend())
    serial_time = time.perf_counter() - t0

    def parallel_run():
        return study.profile_pipeline(backend=ProcessPoolBackend(jobs=JOBS))

    t0 = time.perf_counter()
    pool_report, pool_metrics = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    pool_time = time.perf_counter() - t0

    # The contract that makes the parallel path trustworthy.
    assert pool_report == serial_report

    speedup = serial_time / pool_time
    lines = [
        f"population: {N_BACKGROUND} background domains, "
        f"{serial_report.funnel.n_maps} maps, "
        f"{len(serial_report.shortlist)} inspected",
        f"serial   : {serial_time * 1e3:8.1f} ms",
        f"pool x{JOBS}  : {pool_time * 1e3:8.1f} ms  "
        f"(speedup {speedup:.2f}x on {os.cpu_count()} CPUs)",
    ]
    for stage_s, stage_p in zip(serial_metrics.stages, pool_metrics.stages):
        lines.append(
            f"  {stage_s.name:<16} {stage_s.wall_seconds * 1e3:8.1f} ms -> "
            f"{stage_p.wall_seconds * 1e3:8.1f} ms  "
            f"tasks={stage_p.tasks} workers={stage_p.workers_used} "
            f"util={stage_p.utilization:.0%}"
        )
    show("Executor backends (measured)", lines)

    # Sanity on the recorded worker activity: the fan-out stages really
    # sharded, and the utilization accounting stayed in range.
    maps_stage = pool_metrics.stage("deployment_maps")
    assert maps_stage.tasks > 1
    assert 1 <= maps_stage.workers_used <= JOBS
    for stage in pool_metrics.stages:
        assert 0.0 <= stage.utilization <= 1.0

    benchmark.extra_info["n_background"] = N_BACKGROUND
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["cpus"] = os.cpu_count()
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["serial_ms"] = round(serial_time * 1e3, 1)
    benchmark.extra_info["pool_ms"] = round(pool_time * 1e3, 1)


def test_records_for_is_zero_copy(benchmark):
    """``records_for`` hot path: tuple view vs the former per-call copy.

    Deployment mapping calls ``records_for`` once per (domain, chunk);
    it used to build a fresh list on every call.  It now returns the
    dataset's stored tuple directly — same object every time — so the
    per-call cost is a dict lookup, independent of record count.
    """
    study = paper_study(seed=7, n_background=300)
    scan = study.scan
    domains = scan.domains()

    def sweep():
        total = 0
        for _ in range(40):
            for domain in domains:
                total += len(scan.records_for(domain))
        return total

    total = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert total > 0

    # Zero-copy contract: the same immutable view comes back each call.
    view = scan.records_for(domains[0])
    assert isinstance(view, tuple)
    assert view is scan.records_for(domains[0])

    per_call_ns = benchmark.stats.stats.min / (40 * len(domains)) * 1e9
    show(
        "records_for view (zero-copy)",
        [
            f"{len(domains)} domains, {len(scan)} records",
            f"per-call: {per_call_ns:,.0f} ns (was O(records) list copy)",
        ],
    )
    benchmark.extra_info["n_domains"] = len(domains)
    benchmark.extra_info["per_call_ns"] = round(per_call_ns)
