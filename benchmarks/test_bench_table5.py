"""Table 5 — networks used by attackers.

The attacker-ASN concentration over identified victims: Digital Ocean,
Vultr, and Serverius dominate the hijacks; Alibaba dominates the 2020
targeted wave.  Counts must match the paper's table (which our scenario
encodes as per-domain attacker ASNs).
"""

from repro.analysis.attacker_infra import (
    PAPER_TABLE5,
    attacker_network_table,
    format_network_table,
)

from conftest import show


def test_table5_attacker_networks(benchmark, paper, paper_report):
    identified = {f.domain for f in paper_report.findings}

    rows = benchmark.pedantic(
        lambda: attacker_network_table(paper.ground_truth, identified),
        rounds=10,
        iterations=1,
    )

    show("Table 5: networks used by attackers (measured)",
         format_network_table(rows).splitlines())

    measured = {r.asn: (r.hijacked, r.targeted) for r in rows}
    # Identical ASN set; per-ASN counts match the per-domain table rows.
    assert set(measured) == set(PAPER_TABLE5)
    for asn, (hijacked, targeted) in measured.items():
        paper_h, paper_t = PAPER_TABLE5[asn]
        # Tables 2/3 row data and Table 5 disagree by one in the paper
        # itself (16 Table-2 rows use AS14061 but Table 5 reports 15).
        assert abs(hijacked - paper_h) <= 1, asn
        assert targeted == paper_t, asn

    assert sum(h for h, _ in measured.values()) == 41
    assert sum(t for _, t in measured.values()) == 24

    # Concentration shape: DO + Vultr + Serverius cover most hijacks;
    # Alibaba only appears on the targeted side.
    assert measured[14061][0] + measured[20473][0] + measured[50673][0] >= 25
    assert measured[45102] == (0, 9)
    benchmark.extra_info["asns"] = len(rows)
