"""Ablations of the design choices DESIGN.md calls out.

* the pivot step (Section 4.5): disabling it loses exactly the 13
  victims with no usable deployment map (P-IP + P-NS);
* the T1* second pass: disabling it loses the two no-pDNS victims;
* the three-month transient threshold: loosening it to six months lets
  long-lived benign changes flood the transient class without finding
  any new victims — the trade-off the paper tuned;
* the corroboration window: shrinking the pDNS/CT search radius to two
  days loses direct confirmations whose DNS evidence sits a few days
  before the transient's first scan appearance.

Each ablation runs the full pipeline on the paper study with one knob
turned; the benchmark measures the no-pivot configuration.
"""

from repro.core.inspection import InspectionConfig
from repro.core.pipeline import PipelineConfig
from repro.core.patterns import PatternConfig

from conftest import show


def _hijacked_count(report):
    return len(report.hijacked())


def test_ablations(benchmark, paper, paper_report):
    full = paper_report
    assert _hijacked_count(full) == 41

    no_pivot = benchmark.pedantic(
        lambda: paper.run_pipeline(PipelineConfig(enable_pivot=False)),
        rounds=1,
        iterations=1,
    )
    no_t1_star = paper.run_pipeline(PipelineConfig(enable_t1_star=False))
    loose_threshold = paper.run_pipeline(
        PipelineConfig(patterns=PatternConfig(transient_max_days=183))
    )
    tight_window = paper.run_pipeline(
        PipelineConfig(
            inspection=InspectionConfig(window_days=2, issue_proximity_days=2)
        )
    )

    rows = [
        ("full pipeline", _hijacked_count(full), len(full.targeted())),
        ("no pivot", _hijacked_count(no_pivot), len(no_pivot.targeted())),
        ("no T1* pass", _hijacked_count(no_t1_star), len(no_t1_star.targeted())),
        ("transient<=183d", _hijacked_count(loose_threshold), len(loose_threshold.targeted())),
        ("window +/-2d", _hijacked_count(tight_window), len(tight_window.targeted())),
    ]
    show(
        "Ablations (hijacked / targeted found)",
        [f"{name:<16} {h:>3} hijacked, {t:>3} targeted" for name, h, t in rows]
        + [
            f"transient maps: full={full.funnel.n_transient} "
            f"loose-threshold={loose_threshold.funnel.n_transient}"
        ],
    )

    # Without the pivot, exactly the 13 pivot-only victims are lost.
    assert _hijacked_count(no_pivot) == 41 - 13
    lost = {f.domain for f in full.hijacked()} - {f.domain for f in no_pivot.hijacked()}
    assert all(
        full.finding_for(d).detection.value in ("P-IP", "P-NS") for d in lost
    )

    # Without the T1* pass, the two shared-IP victims are lost (and with
    # them possibly nothing else).
    assert _hijacked_count(no_t1_star) <= 41 - 2
    missing = {f.domain for f in full.hijacked()} - {
        f.domain for f in no_t1_star.hijacked()
    }
    assert {"apc.gov.ae", "moh.gov.kw"} <= missing

    # Doubling the transient threshold inflates the suspicious class
    # (benign long-lived changes now count) without new true victims.
    assert loose_threshold.funnel.n_transient >= full.funnel.n_transient
    assert _hijacked_count(loose_threshold) <= 41

    # A two-day corroboration window misses evidence and loses direct
    # confirmations.
    assert _hijacked_count(tight_window) < 41

    benchmark.extra_info["ablation_rows"] = rows
