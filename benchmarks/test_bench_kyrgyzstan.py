"""Section 5.1 — the Kyrgyzstan case study.

The four .kg victims: mfa.gov.kg and invest.gov.kg flagged directly from
deployment maps (T1), fiu.gov.kg and infocom.kg discovered only through
the nameserver pivot on ns{1,2}.kg-infocom.ru — exactly the paper's
narrative of why the pivot step matters.  The benchmark measures the
pipeline over the dedicated Kyrgyzstan scenario.
"""

from repro.core.types import DetectionType, Verdict

from conftest import show


def test_kyrgyzstan_case_study(benchmark, kyrgyz_study):
    report = benchmark.pedantic(kyrgyz_study.run_pipeline, rounds=3, iterations=1)

    findings = {f.domain: f for f in report.findings}
    lines = [
        f"{domain}: {f.detection.value} attacker={list(f.attacker_ips)} "
        f"ns={list(f.attacker_ns)} ca={f.issuer_ca or '-'}"
        for domain, f in sorted(findings.items())
    ]
    show("Section 5.1: Kyrgyzstan hijacks (measured)", lines)

    assert set(findings) == {"mfa.gov.kg", "invest.gov.kg", "fiu.gov.kg", "infocom.kg"}
    assert all(f.verdict is Verdict.HIJACKED for f in findings.values())

    # Directly detected from deployment maps.
    assert findings["mfa.gov.kg"].detection is DetectionType.T1
    assert findings["invest.gov.kg"].detection is DetectionType.T1
    assert findings["mfa.gov.kg"].attacker_ips == ("94.103.91.159",)
    assert findings["invest.gov.kg"].attacker_ips == ("94.103.90.182",)

    # Discovered only by pivoting on the shared rogue nameservers.
    for pivoted in ("fiu.gov.kg", "infocom.kg"):
        assert findings[pivoted].detection is DetectionType.P_NS
        assert findings[pivoted].victim_asns == ()  # no scan-visible infra

    # The shared attacker infrastructure is fully attributed.
    assert {"ns1.kg-infocom.ru", "ns2.kg-infocom.ru"} <= set(report.attacker_ns)
    assert all(f.attacker_asn == 48282 for f in findings.values())
    assert all(f.attacker_cc == "RU" for f in findings.values())
    assert all(f.issuer_ca == "Let's Encrypt" for f in findings.values())

    benchmark.extra_info["found"] = sorted(findings)
