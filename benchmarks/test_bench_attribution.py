"""Section 5.6 — actor attribution from shared infrastructure.

The paper infers campaign structure from reuse: one IP hijacking the
Cyprus government cluster, the kg-infocom.ru nameservers tying the four
Kyrgyzstan victims together, and a disjoint 2020 infrastructure pool
behind the targeted wave ("likely a completely different set of
attackers").  Clustering the recovered findings over shared attacker
IPs and nameservers must reassemble those groups with high purity
against the scenario's ground-truth actors.
"""

from repro.analysis.attribution import (
    attribution_accuracy,
    cluster_campaigns,
    format_clusters,
)
from repro.world.scenarios import HIJACKED_ROWS

from conftest import show


def test_attribution_clusters(benchmark, paper, paper_report):
    clusters = benchmark.pedantic(
        lambda: cluster_campaigns(paper_report.findings), rounds=5, iterations=1
    )

    show("Section 5.6 campaign clusters (measured)",
         format_clusters(clusters, top=8).splitlines())

    by_domain = {}
    for cluster_index, cluster in enumerate(clusters):
        for domain in cluster.domains:
            by_domain[domain] = cluster_index

    # The Kyrgyzstan actor reassembles into one cluster via its rogue NS.
    kg = {"mfa.gov.kg", "invest.gov.kg", "fiu.gov.kg", "infocom.kg"}
    assert len({by_domain[d] for d in kg}) == 1

    # The Cyprus wave shares 178.62.218.244.
    cy = {"govcloud.gov.cy", "owa.gov.cy", "webmail.gov.cy", "sslvpn.gov.cy", "cyta.com.cy"}
    assert len({by_domain[d] for d in cy}) == 1

    # The 2018 hijack infrastructure and the 2020 targeted infrastructure
    # never share a cluster — the paper's different-attackers inference.
    hijack_clusters = {by_domain[r.domain] for r in HIJACKED_ROWS}
    targeted_2020 = {
        by_domain[f.domain]
        for f in paper_report.targeted()
        if f.first_evidence and f.first_evidence.year >= 2020
    }
    assert hijack_clusters.isdisjoint(targeted_2020)

    # Purity against the scenario's actor assignments.
    actor_of = {r.domain: r.ns_cluster for r in HIJACKED_ROWS if r.ns_cluster}
    purity, fragmentation = attribution_accuracy(clusters, actor_of)
    assert purity >= 0.9

    benchmark.extra_info["clusters"] = len(clusters)
    benchmark.extra_info["purity"] = round(purity, 3)
    benchmark.extra_info["fragmentation"] = round(fragmentation, 2)
