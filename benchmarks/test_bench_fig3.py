"""Figure 3 — stable patterns S1-S4.

Builds each canonical stable shape and verifies the classifier labels it
stable with the right sub-pattern.  The benchmark measures classification
over the four canonical maps.
"""

import sys
from datetime import date
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests"))

from helpers import PERIOD, ScanSketch, make_cert, scan_dates  # noqa: E402
from repro.core.deployment import build_deployment_map  # noqa: E402
from repro.core.patterns import classify  # noqa: E402
from repro.core.types import PatternKind, SubPattern  # noqa: E402

from conftest import show  # noqa: E402

DATES = scan_dates()


def canonical_stable_sketches():
    s1_cert = make_cert("www.a.com", 1, date(2018, 12, 1))
    s1 = ScanSketch("a.com").presence(DATES, "10.0.0.1", 100, "US", s1_cert)

    s2_old = make_cert("www.b.com", 2, date(2018, 12, 1), days=120)
    s2_new = make_cert("www.b.com", 3, date(2019, 3, 25), days=120)
    s2 = (
        ScanSketch("b.com")
        .presence(DATES[:13], "10.1.0.1", 101, "US", s2_old)
        .presence(DATES[13:], "10.1.0.1", 101, "US", s2_new)
    )

    s3_cert = make_cert("www.c.com", 4, date(2018, 12, 1))
    s3 = (
        ScanSketch("c.com")
        .presence(DATES, "10.2.0.1", 102, "US", s3_cert)
        .presence(DATES[10:], "10.2.1.1", 102, "DE", s3_cert)
    )

    s4_main = make_cert("www.d.com", 5, date(2018, 12, 1))
    s4_extra = make_cert("app.d.com", 6, date(2019, 3, 1))
    s4 = (
        ScanSketch("d.com")
        .presence(DATES, "10.3.0.1", 103, "US", s4_main)
        .presence(DATES[9:], "10.3.0.1", 103, "US", s4_extra)
    )
    return {"S1": s1, "S2": s2, "S3": s3, "S4": s4}


def test_fig3_stable_patterns(benchmark):
    sketches = canonical_stable_sketches()
    maps = {
        label: build_deployment_map(s.domain, s.records, PERIOD, DATES)
        for label, s in sketches.items()
    }

    def classify_all():
        return {label: classify(m) for label, m in maps.items()}

    results = benchmark.pedantic(classify_all, rounds=10, iterations=1)

    lines = []
    for label, classification in results.items():
        lines.append(
            f"{label}: kind={classification.kind.value} "
            f"subpatterns={[p.value for p in classification.subpatterns]}"
        )
    show("Figure 3: stable patterns (measured classification)", lines)

    expected = {
        "S1": SubPattern.S1,
        "S2": SubPattern.S2,
        "S3": SubPattern.S3,
        "S4": SubPattern.S4,
    }
    for label, subpattern in expected.items():
        assert results[label].kind is PatternKind.STABLE, label
        assert subpattern in results[label].subpatterns, label
    benchmark.extra_info["all_stable"] = True
