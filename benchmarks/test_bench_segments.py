"""Segment data plane economics — open latency and pooled peak RSS.

The paper's retrospective runs sweep years of scan snapshots over
millions of registered domains; the reproduction's segment format exists
so such a population costs a worker O(touched values) resident memory,
not O(dataset).  This module measures the two quantities that justify
it, on the synthetic scale world (``repro.world.scale``):

* **open latency** — remapping a written segment bundle versus
  unpickling the equivalent in-RAM input bundle (what a pickle-shipping
  backend pays per process), plus the worker descriptor size a shard
  scheduler actually sends;
* **pooled peak RSS** — a segment-backed shard-partitioned pool run
  versus the in-RAM pooled baseline, each probed in a fresh interpreter
  (``python -m repro.obs.rss_probe``) so neither inherits the other's
  high-water mark.

The RSS comparison is a hard CI floor: the segment-backed run must not
out-consume the in-RAM baseline.  ``REPRO_BENCH_SEGMENT_DOMAINS`` scales
the population (default 50 000; CI's soak job pushes higher).
"""

import os
import pickle

from conftest import show

from repro.obs.perf import measure_segments
from repro.segments import load_segment_inputs, write_segments
from repro.world.scale import scale_world

N_DOMAINS = int(os.environ.get("REPRO_BENCH_SEGMENT_DOMAINS", "50000"))
N_ACTIVE = 200


def test_segment_rss_floor_and_open_latency(benchmark):
    """The headline numbers, via the same producer that fills the
    ``segments`` section of BENCH_perf.json."""
    summary = benchmark.pedantic(
        lambda: measure_segments(N_DOMAINS, n_active=N_ACTIVE),
        rounds=1, iterations=1,
    )
    seg, ram = summary["segment_run"], summary["inram_run"]
    show(
        f"Segment data plane at {N_DOMAINS} domains (measured)",
        [
            f"write: {summary['write_seconds'] * 1e3:8.1f} ms "
            f"({summary['segment_bytes'] / 1024:,.0f} KiB on disk)",
            f"open:  {summary['open_seconds'] * 1e3:8.1f} ms   "
            f"pickle-load: {summary['pickle_load_seconds'] * 1e3:8.1f} ms "
            f"({summary['pickle_bytes'] / 1024:,.0f} KiB payload)",
            f"pooled peak RSS: segment {seg['peak_rss_bytes'] / 1e6:7.1f} MB"
            f"   in-RAM {ram['peak_rss_bytes'] / 1e6:7.1f} MB",
        ],
    )

    # The CI floor: mapped segments must never out-consume the in-RAM
    # path at the same population.
    assert summary["rss_within_baseline"], (
        f"segment-backed pooled run used {seg['peak_rss_bytes']} bytes, "
        f"in-RAM baseline {ram['peak_rss_bytes']}"
    )
    # Both probes walked the same funnel.
    assert seg["findings"] == ram["findings"]
    assert seg["funnel_domains"] == ram["funnel_domains"] == N_ACTIVE

    benchmark.extra_info["n_domains"] = N_DOMAINS
    benchmark.extra_info["segment_bytes"] = summary["segment_bytes"]
    benchmark.extra_info["open_ms"] = round(summary["open_seconds"] * 1e3, 1)
    benchmark.extra_info["segment_rss_mb"] = round(seg["peak_rss_bytes"] / 1e6, 1)
    benchmark.extra_info["inram_rss_mb"] = round(ram["peak_rss_bytes"] / 1e6, 1)


def test_segment_worker_descriptor_is_tiny(tmp_path, benchmark):
    """What actually crosses a process boundary: a segment-backed input
    bundle pickles as its paths, orders of magnitude under the in-RAM
    bundle a pickle-shipping backend would copy per worker."""
    inputs = scale_world(N_DOMAINS, n_active=N_ACTIVE)
    inram_bytes = len(pickle.dumps(inputs, protocol=5))
    write_segments(inputs, tmp_path / "segments")
    del inputs

    mapped = load_segment_inputs(tmp_path / "segments")
    blob = benchmark.pedantic(
        lambda: pickle.dumps(mapped, protocol=5), rounds=1, iterations=1
    )
    show(
        f"Worker payload at {N_DOMAINS} domains (measured)",
        [
            f"in-RAM bundle pickle:  {inram_bytes:>12,} bytes",
            f"segment bundle pickle: {len(blob):>12,} bytes",
        ],
    )
    assert len(blob) < 4096
    assert len(blob) * 100 < inram_bytes

    # And the descriptor round-trips: the unpickled bundle reattaches to
    # the same mapping and sees the same population.
    reattached = pickle.loads(blob)
    ours, theirs = mapped.scan.domains(), reattached.scan.domains()
    assert len(theirs) == len(ours) == N_DOMAINS
    for index in (0, 1, len(ours) // 2, len(ours) - 1):
        assert theirs[index] == ours[index]

    benchmark.extra_info["inram_pickle_bytes"] = inram_bytes
    benchmark.extra_info["segment_pickle_bytes"] = len(blob)
