"""Tables 7 and 8 (Appendix B) — the affected organizations.

The per-domain organization descriptions behind the sector breakdown:
each victim's country, organization, and sector, for hijacked (Table 7)
and targeted (Table 8) domains separately.  Counts must agree with
Tables 2/3 and the Table 4 sector totals.
"""

from repro.world.entities import Sector
from repro.world.groundtruth import AttackKind

from conftest import show


def _rows(ledger, kind):
    rows = [r for r in ledger.records if r.kind is kind]
    rows.sort(key=lambda r: (r.victim_cc, r.domain))
    return rows


def test_tables7_8_affected_organizations(benchmark, paper):
    ledger = paper.ground_truth

    hijacked = benchmark.pedantic(
        lambda: _rows(ledger, AttackKind.HIJACKED), rounds=10, iterations=1
    )
    targeted = _rows(ledger, AttackKind.TARGETED)

    lines = [f"{'CC':<4} {'Domain':<26} {'Sector'}", "-" * 60]
    lines += [f"{r.victim_cc:<4} {r.domain:<26} {r.sector.value}" for r in hijacked]
    show("Table 7: hijacked organizations (measured)", lines)

    lines = [f"{'CC':<4} {'Domain':<26} {'Sector'}", "-" * 60]
    lines += [f"{r.victim_cc:<4} {r.domain:<26} {r.sector.value}" for r in targeted]
    show("Table 8: targeted organizations (measured)", lines)

    assert len(hijacked) == 41
    assert len(targeted) == 24

    # Countries per table, as in the appendix.
    assert {r.victim_cc for r in hijacked} == {
        "AE", "AL", "CY", "EG", "GR", "IQ", "JO", "KG", "KW", "LB", "LY",
        "NL", "SE", "SY", "US",
    }
    assert {r.victim_cc for r in targeted} == {
        "AE", "CH", "GH", "JO", "KZ", "LT", "LV", "MA", "MM", "PL", "SA",
        "TM", "US", "VN",
    }

    # Spot-check descriptions that anchor the paper's narrative.
    by_domain = {r.domain: r for r in ledger.records}
    assert by_domain["mfa.gov.kg"].sector is Sector.GOVERNMENT_MINISTRY
    assert by_domain["pch.net"].sector is Sector.INFRASTRUCTURE_PROVIDER
    assert by_domain["adpolice.gov.ae"].sector is Sector.LAW_ENFORCEMENT
    assert by_domain["shish.gov.al"].sector is Sector.INTELLIGENCE_SERVICES
    assert by_domain["cmail.sa"].sector is Sector.IT_FIRM
    assert by_domain["manchesternh.gov"].sector is Sector.LOCAL_GOVERNMENT

    # Sector totals agree with Table 4 (cross-check the other benchmark).
    from repro.analysis.sectors import PAPER_TABLE4, sector_table

    measured = {r.sector: (r.hijacked, r.targeted) for r in sector_table(ledger)}
    assert measured == PAPER_TABLE4

    benchmark.extra_info["hijacked_ccs"] = len({r.victim_cc for r in hijacked})
    benchmark.extra_info["targeted_ccs"] = len({r.victim_cc for r in targeted})
