"""Section 7.1 extension — reactive monitoring at CT-issuance time.

The future-work intervention, measured: watching every victim domain and
replaying the paper study's CT log, the monitor must flag all 40
maliciously obtained certificates while their hijack windows are still
open, with zero false alarms across the ~2,100 legitimate issuances.
The benchmark measures the full log replay.
"""

from datetime import datetime

from repro.core.reactive import ReactiveMonitor

from conftest import show


def test_reactive_monitoring(benchmark, paper):
    world = paper.world
    monitor = ReactiveMonitor(world.resolver)
    baseline_at = datetime(2017, 2, 1)
    for record in paper.ground_truth.records:
        monitor.watch_from_current_state(record.domain, baseline_at)

    alerts = benchmark.pedantic(
        lambda: monitor.scan_log(world.ct_log), rounds=3, iterations=1
    )

    malicious_ids = {r.crtsh_id for r in paper.ground_truth.records if r.crtsh_id}
    alerted_ids = {a.crtsh_id for a in alerts}
    caught = malicious_ids & alerted_ids
    false_alarms = alerted_ids - malicious_ids

    reasons: dict[str, int] = {}
    for alert in alerts:
        reasons[alert.reason] = reasons.get(alert.reason, 0) + 1

    show(
        "Section 7.1 reactive monitoring (measured)",
        [
            f"watched domains      : {len(monitor.watched())}",
            f"CT entries replayed  : {len(world.ct_log)}",
            f"malicious certs      : {len(malicious_ids)}",
            f"caught at issuance   : {len(caught)}",
            f"false alarms         : {len(false_alarms)}",
            f"alert reasons        : {reasons}",
        ],
    )

    assert caught == malicious_ids        # every malicious issuance flagged
    assert not false_alarms               # no legitimate renewal flagged
    assert reasons.get("rogue-delegation", 0) >= 30

    benchmark.extra_info["caught"] = len(caught)
    benchmark.extra_info["entries"] = len(world.ct_log)
