"""Footnote 9 — scan cadence and the ephemeral-infrastructure gap.

The paper notes its weekly scans are "too coarse-grained to catch
ephemeral hijack activity" and that Censys moved to daily scans in
April 2021, letting future studies overcome the limitation.  We measure
exactly that: an attacker who serves the malicious certificate for only
two days, placed between the weekly scan grid points, is invisible to
the weekly pipeline but caught by the daily one.
"""

from datetime import date, timedelta

from repro.core.types import DetectionType, Verdict
from repro.world.attacker import AttackerProfile, CampaignMode, CampaignSpec, run_campaign
from repro.world.behaviors import populate_background
from repro.net.timeline import DateInterval
from repro.world.entities import Sector
from repro.world.sim import run_study
from repro.world.world import World

from conftest import show

# The weekly grid from Jan 1 hits Aug 7/14/21...; a hijack on Aug 9 with a
# two-day serving window (Aug 10-12) falls entirely between grid points.
HIJACK = date(2019, 8, 9)


def build_world(scan_interval_days: int) -> object:
    world = World(
        seed=37, start=date(2019, 1, 1), end=date(2019, 12, 31),
        scan_interval_days=scan_interval_days,
    )
    provider = world.add_provider("victim-isp", 65001, [("10.128.0.0/16", "GR")])
    attacker_provider = world.add_provider("bullet", 64666, [("203.0.113.0/24", "NL")])
    victim = world.setup_domain("ministry.gr", provider, services=("www", "mail"))
    spec = CampaignSpec(
        victim=victim,
        sector=Sector.GOVERNMENT_MINISTRY,
        victim_cc="GR",
        mode=CampaignMode.T1,
        expected_detection=DetectionType.T1,
        hijack_date=HIJACK,
        attacker=AttackerProfile(name="actor", ns_domain="rogue.net"),
        attacker_provider=attacker_provider,
        target_subdomain="mail",
        ca_name="Let's Encrypt",
        serve_days=2,  # ephemeral: down before the next weekly sweep
    )
    run_campaign(world, spec)
    populate_background(world, 15, DateInterval(world.start, world.end))
    return world


def test_scan_cadence(benchmark):
    weekly_study = run_study(build_world(scan_interval_days=7))
    daily_world = build_world(scan_interval_days=1)
    daily_study = run_study(daily_world)

    weekly_report = weekly_study.run_pipeline()
    daily_report = benchmark.pedantic(daily_study.run_pipeline, rounds=1, iterations=1)

    weekly_finding = weekly_report.finding_for("ministry.gr")
    daily_finding = daily_report.finding_for("ministry.gr")

    show(
        "Scan cadence vs ephemeral infrastructure (measured)",
        [
            f"serving window       : {HIJACK + timedelta(days=1)} .. "
            f"{HIJACK + timedelta(days=3)} (2 days)",
            f"weekly scans         : {len(weekly_study.scan_dates)} sweeps -> "
            f"{'DETECTED' if weekly_finding else 'MISSED'}",
            f"daily scans          : {len(daily_study.scan_dates)} sweeps -> "
            f"{'DETECTED (' + daily_finding.detection.value + ')' if daily_finding else 'MISSED'}",
        ],
    )

    # Weekly cadence: the attacker host never intersects a sweep, so the
    # domain has no transient deployment at all — the paper's visibility
    # limitation.
    assert weekly_finding is None
    weekly_records = weekly_study.scan.records_for("ministry.gr")
    assert all(r.asn == 65001 for r in weekly_records)

    # Daily cadence: 2-3 sweeps see the certificate; the full pipeline
    # confirms the hijack.
    assert daily_finding is not None
    assert daily_finding.verdict is Verdict.HIJACKED
    assert daily_finding.detection is DetectionType.T1

    benchmark.extra_info["weekly_detected"] = weekly_finding is not None
    benchmark.extra_info["daily_detected"] = daily_finding is not None
