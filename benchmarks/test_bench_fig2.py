"""Figure 2 — deployment map of kyvernisi.gr, 2019H1.

Rebuilds the paper's example map: one stable deployment (the Greek
government network) and one transient deployment (a single scan from a
Vultr address in the Netherlands).  The benchmark measures deployment-
map construction for one domain-period.
"""

from repro.core.deployment import build_deployment_map
from repro.core.patterns import classify
from repro.core.types import PatternKind, SubPattern

from conftest import show


def test_fig2_deployment_map(benchmark, paper):
    period = next(p for p in paper.periods if p.label == "2019H1")
    records = paper.scan.records_for("kyvernisi.gr")
    dates = paper.scan.scan_dates_in(period)

    map_ = benchmark.pedantic(
        lambda: build_deployment_map("kyvernisi.gr", records, period, dates),
        rounds=5,
        iterations=1,
    )

    lines = []
    for deployment in map_.deployments:
        lines.append(
            f"deployment AS{deployment.asn}: {deployment.first_seen} .. "
            f"{deployment.last_seen} ({deployment.scan_count} scans, "
            f"ips={sorted(deployment.ips)}, countries={sorted(deployment.countries)})"
        )
    show("Figure 2: kyvernisi.gr deployment map, 2019H1 (measured)", lines)

    # Paper: exactly two deployments — Deployment #1 stable, #2 transient.
    assert len(map_.deployments) == 2
    stable = map_.deployments_for_asn(35506)[0]
    transient = map_.deployments_for_asn(20473)[0]
    assert stable.scan_count > 20
    assert transient.scan_count <= 2
    assert transient.ips == frozenset({"95.179.131.225"})
    assert transient.countries == frozenset({"NL"})

    classification = classify(map_)
    assert classification.kind is PatternKind.TRANSIENT
    assert classification.subpatterns == (SubPattern.T1,)

    benchmark.extra_info["deployments"] = len(map_.deployments)
    benchmark.extra_info["pattern"] = classification.kind.value
