"""Credential impact + the poisoned-cache tail.

Quantifies the attack's objective (Section 3): replaying a deterministic
user population against the paper study's hijack windows, every hijacked
organization loses credentials; and a resolver cache primed during a
window keeps steering clients to the attacker for up to a full TTL after
the delegation reverts.  The benchmark measures the impact replay for
the Kyrgyzstan ministry.
"""

from datetime import datetime, time, timedelta

from repro.dns.cache import poisoned_tail_seconds
from repro.world.impact import ImpactModel, format_impact

from conftest import show


def test_credential_impact(benchmark, paper):
    model = ImpactModel(paper.world, users_per_domain=25, logins_per_user_per_day=2)
    mfa = paper.ground_truth.record_for("mfa.gov.kg")

    impact = benchmark.pedantic(lambda: model.assess_domain(mfa), rounds=3, iterations=1)
    report = model.assess(paper.ground_truth)

    show(
        "Credential impact (measured, top campaigns)",
        format_impact(report, top=8).splitlines(),
    )

    # Every hijacked organization lost at least one credential.
    assert len(report.domains_with_theft) == 41
    assert impact.captured, "mfa.gov.kg logins during windows are captured"
    assert 0.0 < impact.compromise_rate <= 1.0
    # No theft outside windows: every captured login resolves to the
    # attacker at its instant.
    for theft in impact.captured[:20]:
        answers = paper.world.resolver.resolve_a(theft.fqdn, theft.instant)
        assert theft.attacker_ip in answers

    # The TTL tail: a cache primed at the end of a redirect window keeps
    # serving the attacker for up to one TTL.
    window_end = datetime.combine(mfa.hijack_date, time(5, 0)) + timedelta(hours=6)
    tail = poisoned_tail_seconds(
        paper.world.resolver, mfa.target_fqdn, set(mfa.attacker_ips),
        window_end, ttl_seconds=3600,
    )
    show(
        "Poisoned-cache tail (measured)",
        [f"mail.mfa.gov.kg keeps resolving to the attacker for {tail}s "
         f"after the window closes (TTL 3600s)"],
    )
    assert 3000 <= tail <= 3600

    benchmark.extra_info["total_captured"] = report.total_captured
    benchmark.extra_info["tail_seconds"] = tail
