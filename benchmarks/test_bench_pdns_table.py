"""Columnar pDNS table — measured floors for the CSR query kernels.

Sweeps every rrname and every registered domain of a large paper world
through the queries the inspection stage issues — ``query_name``,
``a_history``, ``query_domain`` — twice: through the
:class:`~repro.pdns.table.PdnsTable` bisect/CSR kernels and through the
original linear reference (``use_table = False``).  The differential
property suite proves the answers identical; this proves the rewrite
*paid for itself*, on this machine, with an asserted floor.

Also weighs the worker payload: pickling a database drops the table
(the receiving process re-interns identical ids), so the shipped bytes
are the aggregate dict alone.
"""

import pickle
import time

from repro.world.scenarios import paper_study

from conftest import show

#: Inflated background population: the default paper world's pDNS
#: channel is too small to time; 400 background domains give a few
#: hundred aggregates and a query sweep in the tens of milliseconds.
BACKGROUND = 400
ROUNDS = 5


def _sweep(db, names, domains):
    for name in names:
        db.query_name(name)
        db.a_history(name)
    for domain in domains:
        db.query_domain(domain)


def test_pdns_query_kernel_floor(benchmark):
    study = paper_study(seed=42, n_background=BACKGROUND)
    db = study.pdns
    names = sorted({r.rrname for r in db.all_records()})
    domains = sorted(study.scan.domains())

    db.table  # noqa: B018 — prime the lazy build outside the timing

    def _columnar():
        for _ in range(ROUNDS):
            _sweep(db, names, domains)

    columnar = benchmark.pedantic(
        lambda: (time.perf_counter(), _columnar(), time.perf_counter()),
        rounds=1,
        iterations=1,
    )
    columnar_seconds = columnar[2] - columnar[0]

    db.use_table = False
    try:
        t0 = time.perf_counter()
        for _ in range(ROUNDS):
            _sweep(db, names, domains)
        legacy_seconds = time.perf_counter() - t0
    finally:
        db.use_table = True

    speedup = legacy_seconds / columnar_seconds
    payload_bytes = len(pickle.dumps(db, protocol=5))

    show(
        "Columnar pDNS kernels (measured)",
        [
            f"aggregates: {len(db.all_records())}  rrnames: {len(names)}  "
            f"domains: {len(domains)}  sweep rounds: {ROUNDS}",
            f"queries  before {legacy_seconds * 1e3:8.1f} ms   "
            f"after {columnar_seconds * 1e3:8.1f} ms   "
            f"speedup {speedup:.2f}x",
            f"worker payload (table dropped on pickle): {payload_bytes} B",
        ],
    )

    # The acceptance floor, with headroom under the ~6x typically
    # measured: the CSR kernels must at least halve the sweep.
    assert speedup >= 2.0

    benchmark.extra_info.update(
        {
            "pdns_query_speedup": round(speedup, 2),
            "pdns_payload_bytes": payload_bytes,
        }
    )
