"""Section 4.2-4.4 — the classification population and shortlist funnel.

On a pure benign population calibrated to the paper's mix, the measured
fractions must track the paper's (96.5% stable / 2.95% transition /
0.13% transient / 0.35% noisy), and nothing may survive to a verdict.
The benchmark measures the full pipeline over the background world.
"""

from repro.analysis.funnel import PAPER_FRACTIONS, classification_fractions, funnel_rows
from repro.net.timeline import DateInterval
from repro.world.behaviors import populate_background
from repro.world.sim import run_study
from repro.world.world import World

from datetime import date

from conftest import show

N_DOMAINS = 1200


def test_funnel_population_fractions(benchmark):
    world = World(seed=31, start=date(2019, 1, 1), end=date(2019, 12, 31))
    populate_background(world, N_DOMAINS, DateInterval(world.start, world.end))
    study = run_study(world)

    report = benchmark.pedantic(study.run_pipeline, rounds=1, iterations=1)

    fractions = classification_fractions(report)
    lines = [
        f"{'class':<12} {'paper':>8}   {'measured':>8}",
        f"{'stable':<12} {PAPER_FRACTIONS['stable']:>8.2%}   {fractions.stable:>8.2%}",
        f"{'transition':<12} {PAPER_FRACTIONS['transition']:>8.2%}   {fractions.transition:>8.2%}",
        f"{'transient':<12} {PAPER_FRACTIONS['transient']:>8.2%}   {fractions.transient:>8.2%}",
        f"{'noisy':<12} {PAPER_FRACTIONS['noisy']:>8.2%}   {fractions.noisy:>8.2%}",
        "",
        "funnel:",
    ]
    lines += [f"  {stage:<18} {count}" for stage, count in funnel_rows(report)]
    show("Section 4.2 population fractions (paper vs measured)", lines)

    # Shape: same ordering and same order of magnitude per class.
    assert fractions.stable > 0.90
    assert 0.005 <= fractions.transition <= 0.08
    assert fractions.transient <= 0.02
    assert fractions.noisy <= 0.02
    assert fractions.stable > fractions.transition > fractions.transient

    # The funnel drains completely on benign data: no verdicts.
    assert report.findings == []
    assert report.funnel.n_hijacked == 0
    assert report.funnel.n_targeted == 0
    # Shortlist prunes fired (the heuristics did real work).
    assert report.funnel.prune_reasons

    benchmark.extra_info["fractions"] = fractions.as_dict()
    benchmark.extra_info["n_maps"] = fractions.n_maps
