"""Columnar CT table — measured floors for the bisect search kernels.

Sweeps every registered domain of a large paper world (plus a ``www.``
subdomain and an exact-match probe each) through
:class:`~repro.ct.crtsh.CrtShService` twice: through the
:class:`~repro.ct.table.CtTable` per-base bisect slices and through the
original per-base list index (``use_table = False``).  The differential
property suite proves the answers identical, per-SAN bucket duplication
included; this asserts the rewrite's measured floor.

The columnar gain here is structurally smaller than pDNS's — the legacy
index is already a per-base dict, so the kernels win on entry
materialization and date filtering, not on scan shape — hence the
modest bar.
"""

import time

from repro.world.scenarios import paper_study

from conftest import show

BACKGROUND = 400
ROUNDS = 3


def _sweep(service, domains):
    for domain in domains:
        service.search(domain)
        service.search(f"www.{domain}")
        service.search_exact(domain)


def test_ct_search_kernel_floor(benchmark):
    study = paper_study(seed=42, n_background=BACKGROUND)
    service = study.crtsh
    domains = sorted(study.scan.domains())
    n_entries = len(service.table)

    service.search("warmup.invalid")  # prime the lazy table build

    def _columnar():
        for _ in range(ROUNDS):
            _sweep(service, domains)

    columnar = benchmark.pedantic(
        lambda: (time.perf_counter(), _columnar(), time.perf_counter()),
        rounds=1,
        iterations=1,
    )
    columnar_seconds = columnar[2] - columnar[0]

    service.use_table = False
    try:
        t0 = time.perf_counter()
        for _ in range(ROUNDS):
            _sweep(service, domains)
        legacy_seconds = time.perf_counter() - t0
    finally:
        service.use_table = True

    speedup = legacy_seconds / columnar_seconds

    show(
        "Columnar CT search kernels (measured)",
        [
            f"log entries: {n_entries}  domains swept: {len(domains)}  "
            f"rounds: {ROUNDS}",
            f"searches before {legacy_seconds * 1e3:8.1f} ms   "
            f"after {columnar_seconds * 1e3:8.1f} ms   "
            f"speedup {speedup:.2f}x",
        ],
    )

    # Floor with headroom under the ~1.5x typically measured.
    assert speedup >= 1.1

    benchmark.extra_info.update({"ct_search_speedup": round(speedup, 2)})
