"""The funnel's value: precision contribution of each stage.

Strawman detectors as ablated prefixes of the methodology — flag every
transient (steps 1-2), flag the shortlist (steps 1-3) — against the
full five-step pipeline, on a world large enough to contain the benign
transient lookalikes the heuristics were built for.  Each successive
stage improves precision while the full pipeline alone reaches perfect
recall (pivot finds victims deployment maps cannot see); this is the
quantitative version of the paper's "aggressively prune to minimize
false positives" argument (Section 4.6).
"""

from repro.baseline.naive import (
    NaiveResult,
    flag_all_transients,
    flag_shortlisted,
    format_comparison,
)
from repro.world.randomized import RandomWorldConfig, random_world
from repro.world.sim import run_study

from conftest import show


def test_funnel_stage_value(benchmark):
    study = run_study(
        random_world(
            seed=41, config=RandomWorldConfig(n_victims=6, n_background=1500)
        )
    )
    truth = study.ground_truth.domains()
    report = study.run_pipeline()

    everything = benchmark.pedantic(
        lambda: flag_all_transients(study.scan, study.periods),
        rounds=3,
        iterations=1,
    )
    shortlisted = flag_shortlisted(study.scan, study.periods, study.as2org)
    pipeline = NaiveResult(
        "full-pipeline", frozenset(f.domain for f in report.findings)
    )

    results = [everything, shortlisted, pipeline]
    show(
        "Funnel stage value (measured precision per ablated prefix)",
        format_comparison(results, truth).splitlines(),
    )

    p_all, r_all, fp_all = everything.score(truth)
    p_short, r_short, fp_short = shortlisted.score(truth)
    p_full, r_full, fp_full = pipeline.score(truth)

    # Monotone precision through the funnel, perfect at the end.
    assert p_all <= p_short <= p_full == 1.0
    assert fp_all >= fp_short >= fp_full == 0
    # The naive detector pays for its recall with false positives: the
    # planted benign transients (sibling-ASN, same-country, ...) all land
    # in its flagged set.
    assert fp_all > 0
    # Only the full pipeline reaches every victim (pivot included).
    assert r_full == 1.0
    assert r_full >= r_all

    benchmark.extra_info["fp_all_transients"] = fp_all
    benchmark.extra_info["fp_shortlist"] = fp_short
