"""Figure 6 / Appendix A — the evolution of the Kyrgyzstan hijacks.

Using the late-2020 HTTP service context, the paper verified that the
counterfeit mail.mfa.gov.kg page mimicked the Zimbra login's look while
differing from the standard code, and that the May 2021 re-redirection
pointed at a new server whose page injected a social-engineering
"security update" script (the Tomiris downloader lure).  The benchmark
measures the counterfeit-page analysis over the extended scenario.
"""

from datetime import date

from repro.analysis.content import analyze_attacker_content, format_content_verdicts
from repro.scan.http import HTTP_CONTEXT_START
from repro.world.scenarios import kyrgyzstan_world

from conftest import show


def test_fig6_counterfeit_page_evolution(benchmark):
    world = kyrgyzstan_world(extended=True, n_background=0)
    truth = world.ground_truth.record_for("mfa.gov.kg")
    victim_ip = world.resolver.resolve_a("mail.mfa.gov.kg", __import__("datetime").datetime(2020, 6, 1))[0]
    attacker_ips = (truth.attacker_ips[0], "178.20.46.22")
    scan_dates = world.scan_dates

    verdicts = benchmark.pedantic(
        lambda: analyze_attacker_content(world.http, victim_ip, attacker_ips, scan_dates),
        rounds=5,
        iterations=1,
    )

    show("Appendix A / Figure 6: counterfeit-page analysis (measured)",
         format_content_verdicts(verdicts).splitlines())

    # HTTP context only exists once Censys started collecting it.
    assert all(v.day >= HTTP_CONTEXT_START for v in verdicts)

    # December 2020: a counterfeit (same look, different code), no malware.
    december = [v for v in verdicts if v.day < date(2021, 4, 1)]
    assert december, "the December counterfeit must be scan-visible"
    assert all(v.is_counterfeit for v in december)
    assert not any(v.delivers_malware for v in december)

    # May 2021: still a counterfeit, now with the update-mfa.exe lure.
    may = [v for v in verdicts if v.day >= date(2021, 5, 1)]
    assert may, "the May server must be scan-visible"
    assert all(v.is_counterfeit for v in may)
    assert all(v.delivers_malware for v in may)
    assert all("update-mfa.exe" in v.injected_scripts for v in may)

    # The resolver really redirected to the May server during its window.
    from datetime import datetime

    answers = world.resolver.resolve_a("mail.mfa.gov.kg", datetime(2021, 5, 10, 8, 0))
    assert answers == ("178.20.46.22",)

    benchmark.extra_info["december_counterfeits"] = len(december)
    benchmark.extra_info["may_malware_scans"] = len(may)
