"""Tests for the credential-impact model and DNSSEC stripping."""

from datetime import date, datetime, time

import pytest

from repro.core.reactive import ReactiveMonitor
from repro.core.types import DetectionType
from repro.dns.dnssec import DnssecStatus, validate_chain
from repro.world.attacker import AttackerProfile, CampaignMode, CampaignSpec, run_campaign
from repro.world.entities import Sector
from repro.world.impact import ImpactModel, format_impact
from repro.world.world import World


@pytest.fixture
def hijacked_world():
    world = World(seed=13, start=date(2019, 1, 1), end=date(2019, 12, 31))
    provider = world.add_provider("victim-isp", 65001, [("10.128.0.0/16", "GR")])
    attacker_provider = world.add_provider("bullet", 64666, [("203.0.113.0/24", "NL")])
    victim = world.setup_domain(
        "ministry.gr", provider, services=("www", "mail"), dnssec=True
    )
    spec = CampaignSpec(
        victim=victim,
        sector=Sector.GOVERNMENT_MINISTRY,
        victim_cc="GR",
        mode=CampaignMode.T1,
        expected_detection=DetectionType.T1,
        hijack_date=date(2019, 8, 10),
        attacker=AttackerProfile(name="actor", ns_domain="rogue.net"),
        attacker_provider=attacker_provider,
        target_subdomain="mail",
        ca_name="Let's Encrypt",
        redirect_windows=2,
        redirect_hours=6,
    )
    record = run_campaign(world, spec)
    return world, victim, record


class TestDnssecStripping:
    def test_chain_secure_in_steady_state(self, hijacked_world):
        world, victim, _ = hijacked_world
        registry = world.registry_for("ministry.gr")
        status = validate_chain(
            registry, world.directory, "ministry.gr", datetime(2019, 6, 1)
        )
        assert status is DnssecStatus.SECURE

    def test_ds_stripped_during_hijack_window(self, hijacked_world):
        """The attacker removes DS with the same capability that moves the
        NS records — validating resolvers see an unsigned (not bogus)
        domain, so the hijack 'just works'."""
        world, _, record = hijacked_world
        registry = world.registry_for("ministry.gr")
        window_instant = datetime.combine(record.hijack_date, time(6, 0))
        status = validate_chain(
            registry, world.directory, "ministry.gr", window_instant
        )
        assert status is DnssecStatus.INSECURE

    def test_chain_restored_after_window(self, hijacked_world):
        world, _, record = hijacked_world
        registry = world.registry_for("ministry.gr")
        status = validate_chain(
            registry, world.directory, "ministry.gr", datetime(2019, 9, 15)
        )
        assert status is DnssecStatus.SECURE

    def test_reactive_monitor_sees_dnssec_strip(self, hijacked_world):
        """With a chain validator wired in, reactive monitoring gets an
        extra signal (Section 7.1's DNSSEC-status suggestion)."""
        world, _, record = hijacked_world
        registry = world.registry_for("ministry.gr")

        def validator(domain: str, at: datetime) -> DnssecStatus:
            return validate_chain(registry, world.directory, domain, at)

        monitor = ReactiveMonitor(world.resolver, chain_validator=validator)
        monitor.watch_from_current_state("ministry.gr", datetime(2019, 3, 1))
        alerts = monitor.scan_log(world.ct_log)
        malicious = [a for a in alerts if a.crtsh_id == record.crtsh_id]
        assert len(malicious) == 1
        # Delegation anomaly already fires first; the DNSSEC signal is the
        # backstop for A-record-only attacks (tested via baseline flag).
        assert malicious[0].reason in ("rogue-delegation", "dnssec-stripped")


class TestImpactModel:
    def test_credentials_captured_only_during_windows(self, hijacked_world):
        world, _, record = hijacked_world
        model = ImpactModel(world, users_per_domain=30, logins_per_user_per_day=3)
        impact = model.assess_domain(record)
        assert impact.logins == 30 * 3 * 4  # users x logins x days simulated
        assert impact.captured, "a 12-hour redirect must catch some logins"
        # Every theft happened inside a redirection window and went to the
        # attacker's address.
        for theft in impact.captured:
            assert theft.attacker_ip in record.attacker_ips
            answers = world.resolver.resolve_a(record.target_fqdn, theft.instant)
            assert theft.attacker_ip in answers
        # But not everything was stolen: windows cover half a day.
        assert len(impact.captured) < impact.logins / 2
        assert 0.0 < impact.compromise_rate <= 1.0

    def test_report_over_ledger(self, hijacked_world):
        world, _, _ = hijacked_world
        model = ImpactModel(world, users_per_domain=10)
        report = model.assess(world.ground_truth)
        assert report.domains_with_theft == ["ministry.gr"]
        assert report.total_captured > 0
        text = format_impact(report)
        assert "ministry.gr" in text
        assert "total credentials captured" in text

    def test_deterministic(self, hijacked_world):
        world, _, record = hijacked_world
        a = ImpactModel(world, users_per_domain=10).assess_domain(record)
        b = ImpactModel(world, users_per_domain=10).assess_domain(record)
        assert len(a.captured) == len(b.captured)

    def test_validates_parameters(self, hijacked_world):
        world, _, _ = hijacked_world
        with pytest.raises(ValueError):
            ImpactModel(world, users_per_domain=0)
