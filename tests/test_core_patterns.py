"""Tests for pattern classification (step 2): every canonical shape of
Figures 3, 4, and 5 of the paper must classify to its pattern."""

from datetime import date

from repro.core.deployment import build_deployment_map
from repro.core.patterns import PatternConfig, classify
from repro.core.types import PatternKind, SubPattern

from tests.helpers import PERIOD, ScanSketch, make_cert, scan_dates

DATES = scan_dates()


def classify_sketch(sketch: ScanSketch):
    map_ = build_deployment_map(sketch.domain, sketch.records, PERIOD, DATES)
    return classify(map_)


class TestStablePatterns:
    def test_s1_single_deployment_single_cert(self):
        cert = make_cert("www.x.gr", 1, date(2018, 12, 1))
        result = classify_sketch(
            ScanSketch("x.gr").presence(DATES, "10.0.0.1", 100, "GR", cert)
        )
        assert result.kind is PatternKind.STABLE
        assert result.subpatterns == (SubPattern.S1,)

    def test_s2_certificate_rollover(self):
        old = make_cert("www.x.gr", 1, date(2018, 12, 1), days=120)
        new = make_cert("www.x.gr", 2, date(2019, 3, 25), days=120)
        result = classify_sketch(
            ScanSketch("x.gr")
            .presence(DATES[:13], "10.0.0.1", 100, "GR", old)
            .presence(DATES[13:], "10.0.0.1", 100, "GR", new)
        )
        assert result.kind is PatternKind.STABLE
        assert SubPattern.S2 in result.subpatterns

    def test_s3_new_geography_same_as(self):
        cert = make_cert("www.x.gr", 1, date(2018, 12, 1))
        result = classify_sketch(
            ScanSketch("x.gr")
            .presence(DATES, "10.0.0.1", 100, "GR", cert)
            .presence(DATES[10:], "10.1.0.1", 100, "DE", cert)
        )
        assert result.kind is PatternKind.STABLE
        assert SubPattern.S3 in result.subpatterns

    def test_s4_additional_certificate_same_infra(self):
        main = make_cert("www.x.gr", 1, date(2018, 12, 1))
        extra = make_cert("app.x.gr", 2, date(2019, 3, 1))
        result = classify_sketch(
            ScanSketch("x.gr")
            .presence(DATES, "10.0.0.1", 100, "GR", main)
            .presence(DATES[9:], "10.0.0.1", 100, "GR", extra)
        )
        assert result.kind is PatternKind.STABLE
        assert SubPattern.S4 in result.subpatterns


class TestTransitionPatterns:
    def test_x1_expansion_same_cert(self):
        cert = make_cert("www.x.gr", 1, date(2018, 12, 1))
        result = classify_sketch(
            ScanSketch("x.gr")
            .presence(DATES, "10.0.0.1", 100, "GR", cert)
            .presence(DATES[12:], "20.0.0.1", 200, "US", cert)
        )
        assert result.kind is PatternKind.TRANSITION
        assert SubPattern.X1 in result.subpatterns

    def test_x2_expansion_new_cert(self):
        cert = make_cert("www.x.gr", 1, date(2018, 12, 1))
        cloud = make_cert("cdn.x.gr", 2, date(2019, 3, 25))
        result = classify_sketch(
            ScanSketch("x.gr")
            .presence(DATES, "10.0.0.1", 100, "GR", cert)
            .presence(DATES[12:], "20.0.0.1", 200, "US", cloud)
        )
        assert result.kind is PatternKind.TRANSITION
        assert SubPattern.X2 in result.subpatterns

    def test_x3_migration(self):
        old = make_cert("www.x.gr", 1, date(2018, 12, 1))
        new = make_cert("www.x.gr", 2, date(2019, 3, 25))
        result = classify_sketch(
            ScanSketch("x.gr")
            .presence(DATES[:14], "10.0.0.1", 100, "GR", old)
            .presence(DATES[13:], "20.0.0.1", 200, "US", new)
        )
        assert result.kind is PatternKind.TRANSITION
        assert SubPattern.X3 in result.subpatterns


class TestTransientPatterns:
    def test_t1_new_certificate(self):
        stable = make_cert("www.x.gr", 1, date(2018, 12, 1))
        rogue = make_cert("mail.x.gr", 2, date(2019, 3, 20), issuer="Let's Encrypt")
        result = classify_sketch(
            ScanSketch("x.gr")
            .presence(DATES, "10.0.0.1", 100, "GR", stable)
            .presence(DATES[12:13], "203.0.113.5", 666, "NL", rogue)
        )
        assert result.kind is PatternKind.TRANSIENT
        assert result.subpatterns == (SubPattern.T1,)
        assert len(result.transients) == 1
        assert result.transients[0].asn == 666

    def test_t2_same_certificate_as_stable(self):
        stable = make_cert("www.x.gr", 1, date(2018, 12, 1))
        result = classify_sketch(
            ScanSketch("x.gr")
            .presence(DATES, "10.0.0.1", 100, "GR", stable)
            .presence(DATES[12:14], "203.0.113.5", 666, "NL", stable)
        )
        assert result.kind is PatternKind.TRANSIENT
        assert result.subpatterns == (SubPattern.T2,)

    def test_transient_at_period_start_still_transient(self):
        stable = make_cert("www.x.gr", 1, date(2018, 12, 1))
        rogue = make_cert("mail.x.gr", 2, date(2019, 1, 1), issuer="Let's Encrypt")
        result = classify_sketch(
            ScanSketch("x.gr")
            .presence(DATES, "10.0.0.1", 100, "GR", stable)
            .presence(DATES[1:3], "203.0.113.5", 666, "NL", rogue)
        )
        assert result.kind is PatternKind.TRANSIENT

    def test_long_transient_is_not_transient(self):
        """Beyond the three-month threshold it is not a transient."""
        stable = make_cert("www.x.gr", 1, date(2018, 12, 1))
        rogue = make_cert("mail.x.gr", 2, date(2019, 1, 10), issuer="Let's Encrypt")
        result = classify_sketch(
            ScanSketch("x.gr")
            .presence(DATES, "10.0.0.1", 100, "GR", stable)
            .presence(DATES[2:17], "203.0.113.5", 666, "NL", rogue)  # ~15 weeks
        )
        assert result.kind is not PatternKind.TRANSIENT


class TestNoisy:
    def test_continual_movement_is_noisy(self):
        certs = [make_cert(f"www.x{i}.gr", i + 1, date(2019, 1, 1)) for i in range(4)]
        sketch = ScanSketch("x.gr")
        for i, cert in enumerate(certs):
            sketch.presence(DATES[i * 6 : i * 6 + 5], f"10.{i}.0.1", 100 + i, "GR", cert)
        result = classify_sketch(sketch)
        assert result.kind is PatternKind.NOISY

    def test_single_blip_without_stable_is_noisy(self):
        cert = make_cert("mail.x.gr", 1, date(2019, 3, 1))
        result = classify_sketch(
            ScanSketch("x.gr").presence(DATES[10:12], "10.0.0.1", 100, "GR", cert)
        )
        assert result.kind is PatternKind.NOISY

    def test_empty_map_is_no_data(self):
        from repro.core.deployment import build_deployment_map

        map_ = build_deployment_map("x.gr", [], PERIOD, DATES)
        assert classify(map_).kind is PatternKind.NO_DATA


class TestConfig:
    def test_transient_threshold_configurable(self):
        stable = make_cert("www.x.gr", 1, date(2018, 12, 1))
        rogue = make_cert("mail.x.gr", 2, date(2019, 2, 1), issuer="Let's Encrypt")
        sketch = (
            ScanSketch("x.gr")
            .presence(DATES, "10.0.0.1", 100, "GR", stable)
            .presence(DATES[5:10], "203.0.113.5", 666, "NL", rogue)  # ~5 weeks
        )
        map_ = build_deployment_map("x.gr", sketch.records, PERIOD, DATES)
        assert classify(map_, PatternConfig(transient_max_days=91)).kind is PatternKind.TRANSIENT
        tight = classify(map_, PatternConfig(transient_max_days=14))
        assert tight.kind is not PatternKind.TRANSIENT
