"""Differential property tests: columnar CT table vs the row path.

Arbitrary submission histories — certificates with single, multi-base,
duplicate-base, and wildcard SAN sets, spread across multiple logs with
arbitrary timestamps — are indexed twice: through the
:class:`~repro.ct.table.CtTable` bisect kernels and through
:class:`~repro.ct.crtsh.CrtShService`'s original per-base list index
(``use_table = False``).  Every search the inspection stage issues must
answer identically, including ordering and the legacy per-SAN bucket
duplication.  The suite also pins the publication-delay/horizon filter,
the io round-trip, the ``select()`` re-interning invariant, and the
``(fingerprint, logged ordinal)`` wire references' stability across log
insertion orders.
"""

from datetime import date, timedelta

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ct.crtsh import CrtShService
from repro.ct.log import CTLog
from repro.ct.table import CtTable
from repro.io.intel import load_ct, save_ct
from repro.tls.certificate import Certificate
from repro.tls.revocation import RevocationRegistry

BASE = date(2019, 1, 1)

#: SAN sets covering one base, two names under one base (the legacy
#: index appends such a row to that base's bucket twice), two distinct
#: bases, and a wildcard.
SAN_SETS = (
    ("www.alpha.com",),
    ("login.alpha.com", "mail.alpha.com"),
    ("www.alpha.com", "www.beta.org"),
    ("*.gamma.net",),
    ("login.beta.co.uk",),
)
ISSUERS = ("DigiCert Inc", "Let's Encrypt")

# One submission: (san set, issuer, not_before day, log index, logged lag).
_submission = st.tuples(
    st.integers(min_value=0, max_value=len(SAN_SETS) - 1),
    st.integers(min_value=0, max_value=len(ISSUERS) - 1),
    st.integers(min_value=0, max_value=90),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=20),
)
_history = st.lists(_submission, min_size=1, max_size=15)

_window = st.one_of(
    st.none(),
    st.tuples(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=120),
    ),
)


def _cert(serial: int, sans: tuple[str, ...], issuer: str, nb: date) -> Certificate:
    return Certificate(
        serial=serial,
        common_name=sans[0],
        sans=sans,
        issuer=issuer,
        not_before=nb,
        not_after=nb + timedelta(days=365),
    )


def _logs_from(history) -> list[CTLog]:
    logs = [CTLog("log-a", first_crtsh_id=100), CTLog("log-b", first_crtsh_id=900)]
    for serial, (san_sel, issuer_sel, nb_day, log_sel, lag) in enumerate(history):
        nb = BASE + timedelta(days=nb_day)
        cert = _cert(1000 + serial, SAN_SETS[san_sel], ISSUERS[issuer_sel], nb)
        logs[log_sel].submit(cert, nb + timedelta(days=lag))
    return logs


def _services(logs) -> tuple[CrtShService, CrtShService]:
    columnar = CrtShService(logs, RevocationRegistry())
    legacy = CrtShService(logs, RevocationRegistry())
    legacy.use_table = False
    return columnar, legacy


def _keyed(entries):
    return [
        (e.crtsh_id, e.certificate.fingerprint, e.logged_at, e.revocation)
        for e in entries
    ]


QUERIES = (
    "www.alpha.com",
    "alpha.com",
    "beta.org",
    "sub.gamma.net",
    "login.beta.co.uk",
    "missing.example.org",
)


class TestSearchEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(_history, _window)
    def test_search_matches_legacy_index(self, history, window):
        logs = _logs_from(history)
        columnar, legacy = _services(logs)
        after = before = None
        if window is not None:
            lo, hi = window
            after = BASE + timedelta(days=lo)
            before = BASE + timedelta(days=max(lo, hi))
        for query in QUERIES:
            assert _keyed(columnar.search(query, after, before)) == _keyed(
                legacy.search(query, after, before)
            )
            assert _keyed(columnar.search_exact(query, after, before)) == _keyed(
                legacy.search_exact(query, after, before)
            )

    @settings(max_examples=50, deadline=None)
    @given(_history)
    def test_lookup_id_matches_legacy_index(self, history):
        logs = _logs_from(history)
        columnar, legacy = _services(logs)
        ids = [e.certificate.crtsh_id for log in logs for e in log.entries()]
        for crtsh_id in (*ids, 424242):
            via_table = columnar.lookup_id(crtsh_id)
            via_legacy = legacy.lookup_id(crtsh_id)
            if via_legacy is None:
                assert via_table is None
            else:
                assert _keyed([via_table]) == _keyed([via_legacy])

    @settings(max_examples=30, deadline=None)
    @given(_history, st.integers(min_value=0, max_value=30))
    def test_publication_delay_matches_legacy(self, history, delay):
        """Delay + horizon filtering hides the same entries either way."""
        logs = _logs_from(history)
        horizon = BASE + timedelta(days=60)
        columnar, legacy = _services(logs)
        delayed_columnar = columnar.with_publication_delay(delay, horizon)
        delayed_legacy = legacy.with_publication_delay(delay, horizon)
        assert delayed_columnar.hidden_entries == delayed_legacy.hidden_entries
        for query in QUERIES:
            assert _keyed(delayed_columnar.search(query)) == _keyed(
                delayed_legacy.search(query)
            )


class TestWireReferences:
    @settings(max_examples=50, deadline=None)
    @given(_history)
    def test_row_of_stable_across_log_order(self, history):
        """(fingerprint, logged ordinal) resolves to identical content in
        a service whose logs were attached in the opposite order — the
        portability the encoded inspection evidence relies on."""
        logs = _logs_from(history)
        forward = CtTable.from_logs(logs)
        reverse = CtTable.from_logs(list(reversed(logs)))
        for row in range(len(forward)):
            fp = forward.fps[forward.cert_id[row]]
            ordinal = forward.logged_ord[row]
            other = reverse.row_of(fp, ordinal)
            assert reverse.fps[reverse.cert_id[other]] == fp
            assert reverse.logged_ord[other] == ordinal
            assert reverse.crtsh_id[other] == forward.crtsh_id[row]

    @settings(max_examples=50, deadline=None)
    @given(_history)
    def test_entry_at_round_trips_search_results(self, history):
        logs = _logs_from(history)
        service = CrtShService(logs, RevocationRegistry())
        for query in QUERIES:
            for entry in service.search(query):
                again = service.entry_at(
                    entry.certificate.fingerprint, entry.logged_at.toordinal()
                )
                assert again.certificate.fingerprint == entry.certificate.fingerprint
                assert again.logged_at == entry.logged_at
                assert again.crtsh_id == entry.crtsh_id


class TestDerivedTables:
    @settings(max_examples=50, deadline=None)
    @given(_history, st.integers(min_value=1, max_value=3))
    def test_select_reinterns_like_fresh_build(self, history, keep_mod):
        """select() re-interns pools in first-seen order over survivors,
        equal to a table built from the surviving entry stream — and the
        invariant holds again on a second (double) degradation."""
        logs = _logs_from(history)
        table = CtTable.from_logs(logs)
        kept = [row for row in range(len(table)) if row % keep_mod == 0]
        derived = table.select(kept)

        replay = CTLog("replay", first_crtsh_id=10_000)
        for row in kept:
            replay.submit(
                table.certs[table.cert_id[row]],
                date.fromordinal(table.logged_ord[row]),
            )
        rebuilt = CtTable.from_logs([replay])
        assert list(derived.row_dicts()) == list(rebuilt.row_dicts())
        assert derived.fps == rebuilt.fps
        assert derived.issuers == rebuilt.issuers
        assert derived.san_sets == rebuilt.san_sets
        for base in derived.bases:
            assert derived.search_rows(base) == rebuilt.search_rows(base)

        again = derived.select(range(0, len(derived), 2))
        fresh = CTLog("replay2", first_crtsh_id=20_000)
        for row in range(0, len(derived), 2):
            fresh.submit(
                derived.certs[derived.cert_id[row]],
                date.fromordinal(derived.logged_ord[row]),
            )
        rebuilt_again = CtTable.from_logs([fresh])
        assert list(again.row_dicts()) == list(rebuilt_again.row_dicts())
        assert again.fps == rebuilt_again.fps

    @settings(max_examples=25, deadline=None)
    @given(_history)
    def test_pickle_round_trip_rebuilds_indexes(self, history):
        import pickle

        logs = _logs_from(history)
        table = CtTable.from_logs(logs)
        clone = pickle.loads(pickle.dumps(table))
        assert list(clone.row_dicts()) == list(table.row_dicts())
        for base in table.bases:
            assert clone.search_rows(base) == table.search_rows(base)
        for row in range(len(table)):
            fp = table.fps[table.cert_id[row]]
            assert clone.row_of(fp, table.logged_ord[row]) == table.row_of(
                fp, table.logged_ord[row]
            )


class TestIORoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(_history)
    def test_save_load_preserves_search_answers(self, tmp_path_factory, history):
        """A round-tripped CT stack answers every search identically —
        the loaded service replays entries into one log, so values (not
        row ids) are the comparison currency."""
        logs = _logs_from(history)
        service = CrtShService(logs, RevocationRegistry())
        # save_ct persists a single log; merge by replaying in (log,
        # entry) order, which preserves per-base bucket order.
        merged = CTLog("merged", first_crtsh_id=50_000)
        for log in logs:
            for entry in log.entries():
                merged.submit(entry.certificate, entry.timestamp)
        path = tmp_path_factory.mktemp("ct") / "ct.jsonl"
        save_ct(merged, RevocationRegistry(), path)
        _log, _revocations, loaded = load_ct(path)
        original = CrtShService([merged], RevocationRegistry())
        for query in QUERIES:
            got = [
                (e.certificate.fingerprint, e.logged_at)
                for e in loaded.search(query)
            ]
            want = [
                (e.certificate.fingerprint, e.logged_at)
                for e in original.search(query)
            ]
            assert got == want
