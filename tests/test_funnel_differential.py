"""Kernel-vs-reference differentials for funnel stages 2–4 + assembly.

The rewritten stages compute in interned-id space — ``classify_encoded``
over the deployment wire form, bisect row slices for shortlist evidence,
encoded inspection results decoded against the parent tables, and the
assemble stage's precomputed victim-infrastructure index.  Each test
re-derives one stage's product with the retained row-at-a-time reference
(object-graph ``classify``, the datasetless ``Shortlister``, an
``Inspector`` over ``use_table = False`` stores, the single-domain
``_victim_infra`` walk) on randomized paper worlds across seeds, and
requires identity — verdicts, evidence, provenance trails, and the
fault runs' DataQuality ledgers alike.
"""

from __future__ import annotations

import pytest

from repro.cache import StageCache
from repro.core.inspection import Inspector, decode_inspection, encode_inspection
from repro.core.patterns import classify
from repro.core.pipeline import HijackPipeline, _FindingBuilder
from repro.core.shortlist import Shortlister
from repro.core.types import Verdict
from repro.exec import ProcessPoolBackend, SerialBackend
from repro.io.reports import finding_to_row
from repro.world.scenarios import paper_study

SEEDS = (3, 7, 21)
BACKGROUND = 12

_RUNS: dict[int, tuple] = {}


def _run(seed: int):
    """One pipeline + report per seed, shared across the module."""
    if seed not in _RUNS:
        study = paper_study(seed=seed, n_background=BACKGROUND)
        pipeline = HijackPipeline.from_study(study)
        _RUNS[seed] = (pipeline, pipeline.run())
    return _RUNS[seed]


@pytest.mark.parametrize("seed", SEEDS)
def test_classify_encoded_matches_object_classifier(seed):
    """Stage 2: every classification the encoded kernel produced equals
    the object-graph classifier's answer for the same map — kind,
    subpatterns, and the stable/transition/transient partitions."""
    pipeline, report = _run(seed)
    assert report.classifications
    for classification in report.classifications.values():
        reference = classify(classification.map, pipeline.config.patterns)
        assert classification == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_shortlist_columnar_matches_reference(seed):
    """Stage 3: the bisect-slice evidence path (dataset attached) equals
    the record-filtering reference — entries, order, prune decisions."""
    pipeline, report = _run(seed)
    reference = Shortlister(
        pipeline.inputs.as2org,
        pipeline.config.shortlist,
        known_missing=pipeline.inputs.scan.known_missing_dates,
    )
    ref_entries, ref_decisions = reference.evaluate(report.classifications)
    assert report.shortlist == ref_entries  # transient_rows excluded from eq
    ref_pruned: dict[str, int] = {}
    for decision in ref_decisions:
        if not decision.kept:
            ref_pruned[decision.reason] = ref_pruned.get(decision.reason, 0) + 1
    assert report.funnel.prune_reasons == ref_pruned
    # The columnar entries additionally carry their row ids, and those
    # rows decode to exactly the evidence records shipped.
    table = pipeline.inputs.scan.table
    for entry in report.shortlist:
        assert entry.transient_rows is not None
        assert [table.record(r) for r in entry.transient_rows] == entry.transient_records


@pytest.mark.parametrize("seed", SEEDS)
def test_inspection_wire_form_matches_reference(seed):
    """Stage 4: the encoded worker results, decoded against the parent
    tables, equal an Inspector run over the legacy (use_table=False)
    pDNS index and CT per-base lists — including the T1* second pass."""
    pipeline, report = _run(seed)
    inputs = pipeline.inputs
    inputs.pdns.use_table = False
    inputs.crtsh.use_table = False
    try:
        inspector = Inspector(inputs.pdns, inputs.crtsh, pipeline.config.inspection)
        reference = inspector.inspect_many(report.shortlist)
        confirmed = {
            ip
            for r in reference
            if r.verdict is Verdict.HIJACKED
            for ip in r.attacker_ips
        }
        if pipeline.config.enable_t1_star:
            pending = [r for r in reference if r.pending_t1_star]
            Inspector.resolve_t1_star(pending, frozenset(confirmed))
    finally:
        inputs.pdns.use_table = True
        inputs.crtsh.use_table = True
    assert report.inspections == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_inspection_encode_decode_round_trips(seed):
    pipeline, report = _run(seed)
    pdns, crtsh = pipeline.inputs.pdns, pipeline.inputs.crtsh
    for result in report.inspections:
        encoded = encode_inspection(result, pdns, crtsh)
        assert decode_inspection(encoded, result.entry, pdns, crtsh) == result


@pytest.mark.parametrize("seed", SEEDS)
def test_assemble_matches_reference_builder(seed):
    """Assembly: findings built with the precomputed victim-infra index
    equal the reference builder's (per-domain table rescans), provenance
    trails included, row for row."""
    pipeline, report = _run(seed)
    builder = _FindingBuilder(pipeline.inputs)  # no precompute: reference
    reference = []
    seen: set[str] = set()
    for result in report.inspections:
        if result.verdict in (Verdict.HIJACKED, Verdict.TARGETED):
            if result.domain in seen:
                continue
            reference.append(builder.from_inspection(result, report.classifications))
            seen.add(result.domain)
    for pivot in report.pivots:
        if pivot.domain in seen:
            continue
        reference.append(builder.from_pivot(pivot, report.classifications))
        seen.add(pivot.domain)
    reference.sort(
        key=lambda f: ((f.victim_ccs[0] if f.victim_ccs else "zz"), f.domain)
    )
    assert [finding_to_row(f) for f in report.findings] == [
        finding_to_row(f) for f in reference
    ]


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_quality_ledger_identical_across_backends_and_cache(seed, tmp_path):
    """Fault runs: the DataQuality ledger (and the report) are identical
    serial vs pooled and cold vs warm — the encoded cache products carry
    no backend- or temperature-dependent state."""
    from repro.io.golden import encode_report

    spec = "scan.drop_weeks=0.2,pdns.blackouts=1,ct.delay_days=3"
    study = paper_study(seed=seed, n_background=BACKGROUND)
    pipeline = HijackPipeline.from_study(study, faults=spec)
    cache = StageCache(tmp_path)
    cold_report, cold = pipeline.profile(SerialBackend(), cache=cache)
    warm_report, warm = pipeline.profile(SerialBackend(), cache=cache)
    pool_report, pool = pipeline.profile(ProcessPoolBackend(2), cache=cache)
    assert cold.data_quality == warm.data_quality == pool.data_quality
    assert encode_report(cold_report) == encode_report(warm_report)
    assert encode_report(cold_report) == encode_report(pool_report)
    by_name = {s.name: s for s in warm.stages}
    for name in ("classify", "assemble"):
        assert by_name[name].cached is True
