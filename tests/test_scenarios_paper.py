"""The headline reproduction test: the full paper scenario.

Builds the synthetic study encoding Tables 2 and 3 as ground truth,
runs the five-step pipeline, and verifies that every victim is
recovered through the same channel the paper reports — 41 hijacked
(20 T1, 2 T1*, 6 T2, 7 P-IP, 6 P-NS) and 24 targeted — with zero
false positives.
"""

from repro.analysis.evaluation import evaluate_report
from repro.core.types import DetectionType, Verdict
from repro.world.groundtruth import AttackKind
from repro.world.scenarios import HIJACKED_ROWS, TARGETED_ROWS


class TestScenarioShape:
    def test_row_counts_match_paper(self):
        assert len(HIJACKED_ROWS) == 41
        assert len(TARGETED_ROWS) == 24

    def test_detection_type_counts_match_paper_table2(self):
        counts = {}
        for row in HIJACKED_ROWS:
            counts[row.detection] = counts.get(row.detection, 0) + 1
        assert counts == {"T1": 20, "T1*": 2, "T2": 6, "P-IP": 7, "P-NS": 6}

    def test_ca_split_matches_table9(self):
        issuers = [row.ca for row in HIJACKED_ROWS if row.ca]
        assert issuers.count("Let's Encrypt") == 28
        assert issuers.count("Comodo") == 12
        assert sum(1 for row in HIJACKED_ROWS if row.ca is None) == 1  # embassy.ly

    def test_four_certificates_revoked(self):
        assert sum(1 for row in HIJACKED_ROWS if row.revoked) == 4

    def test_ground_truth_ledger(self, paper):
        ledger = paper.ground_truth
        assert len(ledger) == 65
        assert len(ledger.hijacked()) == 41
        assert len(ledger.targeted()) == 24


class TestFullRecovery:
    def test_every_victim_recovered_with_correct_type(self, paper, paper_report):
        evaluation = evaluate_report(paper_report, paper.ground_truth)
        assert evaluation.n_expected == 65
        assert evaluation.n_found == 65
        assert evaluation.n_kind_correct == 65
        assert evaluation.n_detection_correct == 65
        assert evaluation.false_positives == []
        assert evaluation.recall == 1.0
        assert evaluation.precision == 1.0

    def test_funnel_detection_breakdown(self, paper_report):
        funnel = paper_report.funnel
        assert funnel.n_t1_hijacked == 20
        assert funnel.n_t1_star == 2
        assert funnel.n_t2_hijacked == 6
        assert funnel.n_pivot_ip == 7
        assert funnel.n_pivot_ns == 6
        assert funnel.n_hijacked == 41
        assert funnel.n_targeted == 24

    def test_kyrgyzstan_cluster(self, paper_report):
        """The Section 5.1 case study, on the full scenario."""
        mfa = paper_report.finding_for("mfa.gov.kg")
        assert mfa.verdict is Verdict.HIJACKED
        assert mfa.detection is DetectionType.T1
        assert mfa.attacker_ips == ("94.103.91.159",)
        assert mfa.attacker_asn == 48282
        assert mfa.attacker_cc == "RU"
        assert mfa.subdomain == "mail"
        assert mfa.issuer_ca == "Let's Encrypt"
        assert set(mfa.attacker_ns) == {"ns1.kg-infocom.ru", "ns2.kg-infocom.ru"}
        # The pivot discoveries: no scan-visible stable infrastructure.
        fiu = paper_report.finding_for("fiu.gov.kg")
        assert fiu.detection is DetectionType.P_NS
        assert fiu.victim_asns == ()
        infocom = paper_report.finding_for("infocom.kg")
        assert infocom.detection is DetectionType.P_NS

    def test_t1_star_domains(self, paper_report):
        """apc.gov.ae and moh.gov.kw: no pDNS corroboration, identified via
        shared attacker IPs (Table 2's T1* rows)."""
        for domain in ("apc.gov.ae", "moh.gov.kw"):
            finding = paper_report.finding_for(domain)
            assert finding.detection is DetectionType.T1_STAR
            assert not finding.pdns_corroborated
            assert finding.ct_corroborated

    def test_embassy_ly_has_no_certificate(self, paper_report):
        """embassy.ly did not use TLS; found purely through pDNS pivot."""
        finding = paper_report.finding_for("embassy.ly")
        assert finding.verdict is Verdict.HIJACKED
        assert finding.crtsh_id == 0
        assert finding.pdns_corroborated
        assert not finding.ct_corroborated

    def test_ais_gov_vn_targeted_not_hijacked(self, paper_report):
        """pDNS shows redirection but no suspicious certificate exists."""
        finding = paper_report.finding_for("ais.gov.vn")
        assert finding.verdict is Verdict.TARGETED
        assert finding.pdns_corroborated
        assert finding.crtsh_id == 0

    def test_attacker_infrastructure_reuse(self, paper_report):
        """The same IP hijacked multiple CY domains (Sea Turtle)."""
        shared_ip = "178.62.218.244"
        users = [
            f.domain for f in paper_report.findings if shared_ip in f.attacker_ips
        ]
        assert {"govcloud.gov.cy", "webmail.gov.cy", "sslvpn.gov.cy"} <= set(users)

    def test_attacker_ips_match_ground_truth(self, paper, paper_report):
        for record in paper.ground_truth.hijacked():
            finding = paper_report.finding_for(record.domain)
            assert set(record.attacker_ips) <= set(finding.attacker_ips), record.domain

    def test_issuing_cas_match_ground_truth(self, paper, paper_report):
        for record in paper.ground_truth.hijacked():
            if record.ca is None:
                continue
            finding = paper_report.finding_for(record.domain)
            assert finding.issuer_ca == record.ca, record.domain

    def test_hijack_months_match(self, paper, paper_report):
        """The reported hijack month equals the ground-truth month."""
        for record in paper.ground_truth.hijacked():
            finding = paper_report.finding_for(record.domain)
            if finding.first_evidence is None:
                continue
            assert (
                abs((finding.first_evidence - record.hijack_date).days) <= 31
            ), record.domain


class TestDeterminism:
    def test_same_seed_same_results(self):
        from repro.world.scenarios import small_world
        from repro.world.sim import run_study

        a = run_study(small_world(seed=123)).run_pipeline()
        b = run_study(small_world(seed=123)).run_pipeline()
        assert [(f.domain, f.detection) for f in a.findings] == [
            (f.domain, f.detection) for f in b.findings
        ]
        assert a.funnel.n_maps == b.funnel.n_maps
