"""Property-based tests over the cache fingerprint algebra.

The guarantees the incremental cache rests on:

* determinism — equal key material always produces equal fingerprints,
  regardless of dict/set insertion order (and fingerprints carry no
  backend or process material at all, which the cross-backend golden
  tests exercise end to end);
* sensitivity — perturbing any single *data* field of the fault spec,
  the configuration, or the stage chain produces a *different*
  fingerprint, so a stale entry can never be addressed by a changed run;
* the deliberate exceptions — an empty fault plan is byte-identical to
  no plan, so its seed is normalized out of the key; and the worker
  scheduler knobs (crash/slow injection, retry policy) can never change
  a product, so they are normalized out too — which is what lets a
  crash-interrupted sharded run's clean re-run land on the same stage
  fingerprints and resume from its completed shards.
"""

from __future__ import annotations

import dataclasses
from dataclasses import fields

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.fingerprint import (
    RunKey,
    derive_run_key,
    jsonable,
    plan_digest,
    stage_fingerprint,
    value_digest,
)
from repro.core.inspection import InspectionConfig
from repro.core.patterns import PatternConfig
from repro.core.pipeline import PipelineConfig
from repro.core.shortlist import ShortlistConfig
from repro.faults.plan import FaultPlan, FaultSpec

# -- strategies ----------------------------------------------------------------

_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**6), max_value=10**6),
    st.text(max_size=12),
)

_value = st.recursive(
    _scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=12,
)

_spec_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_spec_ints = st.integers(min_value=0, max_value=1000)

_fault_spec = st.builds(
    FaultSpec,
    drop_weeks=_spec_floats,
    drop_ports=_spec_floats,
    pdns_blackouts=_spec_ints,
    pdns_blackout_days=st.integers(min_value=1, max_value=60),
    ct_delay_days=_spec_ints,
    routing_stale=_spec_floats,
    worker_crash=_spec_floats,
    worker_slow=_spec_floats,
    worker_slow_ms=st.integers(min_value=1, max_value=500),
    max_retries=st.integers(min_value=1, max_value=8),
    backoff_ms=st.integers(min_value=1, max_value=200),
)

_config = st.builds(
    PipelineConfig,
    patterns=st.builds(
        PatternConfig,
        transient_max_days=st.integers(min_value=30, max_value=200),
        stable_min_scans=st.integers(min_value=2, max_value=20),
    ),
    shortlist=st.builds(
        ShortlistConfig,
        min_presence=st.integers(min_value=1, max_value=8),
        recurring_periods=st.integers(min_value=2, max_value=6),
    ),
    inspection=st.builds(
        InspectionConfig,
        window_days=st.integers(min_value=1, max_value=90),
        stale_cert_days=st.integers(min_value=30, max_value=1000),
    ),
    max_gap_scans=st.integers(min_value=1, max_value=12),
    enable_pivot=st.booleans(),
    enable_t1_star=st.booleans(),
)

_chain = st.lists(
    st.tuples(
        st.sampled_from(["deployment_maps", "classify", "shortlist", "inspect"]),
        st.integers(min_value=1, max_value=5),
        st.none(),
    ),
    min_size=1,
    max_size=4,
    unique_by=lambda entry: entry[0],
)

_EMPTY_PLAN = FaultPlan.from_spec(None)


class _FakeInputs:
    """Stands in for PipelineInputs when only config/fault digests matter.

    ``inputs_digest`` honors the memo attribute, so the digest walk is
    skipped; the real walk is covered by the content tests below.
    """

    _repro_inputs_digest = "i" * 32


def _key(config: PipelineConfig, plan: FaultPlan = _EMPTY_PLAN) -> RunKey:
    return derive_run_key(_FakeInputs(), plan, config)


# -- determinism ---------------------------------------------------------------


class TestDeterminism:
    @settings(max_examples=80)
    @given(st.dictionaries(st.text(max_size=6), _value, min_size=2, max_size=6))
    def test_dict_insertion_order_is_irrelevant(self, mapping):
        reordered = dict(reversed(list(mapping.items())))
        assert value_digest(mapping) == value_digest(reordered)

    @settings(max_examples=80)
    @given(st.lists(st.integers(), min_size=1, max_size=8, unique=True))
    def test_set_insertion_order_is_irrelevant(self, items):
        forward = set()
        for item in items:
            forward.add(item)
        backward = set()
        for item in reversed(items):
            backward.add(item)
        assert value_digest(forward) == value_digest(backward)

    @settings(max_examples=60)
    @given(_fault_spec, st.integers(min_value=0, max_value=10**6))
    def test_equal_plans_digest_equally(self, spec, seed):
        a = FaultPlan(spec=spec, seed=seed)
        b = FaultPlan(spec=dataclasses.replace(spec), seed=seed)
        assert plan_digest(a) == plan_digest(b)

    @settings(max_examples=60)
    @given(_config, _chain)
    def test_equal_key_material_fingerprints_equally(self, config, chain):
        a = _key(config)
        b = _key(dataclasses.replace(config))
        assert stage_fingerprint(a, chain) == stage_fingerprint(b, chain)

    @settings(max_examples=40)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_empty_plan_seed_is_normalized(self, seed):
        assert plan_digest(FaultPlan.from_spec(None, seed=seed)) == plan_digest(
            FaultPlan.from_spec(None, seed=0)
        )

    @settings(max_examples=60)
    @given(_value)
    def test_jsonable_output_always_encodes(self, value):
        """Whatever the input shape, the canonical form is encodable and
        digestible — digesting never raises on supported types."""
        import json

        json.dumps(jsonable(value), sort_keys=True)
        assert value_digest(value) == value_digest(value)


# -- sensitivity ---------------------------------------------------------------


def _perturb_field(value, field):
    """A deterministic different value for one dataclass field."""
    current = getattr(value, field.name)
    if isinstance(current, bool):
        return not current
    if isinstance(current, int):
        return current + 1
    if isinstance(current, float):
        # Stay inside [0, 1] — several knobs validate as probabilities.
        return current + 0.125 if current <= 0.875 else current - 0.125
    raise AssertionError(f"unhandled field type for {field.name}")


#: Spec fields that only steer the scheduler — normalized out of the
#: plan digest so a crash-interrupted run and its clean re-run share
#: cache entries (kernels are pure; retries recompute identical data).
_WORKER_FIELDS = frozenset(
    {"worker_crash", "worker_slow", "worker_slow_ms", "max_retries", "backoff_ms"}
)
_DATA_CHANNELS = (
    "drop_weeks",
    "drop_ports",
    "pdns_blackouts",
    "ct_delay_days",
    "routing_stale",
)


def _data_active(spec: FaultSpec) -> bool:
    return any(getattr(spec, name) for name in _DATA_CHANNELS)


class TestSensitivity:
    @settings(max_examples=60)
    @given(_fault_spec, st.data())
    def test_any_data_field_perturbation_changes_plan_digest(self, spec, data):
        field = data.draw(
            st.sampled_from(
                [f for f in fields(FaultSpec) if f.name not in _WORKER_FIELDS]
            ),
            label="field",
        )
        other = dataclasses.replace(
            spec, **{field.name: _perturb_field(spec, field)}
        )
        a = FaultPlan(spec=spec, seed=3)
        b = FaultPlan(spec=other, seed=3)
        assert plan_digest(a) != plan_digest(b)

    @settings(max_examples=60)
    @given(_fault_spec, st.data())
    def test_worker_field_perturbation_never_changes_plan_digest(
        self, spec, data
    ):
        """Scheduler knobs can't change any product, so they are not key
        material — this is what lets a killed sharded run's clean re-run
        resume from the faulted run's completed shards."""
        field = data.draw(
            st.sampled_from(
                [f for f in fields(FaultSpec) if f.name in _WORKER_FIELDS]
            ),
            label="field",
        )
        other = dataclasses.replace(
            spec, **{field.name: _perturb_field(spec, field)}
        )
        a = FaultPlan(spec=spec, seed=3)
        b = FaultPlan(spec=other, seed=3)
        assert plan_digest(a) == plan_digest(b)

    @settings(max_examples=40)
    @given(_fault_spec, st.integers(min_value=0, max_value=10**6))
    def test_seed_changes_data_active_plan_digest(self, spec, seed):
        plan = FaultPlan(spec=spec, seed=seed)
        if not _data_active(spec):
            # No data channel live: the seed can only pick crash/slow
            # victims, which never reach a product — normalized away.
            assert plan_digest(plan) == plan_digest(
                FaultPlan(spec=spec, seed=seed + 1)
            )
            return
        assert plan_digest(plan) != plan_digest(
            FaultPlan(spec=spec, seed=seed + 1)
        )

    @settings(max_examples=60)
    @given(_config, _chain, st.data())
    def test_any_config_leaf_perturbation_changes_fingerprint(
        self, config, chain, data
    ):
        """With the conservative whole-config dependency (deps=None in
        the chain), every leaf knob is key material."""
        section_field = data.draw(
            st.sampled_from(fields(PipelineConfig)), label="section"
        )
        section = getattr(config, section_field.name)
        if dataclasses.is_dataclass(section):
            leaf = data.draw(
                st.sampled_from(fields(type(section))), label="leaf"
            )
            new_section = dataclasses.replace(
                section, **{leaf.name: _perturb_field(section, leaf)}
            )
        else:
            new_section = _perturb_field(config, section_field)
        other = dataclasses.replace(config, **{section_field.name: new_section})
        assert stage_fingerprint(_key(config), chain) != stage_fingerprint(
            _key(other), chain
        )

    @settings(max_examples=60)
    @given(_config, _chain, st.data())
    def test_chain_perturbations_change_fingerprint(self, config, chain, data):
        key = _key(config)
        original = stage_fingerprint(key, chain)
        index = data.draw(
            st.integers(min_value=0, max_value=len(chain) - 1), label="index"
        )
        name, version, deps = chain[index]
        bumped = list(chain)
        bumped[index] = (name, version + 1, deps)
        assert stage_fingerprint(key, bumped) != original
        renamed = list(chain)
        renamed[index] = (name + "_v2", version, deps)
        assert stage_fingerprint(key, renamed) != original
        if len(chain) > 1:
            # A strict prefix is a different stage's address.
            assert stage_fingerprint(key, chain[:-1]) != original

    @settings(max_examples=40)
    @given(_config, _chain)
    def test_inputs_and_faults_are_key_material(self, config, chain):
        key = _key(config)
        other_inputs = RunKey(
            inputs="j" * 32, faults=key.faults, config_fields=key.config_fields
        )
        assert stage_fingerprint(key, chain) != stage_fingerprint(
            other_inputs, chain
        )
        other_faults = RunKey(
            inputs=key.inputs, faults="f" * 32, config_fields=key.config_fields
        )
        assert stage_fingerprint(key, chain) != stage_fingerprint(
            other_faults, chain
        )

    @settings(max_examples=60)
    @given(_config, st.data())
    def test_scoped_deps_ignore_unrelated_sections(self, config, data):
        """The sweep-reuse property: a stage keyed only on
        ``max_gap_scans`` is untouched by inspection-knob changes."""
        chain = [("deployment_maps", 1, ("max_gap_scans",))]
        leaf = data.draw(st.sampled_from(fields(InspectionConfig)), label="leaf")
        other = dataclasses.replace(
            config,
            inspection=dataclasses.replace(
                config.inspection,
                **{leaf.name: _perturb_field(config.inspection, leaf)},
            ),
        )
        assert stage_fingerprint(_key(config), chain) == stage_fingerprint(
            _key(other), chain
        )
        gap = dataclasses.replace(config, max_gap_scans=config.max_gap_scans + 1)
        assert stage_fingerprint(_key(config), chain) != stage_fingerprint(
            _key(gap), chain
        )


# -- real input content --------------------------------------------------------


class TestInputContent:
    def test_equal_content_different_objects_digest_equally(self):
        """Two independently built (but identical) worlds produce the
        same inputs digest — the digest is content-addressed, not
        object-addressed."""
        from repro.cache.fingerprint import inputs_digest
        from repro.core.pipeline import PipelineInputs
        from repro.world.scenarios import small_world
        from repro.world.sim import run_study

        a = PipelineInputs.from_study(run_study(small_world()))
        b = PipelineInputs.from_study(run_study(small_world()))
        assert a is not b
        assert inputs_digest(a) == inputs_digest(b)

    def test_degraded_inputs_digest_differently(self, small_study):
        from repro.cache.fingerprint import inputs_digest
        from repro.core.pipeline import PipelineInputs
        from repro.faults import DataQuality, apply_faults

        inputs = PipelineInputs.from_study(small_study)
        degraded = apply_faults(
            inputs, FaultPlan.from_spec("scan.drop_weeks=0.4", seed=2), DataQuality()
        )
        assert inputs_digest(degraded) != inputs_digest(inputs)
