"""Tests for the passive-DNS substrate: aggregation, queries, sensors."""

import random
from datetime import date, datetime

import pytest

from repro.dns.nameserver import NameserverDirectory, NameserverHost
from repro.dns.records import RRType
from repro.dns.registry import Registry
from repro.dns.resolver import RecursiveResolver
from repro.net.timeline import DateInterval
from repro.pdns.database import PassiveDNSDatabase
from repro.pdns.sensor import SensorNetwork
from repro.pdns.traffic import ObservationPlan


class TestDatabase:
    def test_aggregation_first_last_count(self):
        db = PassiveDNSDatabase()
        db.add_observation("mail.x.kg", RRType.A, "1.2.3.4", date(2020, 12, 5))
        db.add_observation("mail.x.kg", RRType.A, "1.2.3.4", date(2020, 12, 1))
        db.add_observation("mail.x.kg", RRType.A, "1.2.3.4", date(2020, 12, 9))
        rows = db.query_name("mail.x.kg")
        assert len(rows) == 1
        row = rows[0]
        assert row.first_seen == date(2020, 12, 1)
        assert row.last_seen == date(2020, 12, 9)
        assert row.count == 3
        assert row.span_days == 9

    def test_distinct_rdata_distinct_rows(self):
        db = PassiveDNSDatabase()
        db.add_observation("mail.x.kg", RRType.A, "1.1.1.1", date(2020, 1, 1))
        db.add_observation("mail.x.kg", RRType.A, "2.2.2.2", date(2020, 1, 2))
        assert len(db.query_name("mail.x.kg", RRType.A)) == 2

    def test_query_domain_covers_subdomains(self):
        db = PassiveDNSDatabase()
        db.add_observation("mail.x.gov.kg", RRType.A, "1.1.1.1", date(2020, 1, 1))
        db.add_observation("x.gov.kg", RRType.NS, "ns1.x.gov.kg", date(2020, 1, 1))
        db.add_observation("mail.other.kg", RRType.A, "1.1.1.1", date(2020, 1, 1))
        rows = db.query_domain("x.gov.kg")
        assert {r.rrname for r in rows} == {"mail.x.gov.kg", "x.gov.kg"}

    def test_window_filter(self):
        db = PassiveDNSDatabase()
        db.add_observation("a.x.com", RRType.A, "1.1.1.1", date(2019, 1, 1))
        window = DateInterval(date(2020, 1, 1), date(2020, 2, 1))
        assert db.query_name("a.x.com", window=window) == []

    def test_inverse_queries(self):
        db = PassiveDNSDatabase()
        db.add_observation("mail.a.gov.kg", RRType.A, "94.103.91.159", date(2020, 12, 20))
        db.add_observation("mail.b.gov.kg", RRType.A, "94.103.91.159", date(2020, 12, 28))
        db.add_observation("b.gov.kg", RRType.NS, "ns1.kg-infocom.ru", date(2020, 12, 28))
        assert db.domains_resolving_to("94.103.91.159") == {"a.gov.kg", "b.gov.kg"}
        assert db.domains_delegated_to("ns1.kg-infocom.ru") == {"b.gov.kg"}

    def test_ns_rdata_normalized(self):
        db = PassiveDNSDatabase()
        db.add_observation("x.gov.kg", RRType.NS, "NS1.Rogue.NET.", date(2020, 1, 1))
        assert db.query_rdata("ns1.rogue.net", RRType.NS)


class TestObservationPlan:
    def test_background_spacing(self):
        plan = ObservationPlan()
        plan.add_background("mail.x.com", DateInterval(date(2020, 1, 1), date(2020, 1, 31)))
        days = plan.days_for("mail.x.com")
        assert days[0] == date(2020, 1, 1)
        assert all((b - a).days == 7 for a, b in zip(days, days[1:]))

    def test_dense_window(self):
        plan = ObservationPlan()
        plan.add_dense_window("mail.x.com", date(2020, 6, 15), radius_days=3)
        days = plan.days_for("mail.x.com")
        assert len(days) == 7
        assert plan.is_dense("mail.x.com", date(2020, 6, 15))
        assert not plan.is_dense("mail.x.com", date(2020, 7, 1))

    def test_rejects_open_interval(self):
        plan = ObservationPlan()
        with pytest.raises(ValueError):
            plan.add_background("x.com", DateInterval(date(2020, 1, 1)))

    def test_merge(self):
        a, b = ObservationPlan(), ObservationPlan()
        a.add_dense_window("x.com", date(2020, 1, 10), radius_days=1)
        b.add_dense_window("y.com", date(2020, 1, 10), radius_days=1)
        a.merge(b)
        assert len(a) == 2


@pytest.fixture
def resolver_world():
    registry = Registry("gov.kg")
    directory = NameserverDirectory()
    resolver = RecursiveResolver([registry], directory)
    host = NameserverHost(operator="org")
    directory.bind("ns1.x.gov.kg", host, start=datetime(2019, 1, 1))
    registry.register("x.gov.kg", ("ns1.x.gov.kg",), "reg", at=datetime(2019, 1, 1))
    host.add_record("mail.x.gov.kg", RRType.A, "10.0.0.1", start=datetime(2019, 1, 1))
    # A six-hour hijack window.
    host.add_record(
        "mail.x.gov.kg", RRType.A, "203.0.113.9",
        start=datetime(2020, 6, 15, 3), end=datetime(2020, 6, 15, 9),
    )
    return resolver


class TestSensorNetwork:
    def test_dense_day_guarantees_window_capture(self, resolver_world):
        """A >=2h resolution state on a dense day is always observed."""
        sensor = SensorNetwork(resolver_world, random.Random(1))
        db = PassiveDNSDatabase()
        sensor.observe_day(db, "mail.x.gov.kg", date(2020, 6, 15), dense=True)
        rdata = {r.rdata for r in db.query_name("mail.x.gov.kg", RRType.A)}
        assert "203.0.113.9" in rdata
        assert "10.0.0.1" in rdata

    def test_background_day_records_steady_state(self, resolver_world):
        sensor = SensorNetwork(resolver_world, random.Random(1), coverage=1.0)
        db = PassiveDNSDatabase()
        sensor.observe_day(db, "mail.x.gov.kg", date(2019, 5, 1))
        rows = db.query_name("mail.x.gov.kg", RRType.A)
        assert [r.rdata for r in rows] == ["10.0.0.1"]
        # NS observations recorded alongside.
        assert db.query_name("x.gov.kg", RRType.NS)

    def test_zero_coverage_records_nothing(self, resolver_world):
        sensor = SensorNetwork(resolver_world, random.Random(1), coverage=0.0)
        db = PassiveDNSDatabase()
        assert sensor.observe_day(db, "mail.x.gov.kg", date(2019, 5, 1)) == 0

    def test_run_executes_plan(self, resolver_world):
        sensor = SensorNetwork(resolver_world, random.Random(1), coverage=1.0)
        plan = ObservationPlan()
        plan.add_background(
            "mail.x.gov.kg", DateInterval(date(2019, 3, 1), date(2019, 4, 1))
        )
        db = PassiveDNSDatabase()
        assert sensor.run(db, plan) > 0
        assert len(db) >= 2  # A row + NS row

    def test_rejects_bad_parameters(self, resolver_world):
        with pytest.raises(ValueError):
            SensorNetwork(resolver_world, random.Random(0), coverage=1.5)
        with pytest.raises(ValueError):
            SensorNetwork(resolver_world, random.Random(0), queries_per_day=0)
