"""Tests for the evaluation analyses (Tables 4, 5, 9; funnel; observability)."""

from repro.analysis.attacker_infra import (
    PAPER_TABLE5,
    attacker_network_table,
    format_network_table,
)
from repro.analysis.certificates import (
    ca_breakdown,
    certificate_table,
    format_certificate_table,
    revocation_breakdown,
)
from repro.analysis.evaluation import evaluate_report
from repro.analysis.funnel import PAPER_FRACTIONS, classification_fractions, funnel_rows
from repro.analysis.observability import observability_stats
from repro.analysis.sectors import PAPER_TABLE4, format_sector_table, sector_table


class TestSectorTable:
    def test_matches_paper_table4(self, paper):
        rows = sector_table(paper.ground_truth)
        measured = {r.sector: (r.hijacked, r.targeted) for r in rows}
        assert measured == PAPER_TABLE4

    def test_totals(self, paper):
        rows = sector_table(paper.ground_truth)
        assert sum(r.hijacked for r in rows) == 41
        assert sum(r.targeted for r in rows) == 24

    def test_identified_filter(self, paper, paper_report):
        identified = {f.domain for f in paper_report.findings}
        rows = sector_table(paper.ground_truth, identified)
        assert sum(r.total for r in rows) == 65  # everything was identified

    def test_rendering(self, paper):
        text = format_sector_table(sector_table(paper.ground_truth))
        assert "Government Ministry" in text
        assert "Total" in text


class TestNetworkTable:
    def test_attacker_network_concentration(self, paper):
        rows = attacker_network_table(paper.ground_truth)
        measured = {r.asn: (r.hijacked, r.targeted) for r in rows}
        # Every paper ASN appears with the same counts (the per-domain
        # attacker ASNs are exact scenario inputs).
        for asn, expected in PAPER_TABLE5.items():
            assert asn in measured, asn
        assert sum(h for h, _ in measured.values()) == 41
        assert sum(t for _, t in measured.values()) == 24
        # Top networks match the paper's ordering.
        assert rows[0].asn == 14061  # Digital Ocean dominates

    def test_rendering(self, paper):
        text = format_network_table(attacker_network_table(paper.ground_truth))
        assert "Digital Ocean" in text


class TestCertificateTable:
    def test_ca_breakdown_matches_table9(self, paper, paper_report):
        rows = certificate_table(paper_report, paper.crtsh)
        assert len(rows) == 41  # one per hijacked domain
        cas = ca_breakdown(rows)
        assert cas == {"Let's Encrypt": 28, "Comodo": 12}

    def test_revocation_asymmetry(self, paper, paper_report):
        """4 Comodo certs revoked and CRL-visible; Let's Encrypt
        revocations unknowable (OCSP-only) — Table 9's key finding."""
        rows = certificate_table(paper_report, paper.crtsh)
        statuses = revocation_breakdown(rows)
        assert statuses.get("revoked", 0) == 4
        assert statuses.get("unknown", 0) == 28  # all expired LE certs
        assert statuses.get("no-certificate", 0) == 1  # embassy.ly
        revoked = {r.domain for r in rows if r.revocation and r.revocation.value == "revoked"}
        assert revoked == {"asp.gov.al", "netnod.se", "pch.net", "cyta.com.cy"}

    def test_rendering(self, paper, paper_report):
        text = format_certificate_table(certificate_table(paper_report, paper.crtsh))
        assert "crt.sh ID" in text


class TestFunnel:
    def test_fractions_sum_to_at_most_one(self, paper_report):
        fractions = classification_fractions(paper_report)
        total = sum(fractions.as_dict().values())
        assert 0.99 <= total <= 1.0  # NO_DATA maps may take the remainder

    def test_stable_dominates(self, paper_report):
        fractions = classification_fractions(paper_report)
        assert fractions.stable > 0.90
        assert fractions.transient < 0.05

    def test_paper_fractions_reference(self):
        assert abs(sum(PAPER_FRACTIONS.values()) - 0.9993) < 1e-9

    def test_funnel_rows_monotone(self, paper_report):
        rows = dict(funnel_rows(paper_report))
        assert rows["shortlisted"] <= rows["transient maps"] + 5
        assert rows["hijacked (direct)"] <= rows["worth examining"]


class TestObservability:
    def test_stats_computed_for_hijacked_domains(self, paper, paper_report):
        stats = observability_stats(
            paper.ground_truth, paper.pdns, paper.scan,
            world=paper.world, report=paper_report,
        )
        # pDNS evidence spans exist for all pdns-visible hijacks (39 of 41).
        assert len(stats.pdns_spans_days) >= 35
        # Around half of the hijacks are visible in pDNS for at most a day.
        assert 0.3 <= stats.frac_pdns_at_most_one_day <= 0.8
        # Most malicious certs hit the scans within 8 days of issuance.
        assert stats.frac_cert_visible_within_8_days >= 0.5
        # Most certificates appear in only one or two weekly scans.
        one_or_two = stats.frac_cert_seen_in_exactly(1) + stats.frac_cert_seen_in_exactly(2)
        assert one_or_two >= 0.7
        # Zone files are nearly blind to sub-day hijacks.
        assert stats.frac_zone_blind >= 0.8


class TestEvaluation:
    def test_scores_have_metadata(self, paper, paper_report):
        evaluation = evaluate_report(paper_report, paper.ground_truth)
        scores = {s.domain: s for s in evaluation.scores}
        assert scores["mfa.gov.kg"].detection_correct
        assert scores["ais.gov.vn"].kind_correct
        assert evaluation.missed() == []
        assert evaluation.mislabeled() == []
