"""The detector protocol conformance suite and arena tests.

Every registered detector must honor the :class:`repro.detect.Detector`
contract: declared inputs are *sufficient* (stripping undeclared
channels changes nothing), detection is deterministic across execution
backends, and findings survive the JSON round trip.  The suite is
parametrized over the registry, so third-party detectors registered
before collection are held to the same bar.
"""

from __future__ import annotations

import json

import pytest

from repro.cache import StageCache
from repro.core.pipeline import PipelineInputs
from repro.core.types import Verdict
from repro.detect import (
    INPUT_CHANNELS,
    Detector,
    DetectorFindings,
    DomainVerdict,
    create_detector,
    create_detectors,
    list_detectors,
    register_detector,
    restrict_inputs,
    unregister_detector,
)
from repro.detect.arena import (
    ARENA_SCHEMA,
    arena_summary,
    format_arena,
    run_arena,
    score_sets,
    validate_arena_summary,
    write_arena_summary,
)
from repro.exec import ProcessPoolBackend, SerialBackend

DETECTOR_NAMES = list_detectors()


@pytest.fixture(scope="module")
def fitted(small_study):
    """Every registered detector, fitted on the small study."""
    detectors = {}
    for name in DETECTOR_NAMES:
        detector = create_detector(name)
        if detector.requires_fit:
            detector.fit(small_study)
        detectors[name] = detector
    return detectors


@pytest.fixture(scope="module")
def small_bundle(small_study):
    return PipelineInputs.from_study(small_study)


@pytest.fixture(scope="module")
def small_findings(fitted, small_bundle):
    return {
        name: detector.detect(small_bundle) for name, detector in fitted.items()
    }


# -- protocol conformance (parametrized over the registry) ---------------------


class TestConformance:
    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_declaration_is_well_formed(self, name):
        detector = create_detector(name)
        assert isinstance(detector, Detector)
        assert detector.name == name
        assert detector.inputs, "a detector must declare at least one channel"
        assert set(detector.inputs) <= set(INPUT_CHANNELS)

    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_declared_inputs_are_sufficient(
        self, name, fitted, small_bundle, small_findings
    ):
        """Stripping every undeclared channel must not change the verdicts:
        the declaration is the detector's whole data diet."""
        restricted = restrict_inputs(small_bundle, fitted[name].inputs)
        assert fitted[name].detect(restricted) == small_findings[name]

    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_deterministic_across_backends(self, name, fitted, small_bundle):
        serial = fitted[name].detect(small_bundle, backend=SerialBackend())
        pool = fitted[name].detect(small_bundle, backend=ProcessPoolBackend(jobs=2))
        assert serial == pool

    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_findings_round_trip(self, name, small_findings):
        findings = small_findings[name]
        assert findings.detector == name
        payload = json.loads(json.dumps(findings.to_dict()))
        assert DetectorFindings.from_dict(payload) == findings

    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_verdicts_carry_evidence(self, name, small_findings):
        for verdict in small_findings[name].verdicts:
            if verdict.positive:
                assert verdict.evidence, (
                    f"{name} flagged {verdict.domain} without evidence refs"
                )

    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_catches_the_small_world_victim(self, name, small_findings):
        """Every shipped detector recovers the one obvious hijack."""
        assert "example-ministry.gr" in small_findings[name].flagged()


def test_logreg_refuses_to_detect_unfitted(small_bundle):
    detector = create_detector("logreg")
    with pytest.raises(RuntimeError, match="fit"):
        detector.detect(small_bundle)


def test_restrict_inputs_rejects_unknown_channel(small_bundle):
    with pytest.raises(ValueError, match="unknown input channels"):
        restrict_inputs(small_bundle, ("scan", "quantum"))


def test_restrict_inputs_empties_undeclared(small_bundle):
    restricted = restrict_inputs(small_bundle, ("scan",))
    assert len(restricted.pdns) == 0
    assert restricted.routing is None
    assert restricted.geo is None
    assert restricted.scan is small_bundle.scan
    assert restricted.periods == small_bundle.periods


# -- verdict / findings types --------------------------------------------------


class TestFindingsTypes:
    def test_positive_verdicts(self):
        assert DomainVerdict("d.example", Verdict.HIJACKED).positive
        assert DomainVerdict("d.example", Verdict.TARGETED).positive
        assert not DomainVerdict("d.example", Verdict.BENIGN).positive
        assert not DomainVerdict("d.example", Verdict.INCONCLUSIVE).positive

    def test_flagged_is_positive_domains_only(self):
        findings = DetectorFindings(
            detector="x",
            verdicts=(
                DomainVerdict("a.example", Verdict.HIJACKED),
                DomainVerdict("b.example", Verdict.BENIGN),
            ),
        )
        assert findings.flagged() == frozenset({"a.example"})
        assert findings.verdict_for("b.example").verdict is Verdict.BENIGN
        assert findings.verdict_for("missing.example") is None


# -- registry ------------------------------------------------------------------


class _ToyDetector(Detector):
    name = "toy"
    inputs = ("scan",)

    def detect(self, bundle, backend=None):
        return DetectorFindings(detector=self.name)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = list_detectors()
        for expected in (
            "cert-anomaly", "funnel", "logreg", "naive-transients", "pdns-churn",
        ):
            assert expected in names
        assert list(names) == sorted(names)

    def test_register_and_unregister(self):
        register_detector("toy", _ToyDetector)
        try:
            assert "toy" in list_detectors()
            assert isinstance(create_detector("toy"), _ToyDetector)
        finally:
            unregister_detector("toy")
        assert "toy" not in list_detectors()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_detector("funnel", _ToyDetector)

    def test_unknown_detector_names_known_ones(self):
        with pytest.raises(KeyError, match="funnel"):
            create_detector("no-such-method")

    def test_create_detectors_preserves_order(self):
        detectors = create_detectors(["logreg", "funnel"])
        assert [d.name for d in detectors] == ["logreg", "funnel"]


# -- scoring -------------------------------------------------------------------


class TestScoring:
    def test_counts(self):
        score = score_sets("m", {"a", "b", "c"}, {"a", "d"})
        assert (score.tp, score.fp, score.fn) == (1, 2, 1)
        assert score.precision == pytest.approx(1 / 3)
        assert score.recall == pytest.approx(1 / 2)
        assert score.f1 == pytest.approx(0.4)

    def test_empty_flagged_has_perfect_precision(self):
        score = score_sets("m", set(), {"a"})
        assert score.precision == 1.0
        assert score.recall == 0.0
        assert score.f1 == 0.0

    def test_empty_truth_has_perfect_recall(self):
        score = score_sets("m", {"a"}, set())
        assert score.recall == 1.0
        assert score.precision == 0.0


# -- the arena -----------------------------------------------------------------


class TestArena:
    @pytest.fixture(scope="class")
    def small_arena(self, small_study):
        return run_arena(packs=["small"], studies={"small": small_study})

    def test_full_grid(self, small_arena):
        assert small_arena.packs == ("small",)
        assert small_arena.detectors == DETECTOR_NAMES
        assert len(small_arena.cells) == len(DETECTOR_NAMES)
        for name in DETECTOR_NAMES:
            assert small_arena.cell("small", name) is not None
        assert small_arena.cell("small", "nope") is None

    def test_scores_match_direct_detection(self, small_arena, small_findings):
        for name in DETECTOR_NAMES:
            arena_flagged = small_arena.findings[("small", name)].flagged()
            assert arena_flagged == small_findings[name].flagged()

    def test_leaderboard_sorted_by_mean_f1(self, small_arena):
        rows = small_arena.leaderboard()
        assert [r["detector"] for r in rows]
        assert all(
            rows[i]["mean_f1"] >= rows[i + 1]["mean_f1"]
            for i in range(len(rows) - 1)
        )

    def test_manifest_records_every_stage(self, small_arena):
        manifest = small_arena.manifests["small"]
        for name in DETECTOR_NAMES:
            stage = manifest.stage(f"detect:{name}")
            assert stage is not None
            assert stage.detail["inputs"] == list(
                create_detector(name).inputs
            )

    def test_summary_validates(self, small_arena):
        payload = arena_summary(small_arena)
        assert payload["schema"] == ARENA_SCHEMA
        assert validate_arena_summary(payload) == []
        # And the validator actually bites on corruption.
        assert validate_arena_summary({"schema": "bogus"})
        broken = json.loads(json.dumps(payload))
        broken["cells"][0]["precision"] = 2.0
        assert any("out of [0, 1]" in p for p in validate_arena_summary(broken))
        dropped = json.loads(json.dumps(payload))
        dropped["cells"] = dropped["cells"][1:]
        assert any("missing cell" in p for p in validate_arena_summary(dropped))

    def test_write_summary_round_trips(self, small_arena, tmp_path):
        path = tmp_path / "BENCH_arena.json"
        payload = write_arena_summary(small_arena, path)
        assert json.loads(path.read_text()) == payload

    def test_format_arena_renders_every_cell(self, small_arena):
        text = format_arena(small_arena)
        for name in DETECTOR_NAMES:
            assert name in text

    def test_cache_warm_run_restores_identical_cells(self, small_study, tmp_path):
        cache = StageCache(tmp_path)
        cold = run_arena(
            packs=["small"], studies={"small": small_study}, cache=cache
        )
        warm = run_arena(
            packs=["small"], studies={"small": small_study}, cache=cache
        )
        assert not any(cell.cached for cell in cold.cells)
        assert all(cell.cached for cell in warm.cells)
        for cold_cell, warm_cell in zip(cold.cells, warm.cells):
            assert warm_cell.score == cold_cell.score
            assert warm_cell.stats == cold_cell.stats

    def test_faults_degrade_single_channel_detectors(self, small_study):
        """Blacking out pDNS must starve the pDNS-only method but leave
        the scan-only ablation untouched — the arena's whole point."""
        result = run_arena(
            packs=["small"],
            detectors=["pdns-churn", "naive-transients"],
            studies={"small": small_study},
            faults="pdns.blackouts=2,pdns.blackout_days=60",
            fault_seed=5,
        )
        assert "pdns.blackouts=2" in result.faults
        churn = result.cell("small", "pdns-churn")
        naive = result.cell("small", "naive-transients")
        assert churn.score.recall == 0.0
        assert naive.score.recall == 1.0

    def test_unknown_pack_raises(self):
        with pytest.raises(KeyError, match="small"):
            run_arena(packs=["not-a-pack"], detectors=["naive-transients"])
