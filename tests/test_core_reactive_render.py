"""Tests for the extension features: reactive monitoring (Section 7.1)
and ASCII deployment-map rendering."""

from datetime import date, datetime

from repro.core.deployment import build_deployment_map
from repro.core.patterns import classify
from repro.core.reactive import ReactiveMonitor
from repro.core.render import render_classification, render_deployment_map

from tests.helpers import PERIOD, ScanSketch, make_cert, scan_dates

DATES = scan_dates()


class TestReactiveMonitor:
    def test_catches_hijack_issuance_in_real_time(self, small_study):
        """The malicious certificate triggers an alert at issuance time —
        the §7.1 'reactive measurement on issuance' intervention."""
        world = small_study.world
        monitor = ReactiveMonitor(world.resolver)
        monitor.watch_from_current_state("example-ministry.gr", datetime(2018, 3, 1))
        alerts = monitor.scan_log(world.ct_log)
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.domain == "example-ministry.gr"
        assert alert.names == ("mail.example-ministry.gr",)
        assert alert.reason == "rogue-delegation"
        assert any("rogue-demo.net" in ns for ns in alert.observed_ns)
        truth = small_study.ground_truth.record_for("example-ministry.gr")
        assert alert.crtsh_id == truth.crtsh_id
        assert alert.issued_on == truth.hijack_date

    def test_legitimate_issuance_not_flagged(self, small_study):
        """Certificates issued while the baseline delegation holds are
        silent — no false alarms from ordinary renewals."""
        world = small_study.world
        monitor = ReactiveMonitor(world.resolver)
        monitor.watch_from_current_state("example-ministry.gr", datetime(2018, 3, 1))
        alerts = monitor.scan_log(world.ct_log)
        truth = small_study.ground_truth.record_for("example-ministry.gr")
        legit_ids = {
            e.certificate.crtsh_id
            for e in world.ct_log.entries()
            if e.certificate.crtsh_id != truth.crtsh_id
        }
        assert all(a.crtsh_id not in legit_ids for a in alerts)

    def test_unwatched_domains_ignored(self, small_study):
        monitor = ReactiveMonitor(small_study.world.resolver)
        assert monitor.scan_log(small_study.world.ct_log) == []
        assert monitor.processed == len(small_study.world.ct_log)

    def test_explicit_baseline_registration(self, small_study):
        monitor = ReactiveMonitor(small_study.world.resolver)
        monitor.watch("example-ministry.gr", ("ns1.example-ministry.gr",), ("10.128.0.1",))
        assert monitor.watched() == ("example-ministry.gr",)


class TestRendering:
    def make_map(self):
        stable = make_cert("www.x.gr", 1, date(2018, 12, 1))
        rogue = make_cert("mail.x.gr", 2, date(2019, 3, 20), issuer="Let's Encrypt")
        sketch = (
            ScanSketch("x.gr")
            .presence(DATES, "10.0.0.1", 100, "GR", stable)
            .presence(DATES[12:13], "203.0.113.5", 666, "NL", rogue)
        )
        return build_deployment_map("x.gr", sketch.records, PERIOD, DATES)

    def test_render_contains_rows_and_legend(self):
        text = render_deployment_map(self.make_map())
        assert "x.gr — 2019H1" in text
        assert "AS100" in text
        assert "AS666" in text
        assert "certs:" in text
        # The stable row fills the period; the transient has one cell.
        rows = [line for line in text.splitlines() if line.rstrip().endswith("|")]
        assert len(rows) == 2

    def test_distinct_certs_get_distinct_glyphs(self):
        text = render_deployment_map(self.make_map())
        stable_row = next(l for l in text.splitlines() if "AS100" in l)
        transient_row = next(l for l in text.splitlines() if "AS666" in l)
        stable_glyph = {c for c in stable_row.split("|")[1] if c != " "}
        transient_glyph = {c for c in transient_row.split("|")[1] if c != " "}
        assert stable_glyph and transient_glyph
        assert stable_glyph != transient_glyph

    def test_render_classification_includes_verdict(self):
        classification = classify(self.make_map())
        text = render_classification(classification)
        assert "TRANSIENT" in text
        assert "T1" in text
