"""Tests for the zone archive and delegation diffing."""

from datetime import date, datetime

import pytest

from repro.dns.registry import Registry
from repro.dns.zonearchive import ZoneArchive

T0 = datetime(2018, 1, 1)
NS = ("ns1.infocom.kg", "ns2.infocom.kg")
ROGUE = ("ns1.kg-infocom.ru", "ns2.kg-infocom.ru")


@pytest.fixture
def archive():
    registry = Registry("gov.kg")
    registry.register("mfa.gov.kg", NS, "reg", at=T0)
    registry.register("fiu.gov.kg", NS, "reg", at=T0)
    return registry, ZoneArchive(registry, "gov.kg")


class TestSnapshots:
    def test_snapshot_contains_delegations(self, archive):
        _, zone = archive
        snapshot = zone.snapshot(date(2019, 1, 1))
        assert snapshot.ns_of("mfa.gov.kg") == NS
        assert "fiu.gov.kg" in snapshot

    def test_snapshots_cached(self, archive):
        _, zone = archive
        a = zone.snapshot(date(2019, 1, 1))
        b = zone.snapshot(date(2019, 1, 1))
        assert a is b

    def test_collect_range(self, archive):
        _, zone = archive
        assert zone.collect(date(2019, 1, 1), date(2019, 1, 10)) == 10

    def test_rejects_foreign_suffix(self, archive):
        registry, _ = archive
        with pytest.raises(ValueError):
            ZoneArchive(registry, "com")


class TestDiffing:
    def test_multi_day_change_visible(self, archive):
        registry, zone = archive
        registry.set_delegation(
            "mfa.gov.kg", ROGUE, datetime(2020, 12, 20, 12), datetime(2020, 12, 23, 12)
        )
        changes = zone.changes_over(date(2020, 12, 18), date(2020, 12, 26))
        assert len(changes) == 2  # flip and flip-back
        flip = changes[0]
        assert flip.domain == "mfa.gov.kg"
        assert flip.added == frozenset(ROGUE)
        assert flip.removed == frozenset(NS)

    def test_sub_day_hijack_invisible(self, archive):
        """The paper's core transparency finding: a window that does not
        cross midnight never appears in any daily snapshot."""
        registry, zone = archive
        registry.set_delegation(
            "mfa.gov.kg", ROGUE, datetime(2020, 12, 20, 5), datetime(2020, 12, 20, 11)
        )
        assert zone.changes_over(date(2020, 12, 18), date(2020, 12, 24)) == []
        assert (
            zone.days_delegated_to(
                "mfa.gov.kg", set(ROGUE), date(2020, 12, 18), date(2020, 12, 24)
            )
            == 0
        )

    def test_midnight_crossing_hijack_visible_one_day(self, archive):
        registry, zone = archive
        registry.set_delegation(
            "mfa.gov.kg", ROGUE, datetime(2020, 12, 20, 20), datetime(2020, 12, 21, 7)
        )
        assert (
            zone.days_delegated_to(
                "mfa.gov.kg", set(ROGUE), date(2020, 12, 18), date(2020, 12, 24)
            )
            == 1
        )

    def test_days_delegated_rejects_foreign_domain(self, archive):
        _, zone = archive
        with pytest.raises(ValueError):
            zone.days_delegated_to("example.com", set(ROGUE), date(2020, 1, 1), date(2020, 1, 2))
