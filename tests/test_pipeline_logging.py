"""Tests for pipeline logging instrumentation and example health."""

import logging
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


class TestLogging:
    def test_stage_logs_emitted(self, small_study, caplog):
        with caplog.at_level(logging.INFO, logger="repro.core.pipeline"):
            small_study.run_pipeline()
        messages = [r.message for r in caplog.records]
        assert any(m.startswith("step 1:") for m in messages)
        assert any(m.startswith("step 2:") for m in messages)
        assert any(m.startswith("step 3:") for m in messages)
        assert any(m.startswith("step 4:") for m in messages)
        assert any(m.startswith("step 5:") for m in messages)

    def test_silent_by_default(self, small_study, capsys):
        """Library code must not print; logging stays opt-in."""
        small_study.run_pipeline()
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""


@pytest.mark.parametrize(
    "script", ["quickstart.py", "pattern_gallery.py", "custom_scenario.py"]
)
class TestExamplesRun:
    def test_example_exits_cleanly(self, script):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / script)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout  # examples narrate what they do
