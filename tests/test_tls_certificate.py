"""Tests for the certificate model."""

from datetime import date, timedelta

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tls.certificate import Certificate, ValidationLevel, rollover_of


def make_cert(**overrides) -> Certificate:
    defaults = dict(
        serial=1,
        common_name="mail.example.com",
        sans=("mail.example.com",),
        issuer="Let's Encrypt",
        not_before=date(2019, 4, 1),
        not_after=date(2019, 6, 30),
    )
    defaults.update(overrides)
    return Certificate(**defaults)


class TestCertificate:
    def test_validity(self):
        cert = make_cert()
        assert cert.valid_on(date(2019, 4, 1))
        assert cert.valid_on(date(2019, 6, 30))
        assert not cert.valid_on(date(2019, 7, 1))
        assert cert.validity_days == 90

    def test_fingerprint_is_stable_and_content_bound(self):
        a = make_cert()
        b = make_cert()
        c = make_cert(serial=2)
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint
        assert len(a.fingerprint) == 64

    def test_requires_cn_among_sans(self):
        with pytest.raises(ValueError):
            make_cert(common_name="other.example.com")

    def test_requires_sans(self):
        with pytest.raises(ValueError):
            make_cert(sans=())

    def test_rejects_inverted_validity(self):
        with pytest.raises(ValueError):
            make_cert(not_after=date(2019, 3, 1))

    def test_issued_within(self):
        cert = make_cert()
        assert cert.issued_within(date(2019, 4, 10), 14)
        assert not cert.issued_within(date(2019, 5, 10), 14)

    @given(st.integers(min_value=0, max_value=400))
    def test_days_until_expiry_consistent(self, offset):
        cert = make_cert()
        day = cert.not_before + timedelta(days=offset)
        assert cert.days_until_expiry(day) == (cert.not_after - day).days


class TestRollover:
    def test_rollover_preserves_names_and_duration(self):
        cert = make_cert()
        renewed = rollover_of(cert, serial=99)
        assert renewed.sans == cert.sans
        assert renewed.issuer == cert.issuer
        assert renewed.validity_days == cert.validity_days
        assert renewed.key_id == cert.key_id + 1
        assert renewed.fingerprint != cert.fingerprint

    def test_rollover_overlaps_expiry(self):
        cert = make_cert()
        renewed = rollover_of(cert, serial=99, overlap_days=14)
        assert renewed.not_before == cert.not_after - timedelta(days=14)
        assert renewed.valid_on(cert.not_after)

    def test_validation_levels(self):
        assert make_cert().validation is ValidationLevel.DV
        ov = make_cert(validation=ValidationLevel.OV)
        assert ov.validation is ValidationLevel.OV
