"""Tests for the world container and the attacker playbook's causality."""

from datetime import date, datetime, timedelta

import pytest

from repro.ca.acme import AcmeError
from repro.core.types import DetectionType
from repro.dns.records import RRType
from repro.net.timeline import DateInterval
from repro.world.attacker import AttackerProfile, CampaignMode, CampaignSpec, run_campaign
from repro.world.entities import Organization, Sector
from repro.world.groundtruth import AttackKind
from repro.world.world import World


@pytest.fixture
def world():
    return World(seed=5, start=date(2019, 1, 1), end=date(2019, 12, 31))


@pytest.fixture
def victim_setup(world):
    provider = world.add_provider("victim-isp", 65001, [("10.128.0.0/16", "GR")])
    victim = world.setup_domain("ministry.gr", provider, services=("www", "mail"))
    return world, provider, victim


class TestProviders:
    def test_provider_populates_intel_tables(self, world):
        provider = world.add_provider("cloud-x", 64999, [("10.0.0.0/16", "DE")])
        ip = provider.allocate()
        assert world.routing.lookup(ip) == 64999
        assert world.geo.lookup(ip) == "DE"
        assert world.as2org.org_of(64999) == "cloud-x"

    def test_provider_deduplicated_by_asn(self, world):
        a = world.add_provider("cloud-x", 64999, [("10.0.0.0/16", "DE")])
        b = world.add_provider("cloud-x-again", 64999, [("10.9.0.0/16", "FR")])
        assert a is b

    def test_claim_specific_ip(self, world):
        provider = world.add_provider("attacker", 64998, [("203.0.113.0/24", "NL")])
        assert provider.claim("203.0.113.77") == "203.0.113.77"
        # Later allocations never reuse a claimed address.
        allocated = {provider.allocate() for _ in range(100)}
        assert "203.0.113.77" not in allocated
        with pytest.raises(ValueError):
            provider.claim("198.51.100.1")


class TestSetupDomain:
    def test_dns_resolves_to_allocated_ip(self, victim_setup):
        world, _, victim = victim_setup
        answers = world.resolver.resolve_a("mail.ministry.gr", datetime(2019, 6, 1))
        assert answers == victim.ips

    def test_certificates_cover_services_and_interval(self, victim_setup):
        world, _, victim = victim_setup
        assert victim.cert_at(date(2019, 6, 1)) is not None
        for cert in victim.certificates:
            assert set(cert.sans) == {"www.ministry.gr", "mail.ministry.gr"}

    def test_scan_visible(self, victim_setup):
        world, _, victim = victim_setup
        cert = world.hosts.serving(victim.ips[0], 443, date(2019, 6, 1))
        assert cert is not None
        assert cert.issuer == "DigiCert Inc"

    def test_unscannable_domain_absent_from_hosts(self, world):
        provider = world.add_provider("victim-isp", 65001, [("10.128.0.0/16", "GR")])
        victim = world.setup_domain("hidden.gr", provider, scannable=False)
        assert world.hosts.serving(victim.ips[0], 443, date(2019, 6, 1)) is None
        # DNS still works.
        assert world.resolver.resolve_a("www.hidden.gr", datetime(2019, 6, 1))

    def test_internal_ca_not_in_ct(self, world):
        provider = world.add_provider("victim-isp", 65001, [("10.128.0.0/16", "GR")])
        world.setup_domain("internal.gr", provider, ca_name="Internal Enterprise CA")
        assert world.crtsh.search("internal.gr") == []

    def test_apex_service(self, world):
        provider = world.add_provider("victim-isp", 65001, [("10.128.0.0/16", "GR")])
        victim = world.setup_domain("webmail.gr", provider, services=("",))
        assert victim.service_fqdns == ("webmail.gr",)

    def test_pdns_plan_scheduled(self, victim_setup):
        world, _, _ = victim_setup
        assert "mail.ministry.gr" in world.plan.fqdns()

    def test_blackout(self, world):
        provider = world.add_provider("victim-isp", 65001, [("10.128.0.0/16", "GR")])
        world.setup_domain("dark.gr", provider)
        world.pdns_blackout("dark.gr", DateInterval(date(2019, 5, 1), date(2019, 6, 1)))
        assert world.is_blacked_out("mail.dark.gr", date(2019, 5, 15))
        assert not world.is_blacked_out("mail.dark.gr", date(2019, 7, 1))


def make_spec(world, provider, victim, mode=CampaignMode.T1, **overrides):
    attacker_provider = world.add_provider(
        "bullet-cloud", 64666, [("203.0.113.0/24", "NL")]
    )
    defaults = dict(
        victim=victim,
        sector=Sector.GOVERNMENT_MINISTRY,
        victim_cc="GR",
        mode=mode,
        expected_detection=DetectionType.T1,
        hijack_date=date(2019, 8, 10),
        attacker=AttackerProfile(name="actor", ns_domain="rogue.net"),
        attacker_provider=attacker_provider,
        target_subdomain="mail",
        ca_name="Let's Encrypt",
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestCampaignCausality:
    def test_t1_campaign_effects(self, victim_setup):
        world, provider, victim = victim_setup
        record = run_campaign(world, make_spec(world, provider, victim))
        # Certificate exists, CT-logged, for the targeted subdomain only.
        assert record.crtsh_id > 0
        entry = world.crtsh.lookup_id(record.crtsh_id)
        assert entry.certificate.sans == ("mail.ministry.gr",)
        assert entry.issuer == "Let's Encrypt"
        # During a redirection window the world resolves to the attacker.
        hijack_instant = datetime(2019, 8, 10, 2, 0)
        assert world.resolver.resolve_a("mail.ministry.gr", hijack_instant) == record.attacker_ips
        # Before and after, the victim's real address.
        assert world.resolver.resolve_a("mail.ministry.gr", datetime(2019, 7, 1)) == victim.ips
        assert world.resolver.resolve_a("mail.ministry.gr", datetime(2019, 9, 15)) == victim.ips
        # The malicious certificate is scan-visible at the attacker IP.
        served = world.hosts.serving(record.attacker_ips[0], 443, date(2019, 8, 12))
        assert served is not None and served.crtsh_id == record.crtsh_id

    def test_acme_fails_outside_hijack_window(self, victim_setup):
        """Negative control: the same rogue host cannot get a certificate
        without the delegation actually hijacked."""
        world, _, victim = victim_setup
        profile = AttackerProfile(name="actor", ns_domain="rogue2.net")
        profile.ensure_staged(world, date(2019, 8, 1))
        with pytest.raises(AcmeError):
            world.acme_order(
                "Let's Encrypt", ("mail.ministry.gr",), profile.ns_host,
                at=datetime(2019, 8, 10, 2),
            )

    def test_t2_campaign_serves_stable_cert(self, victim_setup):
        world, provider, victim = victim_setup
        record = run_campaign(
            world,
            make_spec(world, provider, victim, mode=CampaignMode.T2,
                      expected_detection=DetectionType.T2),
        )
        served = world.hosts.serving(record.attacker_ips[0], 443, date(2019, 8, 12))
        assert served.fingerprint == victim.cert_at(date(2019, 8, 10)).fingerprint
        # The malicious certificate exists in CT nonetheless.
        assert record.crtsh_id > 0

    def test_prelude_only_changes_nothing_in_dns(self, victim_setup):
        world, provider, victim = victim_setup
        record = run_campaign(
            world,
            make_spec(world, provider, victim, mode=CampaignMode.PRELUDE_ONLY,
                      expected_detection=None, ca_name=None),
        )
        assert record.kind is AttackKind.TARGETED
        assert record.crtsh_id == 0
        hijack_instant = datetime(2019, 8, 10, 2, 0)
        assert world.resolver.resolve_a("mail.ministry.gr", hijack_instant) == victim.ips

    def test_pdns_invisible_campaign_blacks_out(self, victim_setup):
        world, provider, victim = victim_setup
        record = run_campaign(
            world,
            make_spec(world, provider, victim, mode=CampaignMode.T1_NO_PDNS,
                      expected_detection=DetectionType.T1_STAR, pdns_visible=False),
        )
        assert not record.pdns_visible
        assert world.is_blacked_out("ministry.gr", date(2019, 8, 10))

    def test_revocation(self, victim_setup):
        world, provider, victim = victim_setup
        record = run_campaign(
            world, make_spec(world, provider, victim, revoked_after_days=20)
        )
        assert record.revoked
        entry = world.crtsh.lookup_id(record.crtsh_id)
        from repro.tls.revocation import RevocationStatus

        # Let's Encrypt is OCSP-only: retroactively unknowable post-expiry.
        assert entry.revocation is RevocationStatus.UNKNOWN

    def test_ground_truth_recorded(self, victim_setup):
        world, provider, victim = victim_setup
        run_campaign(world, make_spec(world, provider, victim))
        record = world.ground_truth.record_for("ministry.gr")
        assert record is not None
        assert record.kind is AttackKind.HIJACKED
        assert record.target_fqdn == "mail.ministry.gr"
        with pytest.raises(ValueError):
            run_campaign(world, make_spec(world, provider, victim))  # duplicate
