"""Tests for infrastructure-based actor attribution."""

from datetime import date

from repro.analysis.attribution import (
    attribution_accuracy,
    cluster_campaigns,
    format_clusters,
)
from repro.core.report import DomainFinding
from repro.core.types import DetectionType, Verdict


def finding(domain, ips=(), ns=(), asn=666, when=date(2019, 1, 1)):
    return DomainFinding(
        domain=domain,
        verdict=Verdict.HIJACKED,
        detection=DetectionType.T1,
        first_evidence=when,
        attacker_ips=tuple(ips),
        attacker_asn=asn,
        attacker_ns=tuple(ns),
    )


class TestClustering:
    def test_shared_ip_joins_victims(self):
        clusters = cluster_campaigns(
            [
                finding("a.gov", ips=("1.1.1.1",)),
                finding("b.gov", ips=("1.1.1.1",)),
                finding("c.gov", ips=("2.2.2.2",)),
            ]
        )
        assert len(clusters) == 2
        assert clusters[0].domains == ("a.gov", "b.gov")
        assert clusters[1].domains == ("c.gov",)

    def test_shared_ns_joins_across_ips(self):
        clusters = cluster_campaigns(
            [
                finding("a.gov", ips=("1.1.1.1",), ns=("ns1.rogue.net",)),
                finding("b.gov", ips=("2.2.2.2",), ns=("ns1.rogue.net",)),
            ]
        )
        assert len(clusters) == 1
        assert clusters[0].nameservers == ("ns1.rogue.net",)
        assert set(clusters[0].ips) == {"1.1.1.1", "2.2.2.2"}

    def test_transitive_closure(self):
        """A-ip1, B-{ip1,ns1}, C-ns1: one actor, fully reassembled."""
        clusters = cluster_campaigns(
            [
                finding("a.gov", ips=("1.1.1.1",)),
                finding("b.gov", ips=("1.1.1.1",), ns=("ns1.rogue.net",)),
                finding("c.gov", ns=("ns1.rogue.net",)),
            ]
        )
        assert len(clusters) == 1
        assert clusters[0].size == 3

    def test_span(self):
        clusters = cluster_campaigns(
            [
                finding("a.gov", ips=("1.1.1.1",), when=date(2018, 5, 1)),
                finding("b.gov", ips=("1.1.1.1",), when=date(2019, 1, 1)),
            ]
        )
        assert clusters[0].span_days == 245


class TestAccuracy:
    def test_perfect_attribution(self):
        clusters = cluster_campaigns(
            [
                finding("a.gov", ips=("1.1.1.1",)),
                finding("b.gov", ips=("1.1.1.1",)),
                finding("c.gov", ips=("2.2.2.2",)),
            ]
        )
        purity, fragmentation = attribution_accuracy(
            clusters, {"a.gov": "actor-x", "b.gov": "actor-x", "c.gov": "actor-y"}
        )
        assert purity == 1.0
        assert fragmentation == 1.0

    def test_fragmented_actor(self):
        clusters = cluster_campaigns(
            [
                finding("a.gov", ips=("1.1.1.1",)),
                finding("b.gov", ips=("2.2.2.2",)),  # same actor, no shared infra
            ]
        )
        _, fragmentation = attribution_accuracy(
            clusters, {"a.gov": "actor-x", "b.gov": "actor-x"}
        )
        assert fragmentation == 2.0


class TestOnPaperStudy:
    def test_kyrgyz_cluster_reassembled(self, paper, paper_report):
        clusters = cluster_campaigns(paper_report.hijacked())
        kg_cluster = next(
            c for c in clusters if "mfa.gov.kg" in c.domains
        )
        assert {"mfa.gov.kg", "invest.gov.kg", "fiu.gov.kg", "infocom.kg"} <= set(
            kg_cluster.domains
        )
        assert any("kg-infocom.ru" in ns for ns in kg_cluster.nameservers)

    def test_purity_against_ns_cluster_ground_truth(self, paper, paper_report):
        from repro.world.scenarios import HIJACKED_ROWS

        actor_of = {
            row.domain: row.ns_cluster for row in HIJACKED_ROWS if row.ns_cluster
        }
        clusters = cluster_campaigns(paper_report.hijacked())
        purity, _ = attribution_accuracy(clusters, actor_of)
        assert purity >= 0.9

    def test_rendering(self, paper_report):
        text = format_clusters(cluster_campaigns(paper_report.hijacked()))
        assert "victims" in text
        assert "span" in text
