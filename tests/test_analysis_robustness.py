"""Tests for multi-trial robustness aggregation."""

import pytest

from repro.analysis.robustness import (
    RobustnessSummary,
    TrialOutcome,
    format_robustness,
    run_trials,
)
from repro.world.randomized import RandomWorldConfig


class TestAggregation:
    def make_summary(self):
        summary = RobustnessSummary()
        summary.trials = [
            TrialOutcome(seed=1, n_victims=8, recall=1.0, precision=1.0, detection_accuracy=1.0),
            TrialOutcome(seed=2, n_victims=8, recall=0.75, precision=1.0, detection_accuracy=0.9),
        ]
        return summary

    def test_statistics(self):
        summary = self.make_summary()
        assert summary.mean_recall == pytest.approx(0.875)
        assert summary.min_recall == 0.75
        assert summary.stdev_recall == pytest.approx(0.17678, rel=1e-3)
        assert summary.perfect_trials == 1

    def test_rendering(self):
        text = format_robustness(self.make_summary())
        assert "mean recall" in text
        assert "1/2 perfect" in text

    def test_empty_guard(self):
        with pytest.raises(ValueError):
            run_trials(0)


class TestLiveTrials:
    def test_small_trials_all_perfect(self):
        config = RandomWorldConfig(n_victims=4, n_background=15)
        summary = run_trials(n_trials=2, first_seed=300, config=config)
        assert summary.n_trials == 2
        assert summary.mean_recall == 1.0
        assert summary.mean_precision == 1.0
        assert summary.perfect_trials == 2
