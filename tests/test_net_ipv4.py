"""Tests for IPv4 address and prefix arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ipv4 import IPv4Prefix, int_to_ip, ip_in_prefix, ip_to_int


class TestIpConversions:
    def test_known_values(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
        assert ip_to_int("10.0.0.1") == (10 << 24) + 1
        assert int_to_ip(0) == "0.0.0.0"
        assert int_to_ip((192 << 24) + (168 << 16) + 1) == "192.168.0.1"

    def test_rejects_malformed(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""):
            with pytest.raises(ValueError):
                ip_to_int(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(2**32)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestPrefix:
    def test_parse_normalizes_host_bits(self):
        prefix = IPv4Prefix.parse("10.1.2.3/24")
        assert str(prefix) == "10.1.2.0/24"

    def test_contains(self):
        prefix = IPv4Prefix.parse("94.103.88.0/21")
        assert prefix.contains("94.103.91.159")
        assert not prefix.contains("94.103.96.1")

    def test_size_and_address_at(self):
        prefix = IPv4Prefix.parse("192.0.2.0/24")
        assert prefix.size == 256
        assert prefix.address_at(0) == "192.0.2.0"
        assert prefix.address_at(255) == "192.0.2.255"
        with pytest.raises(IndexError):
            prefix.address_at(256)

    def test_zero_length_prefix_contains_everything(self):
        prefix = IPv4Prefix.parse("0.0.0.0/0")
        assert prefix.contains("1.2.3.4")
        assert prefix.contains("255.255.255.255")

    def test_slash_32_is_single_host(self):
        prefix = IPv4Prefix.parse("8.8.8.8/32")
        assert prefix.size == 1
        assert prefix.contains("8.8.8.8")
        assert not prefix.contains("8.8.8.9")

    def test_rejects_bad_lengths(self):
        for bad in ("10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0", "10.0.0.0/x"):
            with pytest.raises(ValueError):
                IPv4Prefix.parse(bad)

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=32),
    )
    def test_network_address_always_contained(self, value, length):
        prefix = IPv4Prefix.parse(f"{int_to_ip(value)}/{length}")
        assert prefix.contains(prefix.network)
        assert prefix.contains(prefix.network + prefix.size - 1)

    def test_ip_in_prefix_helper(self):
        assert ip_in_prefix("172.16.5.5", "172.16.0.0/12")
        assert not ip_in_prefix("172.32.0.1", "172.16.0.0/12")
