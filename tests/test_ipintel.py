"""Tests for the IP-intelligence substrates."""

import pytest

from repro.ipintel import AS2Org, GeoDB, RoutingTable, as_name
from repro.ipintel.asnames import register_as_name


class TestRoutingTable:
    def test_longest_prefix_wins(self):
        table = RoutingTable()
        table.add("10.0.0.0/8", 100)
        table.add("10.1.0.0/16", 200)
        table.add("10.1.2.0/24", 300)
        assert table.lookup("10.2.0.1") == 100
        assert table.lookup("10.1.9.9") == 200
        assert table.lookup("10.1.2.3") == 300

    def test_miss_returns_none(self):
        table = RoutingTable()
        table.add("192.0.2.0/24", 64500)
        assert table.lookup("198.51.100.1") is None
        assert "198.51.100.1" not in table
        assert "192.0.2.77" in table

    def test_reannouncement_overwrites(self):
        table = RoutingTable()
        table.add("192.0.2.0/24", 1)
        table.add("192.0.2.0/24", 2)
        assert table.lookup("192.0.2.1") == 2
        assert len(table) == 1

    def test_rejects_bad_asn(self):
        table = RoutingTable()
        with pytest.raises(ValueError):
            table.add("10.0.0.0/8", 0)

    def test_integer_lookup(self):
        table = RoutingTable()
        table.add("10.0.0.0/8", 7)
        assert table.lookup((10 << 24) + 5) == 7


class TestAS2Org:
    def test_related_same_org(self):
        mapping = AS2Org()
        mapping.assign(16509, "amazon", "Amazon.com")
        mapping.assign(14618, "amazon")
        mapping.assign(15169, "google")
        assert mapping.related(16509, 14618)
        assert not mapping.related(16509, 15169)

    def test_same_asn_trivially_related(self):
        mapping = AS2Org()
        assert mapping.related(64500, 64500)

    def test_unknown_asns_unrelated(self):
        mapping = AS2Org()
        mapping.assign(1, "org-a")
        assert not mapping.related(1, 2)
        assert not mapping.related(2, 3)

    def test_siblings(self):
        mapping = AS2Org()
        mapping.assign(16509, "amazon")
        mapping.assign(14618, "amazon")
        assert mapping.siblings(16509) == {16509, 14618}
        assert mapping.siblings(9999) == {9999}

    def test_org_name(self):
        mapping = AS2Org()
        mapping.assign(16509, "amazon", "Amazon.com")
        assert mapping.org_name("amazon") == "Amazon.com"

    def test_rejects_bad_input(self):
        mapping = AS2Org()
        with pytest.raises(ValueError):
            mapping.assign(0, "x")
        with pytest.raises(ValueError):
            mapping.assign(1, "")


class TestGeoDB:
    def test_lookup_by_most_specific(self):
        geo = GeoDB()
        geo.add("185.0.0.0/8", "NL")
        geo.add("185.20.187.0/24", "DE")
        assert geo.lookup("185.99.0.1") == "NL"
        assert geo.lookup("185.20.187.8") == "DE"

    def test_uppercases(self):
        geo = GeoDB()
        geo.add("10.0.0.0/8", "nl")
        assert geo.lookup("10.1.1.1") == "NL"

    def test_rejects_bad_cc(self):
        geo = GeoDB()
        for bad in ("NLD", "1A", ""):
            with pytest.raises(ValueError):
                geo.add("10.0.0.0/8", bad)

    def test_miss(self):
        assert GeoDB().lookup("8.8.8.8") is None


class TestASNames:
    def test_paper_networks_present(self):
        assert as_name(14061) == "Digital Ocean"
        assert as_name(20473) == "Vultr"
        assert as_name(48282) == "VDSINA"

    def test_fallback(self):
        assert as_name(4242424242) == "AS4242424242"

    def test_register(self):
        register_as_name(64999, "Test Net")
        assert as_name(64999) == "Test Net"
        with pytest.raises(ValueError):
            register_as_name(0, "bad")
