"""Tests for the longitudinal analysis (§5.2) and notifications (§6)."""

from datetime import date

import pytest

from repro.analysis.longitudinal import (
    DISCLOSURE_DATE,
    attacks_by_year,
    format_yearly,
    post_disclosure_attacks,
    tld_campaigns,
)
from repro.analysis.notification import build_all_notifications, build_notification
from repro.core.types import Verdict


class TestAttacksByYear:
    def test_2018_uptick(self, paper):
        rows = {r.year: r for r in attacks_by_year(paper.ground_truth)}
        # The Sea Turtle wave dominates 2018.
        assert rows[2018].hijacked > rows[2017].hijacked
        assert rows[2018].hijacked >= 15
        # The targeted wave is almost entirely 2020.
        assert rows[2020].targeted >= 18
        assert sum(r.total for r in rows.values()) == 65

    def test_attacks_span_full_window(self, paper):
        years = {r.year for r in attacks_by_year(paper.ground_truth)}
        assert {2017, 2018, 2019, 2020, 2021} <= years

    def test_rendering(self, paper):
        text = format_yearly(attacks_by_year(paper.ground_truth))
        assert "2018" in text and "Total" in text


class TestTldCampaigns:
    def test_recurring_tlds(self, paper):
        campaigns = {c.suffix: c for c in tld_campaigns(paper.ground_truth)}
        # Repeated attacks under gov.cy over months.
        assert campaigns["gov.cy"].recurring
        assert len(campaigns["gov.cy"].domains) >= 4
        # gov.ae spans 2018 (Sea Turtle) through 2020 (targeted wave):
        # years-long attacker interest in one namespace.
        assert campaigns["gov.ae"].span_days > 365

    def test_post_disclosure_activity(self, paper):
        late = post_disclosure_attacks(paper.ground_truth)
        # The entire .kg cluster postdates the Sea Turtle disclosures.
        assert {"mfa.gov.kg", "invest.gov.kg", "fiu.gov.kg", "infocom.kg"} <= set(late)
        assert len(late) >= 20  # the 2020 targeted wave
        assert DISCLOSURE_DATE == date(2019, 4, 1)


class TestNotifications:
    def test_hijacked_notification_contains_evidence(self, paper_report):
        finding = paper_report.finding_for("mfa.gov.kg")
        notification = build_notification(finding)
        assert notification.domain == "mfa.gov.kg"
        assert "KG" in notification.cert_contact
        assert "HIJACKED" in notification.body
        assert "94.103.91.159" in notification.body
        assert "ns1.kg-infocom.ru" in notification.body
        assert "crt.sh id" in notification.body
        assert "revoke the certificate" in notification.body

    def test_targeted_notification_differs(self, paper_report):
        finding = paper_report.finding_for("parlament.ch")
        notification = build_notification(finding)
        assert "TARGETED" in notification.body
        assert "crt.sh id" not in notification.body  # no certificate existed

    def test_all_victims_get_notifications(self, paper_report):
        notifications = build_all_notifications(paper_report.findings)
        assert len(notifications) == 65
        assert len({n.domain for n in notifications}) == 65

    def test_rejects_non_victims(self, paper_report):
        finding = paper_report.finding_for("mfa.gov.kg")
        benign = type(finding)(
            domain="innocent.com", verdict=Verdict.BENIGN, detection=None,
            first_evidence=None,
        )
        with pytest.raises(ValueError):
            build_notification(benign)
