"""Tests for deployment-map construction (step 1)."""

from datetime import date

from repro.core.deployment import build_deployment_map, build_deployment_maps

from tests.helpers import PERIOD, ScanSketch, make_cert, scan_dates


class TestDeploymentGrouping:
    def test_single_asn_forms_one_deployment(self):
        dates = scan_dates()
        cert = make_cert("www.x.gr", 1, date(2018, 12, 1))
        sketch = ScanSketch("x.gr").presence(dates, "10.0.0.1", 100, "GR", cert)
        map_ = build_deployment_map("x.gr", sketch.records, PERIOD, dates)
        assert len(map_.deployments) == 1
        deployment = map_.deployments[0]
        assert deployment.asn == 100
        assert deployment.scan_count == len(dates)
        assert deployment.first_seen == dates[0]
        assert deployment.last_seen == dates[-1]
        assert map_.presence == 1.0

    def test_two_asns_same_date_form_two_groups(self):
        dates = scan_dates()
        cert = make_cert("www.x.gr", 1, date(2018, 12, 1))
        sketch = (
            ScanSketch("x.gr")
            .presence(dates, "10.0.0.1", 100, "GR", cert)
            .presence(dates[10:12], "20.0.0.1", 200, "NL", cert)
        )
        map_ = build_deployment_map("x.gr", sketch.records, PERIOD, dates)
        assert {d.asn for d in map_.deployments} == {100, 200}
        transient = map_.deployments_for_asn(200)[0]
        assert transient.scan_count == 2
        assert transient.countries == frozenset({"NL"})

    def test_gap_splits_deployment(self):
        dates = scan_dates()
        cert = make_cert("www.x.gr", 1, date(2018, 12, 1))
        sketch = (
            ScanSketch("x.gr")
            .presence(dates[:3], "10.0.0.1", 100, "GR", cert)
            .presence(dates[-3:], "10.0.0.1", 100, "GR", cert)
        )
        map_ = build_deployment_map("x.gr", sketch.records, PERIOD, dates, max_gap_scans=6)
        assert len(map_.deployments) == 2
        assert all(d.asn == 100 for d in map_.deployments)

    def test_small_gap_does_not_split(self):
        dates = scan_dates()
        cert = make_cert("www.x.gr", 1, date(2018, 12, 1))
        sketch = (
            ScanSketch("x.gr")
            .presence(dates[:10], "10.0.0.1", 100, "GR", cert)
            .presence(dates[13:], "10.0.0.1", 100, "GR", cert)
        )
        map_ = build_deployment_map("x.gr", sketch.records, PERIOD, dates, max_gap_scans=6)
        assert len(map_.deployments) == 1

    def test_ips_and_certs_accumulate(self):
        dates = scan_dates()
        a = make_cert("www.x.gr", 1, date(2018, 12, 1))
        b = make_cert("www.x.gr", 2, date(2019, 3, 1))
        sketch = (
            ScanSketch("x.gr")
            .presence(dates[:13], "10.0.0.1", 100, "GR", a)
            .presence(dates[13:], "10.0.0.2", 100, "GR", b)
        )
        map_ = build_deployment_map("x.gr", sketch.records, PERIOD, dates)
        deployment = map_.deployments[0]
        assert deployment.ips == frozenset({"10.0.0.1", "10.0.0.2"})
        assert len(deployment.cert_fingerprints) == 2

    def test_records_outside_period_ignored(self):
        dates = scan_dates()
        cert = make_cert("www.x.gr", 1, date(2018, 1, 1))
        sketch = ScanSketch("x.gr").presence(
            (date(2018, 8, 5),) + dates[:4], "10.0.0.1", 100, "GR", cert
        )
        map_ = build_deployment_map("x.gr", sketch.records, PERIOD, dates)
        assert map_.deployments[0].first_seen >= PERIOD.start


class TestBuildAll:
    def test_maps_keyed_by_domain_and_period(self):
        dates = scan_dates()
        cert = make_cert("www.x.gr", 1, date(2018, 12, 1))
        dataset = ScanSketch("x.gr").presence(dates, "10.0.0.1", 100, "GR", cert).dataset()
        maps = build_deployment_maps(dataset, (PERIOD,))
        assert set(maps) == {("x.gr", PERIOD.index)}

    def test_no_map_for_invisible_period(self):
        from tests.helpers import ALL_PERIODS

        dates = scan_dates()
        cert = make_cert("www.x.gr", 1, date(2018, 12, 1))
        dataset = ScanSketch("x.gr").presence(dates, "10.0.0.1", 100, "GR", cert).dataset()
        maps = build_deployment_maps(dataset, ALL_PERIODS)
        assert ("x.gr", 1) in maps
        assert ("x.gr", 0) not in maps  # no scan dates in dataset for period 0
        assert ("x.gr", 2) not in maps
