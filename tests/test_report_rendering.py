"""Tests for report dataclasses and table rendering edge cases."""

from datetime import date

from repro.core.report import (
    DomainFinding,
    FunnelStats,
    format_findings_table,
    format_funnel,
)
from repro.core.types import DetectionType, Verdict


def finding(**overrides) -> DomainFinding:
    defaults = dict(
        domain="x.gr",
        verdict=Verdict.HIJACKED,
        detection=DetectionType.T1,
        first_evidence=date(2019, 4, 14),
        subdomain="mail",
        pdns_corroborated=True,
        ct_corroborated=True,
        attacker_ips=("203.0.113.5",),
        attacker_asn=666,
        attacker_cc="NL",
        victim_asns=(100,),
        victim_ccs=("GR",),
        crtsh_id=42,
        issuer_ca="Let's Encrypt",
    )
    defaults.update(overrides)
    return DomainFinding(**defaults)


class TestDomainFinding:
    def test_hijack_month_formatting(self):
        assert finding().hijack_month == "Apr'19"
        assert finding(first_evidence=None).hijack_month == "?"


class TestFindingsTable:
    def test_full_row(self):
        text = format_findings_table([finding()])
        assert "T1" in text and "Apr'19" in text and "203.0.113.5" in text

    def test_empty_fields_render_placeholders(self):
        sparse = finding(
            detection=None,
            subdomain="",
            attacker_ips=(),
            attacker_asn=None,
            attacker_cc=None,
            victim_asns=(),
            victim_ccs=(),
            pdns_corroborated=False,
            ct_corroborated=False,
        )
        text = format_findings_table([sparse])
        row = text.splitlines()[-1]
        assert "x.gr" in row
        assert "--" in row  # missing country placeholders
        assert " x " in row  # corroboration marks

    def test_empty_table_has_header_only(self):
        text = format_findings_table([])
        assert len(text.splitlines()) == 2  # header + rule


class TestFunnelStats:
    def test_hijacked_sum(self):
        stats = FunnelStats(
            n_maps=100, n_t1_hijacked=3, n_t2_hijacked=2, n_t1_star=1,
            n_pivot_ip=4, n_pivot_ns=5,
        )
        assert stats.n_hijacked == 15

    def test_fraction_guards_zero_maps(self):
        assert FunnelStats().fraction(10) == 0.0

    def test_rows_order(self):
        stats = FunnelStats(n_maps=10, n_stable=7, n_transition=1, n_transient=1, n_noisy=1)
        assert [name for name, _, _ in stats.rows()] == [
            "stable", "transition", "transient", "noisy"
        ]

    def test_format_funnel_includes_prunes(self):
        stats = FunnelStats(n_maps=10, n_stable=10)
        stats.prune_reasons["same-country"] = 3
        text = format_funnel(stats)
        assert "same-country" in text
        assert "deployment maps: 10" in text
