"""Shared fixtures.

The paper study takes a few seconds to build, so it is session-scoped
and shared by every test that evaluates against the full scenario.
"""

from __future__ import annotations

import pytest

from repro.world.scenarios import paper_study, small_world
from repro.world.sim import StudyDatasets, run_study


@pytest.fixture(scope="session")
def paper() -> StudyDatasets:
    return paper_study()


@pytest.fixture(scope="session")
def paper_report(paper):
    return paper.run_pipeline()


@pytest.fixture(scope="session")
def small_study() -> StudyDatasets:
    return run_study(small_world())


@pytest.fixture(scope="session")
def small_report(small_study):
    return small_study.run_pipeline()
