"""Tests for registries (delegations, zone snapshots) and registrars
(authentication, compromise paths)."""

from datetime import date, datetime

import pytest

from repro.dns.registrar import Credential, Registrar, RegistrarError
from repro.dns.registry import Registry

T0 = datetime(2018, 1, 1)
NS = ("ns1.example.com", "ns2.example.com")
ROGUE = ("ns1.rogue.net", "ns2.rogue.net")


def make_pair():
    registry = Registry("gov.kg")
    registrar = Registrar("reg-1", [registry])
    return registry, registrar


class TestRegistry:
    def test_register_and_resolve_delegation(self):
        registry, _ = make_pair()
        registry.register("mfa.gov.kg", NS, registrar="reg-1", at=T0)
        assert registry.delegation_at("mfa.gov.kg", datetime(2019, 1, 1)) == NS
        assert registry.registrar_of("mfa.gov.kg") == "reg-1"

    def test_rejects_duplicate_registration(self):
        registry, _ = make_pair()
        registry.register("mfa.gov.kg", NS, "reg-1", T0)
        with pytest.raises(ValueError):
            registry.register("mfa.gov.kg", NS, "reg-2", T0)

    def test_rejects_foreign_suffix(self):
        registry, _ = make_pair()
        with pytest.raises(ValueError):
            registry.register("example.com", NS, "reg-1", T0)

    def test_temporary_delegation_window(self):
        registry, _ = make_pair()
        registry.register("mfa.gov.kg", NS, "reg-1", T0)
        registry.set_delegation(
            "mfa.gov.kg", ROGUE, datetime(2020, 12, 20, 1), datetime(2020, 12, 20, 9)
        )
        assert registry.delegation_at("mfa.gov.kg", datetime(2020, 12, 20, 5)) == ROGUE
        assert registry.delegation_at("mfa.gov.kg", datetime(2020, 12, 21)) == NS

    def test_delegation_changes_observable(self):
        registry, _ = make_pair()
        registry.register("mfa.gov.kg", NS, "reg-1", T0)
        registry.set_delegation(
            "mfa.gov.kg", ROGUE, datetime(2020, 12, 20, 1), datetime(2020, 12, 20, 9)
        )
        changes = registry.delegation_changes(
            "mfa.gov.kg", datetime(2020, 12, 19), datetime(2020, 12, 22)
        )
        assert [v for _, v in changes] == [NS, ROGUE, NS]

    def test_zone_snapshot_midnight_granularity(self):
        """Sub-day hijacks are invisible to daily zone files (Section 5.3)."""
        registry, _ = make_pair()
        registry.register("mfa.gov.kg", NS, "reg-1", T0)
        registry.set_delegation(
            "mfa.gov.kg", ROGUE, datetime(2020, 12, 20, 1), datetime(2020, 12, 20, 9)
        )
        assert registry.zone_snapshot("gov.kg", date(2020, 12, 20)).ns_of("mfa.gov.kg") == NS
        assert registry.zone_snapshot("gov.kg", date(2020, 12, 21)).ns_of("mfa.gov.kg") == NS

    def test_zone_snapshot_sees_midnight_crossing_hijack(self):
        registry, _ = make_pair()
        registry.register("mfa.gov.kg", NS, "reg-1", T0)
        registry.set_delegation(
            "mfa.gov.kg", ROGUE, datetime(2020, 12, 20, 20), datetime(2020, 12, 21, 10)
        )
        snapshot = registry.zone_snapshot("gov.kg", date(2020, 12, 21))
        assert snapshot.ns_of("mfa.gov.kg") == ROGUE

    def test_ds_records_and_removal(self):
        registry, _ = make_pair()
        registry.register("mfa.gov.kg", NS, "reg-1", T0)
        registry.set_ds("mfa.gov.kg", ("ds1",), T0)
        assert registry.ds_at("mfa.gov.kg", datetime(2019, 1, 1)) == ("ds1",)
        registry.remove_ds("mfa.gov.kg", datetime(2020, 1, 1), datetime(2020, 2, 1))
        assert registry.ds_at("mfa.gov.kg", datetime(2020, 1, 15)) == ()
        assert registry.ds_at("mfa.gov.kg", datetime(2020, 3, 1)) == ("ds1",)


class TestRegistrar:
    def setup_method(self):
        self.registry, self.registrar = make_pair()
        self.registrar.create_account("holder", "secret")
        self.cred = Credential("holder", "secret")
        self.registrar.register_domain(self.cred, "mfa.gov.kg", NS, at=T0)

    def test_authenticated_update(self):
        self.registrar.update_delegation(self.cred, "mfa.gov.kg", ROGUE, start=datetime(2019, 1, 1))
        assert self.registry.delegation_at("mfa.gov.kg", datetime(2019, 2, 1)) == ROGUE

    def test_wrong_password_rejected(self):
        with pytest.raises(RegistrarError):
            self.registrar.update_delegation(
                Credential("holder", "wrong"), "mfa.gov.kg", ROGUE, start=T0
            )

    def test_two_factor_blocks_password_only(self):
        self.registrar.account("holder").two_factor = True
        with pytest.raises(RegistrarError):
            self.registrar.update_delegation(self.cred, "mfa.gov.kg", ROGUE, start=T0)
        # With the second factor it goes through.
        self.registrar.update_delegation(
            self.cred, "mfa.gov.kg", ROGUE, start=datetime(2019, 1, 1), second_factor=True
        )

    def test_cannot_touch_others_domains(self):
        self.registrar.create_account("other", "pw")
        with pytest.raises(RegistrarError):
            self.registrar.update_delegation(
                Credential("other", "pw"), "mfa.gov.kg", ROGUE, start=T0
            )

    def test_registry_lock_blocks_even_valid_credentials(self):
        self.registrar.account("holder").registry_lock = True
        with pytest.raises(RegistrarError):
            self.registrar.update_delegation(self.cred, "mfa.gov.kg", ROGUE, start=T0)

    def test_compromise_account_bypasses_two_factor(self):
        """Path (a) of the paper's capability development."""
        self.registrar.account("holder").two_factor = True
        stolen = self.registrar.compromise_account("holder")
        self.registrar.update_delegation(
            stolen, "mfa.gov.kg", ROGUE, start=datetime(2019, 1, 1)
        )
        assert self.registry.delegation_at("mfa.gov.kg", datetime(2019, 2, 1)) == ROGUE

    def test_registrar_compromise_path(self):
        """Path (b): full registrar compromise needs no account at all."""
        with pytest.raises(RegistrarError):
            self.registrar.privileged_update("mfa.gov.kg", ROGUE, start=T0)
        self.registrar.compromise_registrar()
        self.registrar.privileged_update(
            "mfa.gov.kg", ROGUE, start=datetime(2019, 1, 1)
        )
        assert self.registry.delegation_at("mfa.gov.kg", datetime(2019, 2, 1)) == ROGUE

    def test_unknown_account(self):
        with pytest.raises(RegistrarError):
            self.registrar.account("ghost")
