"""The ``repro.exec`` subsystem and the redesigned pipeline API.

Covers the PR's contracts: serial and process-pool backends must
produce identical reports on multiple seeds, the run manifest must
record wall time and cardinalities for every funnel stage, and the
:class:`PipelineInputs` bundle must round-trip through an exported
study directory.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.pipeline import HijackPipeline, PipelineInputs, build_stages
from repro.core.types import Verdict
from repro.exec import (
    MANIFEST_SCHEMA,
    ProcessPoolBackend,
    RunMetrics,
    SerialBackend,
    format_run_metrics,
)
from repro.io import save_as2org, save_ct, save_pdns, save_scan_dataset
from repro.world.scenarios import paper_study

STAGE_NAMES = (
    "deployment_maps",
    "classify",
    "shortlist",
    "inspect",
    "pivot",
    "assemble",
)
#: The five funnel steps of the paper (assemble is bookkeeping).
FUNNEL_STAGES = STAGE_NAMES[:5]


# ---------------------------------------------------------------------------
# backend equivalence


@pytest.mark.parametrize("seed", [7, 11, 13])
def test_backends_produce_identical_reports(seed):
    study = paper_study(seed=seed, n_background=40)
    serial_report = study.run_pipeline(backend=SerialBackend())
    pool_report = study.run_pipeline(backend=ProcessPoolBackend(jobs=2))
    # Dataclass equality covers funnel, findings, classifications,
    # shortlist, inspections, pivots, and the attacker sets.
    assert serial_report == pool_report


def test_default_run_matches_serial_backend(small_study, small_report):
    assert small_study.run_pipeline(backend=SerialBackend()) == small_report


def test_pool_backend_chunking_is_deterministic():
    backend = ProcessPoolBackend(jobs=3, chunk_size=2)
    items = [f"d{i}.com" for i in range(11)]
    first = backend._chunks(items, key=lambda d: d)
    second = backend._chunks(items, key=lambda d: d)
    assert first == second
    assert sorted(i for chunk in first for i in chunk) == list(range(11))
    assert all(len(chunk) <= 2 for chunk in first)


def test_pool_backend_rejects_bad_chunk_size():
    with pytest.raises(ValueError):
        ProcessPoolBackend(jobs=2, chunk_size=0)


def test_pool_backend_requires_start():
    with pytest.raises(RuntimeError):
        ProcessPoolBackend(jobs=2).map("classify", [1], key=str)


# ---------------------------------------------------------------------------
# run metrics / manifest


@pytest.fixture(scope="module")
def profiled():
    study = paper_study(seed=7, n_background=40)
    return study.profile_pipeline(backend=SerialBackend())


def test_manifest_covers_all_funnel_stages(profiled):
    _report, metrics = profiled
    assert tuple(stage.name for stage in metrics.stages) == STAGE_NAMES
    for name in FUNNEL_STAGES:
        stage = metrics.stage(name)
        assert stage.wall_seconds >= 0.0
        assert stage.n_in >= 0 and stage.n_out >= 0
    assert metrics.wall_seconds > 0.0
    assert metrics.backend == "serial"


def test_manifest_funnel_matches_report(profiled):
    report, metrics = profiled
    assert metrics.funnel["n_maps"] == report.funnel.n_maps
    assert metrics.funnel["n_hijacked"] == len(report.hijacked())
    maps_stage = metrics.stage("deployment_maps")
    assert maps_stage.n_out == report.funnel.n_maps
    inspect_stage = metrics.stage("inspect")
    assert inspect_stage.n_in == len(report.shortlist)


def test_manifest_round_trips_through_json(profiled, tmp_path):
    _report, metrics = profiled
    path = tmp_path / "manifest.json"
    metrics.write(path)
    loaded = RunMetrics.read(path)
    assert loaded.to_dict() == metrics.to_dict()
    assert loaded.to_dict()["schema"] == MANIFEST_SCHEMA


def test_manifest_rejects_unknown_schema(profiled):
    _report, metrics = profiled
    payload = metrics.to_dict()
    payload["schema"] = "something/else"
    with pytest.raises(ValueError):
        RunMetrics.from_dict(payload)


def test_format_run_metrics_renders_every_stage(profiled):
    _report, metrics = profiled
    rendered = format_run_metrics(metrics)
    assert "run profile:" in rendered
    for name in STAGE_NAMES:
        assert name in rendered


def test_format_run_metrics_header_shows_chunk_size(profiled):
    _report, metrics = profiled
    header = format_run_metrics(metrics).splitlines()[0]
    assert "chunk_size=auto" in header  # SerialBackend leaves it unset
    explicit = RunMetrics(backend="process", jobs=2, chunk_size=16)
    assert "chunk_size=16" in format_run_metrics(explicit).splitlines()[0]


def test_serial_stage_utilization_uses_single_process_budget():
    """A serial stage only ever had one process to keep busy; charging
    it jobs × wall would cap its utilization at 1/jobs."""
    from repro.exec.metrics import StageStats, TaskEvent

    metrics = RunMetrics(backend="process", jobs=4)
    events = [TaskEvent(pid=1, seconds=1.5, items=10, kernel="pivot")]
    stats = StageStats(n_in=10, n_out=10)
    serial = metrics.add_stage("pivot", 2.0, stats, events, parallel=False)
    assert serial.utilization == pytest.approx(1.5 / 2.0)
    parallel = metrics.add_stage("classify", 2.0, stats, events, parallel=True)
    assert parallel.utilization == pytest.approx(1.5 / (4 * 2.0))


def test_pool_manifest_records_worker_activity():
    study = paper_study(seed=7, n_background=40)
    _report, metrics = study.profile_pipeline(backend=ProcessPoolBackend(jobs=2))
    assert metrics.backend == "process"
    assert metrics.jobs == 2
    maps_stage = metrics.stage("deployment_maps")
    assert maps_stage.tasks > 1  # sharded, not one lump
    assert 1 <= maps_stage.workers_used <= 2
    assert 0.0 <= maps_stage.utilization <= 1.0


# ---------------------------------------------------------------------------
# the PipelineInputs construction API


def test_pipeline_inputs_round_trip_from_directory(small_study, small_report, tmp_path):
    save_scan_dataset(small_study.scan, tmp_path / "scan.jsonl")
    save_pdns(small_study.pdns, tmp_path / "pdns.jsonl")
    save_ct(small_study.ct_log, small_study.revocations, tmp_path / "ct.jsonl")
    save_as2org(small_study.as2org, tmp_path / "as2org.jsonl")

    inputs = PipelineInputs.from_directory(tmp_path)
    report = HijackPipeline(inputs).run()
    # Routing/geo tables are not part of the export, so compare the
    # verdicts rather than whole findings (attacker annotations fall
    # back to the scan metadata).
    assert {f.domain: f.verdict for f in report.findings} == {
        f.domain: f.verdict for f in small_report.findings
    }
    assert report.funnel.n_maps == small_report.funnel.n_maps


def test_from_directory_reports_missing_files(tmp_path):
    with pytest.raises(FileNotFoundError, match="missing"):
        PipelineInputs.from_directory(tmp_path)


def test_legacy_constructor_removed(small_study):
    with pytest.raises(TypeError):
        HijackPipeline(
            small_study.scan,
            small_study.pdns,
            small_study.crtsh,
            small_study.as2org,
            small_study.periods,
            small_study.routing,
            small_study.geo,
        )


def test_new_constructor_does_not_warn(small_study):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        HijackPipeline(PipelineInputs.from_study(small_study))


def test_constructor_rejects_non_bundle(small_study):
    with pytest.raises(TypeError, match="ScanDataset"):
        HijackPipeline(small_study.scan)


# ---------------------------------------------------------------------------
# report lookups


def test_finding_for_matches_linear_scan(paper_report):
    for finding in paper_report.findings:
        assert paper_report.finding_for(finding.domain) is finding
    assert paper_report.finding_for("not-a-victim.example") is None


def test_by_verdict_partitions_findings(paper_report):
    by_verdict = [
        finding
        for verdict in Verdict
        for finding in paper_report.by_verdict(verdict)
    ]
    assert sorted(f.domain for f in by_verdict) == sorted(
        f.domain for f in paper_report.findings
    )
    assert paper_report.hijacked() == paper_report.by_verdict(Verdict.HIJACKED)
    assert paper_report.targeted() == paper_report.by_verdict(Verdict.TARGETED)


def test_build_stages_names_are_stable():
    assert tuple(stage.name for stage in build_stages()) == STAGE_NAMES
