"""Golden-report regression harness.

The canonical encodings of the paper-scenario reports for seeds 7, 11,
and 13 are pinned under ``tests/golden/``.  Any behavioral drift in the
funnel — a different verdict, a reordered finding, a changed prune —
shows up as a byte diff against the pinned file, on either backend, and
the empty fault plan is required to be indistinguishable from no plan
at all.  The stage cache rides the same harness: cold (cache-filling)
and warm (cache-satisfied) runs must both match the pinned bytes, and
entries must be portable across backends.

A fault-degraded variant rides along: seed 11's study run under the
canonical data-channel plan (``GOLDEN_FAULT_SPEC``) is pinned too, so
the degraded funnel — blackout-holed pDNS, lagged CT, dropped scan
weeks — is locked byte-for-byte across backends and cache temperature
just like the pristine runs.

After an intentional behavior change, regenerate with::

    python -m repro.cli golden --update
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import (
    GOLDEN_BACKGROUND,
    GOLDEN_FAULT_SEED,
    GOLDEN_FAULT_SPEC,
    GOLDEN_SEEDS,
)
from repro.exec import ProcessPoolBackend, SerialBackend
from repro.faults import FaultPlan, FaultSpec
from repro.io.golden import (
    GOLDEN_SCHEMA,
    encode_report,
    golden_faults_filename,
    golden_filename,
)
from repro.world.scenarios import paper_study

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Both worker start methods the pool backend supports.  Fork inherits
#: the inputs copy-on-write; spawn ships them once through shared
#: memory — the golden bytes must not depend on which one ran.
START_METHODS = ("fork", "spawn")

_STUDIES: dict[int, object] = {}


def _study(seed: int):
    if seed not in _STUDIES:
        _STUDIES[seed] = paper_study(seed=seed, n_background=GOLDEN_BACKGROUND)
    return _STUDIES[seed]


def _golden_text(seed: int) -> str:
    path = GOLDEN_DIR / golden_filename(seed)
    assert path.exists(), (
        f"{path} missing — generate with `python -m repro.cli golden --update`"
    )
    return path.read_text()


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_golden_files_carry_schema(seed):
    data = json.loads(_golden_text(seed))
    assert data["schema"] == GOLDEN_SCHEMA
    assert data["findings"], "a pinned report with no findings is suspicious"


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_serial_run_matches_golden(seed):
    report = _study(seed).run_pipeline(backend=SerialBackend())
    assert encode_report(report) == _golden_text(seed)


@pytest.mark.parametrize("start_method", START_METHODS)
@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_process_pool_run_matches_golden(seed, start_method):
    report = _study(seed).run_pipeline(
        backend=ProcessPoolBackend(jobs=2, start_method=start_method)
    )
    assert encode_report(report) == _golden_text(seed)


@pytest.mark.parametrize("start_method", START_METHODS)
def test_shard_partitioned_run_matches_golden(start_method):
    """The shard scheduler — (lo, hi) ranges sliced worker-side — must
    be invisible in the bytes, under either start method."""
    report = _study(GOLDEN_SEEDS[0]).run_pipeline(
        backend=ProcessPoolBackend(
            jobs=2, start_method=start_method, partition="shard"
        )
    )
    assert encode_report(report) == _golden_text(GOLDEN_SEEDS[0])


@pytest.mark.parametrize(
    "faults",
    [None, "", FaultSpec(), FaultPlan.from_spec(None, seed=99)],
    ids=["none", "empty-string", "empty-spec", "empty-plan"],
)
def test_empty_fault_plan_is_byte_identical_serial(faults):
    """The tentpole invariant: an empty plan changes nothing, byte for byte."""
    report = _study(GOLDEN_SEEDS[0]).run_pipeline(
        backend=SerialBackend(), faults=faults
    )
    assert encode_report(report) == _golden_text(GOLDEN_SEEDS[0])


def test_empty_fault_plan_is_byte_identical_process_pool():
    report = _study(GOLDEN_SEEDS[0]).run_pipeline(
        backend=ProcessPoolBackend(jobs=2), faults=FaultPlan.from_spec(None)
    )
    assert encode_report(report) == _golden_text(GOLDEN_SEEDS[0])


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_cold_then_warm_cache_matches_golden_serial(seed, tmp_path):
    """The cache tentpole invariant, differentially: a cold run filling
    the cache and a warm run satisfied from it are both byte-identical
    to the pinned report."""
    from repro.cache import StageCache

    cache = StageCache(tmp_path / "cache")
    golden = _golden_text(seed)
    cold, cold_metrics = _study(seed).profile_pipeline(
        backend=SerialBackend(), cache=cache
    )
    assert encode_report(cold) == golden
    assert cold_metrics.cache["hits"] == 0
    assert cold_metrics.cache["stores"] > 0
    warm, warm_metrics = _study(seed).profile_pipeline(
        backend=SerialBackend(), cache=cache
    )
    assert encode_report(warm) == golden
    assert warm_metrics.cache["misses"] == 0
    assert warm_metrics.cache["stores"] == 0
    assert warm_metrics.cache["hits"] == cold_metrics.cache["stores"]


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_cold_then_warm_cache_matches_golden_process_pool(seed, tmp_path):
    from repro.cache import StageCache

    cache = StageCache(tmp_path / "cache")
    golden = _golden_text(seed)
    cold = _study(seed).run_pipeline(
        backend=ProcessPoolBackend(jobs=2), cache=cache
    )
    assert encode_report(cold) == golden
    warm, warm_metrics = _study(seed).profile_pipeline(
        backend=ProcessPoolBackend(jobs=2), cache=cache
    )
    assert encode_report(warm) == golden
    assert warm_metrics.cache["misses"] == 0


def test_cache_entries_are_backend_portable(tmp_path):
    """Entries written by a serial run satisfy a process-pool run (and
    the other way around) — fingerprints carry no backend material."""
    from repro.cache import StageCache

    cache = StageCache(tmp_path / "cache")
    golden = _golden_text(GOLDEN_SEEDS[0])
    _study(GOLDEN_SEEDS[0]).run_pipeline(backend=SerialBackend(), cache=cache)
    warm, metrics = _study(GOLDEN_SEEDS[0]).profile_pipeline(
        backend=ProcessPoolBackend(jobs=2), cache=cache
    )
    assert encode_report(warm) == golden
    assert metrics.cache["misses"] == 0
    assert metrics.cache["hits"] > 0


def _fault_golden_text() -> str:
    path = GOLDEN_DIR / golden_faults_filename(GOLDEN_FAULT_SEED)
    assert path.exists(), (
        f"{path} missing — generate with `python -m repro.cli golden --update`"
    )
    return path.read_text()


def _fault_plan() -> FaultPlan:
    return FaultPlan.from_spec(GOLDEN_FAULT_SPEC, seed=GOLDEN_FAULT_SEED)


def test_fault_golden_is_a_real_degradation():
    """The degraded pin must differ from the fault-free pin for the same
    seed and still carry findings — a no-op or wiped-out plan pins
    nothing worth pinning."""
    degraded = json.loads(_fault_golden_text())
    pristine = json.loads(_golden_text(GOLDEN_FAULT_SEED))
    assert degraded["schema"] == GOLDEN_SCHEMA
    assert degraded["findings"]
    assert degraded != pristine


def test_fault_degraded_run_matches_golden_serial():
    report = _study(GOLDEN_FAULT_SEED).run_pipeline(
        backend=SerialBackend(), faults=_fault_plan()
    )
    assert encode_report(report) == _fault_golden_text()


@pytest.mark.parametrize("start_method", START_METHODS)
def test_fault_degraded_run_matches_golden_process_pool(start_method):
    """Degradation happens before fan-out, so the pooled funnel walks
    the same degraded tables and must reproduce the pin byte for byte —
    under fork and under spawn's shared-memory input transport alike."""
    report = _study(GOLDEN_FAULT_SEED).run_pipeline(
        backend=ProcessPoolBackend(jobs=2, start_method=start_method),
        faults=_fault_plan(),
    )
    assert encode_report(report) == _fault_golden_text()


def test_fault_degraded_cold_then_warm_cache_matches_golden(tmp_path):
    """The degraded world is cacheable too: fault parameters are part of
    the stage fingerprints, so a warm run restores the degraded report —
    including the classify/assemble wire products — byte-identically."""
    from repro.cache import StageCache

    cache = StageCache(tmp_path / "cache")
    golden = _fault_golden_text()
    cold, cold_metrics = _study(GOLDEN_FAULT_SEED).profile_pipeline(
        backend=SerialBackend(), faults=_fault_plan(), cache=cache
    )
    assert encode_report(cold) == golden
    assert cold_metrics.cache["stores"] > 0
    warm, warm_metrics = _study(GOLDEN_FAULT_SEED).profile_pipeline(
        backend=SerialBackend(), faults=_fault_plan(), cache=cache
    )
    assert encode_report(warm) == golden
    assert warm_metrics.cache["misses"] == 0
    by_name = {s.name: s for s in warm_metrics.stages}
    for name in ("classify", "shortlist", "inspect", "assemble"):
        assert by_name[name].cached is True


def test_fault_cache_does_not_collide_with_pristine(tmp_path):
    """A cache shared between a degraded and a fault-free run of the
    same study must never cross-serve entries."""
    from repro.cache import StageCache

    cache = StageCache(tmp_path / "cache")
    degraded = _study(GOLDEN_FAULT_SEED).run_pipeline(
        backend=SerialBackend(), faults=_fault_plan(), cache=cache
    )
    assert encode_report(degraded) == _fault_golden_text()
    pristine = _study(GOLDEN_FAULT_SEED).run_pipeline(
        backend=SerialBackend(), cache=cache
    )
    assert encode_report(pristine) == _golden_text(GOLDEN_FAULT_SEED)


def test_traced_run_is_byte_identical_serial():
    """Observability must be read-only: an enabled tracer cannot change
    a single byte of the report."""
    from repro.obs import Tracer

    tracer = Tracer()
    report, _metrics = _study(GOLDEN_SEEDS[0]).profile_pipeline(
        backend=SerialBackend(), tracer=tracer
    )
    assert encode_report(report) == _golden_text(GOLDEN_SEEDS[0])
    assert tracer.spans  # it really was tracing


def test_traced_run_is_byte_identical_process_pool():
    from repro.obs import Tracer

    tracer = Tracer()
    report, _metrics = _study(GOLDEN_SEEDS[0]).profile_pipeline(
        backend=ProcessPoolBackend(jobs=2), tracer=tracer
    )
    assert encode_report(report) == _golden_text(GOLDEN_SEEDS[0])
    assert tracer.worker_pids()


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_ledger_and_events_run_is_byte_identical_serial(seed, tmp_path):
    """The telemetry layer is read-only too: recording a run into the
    ledger while streaming heartbeat events cannot change a byte."""
    from repro.obs import RunLedger
    from repro.obs.events import JsonlEventSink

    ledger = RunLedger(tmp_path / "ledger")
    sink = JsonlEventSink(tmp_path / "events.jsonl")
    try:
        report, _metrics = _study(seed).profile_pipeline(
            backend=SerialBackend(), events=sink, ledger=ledger, memory=True
        )
    finally:
        sink.close()
    assert encode_report(report) == _golden_text(seed)
    entry = ledger.latest()
    assert entry is not None
    record = ledger.load(entry.run_id)
    assert record.report_digest  # the ledger pinned what it watched


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_ledger_and_events_run_is_byte_identical_process_pool(seed, tmp_path):
    from repro.obs import RunLedger
    from repro.obs.events import JsonlEventSink, read_events

    ledger = RunLedger(tmp_path / "ledger")
    sink = JsonlEventSink(tmp_path / "events.jsonl")
    try:
        report, _metrics = _study(seed).profile_pipeline(
            backend=ProcessPoolBackend(jobs=2), events=sink, ledger=ledger
        )
    finally:
        sink.close()
    assert encode_report(report) == _golden_text(seed)
    kinds = [e.get("event") for e in read_events(tmp_path / "events.jsonl")]
    assert "run_finish" in kinds
    assert ledger.latest() is not None


def test_fault_degraded_ledger_run_matches_golden_both_backends(tmp_path):
    """Seed 11 under the canonical data-channel plan, instrumented: the
    degraded pin survives ledger + events on both backends, and the two
    records share a report digest."""
    from repro.obs import RunLedger
    from repro.obs.events import JsonlEventSink

    ledger = RunLedger(tmp_path / "ledger")
    digests = []
    for backend in (SerialBackend(), ProcessPoolBackend(jobs=2)):
        sink = JsonlEventSink(tmp_path / "events.jsonl")
        try:
            report, _metrics = _study(GOLDEN_FAULT_SEED).profile_pipeline(
                backend=backend, faults=_fault_plan(),
                events=sink, ledger=ledger,
            )
        finally:
            sink.close()
        assert encode_report(report) == _fault_golden_text()
        digests.append(ledger.load(ledger.latest().run_id).report_digest)
    assert digests[0] == digests[1]


# -- segment-backed goldens ----------------------------------------------------


def _segment_inputs(seed: int, directory: Path):
    from repro.core.pipeline import PipelineInputs
    from repro.segments import load_segment_inputs, write_segments

    write_segments(PipelineInputs.from_study(_study(seed)), directory)
    return load_segment_inputs(directory)


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_segment_backed_run_matches_golden_serial(seed, tmp_path):
    """Storage is not semantics: the funnel over a mapped segment bundle
    reproduces the in-RAM pinned bytes exactly."""
    from repro.core.pipeline import HijackPipeline

    inputs = _segment_inputs(seed, tmp_path / "segments")
    report = HijackPipeline(inputs).run(SerialBackend())
    assert encode_report(report) == _golden_text(seed)


@pytest.mark.parametrize("start_method", START_METHODS)
def test_segment_backed_shard_pool_matches_golden(start_method, tmp_path):
    """The full new data plane at once — mapped segments, shard ranges,
    and (under spawn) shared-memory input transport — against the pin."""
    from repro.core.pipeline import HijackPipeline

    inputs = _segment_inputs(GOLDEN_SEEDS[0], tmp_path / "segments")
    backend = ProcessPoolBackend(
        jobs=2, start_method=start_method, partition="shard"
    )
    report = HijackPipeline(inputs).run(backend)
    assert encode_report(report) == _golden_text(GOLDEN_SEEDS[0])


def test_segment_backed_cold_then_warm_cache_matches_golden(tmp_path):
    """Segment-backed inputs fingerprint identically to their in-RAM
    source, so a cache filled by an in-RAM run satisfies a segment-backed
    one (and the reports stay pinned)."""
    from repro.cache import StageCache
    from repro.core.pipeline import HijackPipeline

    cache = StageCache(tmp_path / "cache")
    golden = _golden_text(GOLDEN_SEEDS[0])
    _study(GOLDEN_SEEDS[0]).run_pipeline(backend=SerialBackend(), cache=cache)
    inputs = _segment_inputs(GOLDEN_SEEDS[0], tmp_path / "segments")
    warm, metrics = HijackPipeline(inputs).profile(
        SerialBackend(), cache=cache
    )
    assert encode_report(warm) == golden
    assert metrics.cache["misses"] == 0
    assert metrics.cache["hits"] > 0
