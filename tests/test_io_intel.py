"""Tests for CT-log and AS2Org persistence."""

from datetime import date

from repro.io.intel import load_as2org, load_ct, save_as2org, save_ct
from repro.tls.revocation import RevocationStatus


class TestCtRoundtrip:
    def test_search_results_survive(self, small_study, tmp_path):
        path = tmp_path / "ct.jsonl"
        n = save_ct(small_study.ct_log, small_study.revocations, path)
        assert n == len(small_study.ct_log)

        _log, _revocations, crtsh = load_ct(path)
        original = small_study.crtsh.search("example-ministry.gr")
        replayed = crtsh.search("example-ministry.gr")
        assert [e.crtsh_id for e in original] == [e.crtsh_id for e in replayed]
        assert [e.certificate.fingerprint for e in original] == [
            e.certificate.fingerprint for e in replayed
        ]

    def test_revocation_facts_survive(self, tmp_path):
        from repro.ca.authority import default_authorities
        from repro.ct.log import CTLog
        from repro.tls.revocation import RevocationRegistry

        revocations = RevocationRegistry()
        authorities = default_authorities(revocations)
        log = CTLog()
        cert = authorities["Comodo"].issue(("mail.x.com",), on=date(2019, 1, 1))
        cert, _ = log.submit(cert, date(2019, 1, 1))
        authorities["Comodo"].revoke(cert, on=date(2019, 2, 1))

        path = tmp_path / "ct.jsonl"
        save_ct(log, revocations, path)
        _log, _loaded_rev, crtsh = load_ct(path)
        entry = crtsh.lookup_id(cert.crtsh_id)
        assert entry.revocation is RevocationStatus.REVOKED

    def test_ocsp_asymmetry_survives(self, tmp_path):
        from repro.ca.authority import default_authorities
        from repro.ct.log import CTLog
        from repro.tls.revocation import RevocationRegistry

        revocations = RevocationRegistry()
        authorities = default_authorities(revocations)
        log = CTLog()
        cert = authorities["Let's Encrypt"].issue(("mail.x.com",), on=date(2019, 1, 1))
        cert, _ = log.submit(cert, date(2019, 1, 1))
        authorities["Let's Encrypt"].revoke(cert, on=date(2019, 2, 1))

        path = tmp_path / "ct.jsonl"
        save_ct(log, revocations, path)
        _log, _rev, crtsh = load_ct(path)
        # Retroactively unknowable, exactly as before the round-trip.
        assert crtsh.lookup_id(cert.crtsh_id).revocation is RevocationStatus.UNKNOWN


class TestAs2OrgRoundtrip:
    def test_relations_survive(self, tmp_path):
        from repro.ipintel.as2org import AS2Org

        mapping = AS2Org()
        mapping.assign(16509, "amazon", "Amazon.com")
        mapping.assign(14618, "amazon")
        mapping.assign(15169, "google", "Google LLC")

        path = tmp_path / "as2org.jsonl"
        save_as2org(mapping, path)
        loaded = load_as2org(path)
        assert loaded.related(16509, 14618)
        assert not loaded.related(16509, 15169)
        assert loaded.org_name("amazon") == "Amazon.com"
        assert len(loaded) == 3
