"""Property-based tests for the fault layer (hypothesis).

Three laws the design promises:

1. a fault plan is a pure function of ``(seed, spec)`` — two plans built
   from the same pair make identical decisions everywhere;
2. funnel breadth (``n_maps``, ``n_domains``) is monotonically
   non-increasing in the scan-drop rate, because keyed-hash draws nest:
   every scan dropped at rate r is also dropped at every rate > r;
3. no fault plan can conjure a HIJACKED verdict out of a benign world —
   faults only ever *remove* evidence.
"""

from __future__ import annotations

from datetime import date, timedelta
from functools import lru_cache

from hypothesis import given, settings, strategies as st

from repro.core.types import Verdict
from repro.faults import FaultPlan, FaultSpec

_PROBE_DATES = tuple(date(2019, 1, 7) + timedelta(days=7 * i) for i in range(60))

_spec_strategy = st.builds(
    FaultSpec,
    drop_weeks=st.floats(0.0, 1.0, allow_nan=False),
    drop_ports=st.floats(0.0, 1.0, allow_nan=False),
    pdns_blackouts=st.integers(0, 4),
    ct_delay_days=st.integers(0, 120),
    routing_stale=st.floats(0.0, 1.0, allow_nan=False),
    worker_crash=st.floats(0.0, 1.0, allow_nan=False),
)


@given(seed=st.integers(0, 2**63 - 1), spec=_spec_strategy)
@settings(max_examples=40, deadline=None)
def test_same_seed_and_spec_give_identical_plans(seed, spec):
    a = FaultPlan.from_spec(spec, seed=seed)
    b = FaultPlan.from_spec(spec, seed=seed)
    assert [a.drops_scan(d) for d in _PROBE_DATES] == [
        b.drops_scan(d) for d in _PROBE_DATES
    ]
    assert a.blackout_windows(_PROBE_DATES[0], _PROBE_DATES[-1]) == (
        b.blackout_windows(_PROBE_DATES[0], _PROBE_DATES[-1])
    )
    assert [
        a.worker_fault("deployment", i, attempt) for i in range(20) for attempt in (0, 1)
    ] == [
        b.worker_fault("deployment", i, attempt) for i in range(20) for attempt in (0, 1)
    ]


@given(
    seed=st.integers(0, 2**32),
    low=st.floats(0.0, 1.0, allow_nan=False),
    high=st.floats(0.0, 1.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_dropped_scans_nest_as_rate_rises(seed, low, high):
    low, high = sorted((low, high))
    drops_low = {
        d
        for d in _PROBE_DATES
        if FaultPlan.from_spec(FaultSpec(drop_weeks=low), seed=seed).drops_scan(d)
    }
    drops_high = {
        d
        for d in _PROBE_DATES
        if FaultPlan.from_spec(FaultSpec(drop_weeks=high), seed=seed).drops_scan(d)
    }
    assert drops_low <= drops_high


_DROP_RATES = (0.0, 0.15, 0.4, 0.7, 0.95)


@lru_cache(maxsize=None)
def _small_study():
    from repro.world.scenarios import small_world
    from repro.world.sim import run_study

    return run_study(small_world())


@lru_cache(maxsize=None)
def _funnel_at_drop_rate(rate: float):
    plan = FaultPlan.from_spec(FaultSpec(drop_weeks=rate), seed=21)
    report = _small_study().run_pipeline(faults=plan)
    return report.funnel.n_maps, report.funnel.n_domains


@given(rates=st.tuples(st.sampled_from(_DROP_RATES), st.sampled_from(_DROP_RATES)))
@settings(max_examples=25, deadline=None)
def test_funnel_breadth_monotone_in_scan_drop_rate(rates):
    low, high = sorted(rates)
    maps_low, domains_low = _funnel_at_drop_rate(low)
    maps_high, domains_high = _funnel_at_drop_rate(high)
    # More dropped scans can only erase (domain, period) visibility,
    # never create it: breadth is non-increasing in the drop rate.
    assert maps_high <= maps_low
    assert domains_high <= domains_low


@lru_cache(maxsize=None)
def _benign_study():
    from repro.world.randomized import RandomWorldConfig, random_world
    from repro.world.sim import run_study

    world = random_world(
        seed=5, config=RandomWorldConfig(n_victims=0, n_background=12)
    )
    return run_study(world)


@given(
    fault_seed=st.integers(0, 2**16),
    drop_weeks=st.sampled_from((0.0, 0.3, 0.6)),
    blackouts=st.integers(0, 2),
    ct_delay=st.sampled_from((0, 60)),
)
@settings(max_examples=8, deadline=None)
def test_no_fault_plan_frames_a_benign_world(fault_seed, drop_weeks, blackouts, ct_delay):
    spec = FaultSpec(
        drop_weeks=drop_weeks, pdns_blackouts=blackouts, ct_delay_days=ct_delay
    )
    report = _benign_study().run_pipeline(
        faults=FaultPlan.from_spec(spec, seed=fault_seed)
    )
    verdicts = {f.verdict for f in report.findings}
    assert Verdict.HIJACKED not in verdicts  # faults only remove evidence
