"""Tests for study-generation options: sensor degradation, scan cadence,
port loss, and pDNS volume knobs."""

from datetime import date

from repro.world.randomized import RandomWorldConfig, random_world
from repro.world.scenarios import small_world
from repro.world.sim import run_study
from repro.world.world import World


def tiny_world():
    return small_world(seed=3, n_background=5)


class TestPdnsOptions:
    def test_lower_coverage_fewer_rows(self):
        full = run_study(tiny_world(), pdns_coverage=1.0)
        sparse = run_study(tiny_world(), pdns_coverage=0.3)
        assert len(sparse.pdns) <= len(full.pdns)

    def test_degraded_sensors_can_lose_the_attack(self):
        """With dense observation subject to coverage, zero coverage means
        zero passive DNS — and the T1 confirmation disappears."""
        study = run_study(tiny_world(), pdns_coverage=0.0, degraded_sensors=True)
        assert len(study.pdns) == 0
        report = study.run_pipeline()
        finding = report.finding_for("example-ministry.gr")
        # No pDNS: either entirely missed or only inconclusive (the
        # lone campaign has no shared-IP peer for a T1* upgrade).
        assert finding is None

    def test_default_dense_observation_ignores_coverage(self):
        """The default models strong vendor vantage: even at low ambient
        coverage the hijack windows are observed."""
        study = run_study(tiny_world(), pdns_coverage=0.3)
        report = study.run_pipeline()
        assert report.finding_for("example-ministry.gr") is not None

    def test_queries_per_day_scales_volume(self):
        light = run_study(tiny_world(), pdns_queries_per_day=1)
        heavy = run_study(tiny_world(), pdns_queries_per_day=8)
        light_hits = sum(r.count for r in light.pdns.all_records())
        heavy_hits = sum(r.count for r in heavy.pdns.all_records())
        assert heavy_hits > light_hits


class TestScanOptions:
    def test_port_loss_zero_is_superset(self):
        lossless = run_study(tiny_world(), port_loss=0.0)
        lossy = run_study(tiny_world(), port_loss=0.10)
        assert len(lossless.scan) >= len(lossy.scan)

    def test_daily_cadence_multiplies_scan_dates(self):
        weekly = World(seed=1, start=date(2019, 1, 1), end=date(2019, 3, 31))
        daily = World(
            seed=1, start=date(2019, 1, 1), end=date(2019, 3, 31),
            scan_interval_days=1,
        )
        assert len(daily.scan_dates) == 90
        assert len(weekly.scan_dates) == 13

    def test_randomized_world_respects_config_counts(self):
        config = RandomWorldConfig(n_victims=3, n_background=7)
        world = random_world(seed=8, config=config)
        assert len(world.ground_truth) == 3
