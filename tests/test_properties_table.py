"""Differential property tests: columnar data plane vs the row path.

Arbitrary multi-domain scan histories are generated as presence specs,
and every query the pipeline makes of a dataset — the row view, presence
counting, fault degradation, and full deployment mapping — is answered
twice: once through the columnar ScanTable kernels and once through the
original row-at-a-time reference implementations.  The two answers must
be identical, including ordering, which is the equivalence the golden
byte-identity acceptance rests on.
"""

from datetime import date

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deployment import build_deployment_map, build_deployment_maps
from repro.io.datasets import load_scan_dataset, save_scan_dataset
from repro.scan.annotate import Annotator
from repro.scan.dataset import ScanDataset
from repro.scan.engine import RawScanObservation
from repro.tls.truststore import TrustStore

from tests.helpers import ALL_PERIODS, PERIOD, ScanSketch, make_cert, scan_dates

DATES = scan_dates()
DOMAINS = ("alpha.com", "beta.org", "gamma.net")

# One presence run: (domain, asn selector, first scan index, length, cert).
_presence = st.tuples(
    st.integers(min_value=0, max_value=2),   # domain selector
    st.integers(min_value=0, max_value=4),   # asn selector
    st.integers(min_value=0, max_value=24),  # first scan index
    st.integers(min_value=1, max_value=26),  # run length
    st.integers(min_value=0, max_value=3),   # certificate selector
)
_history = st.lists(_presence, min_size=1, max_size=8)


def _dataset_from(history) -> ScanDataset:
    sketches = {d: ScanSketch(d) for d in DOMAINS}
    certs = {
        (d, i): make_cert(f"www{i}.{d}", 500 + 10 * di + i, date(2018, 12, 1))
        for di, d in enumerate(DOMAINS)
        for i in range(4)
    }
    for dom_sel, asn_sel, start, length, cert_sel in history:
        domain = DOMAINS[dom_sel]
        dates = DATES[start : min(start + length, len(DATES))]
        if not dates:
            continue
        sketches[domain].presence(
            dates,
            f"10.{dom_sel}.{asn_sel}.1",
            1000 + asn_sel,
            "US" if asn_sel % 2 == 0 else "DE",
            certs[(domain, cert_sel)],
        )
    records = [r for sketch in sketches.values() for r in sketch.records]
    return ScanDataset(records, DATES)


def _groups_of(map_):
    return [
        [
            (g.domain, g.scan_date, g.asn, g.ips, g.cert_fingerprints, g.countries)
            for g in deployment.groups
        ]
        for deployment in map_.deployments
    ]


class TestKernelEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(_history)
    def test_columnar_maps_equal_row_path(self, history):
        """build_deployment_maps (encode+decode) == the row-path oracle,
        including deployment order, group order, and attached records."""
        dataset = _dataset_from(history)
        columnar = build_deployment_maps(dataset, ALL_PERIODS)
        for domain in dataset.domains():
            records = list(dataset.records_for(domain))
            for period in ALL_PERIODS:
                dates_in_period = dataset.scan_dates_in(period)
                has_rows = any(period.contains(r.scan_date) for r in records)
                key = (domain, period.index)
                if not dates_in_period or not has_rows:
                    assert key not in columnar
                    continue
                oracle = build_deployment_map(
                    domain, records, period, dates_in_period
                )
                assert _groups_of(columnar[key]) == _groups_of(oracle)
                assert columnar[key].records == oracle.records

    @settings(max_examples=50, deadline=None)
    @given(_history)
    def test_records_for_matches_row_store_order(self, history):
        dataset = _dataset_from(history)
        for domain in dataset.domains():
            view = dataset.records_for(domain)
            expected = sorted(
                (r for r in dataset.records() if domain in r.base_domains),
                key=lambda r: (r.scan_date, r.ip),
            )
            assert list(view) == expected

    @settings(max_examples=50, deadline=None)
    @given(_history)
    def test_presence_matches_definition(self, history):
        dataset = _dataset_from(history)
        for domain in dataset.domains():
            seen = {
                r.scan_date
                for r in dataset.records_for(domain)
                if PERIOD.contains(r.scan_date)
            }
            expected = len(seen) / len(dataset.scan_dates_in(PERIOD))
            assert dataset.presence(domain, PERIOD) == expected


class TestDegradedEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(_history, st.sets(st.integers(min_value=0, max_value=25), max_size=6))
    def test_degraded_equals_record_filter(self, history, drop_indices):
        """Columnar degradation == filtering the record stream by hand."""
        dataset = _dataset_from(history)
        drop_dates = {DATES[i] for i in drop_indices}
        degraded = dataset.degraded(
            drop_dates=drop_dates,
            drop_row=lambda ordinal, ip, fp: ip.endswith(".0.1"),
        )
        expected = [
            r
            for r in dataset.records()
            if r.scan_date not in drop_dates and not r.ip.endswith(".0.1")
        ]
        assert degraded.records() == expected
        assert degraded.known_missing_dates == frozenset(drop_dates)
        # The derived table's ids must equal a fresh build's (the
        # cache-safety invariant select() re-interning provides).
        rebuilt = ScanDataset(expected, DATES)
        assert list(degraded.table.row_dicts()) == list(rebuilt.table.row_dicts())
        for column in ("ip_id", "asn_id", "cert_id", "country_id"):
            assert getattr(degraded.table, column) == getattr(rebuilt.table, column)


class TestDoubleDegradation:
    @settings(max_examples=50, deadline=None)
    @given(
        _history,
        st.sets(st.integers(min_value=0, max_value=25), max_size=4),
        st.sets(st.integers(min_value=0, max_value=25), max_size=4),
    )
    def test_degrading_a_degraded_dataset(self, history, first_drop, second_drop):
        """Regression: ``select()`` on an already-derived table.  The
        first degradation memoizes ``records_for`` views and per-row
        record objects on its table; the second must re-intern from the
        surviving rows, never serve a stale parent memo, and fold both
        rounds' dropped scans into ``known_missing_dates``."""
        dataset = _dataset_from(history)
        drop_a = {DATES[i] for i in first_drop}
        once = dataset.degraded(drop_dates=drop_a)
        # Prime every memo on the intermediate table before deriving
        # from it again — the regression this pins was only reachable
        # with warm memos.
        for domain in once.domains():
            once.records_for(domain)
        once.records()
        drop_b = {DATES[i] for i in second_drop}
        twice = once.degraded(
            drop_dates=drop_b,
            drop_row=lambda ordinal, ip, fp: ip.endswith(".0.1"),
        )
        expected = [
            r
            for r in dataset.records()
            if r.scan_date not in drop_a
            and r.scan_date not in drop_b
            and not r.ip.endswith(".0.1")
        ]
        assert twice.records() == expected
        assert twice.known_missing_dates == frozenset(drop_a | drop_b)
        for domain in dataset.domains():
            want = sorted(
                (r for r in expected if domain in r.base_domains),
                key=lambda r: (r.scan_date, r.ip),
            )
            assert list(twice.records_for(domain)) == want
        rebuilt = ScanDataset(expected, DATES)
        assert list(twice.table.row_dicts()) == list(rebuilt.table.row_dicts())
        for column in ("ip_id", "asn_id", "cert_id", "country_id"):
            assert getattr(twice.table, column) == getattr(rebuilt.table, column)
        # The intermediate view is untouched by the second derivation.
        assert once.records() == [
            r for r in dataset.records() if r.scan_date not in drop_a
        ]


class TestIORoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(_history)
    def test_save_load_preserves_columns_and_interning(self, tmp_path_factory, history):
        dataset = _dataset_from(history)
        path = tmp_path_factory.mktemp("ds") / "scan.jsonl"
        save_scan_dataset(dataset, path)
        loaded = load_scan_dataset(path)
        assert list(loaded.table.row_dicts()) == list(dataset.table.row_dicts())
        assert loaded.scan_dates == dataset.scan_dates
        assert loaded.records() == dataset.records()
        # Interning survives the trip: one certificate object per
        # fingerprint, pools sized identically.
        assert len(loaded.table.certs) == len(dataset.table.certs)
        assert loaded.table.ips == dataset.table.ips


class _CountingRouting:
    def __init__(self, asn: int = 64500) -> None:
        self.lookups = 0
        self._asn = asn

    def lookup(self, ip: str):
        self.lookups += 1
        return self._asn


class _CountingGeo:
    def __init__(self) -> None:
        self.lookups = 0

    def lookup(self, ip: str):
        self.lookups += 1
        return "US"


class TestAnnotatorMemoization:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),   # ip selector
                st.integers(min_value=0, max_value=12),  # scan index
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_ip_intel_paid_once_per_distinct_ip(self, hits):
        """Routing/geo lookups are memoized across scan dates: the join
        cost is one lookup per distinct IP, not one per observation."""
        cert = make_cert("www.memo.com", 900, date(2018, 12, 1))
        observations = [
            RawScanObservation(
                scan_date=DATES[day], ip=f"10.9.0.{ip_sel}", port=443, certificate=cert
            )
            for ip_sel, day in hits
        ]
        routing = _CountingRouting()
        geo = _CountingGeo()
        annotator = Annotator(routing, geo, TrustStore())
        records = annotator.annotate(observations)
        distinct_ips = len({o.ip for o in observations})
        assert routing.lookups == distinct_ips
        assert geo.lookups == distinct_ips
        assert all(r.asn == 64500 and r.country == "US" for r in records)

    def test_annotate_dataset_equals_annotate(self):
        cert = make_cert("www.memo.com", 901, date(2018, 12, 1))
        observations = [
            RawScanObservation(
                scan_date=DATES[i % 5], ip=f"10.9.1.{i % 3}", port=443, certificate=cert
            )
            for i in range(12)
        ]
        annotator = Annotator(_CountingRouting(), _CountingGeo(), TrustStore())
        via_records = ScanDataset(annotator.annotate(observations), DATES)
        via_table = Annotator(
            _CountingRouting(), _CountingGeo(), TrustStore()
        ).annotate_dataset(observations, DATES)
        assert via_table.records() == via_records.records()
        assert list(via_table.table.row_dicts()) == list(
            via_records.table.row_dicts()
        )
