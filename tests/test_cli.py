"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_paper_defaults(self):
        args = build_parser().parse_args(["paper"])
        assert args.seed == 7
        assert args.background == 150
        assert args.save is None

    def test_hunt_requires_exactly_one_input(self, tmp_path, capsys):
        # No input source, and both at once, are each a usage error.
        assert main(["hunt"]) == 2
        assert main(["hunt", "--dir", str(tmp_path), "--segments", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "exactly one of" in err


class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "example-ministry.gr" in out
        assert "hijacked: 1" in out

    def test_hunt_missing_directory(self, tmp_path, capsys):
        assert main(["hunt", "--dir", str(tmp_path)]) == 2
        assert "missing" in capsys.readouterr().err

    def test_export_then_hunt_roundtrip(self, small_study, small_report, tmp_path, capsys):
        """Exporting a study and hunting over the export reproduces the
        verdicts — the CLI's core promise."""
        from repro.io import (
            save_as2org,
            save_ct,
            save_pdns,
            save_scan_dataset,
        )

        save_scan_dataset(small_study.scan, tmp_path / "scan.jsonl")
        save_pdns(small_study.pdns, tmp_path / "pdns.jsonl")
        save_ct(small_study.ct_log, small_study.revocations, tmp_path / "ct.jsonl")
        save_as2org(small_study.as2org, tmp_path / "as2org.jsonl")

        out_path = tmp_path / "findings.jsonl"
        assert main(["hunt", "--dir", str(tmp_path), "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "example-ministry.gr" in out
        assert "T1" in out

        from repro.io import load_findings

        findings = load_findings(out_path)
        assert [f.domain for f in findings] == [
            f.domain for f in small_report.findings
        ]

    def test_gallery_runs(self, capsys):
        assert main(["gallery"]) == 0
        out = capsys.readouterr().out
        assert "TRANSIENT" in out
        assert "S1" in out

    def test_robustness_runs(self, capsys):
        assert main(["robustness", "--trials", "1", "--victims", "4"]) == 0
        out = capsys.readouterr().out
        assert "mean recall 1.000" in out

    def test_sweep_parser_choices(self):
        args = build_parser().parse_args(["sweep", "--parameter", "window"])
        assert args.parameter == "window"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--parameter", "bogus"])

    def test_timeline_requires_domain(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["timeline"])


def _export_study(study, directory):
    from repro.io import save_as2org, save_ct, save_pdns, save_scan_dataset

    save_scan_dataset(study.scan, directory / "scan.jsonl")
    save_pdns(study.pdns, directory / "pdns.jsonl")
    save_ct(study.ct_log, study.revocations, directory / "ct.jsonl")
    save_as2org(study.as2org, directory / "as2org.jsonl")


class TestLoggingFlags:
    def test_quiet_accepted_before_and_after_subcommand(self):
        assert build_parser().parse_args(["-q", "quickstart"]).quiet is True
        assert build_parser().parse_args(["quickstart", "-q"]).quiet is True
        assert build_parser().parse_args(["quickstart"]).quiet is False

    def test_log_level_after_subcommand_overrides_default(self):
        args = build_parser().parse_args(["paper", "--log-level", "debug"])
        assert args.log_level == "debug"
        assert build_parser().parse_args(["paper"]).log_level == "info"

    def test_progress_goes_to_stderr_not_stdout(self, small_study, tmp_path, capsys):
        _export_study(small_study, tmp_path)
        assert main(["hunt", "--dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "loading study from" in captured.err
        assert "loading study from" not in captured.out
        assert "example-ministry.gr" in captured.out  # tables stay on stdout

    def test_quiet_silences_progress(self, small_study, tmp_path, capsys):
        _export_study(small_study, tmp_path)
        assert main(["hunt", "--dir", str(tmp_path), "-q"]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "example-ministry.gr" in captured.out

    def test_no_handler_left_behind(self, small_study, tmp_path):
        import logging

        _export_study(small_study, tmp_path)
        before = list(logging.getLogger().handlers)
        assert main(["hunt", "--dir", str(tmp_path), "-q"]) == 0
        assert logging.getLogger().handlers == before


class TestTraceFlag:
    def test_hunt_trace_writes_chrome_and_spans(self, small_study, tmp_path, capsys):
        import json

        _export_study(small_study, tmp_path)
        trace_path = tmp_path / "trace.json"
        assert main(["hunt", "--dir", str(tmp_path), "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        data = json.loads(trace_path.read_text())
        events = data["traceEvents"]
        assert events
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "run" in names
        assert any(name.startswith("chunk:") for name in names)
        spans_path = tmp_path / "trace.json.spans.jsonl"
        assert len(spans_path.read_text().splitlines()) >= len(names)


class TestExplain:
    def test_explain_prints_the_funnel_trail(self, capsys):
        assert main(["explain", "adpolice.gov.ae", "--background", "40", "-q"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("provenance: adpolice.gov.ae")
        for stage in ("[classify]", "[shortlist]", "[inspect]", "[assemble]"):
            assert stage in out
        assert "pdns" in out

    def test_explain_unknown_domain_hints_and_fails(self, capsys):
        assert main(["explain", "nope.example", "--background", "40", "-q"]) == 2
        err = capsys.readouterr().err
        assert "not an identified victim" in err
        assert "hint: try one of" in err

    def test_explain_requires_domain(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain"])


class TestArena:
    def test_list_shows_packs_and_detectors(self, capsys):
        assert main(["arena", "--list"]) == 0
        out = capsys.readouterr().out
        for pack in ("paper", "kyrgyzstan", "small"):
            assert pack in out
        for detector in ("funnel", "logreg", "cert-anomaly"):
            assert detector in out

    def test_small_sweep_writes_valid_summary(self, tmp_path, capsys):
        import json

        from repro.detect.arena import validate_arena_summary

        path = tmp_path / "BENCH_arena.json"
        assert main([
            "arena", "--packs", "small",
            "--detectors", "naive-transients,pdns-churn",
            "--json", str(path), "-q",
        ]) == 0
        out = capsys.readouterr().out
        assert "naive-transients" in out
        assert "pdns-churn" in out
        payload = json.loads(path.read_text())
        assert validate_arena_summary(payload) == []
        assert payload["packs"] == ["small"]

    def test_unknown_detector_fails_cleanly(self, capsys):
        assert main(["arena", "--packs", "small", "--detectors", "nope"]) == 2
        assert "unknown detector" in capsys.readouterr().err

    def test_arena_defaults(self):
        args = build_parser().parse_args(["arena"])
        assert args.packs is None
        assert args.detectors is None
        assert args.seed is None
        assert args.json is None


class TestExplainJson:
    def test_explain_json_to_stdout_carries_provenance(self, capsys):
        assert main([
            "explain", "adpolice.gov.ae", "--background", "40",
            "--json", "-", "-q",
        ]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["domain"] == "adpolice.gov.ae"
        assert payload["verdict"]
        assert payload["provenance"]  # the typed funnel-transition trail
        assert {t["stage"] for t in payload["provenance"]} >= {"classify"}

    def test_explain_json_to_file(self, tmp_path, capsys):
        out = tmp_path / "finding.json"
        assert main([
            "explain", "adpolice.gov.ae", "--background", "40",
            "--json", str(out), "-q",
        ]) == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["domain"] == "adpolice.gov.ae"

    def test_explain_suggests_close_matches_for_typos(self, capsys):
        assert main([
            "explain", "adpolice.gov.a", "--background", "40", "-q",
        ]) == 2
        err = capsys.readouterr().err
        assert "not an identified victim" in err
        assert "hint: try one of" in err
        assert "adpolice.gov.ae" in err


class TestRunsAndMetrics:
    @pytest.fixture()
    def ledger_with_two_runs(self, tmp_path):
        """Two consecutive profile runs recorded in one ledger."""
        ledger_dir = tmp_path / "ledger"
        events = tmp_path / "events.jsonl"
        for _ in range(2):
            assert main([
                "profile", "--seed", "7", "--background", "40",
                "--ledger", str(ledger_dir), "--events", str(events), "-q",
            ]) == 0
        return ledger_dir

    def test_two_cli_runs_recorded_then_listed(self, ledger_with_two_runs, capsys):
        assert main(["runs", "list", "--dir", str(ledger_with_two_runs), "-q"]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert "000000-" in out and "000001-" in out

    def test_runs_diff_defaults_to_newest_two(self, ledger_with_two_runs, capsys):
        assert main(["runs", "diff", "--dir", str(ledger_with_two_runs), "-q"]) == 0
        out = capsys.readouterr().out
        assert "wall_seconds" in out
        assert "peak_rss_bytes" in out
        assert "stage.inspect.wall_seconds" in out

    def test_runs_show_prints_full_record(self, ledger_with_two_runs, capsys):
        assert main(["runs", "show", "000000", "--dir", str(ledger_with_two_runs), "-q"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-ledger/1"
        assert payload["kind"] == "pipeline"
        assert payload["report_digest"]

    def test_runs_check_passes_clean_rerun(self, ledger_with_two_runs, capsys):
        # Generous tolerances: micro-runs jitter hard on shared machines.
        assert main([
            "runs", "check", "--dir", str(ledger_with_two_runs),
            "--tolerance-total", "20", "--tolerance-stage", "20",
            "--tolerance-memory", "20", "-q",
        ]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_runs_check_flags_injected_slowdown(self, ledger_with_two_runs, capsys):
        """A worker-slowdown run shares the clean key and gets flagged."""
        assert main([
            "profile", "--seed", "7", "--background", "40",
            "--faults", "workers.slow=1.0,workers.slow_ms=400",
            "--ledger", str(ledger_with_two_runs), "-q",
        ]) == 0
        capsys.readouterr()
        assert main([
            "runs", "check", "--dir", str(ledger_with_two_runs), "-q",
        ]) == 1
        out = capsys.readouterr().out
        assert "REGRESS" in out
        assert "FAIL" in out

    def test_runs_gc_compacts(self, ledger_with_two_runs, capsys):
        assert main([
            "runs", "gc", "--keep", "1", "--dir", str(ledger_with_two_runs), "-q",
        ]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--dir", str(ledger_with_two_runs), "-q"]) == 0
        assert "1 run(s)" in capsys.readouterr().out

    def test_runs_without_ledger_fails_cleanly(self, tmp_path, capsys):
        assert main(["runs", "list", "--dir", str(tmp_path / "nope"), "-q"]) == 2
        assert "no ledger" in capsys.readouterr().err

    def test_metrics_export_from_manifest_and_ledger(
        self, ledger_with_two_runs, tmp_path, capsys
    ):
        manifest = tmp_path / "manifest.json"
        assert main([
            "profile", "--seed", "7", "--background", "40",
            "--out", str(manifest), "--no-ledger", "-q",
        ]) == 0
        capsys.readouterr()
        assert main([
            "metrics", "export", "--manifest", str(manifest),
            "--ledger", str(ledger_with_two_runs), "--check", "-q",
        ]) == 0
        out = capsys.readouterr().out
        assert "repro_funnel_n_hijacked" in out
        assert "repro_ledger_runs 2" in out
        assert "# TYPE" in out and out.rstrip().endswith("# EOF")

    def test_metrics_export_requires_a_source(self, tmp_path, capsys):
        assert main([
            "metrics", "export", "--ledger", str(tmp_path / "nope"), "-q",
        ]) == 2
        assert "nothing to export" in capsys.readouterr().err

    def test_events_stream_is_replayable(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        assert main([
            "profile", "--seed", "7", "--background", "40",
            "--events", str(events), "--no-ledger", "-q",
        ]) == 0
        from repro.obs.events import read_events

        stream = read_events(events)
        kinds = [e.get("event") for e in stream]
        assert kinds[0] == "header"
        assert "run_start" in kinds and "run_finish" in kinds
        assert kinds.count("stage_start") == kinds.count("stage_finish") == 6
