"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_paper_defaults(self):
        args = build_parser().parse_args(["paper"])
        assert args.seed == 7
        assert args.background == 150
        assert args.save is None

    def test_hunt_requires_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["hunt"])


class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "example-ministry.gr" in out
        assert "hijacked: 1" in out

    def test_hunt_missing_directory(self, tmp_path, capsys):
        assert main(["hunt", "--dir", str(tmp_path)]) == 2
        assert "missing" in capsys.readouterr().err

    def test_export_then_hunt_roundtrip(self, small_study, small_report, tmp_path, capsys):
        """Exporting a study and hunting over the export reproduces the
        verdicts — the CLI's core promise."""
        from repro.io import (
            save_as2org,
            save_ct,
            save_pdns,
            save_scan_dataset,
        )

        save_scan_dataset(small_study.scan, tmp_path / "scan.jsonl")
        save_pdns(small_study.pdns, tmp_path / "pdns.jsonl")
        save_ct(small_study.ct_log, small_study.revocations, tmp_path / "ct.jsonl")
        save_as2org(small_study.as2org, tmp_path / "as2org.jsonl")

        out_path = tmp_path / "findings.jsonl"
        assert main(["hunt", "--dir", str(tmp_path), "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "example-ministry.gr" in out
        assert "T1" in out

        from repro.io import load_findings

        findings = load_findings(out_path)
        assert [f.domain for f in findings] == [
            f.domain for f in small_report.findings
        ]

    def test_gallery_runs(self, capsys):
        assert main(["gallery"]) == 0
        out = capsys.readouterr().out
        assert "TRANSIENT" in out
        assert "S1" in out

    def test_robustness_runs(self, capsys):
        assert main(["robustness", "--trials", "1", "--victims", "4"]) == 0
        out = capsys.readouterr().out
        assert "mean recall 1.000" in out

    def test_sweep_parser_choices(self):
        args = build_parser().parse_args(["sweep", "--parameter", "window"])
        assert args.parameter == "window"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--parameter", "bogus"])

    def test_timeline_requires_domain(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["timeline"])
