"""Property-based tests for the zone archive: diffing must agree with
pointwise snapshots under arbitrary delegation histories."""

from datetime import date, datetime, time, timedelta

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.registry import Registry
from repro.dns.zonearchive import ZoneArchive

T0 = datetime(2019, 1, 1)
WINDOW_START = date(2019, 3, 1)
WINDOW_END = date(2019, 3, 31)

# One delegation change: (day offset in March, hour, duration hours, ns id).
_change = st.tuples(
    st.integers(min_value=0, max_value=29),
    st.integers(min_value=0, max_value=23),
    st.integers(min_value=1, max_value=96),
    st.integers(min_value=0, max_value=3),
)


def build(changes):
    registry = Registry("com")
    registry.register("x.com", ("ns0.base.com",), "reg", at=T0)
    for day_offset, hour, duration, ns_id in changes:
        start = datetime.combine(
            WINDOW_START + timedelta(days=day_offset), time(hour, 0)
        )
        registry.set_delegation(
            "x.com", (f"ns{ns_id}.alt.com",), start, start + timedelta(hours=duration)
        )
    return registry, ZoneArchive(registry, "com")


class TestArchiveAgainstRegistry:
    @settings(max_examples=40)
    @given(st.lists(_change, max_size=6))
    def test_snapshot_agrees_with_midnight_state(self, changes):
        registry, archive = build(changes)
        for offset in range(0, 35, 3):
            day = WINDOW_START + timedelta(days=offset)
            snapshot_ns = archive.snapshot(day).ns_of("x.com")
            direct = registry.delegation_at("x.com", datetime.combine(day, time(0, 0)))
            assert snapshot_ns == direct

    @settings(max_examples=40)
    @given(st.lists(_change, max_size=6))
    def test_changes_over_matches_pairwise_diffs(self, changes):
        _, archive = build(changes)
        end = WINDOW_END + timedelta(days=7)
        observed = archive.changes_over(WINDOW_START, end)
        # Re-derive: every day-over-day NS difference must appear exactly
        # once, in order.
        expected = []
        previous = archive.snapshot(WINDOW_START).ns_of("x.com")
        day = WINDOW_START + timedelta(days=1)
        while day <= end:
            current = archive.snapshot(day).ns_of("x.com")
            if current != previous:
                expected.append((day, previous, current))
            previous = current
            day += timedelta(days=1)
        assert [(c.day, c.before, c.after) for c in observed] == expected

    @settings(max_examples=40)
    @given(st.lists(_change, max_size=6))
    def test_days_delegated_consistent_with_snapshots(self, changes):
        _, archive = build(changes)
        end = WINDOW_END + timedelta(days=7)
        for ns_id in range(4):
            wanted = {f"ns{ns_id}.alt.com"}
            counted = archive.days_delegated_to("x.com", wanted, WINDOW_START, end)
            brute = sum(
                1
                for offset in range((end - WINDOW_START).days + 1)
                if set(
                    archive.snapshot(WINDOW_START + timedelta(days=offset)).ns_of("x.com")
                )
                & wanted
            )
            assert counted == brute
