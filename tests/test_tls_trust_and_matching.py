"""Tests for trust stores, SAN matching, and revocation asymmetry."""

from datetime import date

import pytest

from repro.tls.certificate import Certificate
from repro.tls.matching import base_domains_secured, cert_covers, names_secured, san_matches
from repro.tls.revocation import (
    RevocationMechanism,
    RevocationRegistry,
    RevocationStatus,
)
from repro.tls.truststore import ALL_PROGRAMS, RootProgram, TrustStore


def cert(sans, issuer="Let's Encrypt"):
    return Certificate(
        serial=1,
        common_name=sans[0],
        sans=tuple(sans),
        issuer=issuer,
        not_before=date(2019, 1, 1),
        not_after=date(2019, 4, 1),
    )


class TestTrustStore:
    def test_any_root_program_suffices(self):
        store = TrustStore()
        store.include("NicheCA", frozenset({RootProgram.MOZILLA}))
        assert store.is_browser_trusted(cert(["a.example.com"], issuer="NicheCA"))

    def test_unknown_ca_untrusted(self):
        store = TrustStore()
        assert not store.is_browser_trusted(cert(["a.example.com"], issuer="Internal CA"))
        assert "Internal CA" not in store

    def test_programs_of(self):
        store = TrustStore()
        store.include("BigCA", ALL_PROGRAMS)
        assert store.programs_of("BigCA") == ALL_PROGRAMS
        assert store.programs_of("nope") == frozenset()

    def test_rejects_empty_program_set(self):
        with pytest.raises(ValueError):
            TrustStore().include("X", frozenset())


class TestSanMatching:
    def test_exact(self):
        assert san_matches("mail.example.com", "MAIL.example.com.")
        assert not san_matches("mail.example.com", "imap.example.com")

    def test_wildcard_one_label(self):
        assert san_matches("*.example.com", "mail.example.com")
        assert not san_matches("*.example.com", "example.com")
        assert not san_matches("*.example.com", "a.b.example.com")

    def test_cert_covers(self):
        c = cert(["example.com", "*.example.com"])
        assert cert_covers(c, "example.com")
        assert cert_covers(c, "mail.example.com")
        assert not cert_covers(c, "deep.mail.example.com")

    def test_names_secured_excludes_wildcards(self):
        c = cert(["example.com", "*.example.com"])
        assert names_secured(c) == frozenset({"example.com"})

    def test_base_domains_secured(self):
        c = cert(["mail.mfa.gov.kg", "*.other.org"])
        assert base_domains_secured(c) == frozenset({"mfa.gov.kg", "other.org"})


class TestRevocation:
    def test_crl_issuer_retroactively_auditable(self):
        registry = RevocationRegistry()
        registry.set_mechanism("Comodo", RevocationMechanism.CRL)
        c = cert(["mail.example.com"], issuer="Comodo")
        registry.revoke(c, on=date(2019, 2, 1))
        # Years later, the CRL record is still visible.
        assert registry.retroactive_status(c, date(2022, 1, 1)) is RevocationStatus.REVOKED

    def test_ocsp_issuer_unknowable_after_expiry(self):
        """The Table 9 asymmetry: Let's Encrypt revocations are lost."""
        registry = RevocationRegistry()
        registry.set_mechanism("Let's Encrypt", RevocationMechanism.OCSP)
        c = cert(["mail.example.com"])
        registry.revoke(c, on=date(2019, 2, 1))
        assert registry.live_status(c, date(2019, 3, 1)) is RevocationStatus.REVOKED
        assert registry.retroactive_status(c, date(2022, 1, 1)) is RevocationStatus.UNKNOWN

    def test_unrevoked_is_good(self):
        registry = RevocationRegistry()
        c = cert(["a.example.com"], issuer="Comodo")
        assert registry.retroactive_status(c, date(2022, 1, 1)) is RevocationStatus.GOOD

    def test_revocation_before_effective_date_invisible(self):
        registry = RevocationRegistry()
        c = cert(["a.example.com"], issuer="Comodo")
        registry.revoke(c, on=date(2019, 2, 1))
        assert registry.live_status(c, date(2019, 1, 15)) is RevocationStatus.GOOD

    def test_cannot_revoke_expired(self):
        registry = RevocationRegistry()
        c = cert(["a.example.com"], issuer="Comodo")
        with pytest.raises(ValueError):
            registry.revoke(c, on=date(2020, 1, 1))
