"""The run ledger, regression sentinel, event sinks, and exporter.

Covers the durability contract (append/replay across instances,
corruption eviction for truncated index lines and bit-flipped record
files), cross-run comparison (``runs diff`` over two real pipeline
runs), the sentinel's tolerance edges, heartbeat event streams, and
the OpenMetrics exposition's structural validity.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.events import (
    EVENTS_SCHEMA,
    CompositeEventSink,
    EventRecorder,
    JsonlEventSink,
    TTYProgressSink,
    read_events,
)
from repro.obs.exporters import (
    metric_name,
    render_openmetrics,
    validate_openmetrics,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    RunRecord,
    arena_record,
    data_fault_digest,
    diff_records,
    format_diff,
    format_runs_table,
    ledger_key,
)
from repro.obs.sentinel import (
    Tolerances,
    check_run,
    compare,
    format_sentinel,
)


def _record(
    wall: float = 1.0,
    key: str = "k" * 32,
    kind: str = "pipeline",
    rss: int = 50_000_000,
    hits: int = 3,
    misses: int = 1,
    stages: dict[str, float] | None = None,
) -> RunRecord:
    stages = stages if stages is not None else {"inspect": 0.4, "pivot": 0.01}
    return RunRecord(
        kind=kind,
        key=key,
        label="test",
        recorded_at="2026-08-09T00:00:00+00:00",
        backend="serial",
        jobs=1,
        wall_seconds=wall,
        stages=[
            {"name": name, "wall_seconds": seconds, "cached": False}
            for name, seconds in stages.items()
        ],
        funnel={"n_hijacked": 4},
        cache={"hits": hits, "misses": misses, "stores": misses,
               "bytes_read": 100, "bytes_written": 50},
        memory={"peak_rss_bytes": rss, "tracemalloc": False},
        config_digest="c" * 32,
    )


# -- append / replay -----------------------------------------------------------


def test_append_assigns_sequential_unique_run_ids(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    first = ledger.append(_record(wall=1.0))
    second = ledger.append(_record(wall=1.0))  # identical content
    assert first.startswith("000000-")
    assert second.startswith("000001-")
    assert first != second
    # Identical content dedupes on disk but both index entries survive.
    assert len(ledger.entries()) == 2


def test_replay_from_fresh_instance_reads_everything(tmp_path):
    root = tmp_path / "ledger"
    writer = RunLedger(root)
    ids = [writer.append(_record(wall=float(i + 1))) for i in range(3)]
    reader = RunLedger(root)
    records = reader.records()
    assert [r.run_id for r in records] == ids
    assert [r.wall_seconds for r in records] == [1.0, 2.0, 3.0]
    assert reader.evicted == 0


def test_load_by_id_and_unique_prefix(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    run_id = ledger.append(_record())
    assert ledger.load(run_id).run_id == run_id
    assert ledger.load(run_id[:8]).run_id == run_id
    assert ledger.load("ffffff-nope") is None


def test_records_filters_by_kind_and_key(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    ledger.append(_record(kind="pipeline", key="a" * 32))
    ledger.append(_record(kind="arena", key="b" * 32))
    ledger.append(_record(kind="pipeline", key="b" * 32))
    assert len(ledger.records(kind="pipeline")) == 2
    assert len(ledger.records(key="b" * 32)) == 2
    assert len(ledger.records(kind="arena", key="b" * 32)) == 1
    latest = ledger.latest(kind="pipeline")
    assert latest.key == "b" * 32


def test_record_files_are_content_addressed(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    ledger.append(_record())
    entry = ledger.entries()[0]
    assert entry.path.startswith("records/")
    blob = json.loads((ledger.root / entry.path).read_text())
    assert blob["schema"] == LEDGER_SCHEMA
    assert blob["run_id"] == entry.run_id


def test_summary_counts_runs_by_kind(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    ledger.append(_record(kind="pipeline"))
    ledger.append(_record(kind="arena"))
    summary = ledger.summary()
    assert summary["runs"] == 2
    assert summary["kinds"] == {"pipeline": 1, "arena": 1}
    assert summary["last_run_id"].startswith("000001-")


# -- corruption eviction -------------------------------------------------------


def test_truncated_index_line_is_evicted_not_fatal(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    keep = ledger.append(_record(wall=1.0))
    ledger.append(_record(wall=2.0))
    # Truncate the last index line mid-JSON, as a crashed append would.
    text = ledger.index_path.read_text()
    lines = text.splitlines()
    ledger.index_path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
    fresh = RunLedger(tmp_path / "ledger")
    records = fresh.records()
    assert [r.run_id for r in records] == [keep]
    assert fresh.evicted == 1


def test_bad_checksum_evicts_the_record_file(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    ledger.append(_record(wall=1.0))
    entry = ledger.entries()[0]
    path = ledger.root / entry.path
    path.write_text(path.read_text().replace("1.0", "9.0"))  # bit-flip
    assert ledger.load_entry(entry) is None
    assert ledger.evicted >= 1
    assert not path.exists()  # quarantined
    assert ledger.records() == []


def test_index_line_with_wrong_schema_is_skipped(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    ledger.append(_record())
    with ledger.index_path.open("a") as handle:
        handle.write(json.dumps({"schema": "repro-ledger/99", "seq": 1}) + "\n")
    assert len(ledger.entries()) == 1
    assert ledger.evicted == 1


def test_gc_keeps_newest_and_removes_orphans(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    for i in range(4):
        ledger.append(_record(wall=float(i + 1)))
    orphan = ledger.root / "records" / "zz"
    orphan.mkdir(parents=True)
    # glob pattern is records/??/*.json, so land the orphan there
    (ledger.root / "records" / "ab").mkdir(exist_ok=True)
    (ledger.root / "records" / "ab" / "orphan.json").write_text("{}")
    result = ledger.gc(keep=2)
    assert result["kept"] == 2
    assert result["dropped_entries"] == 2
    records = ledger.records()
    assert [r.wall_seconds for r in records] == [3.0, 4.0]
    assert not (ledger.root / "records" / "ab" / "orphan.json").exists()


# -- keys ----------------------------------------------------------------------


def test_ledger_key_ignores_worker_fault_channels():
    """A slowdown-injected run must share the clean run's key so the
    sentinel can flag it against the clean baseline."""
    from repro.faults import FaultPlan

    clean = FaultPlan.from_spec(None)
    slow = FaultPlan.from_spec("workers.slow=1.0,workers.slow_ms=200", seed=3)
    data = FaultPlan.from_spec("scan.drop_weeks=0.2", seed=3)

    def key(plan):
        return ledger_key(
            "pipeline", "hunt", config_digest="c" * 32,
            faults_digest=data_fault_digest(plan), backend="serial", jobs=1,
        )

    assert key(clean) == key(slow)
    assert key(clean) != key(data)


def test_ledger_key_varies_with_backend_and_config():
    base = dict(config_digest="c" * 32, faults_digest="", jobs=1)
    serial = ledger_key("pipeline", "hunt", backend="serial", **base)
    pool = ledger_key("pipeline", "hunt", backend="process-pool", **base)
    other_cfg = ledger_key(
        "pipeline", "hunt", backend="serial",
        config_digest="d" * 32, faults_digest="", jobs=1,
    )
    assert len({serial, pool, other_cfg}) == 3


# -- diff ----------------------------------------------------------------------


def test_diff_covers_stage_time_memory_and_cache(tmp_path):
    old = _record(wall=1.0, rss=50_000_000, hits=0, misses=4,
                  stages={"inspect": 0.4})
    new = _record(wall=2.0, rss=60_000_000, hits=4, misses=0,
                  stages={"inspect": 0.9})
    old.run_id, new.run_id = "000000-aa", "000001-bb"
    rows = {row["metric"]: row for row in diff_records(old, new)}
    assert rows["wall_seconds"]["delta"] == pytest.approx(1.0)
    assert rows["stage.inspect.wall_seconds"]["delta_pct"] == pytest.approx(125.0)
    assert rows["peak_rss_bytes"]["delta"] == 10_000_000
    assert rows["cache.hits"]["delta"] == 4
    text = format_diff(old, new)
    assert "stage.inspect.wall_seconds" in text
    assert "+125.0%" in text


def test_diff_on_two_real_seeded_runs(tmp_path):
    """Two pipeline runs recorded via the executor diff cleanly."""
    from repro.world.scenarios import build_pack

    ledger = RunLedger(tmp_path / "ledger")
    study = build_pack("small", seed=7, n_background=10)
    study.profile_pipeline(ledger=ledger)
    study.profile_pipeline(ledger=ledger)
    records = ledger.records()
    assert len(records) == 2
    assert records[0].key == records[1].key
    assert records[0].report_digest == records[1].report_digest
    assert records[0].funnel  # the pipeline attached its funnel summary
    rows = {row["metric"] for row in diff_records(records[0], records[1])}
    assert "wall_seconds" in rows
    assert "peak_rss_bytes" in rows
    assert any(metric.startswith("stage.") for metric in rows)


def test_format_runs_table_lists_both_runs(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    ledger.append(_record(wall=1.0))
    ledger.append(_record(wall=2.0))
    table = format_runs_table(ledger.records())
    assert "000000-" in table and "000001-" in table
    assert "pipeline" in table


# -- sentinel ------------------------------------------------------------------


def test_sentinel_passes_clean_rerun():
    baseline = [_record(wall=1.0), _record(wall=1.1), _record(wall=0.9)]
    candidate = _record(wall=1.05)
    report = compare(candidate, baseline)
    assert report.ok
    assert "PASS" in format_sentinel(report)


def test_sentinel_flags_total_time_regression():
    report = compare(_record(wall=2.0), [_record(wall=1.0)])
    assert not report.ok
    assert any(r.metric == "wall_seconds" for r in report.regressions)
    assert "REGRESS" in format_sentinel(report)
    assert "FAIL" in format_sentinel(report)


def test_sentinel_tolerance_edge_is_inclusive():
    """Exactly at the limit passes; one epsilon beyond fails."""
    tolerances = Tolerances(total_time=0.5)
    at_limit = compare(_record(wall=1.5), [_record(wall=1.0)], tolerances)
    beyond = compare(_record(wall=1.5001), [_record(wall=1.0)], tolerances)
    assert at_limit.ok
    assert not beyond.ok


def test_sentinel_is_one_sided():
    """Faster, slimmer, higher-hit-rate candidates never fail."""
    baseline = [_record(wall=2.0, rss=80_000_000, hits=1, misses=3)]
    candidate = _record(wall=0.5, rss=40_000_000, hits=4, misses=0)
    assert compare(candidate, baseline).ok


def test_sentinel_flags_memory_and_cache_rate_drops():
    baseline = [_record(rss=50_000_000, hits=4, misses=0)]
    worse_memory = compare(_record(rss=90_000_000), baseline)
    assert any(r.metric == "peak_rss_bytes" for r in worse_memory.regressions)
    cold_cache = compare(_record(hits=0, misses=4), baseline)
    assert any(r.metric == "cache_hit_rate" for r in cold_cache.regressions)


def test_sentinel_skips_micro_stages():
    baseline = [_record(stages={"pivot": 0.001})]
    candidate = _record(stages={"pivot": 0.040})  # 40x but microscopic
    report = compare(candidate, baseline)
    assert not any("stage.pivot" in r.metric for r in report.rows)
    assert report.ok


def test_sentinel_vacuous_pass_on_thin_history(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    ledger.append(_record())
    report = check_run(ledger)
    assert report.ok
    assert report.skipped_reason is not None
    assert "vacuous" in format_sentinel(report)


def test_check_run_uses_matching_key_window_only(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    ledger.append(_record(wall=0.1, key="other" + "x" * 27))  # different key
    ledger.append(_record(wall=1.0))
    ledger.append(_record(wall=1.9))  # within +100% of 1.0? no: default 0.5
    report = check_run(ledger, tolerances=Tolerances(total_time=0.5))
    assert not report.ok  # compared against the 1.0 run, not the 0.1 one
    assert report.baseline_ids == [ledger.records()[1].run_id]


def test_check_run_arena_f1_regression(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")

    def arena(f1: float) -> RunRecord:
        return arena_record(
            key="a" * 32, label="arena:small",
            leaderboard=[{"detector": "paper-funnel", "mean_f1": f1}],
            wall_seconds=1.0,
        )

    ledger.append(arena(0.95))
    ledger.append(arena(0.80))
    report = check_run(ledger)
    assert any(r.metric == "arena_mean_f1" for r in report.regressions)
    ledger.append(arena(0.94))
    # A fresh candidate within tolerance of the median passes.
    assert check_run(ledger).ok


def test_check_run_unknown_candidate_raises(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    ledger.append(_record())
    with pytest.raises(ValueError, match="unknown"):
        check_run(ledger, run_id="zzzzzz-0000")


# -- events --------------------------------------------------------------------


def test_executor_emits_full_heartbeat_sequence(tmp_path):
    from repro.world.scenarios import build_pack

    recorder = EventRecorder()
    study = build_pack("small", seed=7, n_background=10)
    _report, metrics = study.profile_pipeline(events=recorder)
    starts = recorder.of("run_start")
    assert len(starts) == 1
    assert starts[0]["total_stages"] == len(metrics.stages)
    assert len(recorder.of("stage_start")) == len(metrics.stages)
    finishes = recorder.of("stage_finish")
    assert [e["stage"] for e in finishes] == [s.name for s in metrics.stages]
    assert all("eta_seconds" in e and "ts" in e for e in finishes)
    assert recorder.of("chunk")  # at least the parallel stages chunk
    assert recorder.of("run_finish")[0]["wall_seconds"] > 0


def test_jsonl_sink_writes_header_and_replayable_stream(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlEventSink(path)
    sink.emit({"event": "run_start", "ts": 1.0})
    sink.emit({"event": "run_finish", "ts": 2.0})
    sink.close()
    events = read_events(path)
    assert events[0]["schema"] == EVENTS_SCHEMA
    assert [e.get("event") for e in events[1:]] == ["run_start", "run_finish"]


def test_read_events_rejects_foreign_stream(tmp_path):
    path = tmp_path / "not-events.jsonl"
    path.write_text('{"hello": "world"}\n')
    with pytest.raises(ValueError, match="not a"):
        read_events(path)


def test_tty_sink_overwrites_one_line_and_clears():
    stream = io.StringIO()
    sink = TTYProgressSink(stream)
    sink.emit({"event": "stage_start", "stage": "inspect", "index": 1, "total": 2})
    sink.emit({
        "event": "stage_finish", "stage": "inspect", "index": 1, "total": 2,
        "wall_seconds": 0.5, "cached": False, "eta_seconds": 0.5,
    })
    sink.emit({"event": "run_finish"})
    text = stream.getvalue()
    assert "\r\x1b[2K" in text
    assert "inspect" in text
    assert text.endswith("\r\x1b[2K")  # cleared at run end


def test_composite_sink_fans_out():
    a, b = EventRecorder(), EventRecorder()
    sink = CompositeEventSink([a, b])
    sink.emit({"event": "run_start"})
    sink.close()
    assert a.events == b.events == [{"event": "run_start"}]


# -- exporter ------------------------------------------------------------------


def test_metric_name_mapping():
    assert metric_name("cache.bytes_read") == "repro_cache_bytes_read"
    assert metric_name("kernel.inspect.seconds") == "repro_kernel_inspect_seconds"


def test_render_openmetrics_covers_funnel_cache_and_retry_metrics(tmp_path):
    """The acceptance-criteria exposition: funnel, cache, fault-retry
    metrics all present and structurally valid."""
    snapshot = {
        "counters": {
            "cache.hits": 3, "cache.misses": 1,
            "cache.bytes_read": 1024, "cache.bytes_written": 256,
            "faults.worker_retries": 2,
        },
        "gauges": {"report.findings": 4.0},
        "histograms": {
            "kernel.inspect.seconds": {
                "count": 3, "sum": 0.3, "min": 0.05, "max": 0.2,
                "buckets": [0] * 6 + [1, 1, 1] + [0] * 6,
            }
        },
    }
    text = render_openmetrics(
        snapshot, funnel={"n_maps": 100, "n_hijacked": 3}
    )
    assert validate_openmetrics(text) == []
    assert "repro_cache_hits_total 3" in text
    assert "repro_cache_bytes_read_total 1024" in text
    assert "repro_faults_worker_retries_total 2" in text
    assert "repro_funnel_n_hijacked 3" in text
    assert "# TYPE repro_kernel_inspect_seconds histogram" in text
    # Buckets are cumulative and end with +Inf == count.
    assert 'repro_kernel_inspect_seconds_bucket{le="+Inf"} 3' in text
    assert text.rstrip().endswith("# EOF")


def test_render_openmetrics_includes_ledger_summary(tmp_path):
    ledger = RunLedger(tmp_path / "ledger")
    ledger.append(_record(wall=1.5))
    text = render_openmetrics(None, ledger=ledger)
    assert validate_openmetrics(text) == []
    assert "repro_ledger_runs 1" in text
    assert 'repro_ledger_runs_by_kind{kind="pipeline"} 1' in text
    assert "repro_ledger_last_run_wall_seconds" in text
    assert "repro_ledger_last_run_stage_wall_seconds" in text


def test_validate_openmetrics_catches_structural_damage():
    assert validate_openmetrics("repro_x 1\n") != []  # no TYPE, no EOF
    good = "# TYPE repro_x gauge\nrepro_x 1\n# EOF"
    assert validate_openmetrics(good) == []
    assert validate_openmetrics(good.replace(" 1", " banana")) != []


def test_exporter_round_trips_real_manifest_metrics(tmp_path):
    from repro.world.scenarios import build_pack

    study = build_pack("small", seed=7, n_background=10)
    _report, metrics = study.profile_pipeline()
    text = render_openmetrics(metrics.metrics, funnel=metrics.funnel)
    assert validate_openmetrics(text) == []
    assert "repro_funnel_n_maps" in text
    assert "repro_kernel_" in text  # per-kernel latency histograms


# -- executor integration ------------------------------------------------------


def test_cache_counters_reach_registry_and_ledger(tmp_path):
    """Warm runs surface cache.* counters and the ledger records them."""
    from repro.cache import StageCache
    from repro.world.scenarios import build_pack

    cache = StageCache(tmp_path / "cache")
    ledger = RunLedger(tmp_path / "ledger")
    study = build_pack("small", seed=7, n_background=10)
    _r1, cold = study.profile_pipeline(cache=cache, ledger=ledger)
    _r2, warm = study.profile_pipeline(cache=cache, ledger=ledger)
    assert cold.metrics["counters"]["cache.stores"] > 0
    assert cold.metrics["counters"]["cache.bytes_written"] > 0
    assert warm.metrics["counters"]["cache.hits"] > 0
    assert warm.metrics["counters"]["cache.bytes_read"] > 0
    records = ledger.records()
    assert records[0].cache["stores"] == cold.cache["stores"]
    assert records[1].cache["hits"] == warm.cache["hits"]
    assert records[1].cache_hit_rate > records[0].cache_hit_rate


def test_memory_sampling_lands_in_manifest(tmp_path):
    from repro.world.scenarios import build_pack

    study = build_pack("small", seed=7, n_background=10)
    _report, plain = study.profile_pipeline()
    assert plain.memory["tracemalloc"] is False
    assert plain.memory["peak_rss_bytes"] > 0
    assert all(
        s.memory and s.memory["peak_rss_bytes"] > 0 for s in plain.stages
    )
    _report, traced = study.profile_pipeline(memory=True)
    assert traced.memory["tracemalloc"] is True
    assert traced.memory["tracemalloc_peak_bytes"] > 0
    assert all(
        "tracemalloc_delta_bytes" in s.memory for s in traced.stages
    )


def test_ledger_append_failure_never_fails_the_run(tmp_path, monkeypatch):
    from repro.world.scenarios import build_pack

    ledger = RunLedger(tmp_path / "ledger")
    monkeypatch.setattr(
        RunLedger, "append",
        lambda self, record: (_ for _ in ()).throw(OSError("disk full")),
    )
    study = build_pack("small", seed=7, n_background=10)
    report, _metrics = study.profile_pipeline(ledger=ledger)  # must not raise
    assert report.findings is not None


def test_arena_run_records_leaderboard(tmp_path):
    from repro.detect.arena import run_arena

    ledger = RunLedger(tmp_path / "ledger")
    result = run_arena(
        packs=["small"], detectors=["funnel"],
        seed=7, n_background=10, ledger=ledger,
    )
    record = ledger.latest(kind="arena")
    assert record is not None
    assert record.leaderboard == result.leaderboard()
    assert record.leaderboard[0]["detector"] == "funnel"
