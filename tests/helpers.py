"""Test helpers: compact construction of annotated scan records.

``ScanSketch`` builds the per-scan-date record lists the deployment and
pattern stages consume, without standing up a whole world — so the
canonical Figure 3/4/5 shapes can be expressed in a few lines each.
"""

from __future__ import annotations

from datetime import date, timedelta

from repro.net.timeline import Period
from repro.scan.annotate import AnnotatedScanRecord
from repro.scan.dataset import ScanDataset
from repro.tls.certificate import Certificate

PERIOD = Period(index=1, start=date(2019, 1, 1), end=date(2019, 6, 30))
PREV_PERIOD = Period(index=0, start=date(2018, 7, 1), end=date(2018, 12, 31))
NEXT_PERIOD = Period(index=2, start=date(2019, 7, 1), end=date(2019, 12, 31))
ALL_PERIODS = (PREV_PERIOD, PERIOD, NEXT_PERIOD)


def scan_dates(period: Period = PERIOD) -> tuple[date, ...]:
    dates = []
    day = period.start
    while day <= period.end:
        dates.append(day)
        day += timedelta(days=7)
    return tuple(dates)


def make_cert(
    name: str,
    serial: int,
    issued: date,
    days: int = 365,
    issuer: str = "DigiCert Inc",
) -> Certificate:
    return Certificate(
        serial=serial,
        common_name=name,
        sans=(name,),
        issuer=issuer,
        not_before=issued,
        not_after=issued + timedelta(days=days),
    )


class ScanSketch:
    """Accumulates annotated records for one synthetic domain."""

    def __init__(self, domain: str) -> None:
        self.domain = domain
        self.records: list[AnnotatedScanRecord] = []

    def presence(
        self,
        dates: tuple[date, ...],
        ip: str,
        asn: int,
        country: str,
        cert: Certificate,
        trusted: bool = True,
    ) -> "ScanSketch":
        for scan_date in dates:
            self.records.append(
                AnnotatedScanRecord(
                    scan_date=scan_date,
                    ip=ip,
                    ports=(443,),
                    asn=asn,
                    country=country,
                    certificate=cert,
                    trusted=trusted,
                    sensitive="mail" in cert.common_name,
                    names=(cert.common_name,),
                    base_domains=(self.domain,),
                )
            )
        return self

    def dataset(self, dates: tuple[date, ...] | None = None) -> ScanDataset:
        return ScanDataset(self.records, dates or scan_dates())
