"""Property tests for the epoch layer: overlay differential and
dirty-set soundness.

Two invariants carry the incremental engine's byte-identity guarantee:

* **Overlay differential** — for arbitrary base and delta row streams,
  :func:`extend_scan_table` produces a table whose pools, columns, CSR
  index, pickled wire form, and content-digest blocks are identical to
  a table rebuilt cold from the concatenated rows.  This is what makes
  pool-id prefix stability a theorem of the implementation rather than
  a hope.
* **Dirty-set soundness** — for arbitrary deltas over a scale world,
  every domain whose deployment encoding or report findings change
  between the base run and the merged run is in the dirty set.  The
  scheduler may over-approximate, never under-approximate.
"""

from __future__ import annotations

from dataclasses import asdict, replace
from datetime import date, timedelta

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.fingerprint import scan_block_digests
from repro.core.deployment import encode_domain_maps
from repro.core.pipeline import HijackPipeline, PipelineConfig
from repro.dns.records import RRType
from repro.epochs import EpochDelta, compute_dirty_set, merge_inputs
from repro.scan.table import ScanTable
from repro.segments.overlay import extend_scan_table
from repro.tls.certificate import Certificate
from repro.world.scale import SCALE_END, scale_world

from tests.helpers import make_cert, scan_dates

DATES = scan_dates()
DOMAINS = ("alpha.com", "beta.org", "gamma.net", "delta.io")
CERTS = tuple(
    make_cert(f"cn{i}.example.org", 700 + i, date(2018, 12, 1)) for i in range(4)
)

# One scan row, by pool selectors: (domain, date index, ip, asn, cert,
# extra base domain or None, trusted, sensitive).
_row_spec = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=len(DATES) - 1),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=3),
    st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    st.booleans(),
    st.booleans(),
)


def _materialize(spec) -> tuple:
    dom_sel, date_idx, ip_sel, asn_sel, cert_sel, extra, trusted, sensitive = spec
    domain = DOMAINS[dom_sel]
    bases = (domain,) if extra is None else tuple(sorted({domain, DOMAINS[extra]}))
    return (
        DATES[date_idx].toordinal(),
        f"10.{ip_sel}.{asn_sel}.{dom_sel}",
        1000 + asn_sel,
        CERTS[cert_sel],
        "US" if asn_sel % 2 == 0 else "DE",
        (443,),
        (domain, f"www.{domain}"),
        bases,
        trusted,
        sensitive,
    )


def _build(rows) -> ScanTable:
    builder = ScanTable.build()
    for row in rows:
        builder.append_row(*row)
    return builder.finish()


def _wire(table: ScanTable) -> dict:
    """The pickled wire form, minus memoized ``_repro*`` annotations."""
    return {
        key: value
        for key, value in table.__getstate__().items()
        if not key.startswith("_repro")
    }


class TestOverlayDifferential:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(_row_spec, min_size=0, max_size=20),
        st.lists(_row_spec, min_size=0, max_size=12),
    )
    def test_overlay_equals_rebuild(self, base_specs, delta_specs):
        base_rows = [_materialize(s) for s in base_specs]
        delta_rows = [_materialize(s) for s in delta_specs]
        base = _build(base_rows)
        derived = extend_scan_table(base, delta_rows)
        rebuilt = _build(base_rows + delta_rows)
        assert derived.domains == rebuilt.domains
        assert _wire(derived) == _wire(rebuilt)
        # The overlay's extended content digests must equal digests
        # computed cold — cache fingerprints hang off exactly this.
        assert scan_block_digests(derived) == scan_block_digests(rebuilt)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(_row_spec, min_size=0, max_size=20))
    def test_base_is_untouched(self, base_specs):
        base_rows = [_materialize(s) for s in base_specs]
        base = _build(base_rows)
        before = _wire(base)
        extend_scan_table(base, [_materialize((0, 0, 0, 0, 0, None, True, False))])
        assert _wire(base) == before


# -- dirty-set soundness ------------------------------------------------------

_N_ACTIVE = 16
_WORLD = {}


def _world():
    if not _WORLD:
        _WORLD["inputs"] = scale_world(48, n_active=_N_ACTIVE, seed=0)
        report, _ = HijackPipeline(_WORLD["inputs"]).profile()
        _WORLD["findings"] = _by_domain(report)
    return _WORLD["inputs"], _WORLD["findings"]


def _by_domain(report) -> dict:
    grouped: dict = {}
    for finding in report.findings:
        grouped.setdefault(finding.domain, []).append(asdict(finding))
    return grouped


def _delta_cert(i: int, domain: str) -> Certificate:
    cn = f"prop-delta-{i:03d}.example.org"
    return Certificate(
        serial=30_000 + i,
        common_name=cn,
        sans=(cn, domain),
        issuer="Delta CA",
        not_before=date(2019, 1, 1),
        not_after=date(2020, 12, 31),
        crtsh_id=300_000_000 + i,
    )


# A delta spec: churned active indices, pDNS-only targets, CT-only
# targets, and whether the epoch adds an in-period scan date.
_delta_spec = st.tuples(
    st.lists(
        st.integers(min_value=0, max_value=_N_ACTIVE - 1),
        min_size=0, max_size=4, unique=True,
    ),
    st.lists(
        st.integers(min_value=0, max_value=_N_ACTIVE - 1),
        min_size=0, max_size=2, unique=True,
    ),
    st.lists(
        st.integers(min_value=0, max_value=_N_ACTIVE - 1),
        min_size=0, max_size=2, unique=True,
    ),
    st.booleans(),
)


def _make_delta(inputs, spec) -> EpochDelta:
    churned, pdns_only, ct_only, in_period = spec
    last_active = max(d for d in inputs.scan.scan_dates if d <= SCALE_END)
    new_day = date(2019, 2, 6) if in_period else date(2020, 1, 7)
    rows = []
    pdns = []
    ct = []
    for k, i in enumerate(sorted(churned)):
        domain = f"active-{i:05d}.example.com"
        cert = _delta_cert(i, domain)
        rows.append(
            (
                last_active.toordinal(), f"203.9.0.{i}", 64500 + (i + 1) % 8,
                cert, "US", (443,), (domain, f"www.{domain}"), (domain,),
                True, False,
            )
        )
        pdns.append((domain, RRType.A, f"203.9.0.{i}", last_active))
    for i in sorted(pdns_only):
        domain = f"active-{i:05d}.example.com"
        pdns.append(
            (domain, RRType.NS, "ns9.prop-dns.example.org", last_active)
        )
    for i in sorted(ct_only):
        domain = f"active-{i:05d}.example.com"
        ct.append((_delta_cert(100 + i, domain), date(2019, 12, 1)))
    return EpochDelta(
        epoch=1,
        scan_rows=tuple(rows),
        scan_dates=(new_day,) if rows or in_period else (),
        pdns_observations=tuple(pdns),
        ct_entries=tuple(ct),
    )


class TestDirtySetSoundness:
    @settings(max_examples=25, deadline=None)
    @given(_delta_spec)
    def test_changed_domains_are_dirty(self, spec):
        inputs, base_findings = _world()
        delta = _make_delta(inputs, spec)
        dirty = compute_dirty_set(inputs, delta)
        merged = merge_inputs(inputs, delta)

        # Ring-1 soundness: a changed deployment encoding implies
        # membership in scan_direct (the ring that gates reuse) unless
        # the calendar changed, in which case the engine re-encodes
        # every domain and no reuse question arises.
        if not dirty.calendar_changed:
            config = PipelineConfig()
            for domain in inputs.scan.domains():
                before = encode_domain_maps(
                    inputs.scan, domain, inputs.periods, config.max_gap_scans
                )
                after = encode_domain_maps(
                    merged.scan, domain, merged.periods, config.max_gap_scans
                )
                if before != after:
                    assert domain in dirty.scan_direct

        # Report-level soundness: every domain whose findings change
        # between the base and merged runs is dirty.
        report, _ = HijackPipeline(merged).profile()
        merged_findings = _by_domain(report)
        for domain in set(base_findings) | set(merged_findings):
            if base_findings.get(domain) != merged_findings.get(domain):
                assert domain in dirty.all_dirty
