"""Tests for shortlisting (step 3): each pruning heuristic in isolation."""

from datetime import date, timedelta

from repro.core.deployment import build_deployment_map
from repro.core.patterns import classify
from repro.core.shortlist import ShortlistConfig, Shortlister
from repro.ipintel.as2org import AS2Org

from tests.helpers import ALL_PERIODS, PERIOD, ScanSketch, make_cert, scan_dates

DATES = scan_dates()


def make_as2org() -> AS2Org:
    mapping = AS2Org()
    mapping.assign(16509, "amazon")
    mapping.assign(14618, "amazon")
    mapping.assign(100, "victim-isp")
    mapping.assign(666, "bullet-cloud")
    return mapping


def transient_sketch(
    stable_asn=100,
    stable_cc="GR",
    transient_asn=666,
    transient_cc="NL",
    transient_name="mail.x.gr",
    trusted=True,
    stable_dates=DATES,
    transient_dates=DATES[12:13],
) -> ScanSketch:
    stable = make_cert("www.x.gr", 1, date(2018, 12, 1))
    rogue = make_cert(transient_name, 2, date(2019, 3, 20), issuer="Let's Encrypt")
    return (
        ScanSketch("x.gr")
        .presence(stable_dates, "10.0.0.1", stable_asn, stable_cc, stable)
        .presence(transient_dates, "203.0.113.5", transient_asn, transient_cc, rogue, trusted=trusted)
    )


def evaluate(sketch: ScanSketch, as2org=None, config=None, extra_maps=None):
    map_ = build_deployment_map(sketch.domain, sketch.records, PERIOD, DATES)
    classifications = {(sketch.domain, PERIOD.index): classify(map_)}
    if extra_maps:
        classifications.update(extra_maps)
    shortlister = Shortlister(as2org or make_as2org(), config)
    return shortlister.evaluate(classifications)


class TestKeepRule:
    def test_sensitive_cross_as_cross_country_transient_kept(self):
        entries, decisions = evaluate(transient_sketch())
        assert len(entries) == 1
        entry = entries[0]
        assert entry.domain == "x.gr"
        assert entry.sensitive_names == ("mail.x.gr",)
        assert entry.transient_asn == 666
        assert not entry.truly_anomalous

    def test_non_sensitive_pruned(self):
        entries, decisions = evaluate(transient_sketch(transient_name="static.x.gr"))
        assert entries == []
        assert any(d.reason == "no-sensitive-name" for d in decisions)

    def test_untrusted_cert_pruned(self):
        entries, _ = evaluate(transient_sketch(trusted=False))
        assert entries == []

    def test_truly_anomalous_kept_despite_non_sensitive_name(self):
        sketch = transient_sketch(transient_name="static.x.gr")
        stable = make_cert("www.x.gr", 1, date(2018, 1, 1), days=900)
        extra = {}
        for period in (ALL_PERIODS[0], ALL_PERIODS[2]):
            other_dates = tuple(
                d for d in (
                    period.start + timedelta(days=7 * i) for i in range(26)
                ) if period.contains(d)
            )
            neighbor = ScanSketch("x.gr").presence(other_dates, "10.0.0.1", 100, "GR", stable)
            map_ = build_deployment_map("x.gr", neighbor.records, period, other_dates)
            extra[("x.gr", period.index)] = classify(map_)
        entries, _ = evaluate(sketch, extra_maps=extra)
        assert len(entries) == 1
        assert entries[0].truly_anomalous


class TestPrunes:
    def test_org_related_pruned(self):
        """Amazon AS16509 stable + AS14618 transient: same organization."""
        entries, decisions = evaluate(
            transient_sketch(stable_asn=16509, transient_asn=14618)
        )
        assert entries == []
        assert any(d.reason == "org-related-asn" for d in decisions)

    def test_same_country_pruned(self):
        entries, decisions = evaluate(transient_sketch(transient_cc="GR"))
        assert entries == []
        assert any(d.reason == "same-country" for d in decisions)

    def test_low_visibility_pruned(self):
        """Domain missing from more than 20% of the period's scans."""
        entries, decisions = evaluate(
            transient_sketch(stable_dates=DATES[::2])  # present in half the scans
        )
        assert entries == []
        assert any(d.reason == "low-visibility" for d in decisions)

    def test_recurring_transients_pruned(self):
        """Similar transients in three or more consecutive periods."""
        sketch = transient_sketch()
        extra = {}
        stable = make_cert("www.x.gr", 1, date(2018, 1, 1), days=900)
        rogue2 = make_cert("mail.x.gr", 3, date(2018, 9, 1), issuer="Let's Encrypt")
        for period in (ALL_PERIODS[0], ALL_PERIODS[2]):
            other_dates = tuple(
                d for d in (
                    period.start + timedelta(days=7 * i) for i in range(26)
                ) if period.contains(d)
            )
            neighbor = (
                ScanSketch("x.gr")
                .presence(other_dates, "10.0.0.1", 100, "GR", stable)
                .presence(other_dates[5:6], "203.0.113.9", 666, "NL", rogue2)
            )
            map_ = build_deployment_map("x.gr", neighbor.records, period, other_dates)
            extra[("x.gr", period.index)] = classify(map_)
        entries, decisions = evaluate(sketch, extra_maps=extra)
        assert all(e.domain != "x.gr" or e.period_index != PERIOD.index for e in entries) or not entries
        assert any(d.reason == "recurring-transients" for d in decisions)

    def test_config_thresholds(self):
        # With a permissive visibility threshold the half-present domain passes.
        entries, _ = evaluate(
            transient_sketch(stable_dates=DATES[::2]),
            config=ShortlistConfig(min_presence=0.4),
        )
        assert len(entries) == 1


class TestEntryMetadata:
    def test_transient_records_attached(self):
        entries, _ = evaluate(transient_sketch())
        entry = entries[0]
        assert len(entry.transient_records) == 1
        assert entry.transient_records[0].ip == "203.0.113.5"
        assert entry.transient_ips == frozenset({"203.0.113.5"})
