"""Golden epoch replays: the paper study, split at its median scan date
and re-run as base + delta, must reproduce the pinned reports byte for
byte.

This is the acceptance oracle of the epoch engine stated on the
evidence that actually matters — the paper scenario with its hijacks,
revocations, and CT history — rather than synthetic scale worlds.  The
split moves every post-cutoff scan row, pDNS record, and CT entry into
a ``repro-delta/1`` payload; replaying it through :func:`run_epoch`
must be indistinguishable from the monolithic run that produced the
golden files, on every backend and with or without a cache.

Paper splits always add *in-period* scan dates, so the engine declines
deployment-map seeding (``calendar-changed``) — which makes these tests
pin the declined path's identity; the seeded path's identity is pinned
by ``tests/test_epochs.py`` over out-of-period scale deltas.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cache import StageCache
from repro.cli import GOLDEN_FAULT_SEED, GOLDEN_FAULT_SPEC, GOLDEN_SEEDS
from repro.core.pipeline import HijackPipeline, PipelineInputs
from repro.ct.crtsh import CrtShService
from repro.ct.log import CTLog
from repro.epochs import EpochDelta, read_delta, run_epoch, write_delta
from repro.exec import ProcessPoolBackend
from repro.faults import FaultPlan
from repro.io.golden import (
    encode_report,
    golden_faults_filename,
    golden_filename,
)
from repro.pdns.database import PassiveDNSDatabase
from repro.scan.dataset import ScanDataset
from repro.scan.table import ScanTable
from repro.world.scenarios import paper_study

from tests.test_golden_reports import GOLDEN_DIR, START_METHODS, _study


def _golden_text(seed: int) -> str:
    return (GOLDEN_DIR / golden_filename(seed)).read_text()


def _fault_golden_text() -> str:
    return (GOLDEN_DIR / golden_faults_filename(GOLDEN_FAULT_SEED)).read_text()


def _rows_of(table: ScanTable) -> list[tuple]:
    from repro.scan.table import _SENSITIVE, _TRUSTED

    return [
        (
            table.date_ord[r],
            table.ips[table.ip_id[r]],
            table.asns[table.asn_id[r]],
            table.certs[table.cert_id[r]],
            table.countries[table.country_id[r]],
            table.port_sets[table.ports_id[r]],
            table.name_sets[table.names_id[r]],
            table.base_sets[table.bases_id[r]],
            bool(table.flags[r] & _TRUSTED),
            bool(table.flags[r] & _SENSITIVE),
        )
        for r in range(len(table.date_ord))
    ]


def _observation_tuples(record) -> list[tuple]:
    """Observations that re-aggregate to ``record``'s (first, last, count)."""
    obs = [(record.rrname, record.rtype, record.rdata, record.first_seen)]
    obs.extend(
        (record.rrname, record.rtype, record.rdata, record.first_seen)
        for _ in range(record.count - 2)
    )
    if record.count > 1:
        obs.append((record.rrname, record.rtype, record.rdata, record.last_seen))
    return obs


def _split(study) -> tuple[PipelineInputs, EpochDelta]:
    """The study as it stood at its median scan date, plus the rest as
    one epoch delta."""
    inputs = PipelineInputs.from_study(study)
    calendar = inputs.scan.scan_dates
    cutoff = calendar[len(calendar) // 2]
    cutoff_ord = cutoff.toordinal()

    rows = _rows_of(inputs.scan.table)
    builder = ScanTable.build()
    for row in rows:
        if row[0] <= cutoff_ord:
            builder.append_row(*row)
    base_scan = ScanDataset.from_table(
        builder.finish(),
        tuple(d for d in calendar if d <= cutoff),
        known_missing_dates=frozenset(
            d for d in inputs.scan.known_missing_dates if d <= cutoff
        ),
    )

    base_pdns = PassiveDNSDatabase()
    delta_observations: list[tuple] = []
    for record in inputs.pdns.all_records():
        if record.first_seen <= cutoff:
            for rrname, rtype, rdata, day in _observation_tuples(record):
                base_pdns.add_observation(rrname, rtype, rdata, day)
        else:
            delta_observations.extend(_observation_tuples(record))

    base_log = CTLog(study.ct_log.name)
    delta_ct: list[tuple] = []
    for entry in study.ct_log.entries():
        if entry.timestamp <= cutoff:
            base_log.submit(entry.certificate, entry.timestamp)
        else:
            delta_ct.append((entry.certificate, entry.timestamp))
    base_crtsh = CrtShService(
        [base_log],
        study.revocations,
        asof=study.crtsh._asof,
        publication_delay_days=study.crtsh._publication_delay.days,
        publication_horizon=study.crtsh._publication_horizon,
    )

    base = replace(inputs, scan=base_scan, pdns=base_pdns, crtsh=base_crtsh)
    delta = EpochDelta(
        epoch=1,
        label=f"paper-split-{cutoff.isoformat()}",
        scan_rows=tuple(row for row in rows if row[0] > cutoff_ord),
        scan_dates=tuple(d for d in calendar if d > cutoff),
        known_missing=tuple(
            sorted(d for d in inputs.scan.known_missing_dates if d > cutoff)
        ),
        pdns_observations=tuple(delta_observations),
        ct_entries=tuple(delta_ct),
    )
    return base, delta


_SPLITS: dict[int, tuple[PipelineInputs, EpochDelta]] = {}


def _split_cached(seed: int) -> tuple[PipelineInputs, EpochDelta]:
    if seed not in _SPLITS:
        _SPLITS[seed] = _split(_study(seed))
    return _SPLITS[seed]


def test_split_is_a_real_split():
    base, delta = _split_cached(GOLDEN_SEEDS[0])
    original = _study(GOLDEN_SEEDS[0])
    assert delta.scan_rows
    assert delta.scan_dates
    assert len(base.scan.table) + len(delta.scan_rows) == len(
        original.scan.table
    )
    assert len(base.scan.scan_dates) < len(original.scan.scan_dates)


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_epoch_replay_matches_golden_serial(seed):
    base, delta = _split_cached(seed)
    report, _metrics, dirty = run_epoch(base, delta)
    # The delta's calendar additions are in-period by construction, so
    # this also pins the declined-seeding path's identity.
    assert dirty.calendar_changed
    assert encode_report(report) == _golden_text(seed)


def test_epoch_replay_survives_the_delta_file(tmp_path):
    """Round-tripping the split through a ``repro-delta/1`` container
    changes nothing: certificates, RRTypes, and dates all travel."""
    seed = GOLDEN_SEEDS[0]
    base, delta = _split_cached(seed)
    path = write_delta(delta, tmp_path / "paper.delta")
    loaded = read_delta(path)
    assert loaded.digest() == delta.digest()
    report, _metrics, _dirty = run_epoch(base, loaded)
    assert encode_report(report) == _golden_text(seed)


@pytest.mark.parametrize("start_method", START_METHODS)
@pytest.mark.parametrize("partition", ["hash", "shard"])
def test_epoch_replay_matches_golden_process_pool(start_method, partition):
    base, delta = _split_cached(GOLDEN_SEEDS[0])
    backend = ProcessPoolBackend(
        jobs=2, start_method=start_method, partition=partition
    )
    report, _metrics, _dirty = run_epoch(base, delta, backend=backend)
    assert encode_report(report) == _golden_text(GOLDEN_SEEDS[0])


def test_epoch_replay_with_warm_cache(tmp_path):
    seed = GOLDEN_SEEDS[0]
    base, delta = _split_cached(seed)
    cache = StageCache(tmp_path / "cache")
    HijackPipeline(base).profile(cache=cache)
    report, metrics, _dirty = run_epoch(base, delta, cache=cache)
    assert metrics.epoch["seeded"] is False
    assert metrics.epoch["reuse_disabled"] == "calendar-changed"
    assert encode_report(report) == _golden_text(seed)
    # A second application is satisfied from the merged entry.
    report, metrics, _dirty = run_epoch(base, delta, cache=cache)
    assert metrics.epoch["reuse_disabled"] == "already-cached"
    assert encode_report(report) == _golden_text(seed)


def test_fault_variant_replay_matches_degraded_golden():
    """The degraded pin reproduces through the split as well: fault
    decisions are identity-keyed, so base evidence degrades the same
    way with the delta appended after it."""
    base, delta = _split_cached(GOLDEN_FAULT_SEED)
    plan = FaultPlan.from_spec(GOLDEN_FAULT_SPEC, seed=GOLDEN_FAULT_SEED)
    report, _metrics, _dirty = run_epoch(base, delta, faults=plan)
    assert encode_report(report) == _fault_golden_text()
