"""Tests for the scenario-construction helpers and row data integrity."""

from datetime import date

import pytest

from repro.net.names import public_suffix, registered_domain
from repro.world.scenarios import (
    HIJACKED_ROWS,
    TARGETED_ROWS,
    _attacker_prefixes,
    _AuxAllocator,
    _month_to_date,
    kyrgyzstan_world,
    small_world,
)


class TestMonthParsing:
    def test_regular_months_use_day_10(self):
        assert _month_to_date("May'18") == date(2018, 5, 10)
        assert _month_to_date("Sep'17") == date(2017, 9, 10)

    def test_boundary_months_use_day_1(self):
        """June and December campaigns start on the 1st so transients
        clear the six-month period boundary."""
        assert _month_to_date("Dec'20") == date(2020, 12, 1)
        assert _month_to_date("Jun'20") == date(2020, 6, 1)

    def test_all_row_months_parse_into_study_window(self):
        for row in HIJACKED_ROWS + TARGETED_ROWS:
            day = _month_to_date(row.month)
            assert date(2017, 1, 1) <= day <= date(2021, 3, 31), row.domain


class TestAttackerPrefixes:
    def test_every_ip_covered_by_its_asn(self):
        from repro.net.ipv4 import ip_in_prefix

        prefixes = _attacker_prefixes(HIJACKED_ROWS + TARGETED_ROWS)
        for row in HIJACKED_ROWS + TARGETED_ROWS:
            assert any(
                ip_in_prefix(row.ip, cidr) for cidr, _ in prefixes[row.asn]
            ), row.ip

    def test_per_prefix_country_matches_first_row(self):
        prefixes = _attacker_prefixes(HIJACKED_ROWS)
        # 14061 appears with both NL and DE rows: per-/24 geolocation.
        countries = {cc for _, cc in prefixes[14061]}
        assert {"NL", "DE"} <= countries

    def test_shared_prefix_not_duplicated(self):
        prefixes = _attacker_prefixes(HIJACKED_ROWS + TARGETED_ROWS)
        for asn, entries in prefixes.items():
            cidrs = [cidr for cidr, _ in entries]
            assert len(cidrs) == len(set(cidrs)), asn


class TestAuxAllocator:
    def test_unique_allocations(self):
        aux = _AuxAllocator()
        asns = {aux.asn() for _ in range(50)}
        prefixes = {aux.prefix() for _ in range(50)}
        assert len(asns) == 50
        assert len(prefixes) == 50

    def test_exhaustion_guard(self):
        aux = _AuxAllocator()
        for _ in range(255 - 176 + 1):
            aux.prefix()
        with pytest.raises(RuntimeError):
            aux.prefix()


class TestRowIntegrity:
    def test_domains_unique(self):
        domains = [r.domain for r in HIJACKED_ROWS + TARGETED_ROWS]
        assert len(domains) == len(set(domains))

    def test_domains_are_registered_domains(self):
        for row in HIJACKED_ROWS + TARGETED_ROWS:
            assert registered_domain(row.domain) == row.domain, row.domain
            assert public_suffix(row.domain) != row.domain, row.domain

    def test_pdns_ct_flags_consistent_with_types(self):
        for row in HIJACKED_ROWS:
            if row.detection == "T1*":
                assert not row.pdns, row.domain
            if row.ca is None:
                assert row.domain == "embassy.ly"
        for row in TARGETED_ROWS:
            assert not row.ct, row.domain  # targeted: no suspicious cert

    def test_noisy_map_rows(self):
        noisy = {r.domain for r in HIJACKED_ROWS if r.noisy_map}
        assert noisy == {"owa.gov.cy", "netnod.se"}


class TestSmallScenarios:
    def test_small_world_deterministic(self):
        a = small_world(seed=2, n_background=5)
        b = small_world(seed=2, n_background=5)
        assert a.ground_truth.records[0].attacker_ips == b.ground_truth.records[0].attacker_ips
        assert len(a.hosts) == len(b.hosts)

    def test_kyrgyz_world_contents(self):
        world = kyrgyzstan_world(n_background=0)
        assert world.ground_truth.domains() == {
            "mfa.gov.kg", "invest.gov.kg", "fiu.gov.kg", "infocom.kg"
        }
        # The extended variant reaches past the study window.
        extended = kyrgyzstan_world(n_background=0, extended=True)
        assert extended.end == date(2021, 6, 30)
        assert len(extended.http) >= 3  # legit + Dec + May pages
