"""Tests for the persistence layer: JSONL primitives and round-trips."""

from datetime import date

import pytest

from repro.core.deployment import build_deployment_maps
from repro.io.datasets import load_pdns, load_scan_dataset, save_pdns, save_scan_dataset
from repro.io.jsonl import read_jsonl, write_jsonl
from repro.io.reports import load_findings, save_findings


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.jsonl"
        rows = [{"a": 1}, {"b": [1, 2], "c": "text"}]
        assert write_jsonl(path, rows) == 2
        assert list(read_jsonl(path)) == rows

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"a":1}\n\n{"b":2}\n')
        assert len(list(read_jsonl(path))) == 2

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"a":1}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            list(read_jsonl(path))

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "x.jsonl"
        write_jsonl(path, [{"a": 1}])
        assert path.exists()


class TestScanDatasetRoundtrip:
    def test_roundtrip_preserves_pipeline_behaviour(self, small_study, tmp_path):
        path = tmp_path / "scan.jsonl"
        n = save_scan_dataset(small_study.scan, path)
        assert n == len(small_study.scan) + 1  # records + header

        loaded = load_scan_dataset(path)
        assert loaded.scan_dates == small_study.scan.scan_dates
        assert loaded.domains() == small_study.scan.domains()
        assert len(loaded) == len(small_study.scan)

        # Deployment maps built from the loaded dataset are identical in
        # structure (same deployments per domain-period).
        original = build_deployment_maps(small_study.scan, small_study.periods)
        replayed = build_deployment_maps(loaded, small_study.periods)
        assert set(original) == set(replayed)
        for key in original:
            a, b = original[key], replayed[key]
            assert [(d.asn, d.first_seen, d.last_seen) for d in a.deployments] == [
                (d.asn, d.first_seen, d.last_seen) for d in b.deployments
            ]
            assert [d.cert_fingerprints for d in a.deployments] == [
                d.cert_fingerprints for d in b.deployments
            ]

    def test_certificates_shared_by_fingerprint(self, small_study, tmp_path):
        path = tmp_path / "scan.jsonl"
        save_scan_dataset(small_study.scan, path)
        loaded = load_scan_dataset(path)
        by_fp = {}
        for record in loaded.records():
            existing = by_fp.setdefault(record.certificate.fingerprint, record.certificate)
            assert existing is record.certificate  # object identity preserved

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "scan.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="header"):
            load_scan_dataset(path)


class TestPdnsRoundtrip:
    def test_roundtrip_preserves_rows(self, small_study, tmp_path):
        path = tmp_path / "pdns.jsonl"
        save_pdns(small_study.pdns, path)
        loaded = load_pdns(path)
        original = {
            (r.rrname, r.rtype, r.rdata): (r.first_seen, r.last_seen, r.count)
            for r in small_study.pdns.all_records()
        }
        replayed = {
            (r.rrname, r.rtype, r.rdata): (r.first_seen, r.last_seen, r.count)
            for r in loaded.all_records()
        }
        assert original == replayed

    def test_pivot_queries_survive_roundtrip(self, small_study, tmp_path):
        path = tmp_path / "pdns.jsonl"
        save_pdns(small_study.pdns, path)
        loaded = load_pdns(path)
        truth = small_study.ground_truth.record_for("example-ministry.gr")
        ip = truth.attacker_ips[0]
        assert loaded.domains_resolving_to(ip) == small_study.pdns.domains_resolving_to(ip)


class TestFindingsRoundtrip:
    def test_roundtrip(self, small_report, tmp_path):
        path = tmp_path / "findings.jsonl"
        save_findings(small_report.findings, path)
        loaded = load_findings(path)
        assert len(loaded) == len(small_report.findings)
        for a, b in zip(small_report.findings, loaded):
            assert a.domain == b.domain
            assert a.verdict is b.verdict
            assert a.detection is b.detection
            assert a.attacker_ips == b.attacker_ips
            assert a.crtsh_id == b.crtsh_id
            assert a.first_evidence == b.first_evidence
