"""Tests for the caching resolver and the poisoned-cache tail."""

from datetime import datetime, timedelta

import pytest

from repro.dns.cache import CachingResolver, poisoned_tail_seconds
from repro.dns.nameserver import NameserverDirectory, NameserverHost
from repro.dns.records import RRType
from repro.dns.registry import Registry
from repro.dns.resolver import RecursiveResolver

T0 = datetime(2020, 1, 1)
WINDOW_START = datetime(2020, 12, 20, 5)
WINDOW_END = datetime(2020, 12, 20, 11)


@pytest.fixture
def upstream():
    registry = Registry("gov.kg")
    directory = NameserverDirectory()
    resolver = RecursiveResolver([registry], directory)
    legit = NameserverHost(operator="legit")
    directory.bind("ns1.x.gov.kg", legit, start=T0)
    registry.register("x.gov.kg", ("ns1.x.gov.kg",), "reg", at=T0)
    legit.add_record("mail.x.gov.kg", RRType.A, "10.0.0.1", start=T0)
    legit.add_record(
        "mail.x.gov.kg", RRType.A, "203.0.113.9", WINDOW_START, WINDOW_END
    )
    return resolver


class TestCachingResolver:
    def test_caches_positive_answers(self, upstream):
        cache = CachingResolver(upstream, ttl_seconds=3600)
        first = cache.resolve_a("mail.x.gov.kg", datetime(2020, 6, 1, 12))
        second = cache.resolve_a("mail.x.gov.kg", datetime(2020, 6, 1, 12, 30))
        assert first == second == ("10.0.0.1",)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_cache_expires(self, upstream):
        cache = CachingResolver(upstream, ttl_seconds=3600)
        cache.resolve_a("mail.x.gov.kg", datetime(2020, 6, 1, 12))
        cache.resolve_a("mail.x.gov.kg", datetime(2020, 6, 1, 13, 1))
        assert cache.misses == 2

    def test_rejects_time_travel(self, upstream):
        cache = CachingResolver(upstream)
        cache.resolve_a("mail.x.gov.kg", datetime(2020, 6, 2))
        with pytest.raises(ValueError):
            cache.resolve_a("mail.x.gov.kg", datetime(2020, 6, 1))

    def test_flush(self, upstream):
        cache = CachingResolver(upstream)
        cache.resolve_a("mail.x.gov.kg", datetime(2020, 6, 1))
        cache.flush()
        cache.resolve_a("mail.x.gov.kg", datetime(2020, 6, 1))
        assert cache.misses == 2

    def test_negative_answers_cached_briefly(self, upstream):
        cache = CachingResolver(upstream, negative_ttl_seconds=300)
        cache.resolve("nothing.x.gov.kg", RRType.A, datetime(2020, 6, 1, 12))
        cache.resolve("nothing.x.gov.kg", RRType.A, datetime(2020, 6, 1, 12, 2))
        assert cache.hits == 1
        cache.resolve("nothing.x.gov.kg", RRType.A, datetime(2020, 6, 1, 12, 10))
        assert cache.misses == 2

    def test_validates_ttls(self, upstream):
        with pytest.raises(ValueError):
            CachingResolver(upstream, ttl_seconds=0)


class TestPoisonedTail:
    def test_hijack_lingers_up_to_ttl(self, upstream):
        """A cache primed at the end of the window keeps serving the
        attacker for up to one TTL after the delegation reverts."""
        tail = poisoned_tail_seconds(
            upstream, "mail.x.gov.kg", {"203.0.113.9"}, WINDOW_END,
            ttl_seconds=3600, probe_interval_seconds=60,
        )
        assert 3300 <= tail <= 3600

    def test_short_ttl_short_tail(self, upstream):
        tail = poisoned_tail_seconds(
            upstream, "mail.x.gov.kg", {"203.0.113.9"}, WINDOW_END,
            ttl_seconds=300, probe_interval_seconds=30,
        )
        assert tail <= 300

    def test_no_tail_without_poisoning(self, upstream):
        """A cache that never saw the window has no tail."""
        tail = poisoned_tail_seconds(
            upstream, "mail.x.gov.kg", {"203.0.113.9"},
            WINDOW_END + timedelta(hours=5),
        )
        assert tail == 0
