"""Further property-based tests: reference-model cross-checks.

Each test pits an optimized implementation against a brute-force
reference on random inputs: longest-prefix matching vs a linear scan,
the caching resolver vs the uncached upstream outside TTL effects, and
SAN matching laws.
"""

from datetime import date, datetime, timedelta

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipintel.pfx2as import RoutingTable
from repro.net.ipv4 import IPv4Prefix, int_to_ip
from repro.tls.matching import san_matches

_ips = st.integers(min_value=0, max_value=0xFFFFFFFF).map(int_to_ip)
_prefixes = st.tuples(
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=8, max_value=32),
    st.integers(min_value=1, max_value=64_000),
)


class TestRoutingTableAgainstReference:
    @settings(max_examples=60)
    @given(st.lists(_prefixes, min_size=1, max_size=25), _ips)
    def test_lpm_matches_linear_scan(self, announcements, ip):
        table = RoutingTable()
        reference: list[tuple[IPv4Prefix, int]] = []
        for value, length, asn in announcements:
            prefix = IPv4Prefix.parse(f"{int_to_ip(value)}/{length}")
            table.add(prefix, asn)
            # Later announcements of the same prefix overwrite.
            reference = [(p, a) for (p, a) in reference if p != prefix]
            reference.append((prefix, asn))

        expected = None
        best_length = -1
        for prefix, asn in reference:
            if prefix.contains(ip) and prefix.length > best_length:
                expected = asn
                best_length = prefix.length
        assert table.lookup(ip) == expected


class TestSanMatchingLaws:
    _labels = st.from_regex(r"[a-z][a-z0-9-]{0,8}", fullmatch=True)

    @settings(max_examples=60)
    @given(_labels, _labels, _labels)
    def test_wildcard_matches_exactly_one_level(self, left, mid, base_label):
        base = f"{base_label}.com"
        assert san_matches(f"*.{base}", f"{left}.{base}")
        assert not san_matches(f"*.{base}", base)
        assert not san_matches(f"*.{base}", f"{left}.{mid}.{base}")

    @settings(max_examples=60)
    @given(_labels, _labels)
    def test_exact_match_is_case_and_dot_insensitive(self, label, base_label):
        fqdn = f"{label}.{base_label}.org"
        assert san_matches(fqdn.upper(), fqdn + ".")
        assert san_matches(fqdn, fqdn)


class TestCacheAgainstUpstream:
    def _upstream(self):
        from repro.dns.nameserver import NameserverDirectory, NameserverHost
        from repro.dns.records import RRType
        from repro.dns.registry import Registry
        from repro.dns.resolver import RecursiveResolver

        registry = Registry("com")
        directory = NameserverDirectory()
        resolver = RecursiveResolver([registry], directory)
        host = NameserverHost(operator="op")
        t0 = datetime(2020, 1, 1)
        directory.bind("ns1.x.com", host, start=t0)
        registry.register("x.com", ("ns1.x.com",), "reg", at=t0)
        host.add_record("www.x.com", RRType.A, "10.0.0.1", start=t0)
        return resolver

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=20))
    def test_cache_agrees_with_upstream_on_static_data(self, offsets):
        """With no underlying change, the cache must be answer-transparent
        regardless of query spacing."""
        from repro.dns.cache import CachingResolver
        from repro.dns.records import RRType

        upstream = self._upstream()
        cache = CachingResolver(upstream, ttl_seconds=600)
        base = datetime(2020, 6, 1)
        instant = base
        for offset in sorted(offsets):
            instant = base + timedelta(seconds=offset)
            cached = cache.resolve("www.x.com", RRType.A, instant)
            direct = upstream.resolve("www.x.com", RRType.A, instant)
            assert cached.answers == direct.answers
