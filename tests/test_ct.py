"""Tests for the CT substrate: Merkle tree, log, crt.sh service."""

from datetime import date

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ct.crtsh import CrtShService
from repro.ct.log import CTLog
from repro.ct.merkle import MerkleTree
from repro.tls.certificate import Certificate
from repro.tls.revocation import RevocationRegistry


def cert(name, serial=1, issued=date(2019, 1, 1), issuer="Let's Encrypt", days=90):
    from datetime import timedelta

    return Certificate(
        serial=serial,
        common_name=name,
        sans=(name,),
        issuer=issuer,
        not_before=issued,
        not_after=issued + timedelta(days=days),
    )


class TestMerkleTree:
    def test_empty_root_is_hash_of_empty_string(self):
        import hashlib

        assert MerkleTree().root() == hashlib.sha256(b"").digest()

    def test_root_changes_on_append(self):
        tree = MerkleTree()
        tree.append(b"a")
        first = tree.root()
        tree.append(b"b")
        assert tree.root() != first

    def test_partial_root_is_stable(self):
        tree = MerkleTree()
        tree.append(b"a")
        tree.append(b"b")
        root_2 = tree.root(2)
        tree.append(b"c")
        assert tree.root(2) == root_2  # append-only: old roots unchanged

    def test_inclusion_proof_verifies(self):
        tree = MerkleTree()
        leaves = [f"leaf-{i}".encode() for i in range(13)]
        for leaf in leaves:
            tree.append(leaf)
        for index, leaf in enumerate(leaves):
            proof = tree.inclusion_proof(index)
            assert MerkleTree.verify_inclusion(leaf, index, len(leaves), proof, tree.root())

    def test_tampered_leaf_fails_verification(self):
        tree = MerkleTree()
        for i in range(8):
            tree.append(f"leaf-{i}".encode())
        proof = tree.inclusion_proof(3)
        assert not MerkleTree.verify_inclusion(b"evil", 3, 8, proof, tree.root())

    def test_wrong_index_fails(self):
        tree = MerkleTree()
        for i in range(8):
            tree.append(f"leaf-{i}".encode())
        proof = tree.inclusion_proof(3)
        assert not MerkleTree.verify_inclusion(b"leaf-3", 4, 8, proof, tree.root())

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=40), st.data())
    def test_inclusion_proofs_for_random_sizes(self, size, data):
        tree = MerkleTree()
        for i in range(size):
            tree.append(f"L{i}".encode())
        index = data.draw(st.integers(min_value=0, max_value=size - 1))
        proof = tree.inclusion_proof(index)
        assert MerkleTree.verify_inclusion(
            f"L{index}".encode(), index, size, proof, tree.root()
        )

    def test_proof_bounds_checked(self):
        tree = MerkleTree()
        tree.append(b"x")
        with pytest.raises(ValueError):
            tree.inclusion_proof(1)

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=48), st.data())
    def test_consistency_proofs(self, new_size, data):
        """Append-only auditing: every old tree is a verifiable prefix."""
        tree = MerkleTree()
        for i in range(new_size):
            tree.append(f"L{i}".encode())
        old_size = data.draw(st.integers(min_value=1, max_value=new_size))
        proof = tree.consistency_proof(old_size, new_size)
        assert MerkleTree.verify_consistency(
            old_size, new_size, tree.root(old_size), tree.root(new_size), proof
        )

    def test_consistency_rejects_forked_history(self):
        """A log that rewrote an old entry cannot produce a valid proof."""
        honest = MerkleTree()
        forked = MerkleTree()
        for i in range(12):
            honest.append(f"L{i}".encode())
            forked.append((f"L{i}" if i != 3 else "EVIL").encode())
        proof = forked.consistency_proof(8, 12)
        assert not MerkleTree.verify_consistency(
            8, 12, honest.root(8), forked.root(12), proof
        )

    def test_consistency_bounds(self):
        tree = MerkleTree()
        tree.append(b"x")
        with pytest.raises(ValueError):
            tree.consistency_proof(0)
        with pytest.raises(ValueError):
            tree.consistency_proof(2)


class TestCTLog:
    def test_assigns_crtsh_ids_monotonically(self):
        log = CTLog(first_crtsh_id=500)
        a, _ = log.submit(cert("a.example.com"), date(2019, 1, 1))
        b, _ = log.submit(cert("b.example.com", serial=2), date(2019, 1, 2))
        assert a.crtsh_id == 500
        assert b.crtsh_id == 501

    def test_deduplicates_resubmission(self):
        log = CTLog()
        c = cert("a.example.com")
        first, sct1 = log.submit(c, date(2019, 1, 1))
        second, sct2 = log.submit(c, date(2019, 1, 5))
        assert len(log) == 1
        assert first.crtsh_id == second.crtsh_id
        assert sct1.entry_index == sct2.entry_index

    def test_entries_verify_against_tree(self):
        log = CTLog()
        for i in range(10):
            log.submit(cert(f"d{i}.example.com", serial=i + 1), date(2019, 1, 1))
        for entry in log.entries():
            assert log.verify_entry(entry)


class TestCrtSh:
    def make_service(self):
        log = CTLog()
        revocations = RevocationRegistry()
        service = CrtShService([log], revocations, asof=date(2021, 1, 1))
        return log, service

    def test_search_by_registered_domain(self):
        log, service = self.make_service()
        log.submit(cert("mail.mfa.gov.kg"), date(2020, 12, 21))
        log.submit(cert("www.mfa.gov.kg", serial=2), date(2020, 1, 1))
        log.submit(cert("mail.other.org", serial=3), date(2020, 12, 21))
        results = service.search("mfa.gov.kg")
        assert {e.certificate.common_name for e in results} == {
            "mail.mfa.gov.kg",
            "www.mfa.gov.kg",
        }

    def test_search_window(self):
        log, service = self.make_service()
        log.submit(cert("mail.x.com", issued=date(2019, 1, 1)), date(2019, 1, 1))
        log.submit(cert("mail.x.com", serial=2, issued=date(2020, 6, 1)), date(2020, 6, 1))
        results = service.search("x.com", issued_after=date(2020, 1, 1))
        assert len(results) == 1
        assert results[0].issued_on == date(2020, 6, 1)

    def test_search_exact(self):
        log, service = self.make_service()
        log.submit(cert("mail.x.com"), date(2019, 1, 1))
        log.submit(cert("imap.x.com", serial=2), date(2019, 1, 1))
        results = service.search_exact("mail.x.com")
        assert len(results) == 1

    def test_lookup_id(self):
        log, service = self.make_service()
        logged, _ = log.submit(cert("mail.x.com"), date(2019, 1, 1))
        found = service.lookup_id(logged.crtsh_id)
        assert found is not None
        assert found.certificate.fingerprint == logged.fingerprint
        assert service.lookup_id(424242) is None

    def test_issued_in_window(self):
        log, service = self.make_service()
        log.submit(cert("mail.x.com", issued=date(2020, 12, 21)), date(2020, 12, 21))
        hits = service.issued_in_window("mail.x.com", date(2020, 12, 22), 7)
        assert len(hits) == 1
        assert not service.issued_in_window("mail.x.com", date(2020, 3, 1), 7)

    def test_index_sees_late_log_growth(self):
        log, service = self.make_service()
        assert service.search("x.com") == []
        log.submit(cert("mail.x.com"), date(2019, 1, 1))
        assert len(service.search("x.com")) == 1
