"""Unit tests for the deterministic fault-injection layer."""

from __future__ import annotations

from datetime import date, timedelta

import pytest

from repro.dns.records import RRType
from repro.exec import ProcessPoolBackend, RunMetrics, SerialBackend
from repro.faults import (
    DataQuality,
    FaultClock,
    FaultError,
    FaultPlan,
    FaultSpec,
    apply_faults,
    format_data_quality,
)
from repro.net.timeline import DateInterval, Period
from repro.pdns.database import PassiveDNSDatabase


class TestFaultSpec:
    def test_parse_empty(self):
        assert FaultSpec.parse(None) == FaultSpec()
        assert FaultSpec.parse("") == FaultSpec()
        assert FaultSpec().is_empty

    def test_parse_round_trip(self):
        text = (
            "scan.drop_weeks=0.2,scan.drop_ports=0.05,pdns.blackouts=2,"
            "ct.delay_days=30,routing.stale=0.1,workers.crash=0.3"
        )
        spec = FaultSpec.parse(text)
        assert spec.drop_weeks == 0.2
        assert spec.pdns_blackouts == 2
        assert spec.ct_delay_days == 30
        assert not spec.is_empty
        assert FaultSpec.parse(spec.format()) == spec

    def test_policy_fields_do_not_make_a_spec_non_empty(self):
        assert FaultSpec.parse("workers.max_retries=5,workers.backoff_ms=1").is_empty

    @pytest.mark.parametrize(
        "text",
        [
            "scan.drop_weeks=1.5",          # probability out of range
            "pdns.blackouts=-1",            # negative count
            "workers.max_retries=0",        # at least one attempt
            "nonsense.channel=1",           # unknown channel
            "scan.drop_weeks=0.1,scan.drop_weeks=0.2",  # duplicate clause
            "scan.drop_weeks",              # no value
        ],
    )
    def test_parse_rejects(self, text):
        with pytest.raises(FaultError):
            FaultSpec.parse(text)


class TestFaultClock:
    def test_deterministic_and_seed_sensitive(self):
        a, b = FaultClock(seed=1), FaultClock(seed=1)
        other = FaultClock(seed=2)
        draws_a = [a.uniform("chan", i) for i in range(50)]
        draws_b = [b.uniform("chan", i) for i in range(50)]
        assert draws_a == draws_b
        assert draws_a != [other.uniform("chan", i) for i in range(50)]
        assert all(0.0 <= u < 1.0 for u in draws_a)

    def test_fires_monotone_in_probability(self):
        clock = FaultClock(seed=9)
        low = {i for i in range(500) if clock.fires("c", 0.1, i)}
        high = {i for i in range(500) if clock.fires("c", 0.4, i)}
        assert low <= high  # a fixed draw per identity nests the fired sets
        assert len(low) < len(high)

    def test_pick_in_range(self):
        clock = FaultClock(seed=3)
        assert all(0 <= clock.pick("c", 10, i) < 10 for i in range(100))


class TestScanDegradation:
    def _dataset(self):
        from repro.world.scenarios import small_world
        from repro.world.sim import run_study

        return run_study(small_world()).scan

    def test_degraded_preserves_calendar(self):
        scan = self._dataset()
        dropped = scan.scan_dates[2:5]
        degraded = scan.degraded(drop_dates=dropped)
        assert degraded.scan_dates == scan.scan_dates
        assert degraded.known_missing_dates == frozenset(dropped)
        assert len(degraded) < len(scan)
        assert not any(
            r.scan_date in set(dropped) for r in degraded.records()
        )

    def test_presence_excludes_known_missing(self):
        scan = self._dataset()
        domain = scan.domains()[0]
        period = Period(
            index=0, start=scan.scan_dates[0], end=scan.scan_dates[-1]
        )
        full = scan.presence(domain, period)
        visible = {
            r.scan_date for r in scan.records_for(domain) if period.contains(r.scan_date)
        }
        dropped = [d for d in scan.scan_dates if d not in visible][:2] or list(
            scan.scan_dates[:2]
        )
        degraded = scan.degraded(drop_dates=dropped)
        # Dropping scans never *lowers* the visibility ratio, because the
        # lost dates leave the denominator too.
        assert degraded.presence(domain, period) >= full - 1e-9

    def test_records_for_returns_immutable_view(self):
        scan = self._dataset()
        domain = scan.domains()[0]
        view = scan.records_for(domain)
        assert isinstance(view, tuple)
        assert view is scan.records_for(domain)  # zero-copy: same object
        assert scan.records_for("never-scanned.example") == ()


class TestPdnsBlackouts:
    def _db(self):
        db = PassiveDNSDatabase()
        day = date(2019, 1, 1)
        for offset in range(0, 30):
            db.add_observation("a.example.com", RRType.A, "192.0.2.1", day + timedelta(days=offset))
        db.add_observation("b.example.com", RRType.A, "192.0.2.2", date(2019, 1, 10))
        return db

    def test_row_inside_window_dropped(self):
        blacked = self._db().without_windows(
            [DateInterval(date(2019, 1, 9), date(2019, 1, 11))]
        )
        assert blacked.query_name("b.example.com") == []

    def test_straddling_row_trimmed_and_count_scaled(self):
        db = self._db()
        blacked = db.without_windows(
            [DateInterval(date(2019, 1, 1), date(2019, 1, 10))]
        )
        (row,) = blacked.query_name("a.example.com")
        assert row.first_seen == date(2019, 1, 11)
        assert row.last_seen == date(2019, 1, 30)
        original = db.query_name("a.example.com")[0]
        assert row.count < original.count

    def test_no_windows_is_identity(self):
        db = self._db()
        copy = db.without_windows([])
        assert copy.all_records() == db.all_records()


class TestCtDelay:
    def _crtsh(self):
        from repro.world.scenarios import small_world

        return small_world().crtsh

    def test_zero_delay_identical(self):
        crtsh = self._crtsh()
        delayed = crtsh.with_publication_delay(0)
        assert delayed.hidden_entries == 0
        domains = {"bank.example.gr"}
        for domain in domains:
            assert [e.crtsh_id for e in delayed.search(domain)] == [
                e.crtsh_id for e in crtsh.search(domain)
            ]

    def test_horizon_hides_late_entries(self):
        crtsh = self._crtsh()
        # With an extreme delay and an early horizon everything is hidden.
        delayed = crtsh.with_publication_delay(365 * 50, horizon=date(2019, 1, 1))
        assert delayed.hidden_entries > 0
        assert delayed.search("bank.example.gr") == []


class TestRoutingThinning:
    def test_thinned_falls_back_to_covering_prefix(self):
        from repro.ipintel.pfx2as import RoutingTable

        table = RoutingTable()
        table.add("10.0.0.0/8", 100)
        table.add("10.1.0.0/16", 200)
        thinned = table.thinned(lambda p: p == "10.1.0.0/16")
        assert len(thinned) == 1
        assert thinned.lookup("10.1.2.3") == 100  # falls through to the /8
        assert table.lookup("10.1.2.3") == 200    # original untouched


class TestApplyFaults:
    def test_empty_plan_is_identity(self):
        from repro.core.pipeline import PipelineInputs
        from repro.world.scenarios import small_world
        from repro.world.sim import run_study

        inputs = PipelineInputs.from_study(run_study(small_world()))
        quality = DataQuality()
        assert apply_faults(inputs, FaultPlan.from_spec(None), quality) is inputs
        assert not quality.degraded

    def test_degradations_recorded(self):
        from repro.core.pipeline import PipelineInputs
        from repro.world.scenarios import small_world
        from repro.world.sim import run_study

        inputs = PipelineInputs.from_study(run_study(small_world()))
        plan = FaultPlan.from_spec(
            "scan.drop_weeks=0.3,pdns.blackouts=1,ct.delay_days=2000,routing.stale=0.5",
            seed=11,
        )
        quality = DataQuality()
        degraded = apply_faults(inputs, plan, quality)
        assert degraded is not inputs
        assert quality.degraded
        assert len(degraded.scan) < len(inputs.scan)
        assert quality.scan_dropped_dates
        assert quality.pdns_blackouts
        assert quality.ct_delay_days == 2000
        assert quality.routing_stale_prefixes > 0
        assert "DEGRADED" in format_data_quality(quality)

    def test_quality_dict_round_trip(self):
        quality = DataQuality(
            scan_dropped_dates=(date(2019, 1, 7),),
            scan_dropped_records=12,
            pdns_blackouts=(DateInterval(date(2019, 2, 1), date(2019, 2, 14)),),
            pdns_rows_dropped=3,
            ct_delay_days=30,
            worker_crashes=2,
            worker_retries=2,
            notes=["scan: 1 weekly scans and 12 records lost"],
        )
        rebuilt = DataQuality.from_dict(quality.to_dict())
        assert rebuilt == quality
        assert rebuilt.to_dict() == quality.to_dict()


class TestWorkerFaultRetry:
    """The acceptance criterion: injected crashes degrade, never abort."""

    @pytest.mark.parametrize("backend_factory", [
        SerialBackend,
        lambda: ProcessPoolBackend(jobs=2),
    ])
    def test_crash_run_completes_with_quality(self, backend_factory, small_study):
        plan = FaultPlan.from_spec("workers.crash=0.9", seed=4)
        clean = small_study.run_pipeline()
        report, metrics = small_study.profile_pipeline(
            backend=backend_factory(), faults=plan
        )
        assert report == clean  # worker faults delay work, never change it
        dq = metrics.data_quality
        assert dq["degraded"] is True
        assert dq["workers"]["crashes"] > 0
        assert dq["workers"]["retries"] >= dq["workers"]["crashes"]

    def test_retry_budget_exceeded_propagates(self):
        from repro.faults.errors import RetryBudgetExceeded, WorkerFault
        from repro.faults.plan import FaultClock

        # max_retries=1 means a single attempt: the injected crash on
        # attempt 0 exhausts the budget immediately.
        plan = FaultPlan.from_spec("workers.crash=1.0,workers.max_retries=1", seed=0)
        backend = SerialBackend()
        backend.install_faults(plan)
        backend.start(None, None)
        with pytest.raises(RetryBudgetExceeded):
            backend.run_inline("classify", [("k", None)])
        assert issubclass(RetryBudgetExceeded, WorkerFault)

    def test_backoff_schedule_is_exponential(self):
        plan = FaultPlan.from_spec("workers.crash=0.5,workers.backoff_ms=40", seed=0)
        assert plan.backoff_seconds(0) == pytest.approx(0.040)
        assert plan.backoff_seconds(1) == pytest.approx(0.080)
        assert plan.backoff_seconds(2) == pytest.approx(0.160)


class TestManifestSchema:
    def test_data_quality_round_trips(self, tmp_path):
        metrics = RunMetrics(backend="serial", jobs=1)
        metrics.data_quality = DataQuality(worker_crashes=1, worker_retries=1).to_dict()
        path = tmp_path / "manifest.json"
        metrics.write(path)
        loaded = RunMetrics.read(path)
        assert loaded.data_quality == metrics.data_quality

    def test_v1_manifest_still_loads(self):
        data = {
            "schema": "repro.exec.run-manifest/1",
            "backend": "serial",
            "jobs": 1,
            "chunk_size": None,
            "wall_seconds": 0.5,
            "stages": [],
            "funnel": {},
        }
        loaded = RunMetrics.from_dict(data)
        assert loaded.data_quality is None

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            RunMetrics.from_dict({"schema": "repro.exec.run-manifest/99"})
