"""Tests for CNAME chasing in the recursive resolver."""

from datetime import datetime

import pytest

from repro.dns.nameserver import NameserverDirectory, NameserverHost
from repro.dns.records import RRType
from repro.dns.registry import Registry
from repro.dns.resolver import RecursiveResolver, ResolutionStatus

T0 = datetime(2019, 1, 1)


@pytest.fixture
def world():
    registry = Registry({"com", "net"})
    directory = NameserverDirectory()
    resolver = RecursiveResolver([registry], directory)

    host_a = NameserverHost(operator="a")
    directory.bind("ns1.a.com", host_a, start=T0)
    registry.register("a.com", ("ns1.a.com",), "reg", at=T0)

    host_b = NameserverHost(operator="b")
    directory.bind("ns1.b.net", host_b, start=T0)
    registry.register("b.net", ("ns1.b.net",), "reg", at=T0)

    # www.a.com -> CNAME cdn.b.net -> A 10.9.9.9
    host_a.add_record("www.a.com", RRType.CNAME, "cdn.b.net", start=T0)
    host_b.add_record("cdn.b.net", RRType.A, "10.9.9.9", start=T0)
    return resolver, host_a, host_b


class TestCnameChasing:
    def test_cross_zone_cname_followed(self, world):
        resolver, _, _ = world
        result = resolver.resolve("www.a.com", RRType.A, datetime(2019, 6, 1))
        assert result.ok
        assert result.answers == ("10.9.9.9",)
        assert result.fqdn == "www.a.com"  # original query name preserved
        assert result.answering_ns == "ns1.a.com"

    def test_cname_query_returns_the_cname_itself(self, world):
        resolver, _, _ = world
        result = resolver.resolve("www.a.com", RRType.CNAME, datetime(2019, 6, 1))
        assert result.answers == ("cdn.b.net",)

    def test_dangling_cname_is_status_of_target(self, world):
        resolver, host_a, _ = world
        host_a.add_record("old.a.com", RRType.CNAME, "gone.b.net", start=T0)
        result = resolver.resolve("old.a.com", RRType.A, datetime(2019, 6, 1))
        assert result.status is ResolutionStatus.NODATA

    def test_chain_of_two(self, world):
        resolver, host_a, host_b = world
        host_a.add_record("x.a.com", RRType.CNAME, "y.a.com", start=T0)
        host_a.add_record("y.a.com", RRType.CNAME, "cdn.b.net", start=T0)
        result = resolver.resolve("x.a.com", RRType.A, datetime(2019, 6, 1))
        assert result.answers == ("10.9.9.9",)

    def test_cname_loop_servfails(self, world):
        resolver, host_a, _ = world
        host_a.add_record("loop1.a.com", RRType.CNAME, "loop2.a.com", start=T0)
        host_a.add_record("loop2.a.com", RRType.CNAME, "loop1.a.com", start=T0)
        result = resolver.resolve("loop1.a.com", RRType.A, datetime(2019, 6, 1))
        assert result.status is ResolutionStatus.SERVFAIL

    def test_direct_answer_bypasses_cname_logic(self, world):
        resolver, host_a, _ = world
        host_a.add_record("plain.a.com", RRType.A, "10.1.1.1", start=T0)
        result = resolver.resolve("plain.a.com", RRType.A, datetime(2019, 6, 1))
        assert result.answers == ("10.1.1.1",)
