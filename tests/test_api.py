"""Tests for the ``repro.api`` stable facade."""

from __future__ import annotations

import json

import pytest

from repro import api


class TestRunStudy:
    def test_small_pack_end_to_end(self, small_report):
        run = api.run_study("small")
        assert run.scenario == "small"
        assert [f.domain for f in run.report.findings] == [
            f.domain for f in small_report.findings
        ]
        assert run.metrics.stages  # the run manifest came along

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="small"):
            api.run_study("not-a-pack")

    def test_faults_pass_through(self):
        clean = api.run_study("small")
        dark = api.run_study("small", faults="pdns.blackouts=2,pdns.blackout_days=200")
        assert len(dark.report.findings) <= len(clean.report.findings)


def test_load_report_round_trips(small_report, tmp_path):
    from repro.io import save_findings

    path = tmp_path / "findings.jsonl"
    save_findings(small_report.findings, path)
    loaded = api.load_report(path)
    assert [f.domain for f in loaded] == [f.domain for f in small_report.findings]


def test_list_detectors_matches_registry():
    import repro.detect as detect

    assert api.list_detectors() == detect.list_detectors()
    assert "funnel" in api.list_detectors()


def test_run_arena_delegates(small_study):
    result = api.run_arena(
        packs=["small"],
        detectors=["naive-transients"],
        studies={"small": small_study},
    )
    assert result.cell("small", "naive-transients").score.recall == 1.0


def test_facade_exports_are_stable():
    assert sorted(api.__all__) == [
        "StudyRun", "list_detectors", "load_report", "run_arena", "run_study",
    ]
    for name in api.__all__:
        assert hasattr(api, name)
