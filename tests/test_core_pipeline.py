"""End-to-end pipeline tests on the small scenario."""

from repro.core.pipeline import PipelineConfig
from repro.core.report import format_findings_table, format_funnel
from repro.core.types import DetectionType, PatternKind, Verdict


class TestSmallWorldPipeline:
    def test_hijack_detected(self, small_report):
        hijacked = small_report.hijacked()
        assert [f.domain for f in hijacked] == ["example-ministry.gr"]
        finding = hijacked[0]
        assert finding.detection is DetectionType.T1
        assert finding.subdomain == "mail"
        assert finding.pdns_corroborated
        assert finding.ct_corroborated
        assert finding.issuer_ca == "Let's Encrypt"
        assert finding.crtsh_id > 0
        assert finding.attacker_asn == 65002
        assert finding.attacker_cc == "NL"
        assert finding.victim_asns == (65001,)
        assert finding.victim_ccs == ("GR",)

    def test_attacker_infrastructure_reported(self, small_report):
        assert small_report.attacker_ips
        assert any(ns.endswith("rogue-demo.net") for ns in small_report.attacker_ns)

    def test_no_false_positives(self, small_study, small_report):
        truth = small_study.ground_truth.domains()
        for finding in small_report.findings:
            assert finding.domain in truth

    def test_funnel_counts_consistent(self, small_report):
        funnel = small_report.funnel
        assert funnel.n_maps == sum(
            (funnel.n_stable, funnel.n_transition, funnel.n_transient, funnel.n_noisy)
        ) + sum(
            1
            for c in small_report.classifications.values()
            if c.kind is PatternKind.NO_DATA
        )
        assert funnel.n_shortlisted >= 1
        assert funnel.n_hijacked == 1
        assert funnel.fraction(funnel.n_stable) > 0.9

    def test_report_accessors(self, small_report):
        finding = small_report.finding_for("example-ministry.gr")
        assert finding is not None
        assert small_report.finding_for("nonexistent.test") is None
        assert small_report.targeted() == []

    def test_rendering_smoke(self, small_report):
        table = format_findings_table(small_report.findings)
        assert "example-ministry.gr" in table
        funnel_text = format_funnel(small_report.funnel)
        assert "deployment maps" in funnel_text
        assert "hijacked" in funnel_text


class TestConfigToggles:
    def test_pivot_can_be_disabled(self, small_study):
        report = small_study.run_pipeline(PipelineConfig(enable_pivot=False))
        assert report.pivots == []
        # The directly-detected hijack remains.
        assert [f.domain for f in report.hijacked()] == ["example-ministry.gr"]

    def test_t1_star_can_be_disabled(self, small_study):
        report = small_study.run_pipeline(PipelineConfig(enable_t1_star=False))
        assert all(
            f.detection is not DetectionType.T1_STAR for f in report.findings
        )

    def test_classifications_expose_every_map(self, small_study, small_report):
        domains_with_maps = {d for d, _ in small_report.classifications}
        assert "example-ministry.gr" in domains_with_maps
        assert len(domains_with_maps) > 20  # background population present
