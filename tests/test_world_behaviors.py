"""Tests for the benign background generators: each behaviour must land in
the pattern class it models, and the benign transients must be pruned by
exactly the heuristic they exercise."""

from datetime import date

import pytest

from repro.core.deployment import build_deployment_maps
from repro.core.patterns import classify
from repro.core.shortlist import Shortlister
from repro.core.types import PatternKind
from repro.world.behaviors import (
    BackgroundMix,
    noisy,
    populate_background,
    stable_s1,
    stable_s2,
    stable_s3,
    stable_s4,
    standard_background_providers,
    transient_low_visibility,
    transient_nonsensitive,
    transient_org_related,
    transient_same_country,
    transient_stale_cert,
    transition_x1,
    transition_x2,
    transition_x3,
)
from repro.world.sim import run_study
from repro.world.world import World
from repro.net.timeline import DateInterval

import random

INTERVAL_START = date(2019, 1, 1)
INTERVAL_END = date(2019, 6, 30)


def classify_behaviour(behaviour, periods_needed=1):
    world = World(seed=11, start=INTERVAL_START, end=INTERVAL_END)
    pool = standard_background_providers(world)
    rng = random.Random(99)
    behaviour(world, "probe.com", pool, rng, DateInterval(INTERVAL_START, INTERVAL_END))
    study = run_study(world)
    maps = build_deployment_maps(study.scan, study.periods)
    key = ("probe.com", 0)
    assert key in maps, "behaviour produced no scan visibility"
    return classify(maps[key]), study


@pytest.mark.parametrize("behaviour", [stable_s1, stable_s2, stable_s3, stable_s4])
def test_stable_behaviours_classify_stable(behaviour):
    classification, _ = classify_behaviour(behaviour)
    assert classification.kind is PatternKind.STABLE, behaviour.__name__


@pytest.mark.parametrize("behaviour", [transition_x1, transition_x2, transition_x3])
def test_transition_behaviours_classify_transition(behaviour):
    classification, _ = classify_behaviour(behaviour)
    assert classification.kind is PatternKind.TRANSITION, behaviour.__name__


def test_noisy_behaviour_classifies_noisy():
    classification, _ = classify_behaviour(noisy)
    assert classification.kind is PatternKind.NOISY


@pytest.mark.parametrize(
    "behaviour,expected_reason",
    [
        (transient_org_related, "org-related-asn"),
        (transient_same_country, "same-country"),
        (transient_low_visibility, "low-visibility"),
        (transient_nonsensitive, "no-sensitive-name"),
    ],
)
def test_benign_transients_pruned_by_their_heuristic(behaviour, expected_reason):
    classification, study = classify_behaviour(behaviour)
    classifications = {("probe.com", 0): classification}
    entries, decisions = Shortlister(study.as2org).evaluate(classifications)
    assert entries == []
    assert any(d.reason == expected_reason for d in decisions), [
        d.reason for d in decisions
    ]


def test_stale_cert_transient_survives_shortlist_dies_in_inspection():
    """The 8143 -> 1256 funnel: shortlisted, then found benign."""
    from repro.core.inspection import Inspector

    classification, study = classify_behaviour(transient_stale_cert)
    assert classification.kind is PatternKind.TRANSIENT
    entries, _ = Shortlister(study.as2org).evaluate({("probe.com", 0): classification})
    assert len(entries) == 1  # sensitive name + cross-AS + cross-country
    inspector = Inspector(study.pdns, study.crtsh)
    result = inspector.inspect(entries[0])
    from repro.core.types import Verdict

    assert result.verdict is Verdict.BENIGN
    assert result.evidence.stale_certificate


class TestPopulation:
    def test_mix_counts(self):
        mix = BackgroundMix()
        counts = mix.counts(10_000)
        # The paper's four fractions sum to 99.93%; stable absorbs the rest.
        assert counts["stable"] == 9657
        assert counts["transition"] == 295
        assert counts["transient"] == 13
        assert counts["noisy"] == 35

    def test_population_fraction_shape(self):
        """A pure background population reproduces the paper's Section 4.2
        fractions to within classification noise."""
        world = World(seed=21, start=INTERVAL_START, end=INTERVAL_END)
        assigned = populate_background(
            world, 400, DateInterval(INTERVAL_START, INTERVAL_END)
        )
        assert len(assigned) == 400
        study = run_study(world)
        report = study.run_pipeline()
        from repro.analysis.funnel import classification_fractions

        fractions = classification_fractions(report)
        assert fractions.stable >= 0.93
        assert fractions.transient <= 0.03
        # Nothing in a benign world may be called hijacked or targeted.
        assert report.findings == []
