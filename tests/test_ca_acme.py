"""Tests for ACME domain validation — the causal heart of the attack.

A certificate order succeeds exactly when the requester controls the
domain's public resolution at validation time: the legitimate owner
always can; an attacker can only during a hijack window.
"""

from datetime import datetime, timedelta

import pytest

from repro.ca.acme import AcmeError, AcmeServer, ChallengePublisher
from repro.ca.authority import default_authorities
from repro.ct.log import CTLog
from repro.dns.nameserver import NameserverDirectory, NameserverHost
from repro.dns.records import RRType
from repro.dns.registry import Registry
from repro.dns.resolver import RecursiveResolver
from repro.tls.revocation import RevocationRegistry
from repro.tls.truststore import TrustStore

T0 = datetime(2018, 1, 1)


@pytest.fixture
def acme_world():
    registry = Registry("gov.kg")
    directory = NameserverDirectory()
    resolver = RecursiveResolver([registry], directory)
    revocations = RevocationRegistry()
    trust = TrustStore()
    authorities = default_authorities(revocations, trust)
    ct_log = CTLog()
    server = AcmeServer(authorities["Let's Encrypt"], resolver, ct_log)

    legit = NameserverHost(operator="infocom")
    directory.bind("ns1.infocom.kg", legit, start=T0)
    registry.register("mfa.gov.kg", ("ns1.infocom.kg",), "reg", at=T0)
    rogue = NameserverHost(operator="attacker")
    directory.bind("ns1.kg-infocom.ru", rogue, start=T0)
    return registry, resolver, server, legit, rogue, ct_log, trust


class TestLegitimateIssuance:
    def test_owner_passes_dns01(self, acme_world):
        _, _, server, legit, _, ct_log, trust = acme_world
        cert = server.request_certificate(
            ("mail.mfa.gov.kg",), ChallengePublisher(legit), at=datetime(2019, 5, 1, 3)
        )
        assert cert.crtsh_id > 0
        assert cert.issuer == "Let's Encrypt"
        assert cert.validity_days == 90
        assert trust.is_browser_trusted(cert)
        assert len(ct_log) == 1

    def test_multi_name_order(self, acme_world):
        _, _, server, legit, _, _, _ = acme_world
        cert = server.request_certificate(
            ("mail.mfa.gov.kg", "www.mfa.gov.kg"),
            ChallengePublisher(legit),
            at=datetime(2019, 5, 1, 3),
        )
        assert set(cert.sans) == {"mail.mfa.gov.kg", "www.mfa.gov.kg"}


class TestAttackerIssuance:
    def test_attacker_fails_without_hijack(self, acme_world):
        """The rogue host answers, but the delegation never points at it."""
        _, _, server, _, rogue, _, _ = acme_world
        with pytest.raises(AcmeError):
            server.request_certificate(
                ("mail.mfa.gov.kg",), ChallengePublisher(rogue), at=datetime(2019, 5, 1, 3)
            )

    def test_attacker_succeeds_during_hijack_window(self, acme_world):
        """With the delegation hijacked for two hours, DNS-01 passes."""
        registry, _, server, _, rogue, ct_log, _ = acme_world
        issue_at = datetime(2020, 12, 21, 2)
        registry.set_delegation(
            "mfa.gov.kg", ("ns1.kg-infocom.ru",), issue_at, issue_at + timedelta(hours=2)
        )
        cert = server.request_certificate(
            ("mail.mfa.gov.kg",), ChallengePublisher(rogue), at=issue_at
        )
        assert cert.crtsh_id > 0  # browser-trusted, CT-logged, attacker-held
        assert len(ct_log) == 1

    def test_attacker_fails_after_window_closes(self, acme_world):
        registry, _, server, _, rogue, _, _ = acme_world
        issue_at = datetime(2020, 12, 21, 2)
        registry.set_delegation(
            "mfa.gov.kg", ("ns1.kg-infocom.ru",), issue_at, issue_at + timedelta(hours=2)
        )
        with pytest.raises(AcmeError):
            server.request_certificate(
                ("mail.mfa.gov.kg",),
                ChallengePublisher(rogue),
                at=issue_at + timedelta(hours=3),
            )

    def test_stale_token_rejected(self, acme_world):
        """A token published for an earlier order does not satisfy a new one."""
        registry, resolver, server, _, rogue, _, _ = acme_world
        issue_at = datetime(2020, 12, 21, 2)
        registry.set_delegation("mfa.gov.kg", ("ns1.kg-infocom.ru",), issue_at)
        # Publish a wrong token manually.
        rogue.add_record(
            "_acme-challenge.mail.mfa.gov.kg", RRType.TXT, "bogus-token", start=issue_at
        )
        answers = resolver.resolve(
            "_acme-challenge.mail.mfa.gov.kg", RRType.TXT, issue_at + timedelta(minutes=5)
        )
        assert "bogus-token" in answers.answers
        # But the CA compares against ITS token for THIS order; a fresh
        # publisher overrides, so simulate failure by publishing on a host
        # the delegation does not reach.
        other = NameserverHost(operator="third-party")
        with pytest.raises(AcmeError):
            server.request_certificate(
                ("mail.mfa.gov.kg",), ChallengePublisher(other), at=issue_at
            )

    def test_empty_order_rejected(self, acme_world):
        _, _, server, legit, _, _, _ = acme_world
        with pytest.raises(AcmeError):
            server.request_certificate((), ChallengePublisher(legit), at=T0)


class TestCAProfiles:
    def test_non_acme_ca_rejected_for_acme(self, acme_world):
        registry, resolver, _, _, _, ct_log, _ = acme_world
        revocations = RevocationRegistry()
        authorities = default_authorities(revocations)
        with pytest.raises(ValueError):
            AcmeServer(authorities["DigiCert Inc"], resolver, ct_log)

    def test_profile_validities(self):
        revocations = RevocationRegistry()
        authorities = default_authorities(revocations)
        assert authorities["Let's Encrypt"].profile.validity_days == 90
        assert authorities["Comodo"].profile.validity_days == 90
        assert authorities["DigiCert Inc"].profile.validity_days == 365
        assert not authorities["Internal Enterprise CA"].profile.browser_trusted
