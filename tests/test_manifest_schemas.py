"""Run-manifest schema compatibility.

The manifest is a long-lived artifact: profiles saved by older builds
must keep loading.  Schema /1 predates the ``data_quality`` ledger,
/2 predates the ``metrics`` registry section, /3 predates the ``cache``
section and the per-stage ``cached`` flag, /4 predates the run-level
and per-stage ``memory`` sections, /5 predates the ``epoch`` section
(incremental-run accounting), and /6 is current; all six load, and /6
round-trips losslessly.
"""

from __future__ import annotations

import pytest

from repro.exec import MANIFEST_SCHEMA, RunMetrics
from repro.exec.metrics import StageStats, TaskEvent


def _stage_dict(name: str = "classify") -> dict:
    return {
        "name": name,
        "wall_seconds": 0.25,
        "n_in": 100,
        "n_out": 40,
        "funnel_delta": 60,
        "parallel": True,
        "tasks": 4,
        "workers_used": 2,
        "busy_seconds": 0.4,
        "utilization": 0.8,
        "detail": {"kinds": {"stable": 90}},
    }


def _manifest_dict(schema: str) -> dict:
    data = {
        "schema": schema,
        "backend": "process-pool",
        "jobs": 2,
        "chunk_size": 16,
        "wall_seconds": 1.5,
        "stages": [_stage_dict()],
        "funnel": {"n_maps": 100, "n_hijacked": 3},
    }
    version = int(schema.rsplit("/", 1)[1])
    if version >= 2:
        data["data_quality"] = {"degraded": False}
    if version >= 3:
        data["metrics"] = {"counters": {}, "gauges": {}, "histograms": {}}
    if version >= 4:
        data["stages"][0]["cached"] = False
        data["cache"] = {
            "enabled": True, "dir": "/tmp/cache",
            "hits": 3, "misses": 1, "stores": 1,
            "bytes_read": 1024, "bytes_written": 256,
        }
    if version >= 5:
        data["stages"][0]["memory"] = {
            "peak_rss_bytes": 50 * 1024 * 1024,
            "tracemalloc_delta_bytes": 1024,
            "tracemalloc_peak_bytes": 4096,
        }
        data["memory"] = {
            "peak_rss_bytes": 51 * 1024 * 1024,
            "tracemalloc": True,
            "tracemalloc_current_bytes": 2048,
            "tracemalloc_peak_bytes": 8192,
        }
    if version >= 6:
        data["epoch"] = {
            "epoch": 1,
            "label": "week-1",
            "delta": "0" * 64,
            "domains": 100,
            "domains_dirty": 3,
            "domains_reused": 97,
            "calendar_changed": False,
            "seeded": True,
            "reuse_disabled": None,
        }
    return data


def test_schema_1_manifest_loads():
    metrics = RunMetrics.from_dict(_manifest_dict("repro.exec.run-manifest/1"))
    assert metrics.backend == "process-pool"
    assert metrics.stages[0].name == "classify"
    assert metrics.data_quality is None
    assert metrics.metrics is None


def test_schema_2_manifest_loads():
    metrics = RunMetrics.from_dict(_manifest_dict("repro.exec.run-manifest/2"))
    assert metrics.data_quality == {"degraded": False}
    assert metrics.metrics is None


def test_schema_3_manifest_loads():
    metrics = RunMetrics.from_dict(_manifest_dict("repro.exec.run-manifest/3"))
    assert metrics.metrics == {"counters": {}, "gauges": {}, "histograms": {}}
    assert metrics.cache is None
    assert metrics.stages[0].cached is False


def test_schema_4_manifest_loads_without_memory():
    metrics = RunMetrics.from_dict(_manifest_dict("repro.exec.run-manifest/4"))
    assert metrics.cache["hits"] == 3
    assert metrics.cache["bytes_read"] == 1024
    assert metrics.memory is None
    assert metrics.stages[0].memory is None


def test_schema_5_manifest_loads_without_epoch():
    metrics = RunMetrics.from_dict(_manifest_dict("repro.exec.run-manifest/5"))
    assert metrics.memory["peak_rss_bytes"] == 51 * 1024 * 1024
    assert metrics.memory["tracemalloc"] is True
    assert metrics.stages[0].memory["tracemalloc_delta_bytes"] == 1024
    assert metrics.epoch is None


def test_schema_6_manifest_loads_epoch_section():
    metrics = RunMetrics.from_dict(_manifest_dict(MANIFEST_SCHEMA))
    assert metrics.epoch["epoch"] == 1
    assert metrics.epoch["domains_dirty"] == 3
    assert metrics.epoch["seeded"] is True


def test_schema_6_round_trip_is_lossless(tmp_path):
    metrics = RunMetrics(backend="serial", jobs=1, chunk_size=None)
    metrics.wall_seconds = 0.75
    metrics.add_stage(
        "inspect",
        wall_seconds=0.5,
        stats=StageStats(n_in=10, n_out=4, detail={"positive": 4}),
        events=[TaskEvent(pid=1234, seconds=0.4, items=10, kernel="inspect")],
        parallel=False,
        memory={
            "peak_rss_bytes": 48 * 1024 * 1024,
            "tracemalloc_delta_bytes": 2048,
            "tracemalloc_peak_bytes": 4096,
        },
    )
    metrics.add_stage(
        "pivot",
        wall_seconds=0.001,
        stats=StageStats(n_in=4, n_out=2),
        events=[],
        parallel=False,
        cached=True,
    )
    metrics.funnel = {"n_maps": 10, "n_hijacked": 4}
    metrics.data_quality = {"degraded": False}
    metrics.cache = {
        "enabled": True, "dir": "/tmp/cache",
        "hits": 1, "misses": 4, "stores": 4, "evictions": 0,
        "bytes_read": 512, "bytes_written": 4096,
    }
    metrics.memory = {
        "peak_rss_bytes": 49 * 1024 * 1024,
        "tracemalloc": True,
        "tracemalloc_current_bytes": 1024,
        "tracemalloc_peak_bytes": 8192,
    }
    metrics.epoch = {
        "epoch": 2,
        "label": "week-2",
        "delta": "f" * 64,
        "domains": 10,
        "domains_dirty": 1,
        "domains_reused": 9,
        "calendar_changed": False,
        "seeded": True,
        "reuse_disabled": None,
    }
    metrics.metrics = {
        "counters": {"inspection.inspected": 10},
        "gauges": {"report.findings": 4.0},
        "histograms": {
            "kernel.inspect.seconds": {
                "count": 1, "sum": 0.4, "min": 0.4, "max": 0.4,
                "buckets": [0] * 9 + [1] + [0] * 5,
            }
        },
    }
    path = tmp_path / "manifest.json"
    metrics.write(path)
    loaded = RunMetrics.read(path)
    assert loaded.to_dict() == metrics.to_dict()
    assert loaded.to_dict()["schema"] == MANIFEST_SCHEMA
    assert loaded.epoch == metrics.epoch
    assert loaded.metrics == metrics.metrics
    assert loaded.cache == metrics.cache
    assert loaded.memory == metrics.memory
    assert loaded.stages[0].memory["peak_rss_bytes"] == 48 * 1024 * 1024
    assert loaded.stages[1].cached is True
    assert loaded.stages[1].memory is None
    assert loaded.stages[1].busy_seconds == 0.0


def test_unknown_schema_still_raises():
    with pytest.raises(ValueError, match="unsupported manifest schema"):
        RunMetrics.from_dict(_manifest_dict("repro.exec.run-manifest/99"))


def test_missing_schema_raises():
    data = _manifest_dict(MANIFEST_SCHEMA)
    del data["schema"]
    with pytest.raises(ValueError):
        RunMetrics.from_dict(data)
