"""The epoch layer: delta files, the dirty-set scheduler, and the
incremental engine.

The non-negotiable oracle throughout is byte-identity: every
``run_epoch`` variant — no cache, cold cache, seeded warm cache,
declined seeding, process backends, segment-backed bundles — must
produce a report whose encoded form equals a cold run over the merged
dataset.  Reuse is an optimization of *work*, never of *answer*.
"""

from __future__ import annotations

import json
from dataclasses import replace
from datetime import date

import pytest

from repro.cache import StageCache
from repro.cache.fingerprint import derive_run_key, stage_fingerprint
from repro.cache.resume import ResumeManifest
from repro.core.deployment import encode_domain_maps
from repro.core.pipeline import (
    HijackPipeline,
    PipelineConfig,
    build_stages,
)
from repro.dns.records import RRType
from repro.epochs import (
    DELTA_SCHEMA,
    EpochDelta,
    compute_dirty_set,
    merge_inputs,
    read_delta,
    run_epoch,
    write_delta,
)
from repro.exec import ProcessPoolBackend
from repro.exec.metrics import StageStats
from repro.faults import DataQuality, FaultPlan, apply_faults
from repro.io.golden import encode_report
from repro.net.names import registered_domain
from repro.scan.dataset import ScanDataset
from repro.scan.table import ScanTable
from repro.segments.format import Segment, SegmentError, SegmentWriter
from repro.world.scale import make_delta, scale_world

# One small world, built once: every test below reads it, none mutates.
_WORLDS: dict = {}


def _world(n_domains: int = 160, n_active: int = 32, seed: int = 0):
    key = (n_domains, n_active, seed)
    if key not in _WORLDS:
        _WORLDS[key] = scale_world(n_domains, n_active=n_active, seed=seed)
    return _WORLDS[key]


def _delta(world=None, **kwargs) -> EpochDelta:
    kwargs.setdefault("fraction", 0.1)
    return make_delta(world if world is not None else _world(), **kwargs)


_COLD: dict = {}


def _cold_text(inputs, delta, faults=None) -> str:
    """The oracle: a cold full run over the overlay-merged bundle."""
    key = (id(inputs), delta.digest(), faults)
    if key not in _COLD:
        merged = merge_inputs(inputs, delta)
        report, _ = HijackPipeline(merged, faults=faults).profile()
        _COLD[key] = encode_report(report)
    return _COLD[key]


def _rows_of(table: ScanTable) -> list[tuple]:
    from repro.scan.table import _SENSITIVE, _TRUSTED

    return [
        (
            table.date_ord[r],
            table.ips[table.ip_id[r]],
            table.asns[table.asn_id[r]],
            table.certs[table.cert_id[r]],
            table.countries[table.country_id[r]],
            table.port_sets[table.ports_id[r]],
            table.name_sets[table.names_id[r]],
            table.base_sets[table.bases_id[r]],
            bool(table.flags[r] & _TRUSTED),
            bool(table.flags[r] & _SENSITIVE),
        )
        for r in range(len(table.date_ord))
    ]


class TestDeltaFile:
    def test_roundtrip(self, tmp_path):
        delta = replace(
            _delta(),
            known_missing=(date(2020, 2, 4),),
            revocations=(("ab" * 32, date(2019, 7, 1), "keyCompromise"),),
        )
        path = write_delta(delta, tmp_path / "e1.delta")
        loaded = read_delta(path)
        assert loaded.epoch == delta.epoch
        assert loaded.label == delta.label
        assert loaded.scan_rows == delta.scan_rows
        assert loaded.scan_dates == tuple(sorted(delta.scan_dates))
        assert loaded.known_missing == delta.known_missing
        assert loaded.pdns_observations == delta.pdns_observations
        assert loaded.ct_entries == delta.ct_entries
        assert loaded.revocations == tuple(sorted(delta.revocations))
        assert loaded.digest() == delta.digest()

    def test_counts_travel_nested_in_meta(self, tmp_path):
        # Regression: counts once splatted into the header and clobbered
        # the scan_dates ordinal list with its integer count.
        delta = _delta()
        path = write_delta(delta, tmp_path / "e1.delta")
        meta = Segment.open(path).meta
        assert meta["counts"] == delta.counts()
        assert meta["scan_dates"] == [d.toordinal() for d in delta.scan_dates]

    def test_digest_is_deterministic_and_epoch_sensitive(self):
        assert _delta().digest() == _delta().digest()
        assert _delta().digest() != _delta(epoch=2).digest()
        assert _delta().digest() != _delta(seed=5).digest()

    def test_rejects_wrong_table(self, tmp_path):
        path = SegmentWriter("scan", meta={}).write(tmp_path / "bad.delta")
        with pytest.raises(SegmentError, match="delta container"):
            read_delta(path)

    def test_rejects_wrong_schema(self, tmp_path):
        path = SegmentWriter(
            "delta", meta={"schema": "repro-delta/999", "epoch": 1}
        ).write(tmp_path / "bad.delta")
        with pytest.raises(SegmentError, match="unsupported delta schema"):
            read_delta(path)


class TestMakeDelta:
    def test_deterministic(self):
        a, b = _delta(), _delta()
        assert a.digest() == b.digest()
        assert a.scan_rows == b.scan_rows

    def test_fraction_scales_churn(self):
        small = _delta(fraction=0.05)
        large = _delta(fraction=0.5)
        assert len(large.scan_rows) > len(small.scan_rows)

    def test_rejects_non_scale_world(self):
        background_only = scale_world(8, n_active=0)
        with pytest.raises(ValueError, match="not a scale world"):
            make_delta(background_only)


class TestDirtySet:
    def test_scan_direct_is_exactly_the_churned_domains(self):
        delta = _delta()
        dirty = compute_dirty_set(_world(), delta)
        churned = {base for row in delta.scan_rows for base in row[7]}
        assert dirty.scan_direct == frozenset(churned)
        assert dirty.counts()["total"] == len(dirty.all_dirty)

    def test_out_of_period_calendar_addition_is_clean(self):
        dirty = compute_dirty_set(_world(), _delta())
        assert not dirty.calendar_changed

    def test_in_period_calendar_addition_flags(self):
        world = _world()
        # Not on the weekly calendar, inside the 2019 H1 study period.
        dirty = compute_dirty_set(
            world, EpochDelta(epoch=1, scan_dates=(date(2019, 2, 6),))
        )
        assert dirty.calendar_changed
        # An *existing* in-period date is not a calendar change.
        dirty = compute_dirty_set(
            world, EpochDelta(epoch=1, scan_dates=(world.scan.scan_dates[0],))
        )
        assert not dirty.calendar_changed

    def test_transitive_ring_follows_shared_certificates(self):
        world = _world()
        delta = _delta(world)
        dirty = compute_dirty_set(world, delta)
        # Every churned active's *base* certificate is hot, and the
        # background population draws from the same 64-cert pool: the
        # background domain with the matching pool slot must be dirty.
        table = world.scan.table
        churned = sorted(dirty.scan_direct)[0]
        lo, hi = table.domain_slice(churned)
        base_fp = table.cert_fps[table.cert_id[table.csr_rows[lo]]]
        sharers = {
            base
            for row in range(len(table))
            if table.cert_fps[table.cert_id[row]] == base_fp
            for base in table.base_sets[table.bases_id[row]]
        }
        background_sharers = {d for d in sharers if d.startswith("bg-")}
        assert background_sharers
        assert background_sharers <= dirty.transitive

    def test_pdns_ring_covers_delta_observations(self):
        world = _world()
        delta = _delta(world)
        dirty = compute_dirty_set(world, delta)
        for rrname, _rtype, _rdata, _day in delta.pdns_observations:
            assert registered_domain(rrname) in dirty.pdns_touched

    def test_rdata_overlap_joins_the_transitive_ring(self):
        world = _world()
        # active-00000 resolves to 203.0.0.0 in the base pDNS; a delta
        # observation for an unrelated name with that rdata must pull
        # the co-resolving domain's registered base in.
        delta = EpochDelta(
            epoch=1,
            pdns_observations=(
                ("evil.example.org", RRType.A, "203.0.0.0", date(2019, 5, 1)),
            ),
        )
        dirty = compute_dirty_set(world, delta)
        assert registered_domain("active-00000.example.com") in dirty.transitive

    def test_revocation_ring_reaches_cert_san_domains(self):
        world = _world()
        delta = _delta(world)
        cert = delta.ct_entries[0][0]
        revoking = replace(
            delta,
            revocations=((cert.fingerprint, date(2019, 8, 1), "keyCompromise"),),
        )
        dirty = compute_dirty_set(world, revoking)
        for san in cert.sans:
            assert registered_domain(san) in dirty.ct_touched


class TestMergeInputs:
    def test_scan_overlay_shape(self):
        world = _world()
        delta = _delta(world)
        merged = merge_inputs(world, delta)
        assert len(merged.scan.table) == len(world.scan.table) + len(
            delta.scan_rows
        )
        assert merged.scan.scan_dates == tuple(
            sorted(set(world.scan.scan_dates) | set(delta.scan_dates))
        )
        # No brand-new domains in a scale delta: ordinals are stable.
        assert merged.scan.domains() == world.scan.domains()

    def test_pdns_observations_fold_in(self):
        world = _world()
        delta = _delta(world)
        merged = merge_inputs(world, delta)
        rrname, rtype, rdata, day = delta.pdns_observations[0]
        hits = [
            rec
            for rec in merged.pdns.all_records()
            if rec.rrname == rrname and rec.rtype == rtype and rec.rdata == rdata
        ]
        assert len(hits) == 1
        assert hits[0].first_seen == day
        assert hits[0].last_seen == day
        assert hits[0].count == 1
        # The base database is untouched.
        assert not any(
            rec.rdata == rdata and rec.rrname == rrname
            for rec in world.pdns.all_records()
        )

    def test_ct_entries_land_in_one_extra_log(self):
        world = _world()
        delta = _delta(world)
        merged = merge_inputs(world, delta)
        base_entries = sum(len(log.entries()) for log in world.crtsh._logs)
        merged_entries = sum(len(log.entries()) for log in merged.crtsh._logs)
        assert merged_entries == base_entries + len(delta.ct_entries)
        fingerprints = {
            entry.certificate.fingerprint
            for log in merged.crtsh._logs
            for entry in log.entries()
        }
        assert delta.ct_entries[0][0].fingerprint in fingerprints

    def test_revocations_install_into_a_copied_registry(self):
        world = _world()
        cert = _delta(world).ct_entries[0][0]
        delta = replace(
            _delta(world),
            revocations=((cert.fingerprint, date(2019, 8, 1), "superseded"),),
        )
        merged = merge_inputs(world, delta)
        assert cert.fingerprint in merged.crtsh._revocations._entries
        assert cert.fingerprint not in world.crtsh._revocations._entries

    def test_merged_run_equals_run_over_rebuilt_table(self):
        # The overlay vs a table rebuilt cold from the concatenated row
        # stream: same report, byte for byte.
        world = _world()
        delta = _delta(world)
        merged = merge_inputs(world, delta)
        builder = ScanTable.build()
        for row in _rows_of(merged.scan.table):
            builder.append_row(*row)
        rebuilt = ScanDataset.from_table(
            builder.finish(),
            merged.scan.scan_dates,
            known_missing_dates=merged.scan.known_missing_dates,
        )
        report, _ = HijackPipeline(replace(merged, scan=rebuilt)).profile()
        assert encode_report(report) == _cold_text(world, delta)


class TestRunEpoch:
    def test_no_cache_is_a_cold_merged_run(self):
        world = _world()
        delta = _delta(world)
        report, metrics, dirty = run_epoch(world, delta)
        assert encode_report(report) == _cold_text(world, delta)
        assert metrics.epoch["epoch"] == delta.epoch
        assert metrics.epoch["seeded"] is False
        assert metrics.epoch["domains_dirty"] == len(dirty.all_dirty)
        assert metrics.metrics["epoch.domains_dirty"] == len(dirty.all_dirty)

    def test_seeded_warm_cache_reuses_clean_domains(self, tmp_path):
        world = _world()
        delta = _delta(world)
        cache = StageCache(tmp_path)
        HijackPipeline(world).profile(cache=cache)
        report, metrics, dirty = run_epoch(world, delta, cache=cache)
        assert encode_report(report) == _cold_text(world, delta)
        assert metrics.epoch["seeded"] is True
        assert metrics.epoch["reuse_disabled"] is None
        reused = metrics.epoch["domains_reused"]
        assert reused > 0
        assert reused + len(dirty.scan_direct) >= len(world.scan.domains())
        # The pipeline's own sweep became a cache hit.
        assert metrics.stages[0].cached is True
        assert metrics.metrics["epoch.domains_reused"] == reused

    def test_cold_cache_declines_but_stays_identical(self, tmp_path):
        world = _world()
        delta = _delta(world)
        cache = StageCache(tmp_path)
        report, metrics, _dirty = run_epoch(world, delta, cache=cache)
        assert metrics.epoch["seeded"] is False
        assert metrics.epoch["reuse_disabled"] == "no-base-products"
        assert encode_report(report) == _cold_text(world, delta)
        # The merged entry is banked now: a re-run is simply a hit.
        report, metrics, _dirty = run_epoch(world, delta, cache=cache)
        assert metrics.epoch["reuse_disabled"] == "already-cached"
        assert encode_report(report) == _cold_text(world, delta)

    def test_in_period_calendar_change_declines_seeding(self, tmp_path):
        world = _world()
        delta = replace(
            _delta(world), scan_dates=_delta(world).scan_dates + (date(2019, 2, 6),)
        )
        cache = StageCache(tmp_path)
        HijackPipeline(world).profile(cache=cache)
        report, metrics, dirty = run_epoch(world, delta, cache=cache)
        assert dirty.calendar_changed
        assert metrics.epoch["seeded"] is False
        assert metrics.epoch["reuse_disabled"] == "calendar-changed"
        assert encode_report(report) == _cold_text(world, delta)

    def test_faulted_epoch_is_identical(self, tmp_path):
        spec = "scan.drop_weeks=0.2,pdns.blackouts=1"
        world = _world()
        delta = _delta(world)
        cache = StageCache(tmp_path)
        HijackPipeline(world, faults=spec).profile(cache=cache)
        report, metrics, _dirty = run_epoch(world, delta, faults=spec, cache=cache)
        assert metrics.epoch["seeded"] is True
        assert encode_report(report) == _cold_text(world, delta, faults=spec)

    @pytest.mark.parametrize(
        ("start_method", "partition"), [("fork", "hash"), ("spawn", "shard")]
    )
    def test_process_backends_are_identical(self, tmp_path, start_method, partition):
        world = _world()
        delta = _delta(world)
        cache = StageCache(tmp_path)
        HijackPipeline(world).profile(cache=cache)
        backend = ProcessPoolBackend(
            jobs=2, start_method=start_method, partition=partition
        )
        report, metrics, _dirty = run_epoch(
            world, delta, backend=backend, cache=cache
        )
        assert metrics.epoch["seeded"] is True
        assert encode_report(report) == _cold_text(world, delta)

    def test_seeds_from_banked_shard_products(self, tmp_path):
        # An interrupted base run leaves per-shard products plus a
        # resume manifest; the epoch engine must stitch them (holes
        # recomputed) instead of demanding a completed stage entry.
        world = _world()
        delta = _delta(world)
        cache = StageCache(tmp_path)
        plan = FaultPlan.from_spec(None)
        config = PipelineConfig()
        stage = build_stages()[0]
        chain = [(stage.name, stage.cache_version, stage.config_deps)]
        degraded = apply_faults(world, plan, DataQuality())
        base_fp = stage_fingerprint(derive_run_key(degraded, plan, config), chain)
        domains = world.scan.domains()
        n = len(domains)
        encoded = [
            encode_domain_maps(
                world.scan, name, world.periods, config.max_gap_scans
            )
            for name in domains
        ]
        manifest = ResumeManifest(cache.root)
        n_shards = 4
        hole = 2
        for ordinal in range(n_shards):
            if ordinal == hole:
                continue
            lo = ordinal * n // n_shards
            hi = (ordinal + 1) * n // n_shards
            key = f"{base_fp}-shard-{ordinal}"
            cache.put(
                key,
                stage.name,
                StageStats(n_in=hi - lo, n_out=0),
                {"results": encoded[lo:hi]},
            )
            manifest.record(base_fp, "deployment", n, n_shards, ordinal, key)
        report, metrics, _dirty = run_epoch(world, delta, cache=cache)
        assert metrics.epoch["seeded"] is True
        reused = metrics.epoch["domains_reused"]
        # The hole's quarter recomputes; the three banked shards reuse.
        assert 0 < reused <= n - (hole + 1) * n // n_shards + hole * n // n_shards
        assert encode_report(report) == _cold_text(world, delta)

    def test_segment_backed_bundle(self, tmp_path):
        from repro.segments.inputs import load_segment_inputs
        from repro.world.scale import write_scale_segments

        write_scale_segments(160, tmp_path / "bundle", n_active=32, seed=0)
        inputs = load_segment_inputs(tmp_path / "bundle")
        delta = _delta()
        report, metrics, _dirty = run_epoch(inputs, delta)
        assert encode_report(report) == _cold_text(_world(), delta)

    def test_stacked_epochs(self, tmp_path):
        # Epoch 2 applies onto the merged result of epoch 1 and must
        # still match a cold run over base+delta1+delta2.
        world = _world()
        delta1 = _delta(world, epoch=1)
        cache = StageCache(tmp_path)
        HijackPipeline(world).profile(cache=cache)
        _report, metrics, _dirty = run_epoch(world, delta1, cache=cache)
        assert metrics.epoch["seeded"] is True
        merged1 = merge_inputs(world, delta1)
        delta2 = _delta(merged1, epoch=2)
        report, metrics, _dirty = run_epoch(merged1, delta2, cache=cache)
        assert metrics.epoch["seeded"] is True
        assert encode_report(report) == _cold_text(merged1, delta2)


class TestEpochCli:
    def test_delta_apply_status_flow(self, tmp_path, capsys):
        from repro.cli import main

        bundle = tmp_path / "bundle"
        assert (
            main(
                [
                    "segments", "write", "--out", str(bundle),
                    "--scale", "120", "--active", "24", "--seed", "0",
                ]
            )
            == 0
        )
        for epoch in (1, 2):
            delta_file = tmp_path / f"e{epoch}.delta"
            assert (
                main(
                    [
                        "epoch", "delta", "--out", str(delta_file),
                        "--scale", "120", "--active", "24", "--seed", "0",
                        "--fraction", "0.1", "--epoch", str(epoch),
                    ]
                )
                == 0
            )
            assert (
                main(["epoch", "apply", str(bundle), "--delta", str(delta_file)])
                == 0
            )
        state = json.loads((bundle / "epochs.json").read_text())
        assert [rec["epoch"] for rec in state["epochs"]] == [1, 2]
        assert (bundle / "deltas" / state["epochs"][0]["file"]).exists()
        assert main(["epoch", "status", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "epoch 1" in out
        assert "epoch 2" in out

    def test_apply_matches_library_run(self, tmp_path, capsys):
        from repro.cli import main

        bundle = tmp_path / "bundle"
        delta_file = tmp_path / "e1.delta"
        main(
            [
                "segments", "write", "--out", str(bundle),
                "--scale", "120", "--active", "24", "--seed", "0",
            ]
        )
        main(
            [
                "epoch", "delta", "--out", str(delta_file),
                "--scale", "120", "--active", "24", "--seed", "0",
                "--fraction", "0.1",
            ]
        )
        out_file = tmp_path / "findings.jsonl"
        profile = tmp_path / "profile.json"
        assert (
            main(
                [
                    "epoch", "apply", str(bundle), "--delta", str(delta_file),
                    "--out", str(out_file), "--profile", str(profile),
                ]
            )
            == 0
        )
        capsys.readouterr()
        manifest = json.loads(profile.read_text())
        assert manifest["epoch"]["epoch"] == 1
        assert manifest["epoch"]["domains"] == 120
        world = scale_world(120, n_active=24, seed=0)
        delta = read_delta(delta_file)
        report, _metrics, _dirty = run_epoch(world, delta)
        cli_findings = [
            json.loads(line)
            for line in out_file.read_text().splitlines()
            if line.strip()
        ]
        assert len(cli_findings) == len(report.findings)
