"""Unit tests of the columnar ScanTable: interning, CSR index, pickling.

The table is the data plane under every ScanDataset; these tests pin
the invariants the rest of the pipeline leans on — first-seen-order
interning (ids as a pure function of the row stream), bisect period
slices matching the row-at-a-time filters, re-interned pools after
``select``, and lossless pickling of the column form.
"""

import pickle
from datetime import date

from repro.net.ipv4 import ip_to_int
from repro.scan.dataset import ScanDataset
from repro.scan.table import ScanTable

from tests.helpers import PERIOD, ScanSketch, make_cert, scan_dates

DATES = scan_dates()


def _sketch() -> ScanSketch:
    cert_a = make_cert("www.tbl.com", 401, date(2018, 12, 1))
    cert_b = make_cert("mail.tbl.com", 402, date(2018, 12, 1))
    sketch = ScanSketch("tbl.com")
    sketch.presence(DATES[:10], "10.0.0.1", 64500, "US", cert_a)
    sketch.presence(DATES[4:10], "10.0.0.2", 64500, "US", cert_a)
    sketch.presence(DATES[12:20], "172.16.0.9", 64501, "DE", cert_b)
    return sketch


class TestInterning:
    def test_pools_are_first_seen_order(self):
        table = ScanTable.from_records(_sketch().records)
        assert table.ips == ["10.0.0.1", "10.0.0.2", "172.16.0.9"]
        assert table.asns == [64500, 64501]
        assert table.countries == ["US", "DE"]
        assert len(table.cert_fps) == len(table.certs) == 2

    def test_ids_are_pure_function_of_row_stream(self):
        records = _sketch().records
        a = ScanTable.from_records(records)
        b = ScanTable.from_records(list(records))
        for column in ("ip_id", "asn_id", "cert_id", "country_id"):
            assert getattr(a, column) == getattr(b, column)
        assert a.ips == b.ips and a.cert_fps == b.cert_fps

    def test_ip_ints_parallel_to_ips(self):
        table = ScanTable.from_records(_sketch().records)
        assert list(table.ip_ints) == [ip_to_int(ip) for ip in table.ips]

    def test_certificates_shared_one_object_per_fingerprint(self):
        table = ScanTable.from_records(_sketch().records)
        by_fp = {}
        for row in range(len(table)):
            cert = table.certs[table.cert_id[row]]
            assert by_fp.setdefault(cert.fingerprint, cert) is cert

    def test_flags_round_trip(self):
        records = _sketch().records
        table = ScanTable.from_records(records)
        for row, record in enumerate(records):
            assert table.trusted(row) == record.trusted
            assert table.sensitive(row) == record.sensitive


class TestRowView:
    def test_records_match_input(self):
        records = _sketch().records
        table = ScanTable.from_records(records)
        assert table.records() == records

    def test_records_for_is_identity_stable(self):
        table = ScanTable.from_records(_sketch().records)
        assert table.records_for("tbl.com") is table.records_for("tbl.com")

    def test_records_for_sorted_by_date_then_ip(self):
        view = ScanTable.from_records(_sketch().records).records_for("tbl.com")
        keys = [(r.scan_date, r.ip) for r in view]
        assert keys == sorted(keys)

    def test_lazy_record_equals_eager(self):
        records = _sketch().records
        lazy = pickle.loads(pickle.dumps(ScanTable.from_records(records)))
        assert lazy.records() == records

    def test_interned_memos_share_objects(self):
        table = ScanTable.from_records(_sketch().records)
        assert table.interned_date(DATES[0].toordinal()) is table.interned_date(
            DATES[0].toordinal()
        )
        assert table.interned_set("ips", (0, 1)) is table.interned_set("ips", (0, 1))
        assert table.interned_set("ips", (0,)) is table.interned_set("ips", (0,))
        assert table.interned_set("ips", (0, 1)) == frozenset(table.ips[:2])


class TestCSRIndex:
    def test_period_slice_matches_linear_filter(self):
        table = ScanTable.from_records(_sketch().records)
        lo, hi = table.period_slice("tbl.com", DATES[4], DATES[9])
        sliced = [table.record(table.csr_rows[i]) for i in range(lo, hi)]
        expected = [
            r
            for r in table.records_for("tbl.com")
            if DATES[4] <= r.scan_date <= DATES[9]
        ]
        assert sliced == expected

    def test_period_slice_outside_window_is_empty(self):
        table = ScanTable.from_records(_sketch().records)
        lo, hi = table.period_slice("tbl.com", date(2031, 1, 1), date(2031, 6, 1))
        assert lo == hi

    def test_unknown_domain_slices_empty(self):
        table = ScanTable.from_records(_sketch().records)
        assert table.domain_slice("nope.com") == (0, 0)
        assert table.distinct_dates_in("nope.com", DATES[0], DATES[-1]) == 0

    def test_distinct_dates_matches_record_walk(self):
        table = ScanTable.from_records(_sketch().records)
        expected = len(
            {
                r.scan_date
                for r in table.records_for("tbl.com")
                if DATES[2] <= r.scan_date <= DATES[15]
            }
        )
        assert table.distinct_dates_in("tbl.com", DATES[2], DATES[15]) == expected


class TestSelect:
    def test_select_reinterns_pools_first_seen(self):
        table = ScanTable.from_records(_sketch().records)
        keep = [
            row for row in range(len(table)) if table.ips[table.ip_id[row]] != "10.0.0.1"
        ]
        derived = table.select(keep)
        assert derived.ips == ["10.0.0.2", "172.16.0.9"]
        assert list(derived.ip_ints) == [ip_to_int(ip) for ip in derived.ips]
        # Ids equal a fresh build from the surviving record stream.
        rebuilt = ScanTable.from_records([table.record(row) for row in keep])
        for column in ("ip_id", "asn_id", "cert_id", "country_id"):
            assert getattr(derived, column) == getattr(rebuilt, column)

    def test_select_shares_record_objects(self):
        table = ScanTable.from_records(_sketch().records)
        derived = table.select(range(5))
        assert derived.records() == table.records()[:5]
        assert derived.record(0) is table.record(0)

    def test_select_row_dicts_match_rebuild(self):
        table = ScanTable.from_records(_sketch().records)
        keep = list(range(0, len(table), 2))
        derived = table.select(keep)
        rebuilt = ScanTable.from_records([table.record(row) for row in keep])
        assert list(derived.row_dicts()) == list(rebuilt.row_dicts())


class TestPickling:
    def test_round_trip_preserves_rows_and_index(self):
        table = ScanTable.from_records(_sketch().records)
        clone = pickle.loads(pickle.dumps(table, protocol=5))
        assert list(clone.row_dicts()) == list(table.row_dicts())
        assert clone.domains == table.domains
        assert clone.period_slice("tbl.com", DATES[4], DATES[9]) == table.period_slice(
            "tbl.com", DATES[4], DATES[9]
        )

    def test_round_trip_drops_row_objects(self):
        table = ScanTable.from_records(_sketch().records)
        table.records()  # materialize everything
        state = table.__getstate__()
        assert state["_rec_cache"] is None and state["_domain_records"] is None

    def test_dataset_round_trip(self):
        dataset = _sketch().dataset()
        clone = pickle.loads(pickle.dumps(dataset, protocol=5))
        assert clone.records() == dataset.records()
        assert clone.scan_dates == dataset.scan_dates
        assert clone.presence("tbl.com", PERIOD) == dataset.presence("tbl.com", PERIOD)


class TestDataset:
    def test_presence_matches_definition(self):
        dataset = _sketch().dataset()
        seen = {
            r.scan_date
            for r in dataset.records_for("tbl.com")
            if PERIOD.contains(r.scan_date)
        }
        assert dataset.presence("tbl.com", PERIOD) == len(seen) / len(
            dataset.scan_dates_in(PERIOD)
        )

    def test_period_date_memos_are_stable(self):
        dataset = _sketch().dataset()
        assert dataset.scan_dates_in(PERIOD) is dataset.scan_dates_in(PERIOD)
        assert dataset.observed_dates_in(PERIOD) is dataset.observed_dates_in(PERIOD)

    def test_degraded_drop_row_equals_drop_record(self):
        dataset = _sketch().dataset()
        by_row = dataset.degraded(
            drop_dates=[DATES[3]],
            drop_row=lambda ordinal, ip, fp: ip == "10.0.0.2",
        )
        by_record = dataset.degraded(
            drop_dates=[DATES[3]],
            drop_record=lambda r: r.ip == "10.0.0.2",
        )
        assert by_row.records() == by_record.records()
        assert by_row.known_missing_dates == {DATES[3]}
        assert by_row.scan_dates == dataset.scan_dates


class TestScanDatasetConstruction:
    def test_list_and_table_construction_agree(self):
        records = _sketch().records
        from_list = ScanDataset(records, DATES)
        from_table = ScanDataset.from_table(
            ScanTable.from_records(records), DATES
        )
        assert from_list.records() == from_table.records()
        assert from_list.domains() == from_table.domains()
