"""Tests for incident-timeline reconstruction."""

from repro.analysis.timeline import format_timeline, reconstruct_timeline


class TestTimelineReconstruction:
    def test_mfa_gov_kg_narrative(self, paper, paper_report):
        """The Section 5.1 forensic sequence, reassembled from data."""
        finding = paper_report.finding_for("mfa.gov.kg")
        events = reconstruct_timeline(finding, paper.scan, paper.pdns, paper.crtsh)
        assert events, "a confirmed hijack must have an evidence trail"

        sources = [e.source for e in events]
        assert "ct" in sources
        assert "scan" in sources
        assert "pdns" in sources

        # Ordering: issuance precedes (or equals) scan sighting; the days
        # are sorted.
        days = [e.day for e in events]
        assert days == sorted(days)
        issuance = next(e for e in events if e.source == "ct")
        first_scan = next(e for e in events if e.source == "scan")
        assert issuance.day <= first_scan.day

        # The narrative names the actual attacker artifacts.
        text = format_timeline("mfa.gov.kg", events)
        assert "94.103.91.159" in text
        assert "kg-infocom.ru" in text
        assert "Let's Encrypt" in text

    def test_revoked_certificate_shows_crl_event(self, paper, paper_report):
        finding = paper_report.finding_for("asp.gov.al")  # one of the 4 revoked
        events = reconstruct_timeline(finding, paper.scan, paper.pdns, paper.crtsh)
        assert any(e.source == "crl" for e in events)

    def test_unrevoked_le_cert_has_no_crl_event(self, paper, paper_report):
        finding = paper_report.finding_for("mfa.gov.kg")  # Let's Encrypt, OCSP
        events = reconstruct_timeline(finding, paper.scan, paper.pdns, paper.crtsh)
        assert not any(e.source == "crl" for e in events)

    def test_pivot_victim_without_scans(self, paper, paper_report):
        """embassy.ly never used TLS: timeline is pDNS-only."""
        finding = paper_report.finding_for("embassy.ly")
        events = reconstruct_timeline(finding, paper.scan, paper.pdns, paper.crtsh)
        assert events
        assert {e.source for e in events} == {"pdns"}

    def test_empty_timeline_renders(self):
        text = format_timeline("ghost.example", [])
        assert "no recorded evidence" in text
