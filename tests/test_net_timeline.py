"""Tests for the study calendar: intervals, periods, scan dates."""

from datetime import date, timedelta

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.timeline import (
    STUDY_END,
    STUDY_START,
    DateInterval,
    Period,
    days_between,
    iter_days,
    period_of,
    scan_dates_in,
    study_periods,
    weekly_scan_dates,
)

_dates = st.dates(min_value=date(2016, 1, 1), max_value=date(2022, 12, 31))


class TestDateInterval:
    def test_contains_closed(self):
        interval = DateInterval(date(2019, 1, 1), date(2019, 1, 31))
        assert interval.contains(date(2019, 1, 1))
        assert interval.contains(date(2019, 1, 31))
        assert not interval.contains(date(2019, 2, 1))

    def test_open_interval(self):
        interval = DateInterval(date(2019, 1, 1))
        assert interval.contains(date(2030, 1, 1))
        assert interval.days is None

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            DateInterval(date(2019, 2, 1), date(2019, 1, 1))

    def test_overlaps(self):
        a = DateInterval(date(2019, 1, 1), date(2019, 1, 10))
        b = DateInterval(date(2019, 1, 10), date(2019, 1, 20))
        c = DateInterval(date(2019, 1, 11), date(2019, 1, 20))
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_clipped(self):
        interval = DateInterval(date(2019, 1, 5), date(2019, 2, 5))
        clipped = interval.clipped(date(2019, 1, 10), date(2019, 1, 20))
        assert clipped == DateInterval(date(2019, 1, 10), date(2019, 1, 20))
        assert interval.clipped(date(2020, 1, 1), date(2020, 2, 1)) is None

    @given(_dates, _dates, _dates)
    def test_overlap_symmetry(self, a, b, c):
        lo, hi = min(a, b), max(a, b)
        interval_a = DateInterval(lo, hi)
        interval_b = DateInterval(c)
        assert interval_a.overlaps(interval_b) == interval_b.overlaps(interval_a)


class TestPeriods:
    def test_paper_window_has_nine_periods(self):
        periods = study_periods()
        assert len(periods) == 9
        assert periods[0].label == "2017H1"
        assert periods[-1].label == "2021H1"
        assert periods[-1].end == STUDY_END  # truncated to March 2021

    def test_periods_tile_the_window(self):
        periods = study_periods()
        day = STUDY_START
        index = 0
        while day <= STUDY_END:
            if not periods[index].contains(day):
                index += 1
            assert periods[index].contains(day)
            day += timedelta(days=1)

    def test_period_of(self):
        period = period_of(date(2020, 12, 22))
        assert period.label == "2020H2"
        with pytest.raises(ValueError):
            period_of(date(2025, 1, 1))

    @given(st.dates(min_value=STUDY_START, max_value=STUDY_END))
    def test_every_study_day_has_exactly_one_period(self, day):
        matches = [p for p in study_periods() if p.contains(day)]
        assert len(matches) == 1


class TestScanDates:
    def test_weekly_spacing(self):
        dates = weekly_scan_dates()
        assert dates[0] == STUDY_START
        assert all((b - a).days == 7 for a, b in zip(dates, dates[1:]))
        assert dates[-1] <= STUDY_END

    def test_count_matches_paper_cadence(self):
        # Four years and a quarter of weekly scans: ~222 snapshots.
        assert len(weekly_scan_dates()) == 222

    def test_scan_dates_in_period(self):
        periods = study_periods()
        dates = weekly_scan_dates()
        per_period = [scan_dates_in(p, dates) for p in periods]
        assert sum(len(d) for d in per_period) == len(dates)
        assert all(len(d) >= 12 for d in per_period)

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            weekly_scan_dates(date(2020, 1, 1), date(2019, 1, 1))


class TestHelpers:
    def test_days_between(self):
        assert days_between(date(2019, 1, 1), date(2019, 1, 1)) == 1
        assert days_between(date(2019, 1, 1), date(2019, 1, 8)) == 8

    def test_iter_days(self):
        days = list(iter_days(date(2019, 1, 30), date(2019, 2, 2)))
        assert len(days) == 4
        assert days[0] == date(2019, 1, 30)
        assert days[-1] == date(2019, 2, 2)
