"""Tests for inspection (step 4): the codified manual corroboration rules."""

from datetime import date, timedelta

from repro.core.deployment import build_deployment_map
from repro.core.inspection import InspectionConfig, Inspector
from repro.core.patterns import classify
from repro.core.shortlist import Shortlister
from repro.core.types import DetectionType, Verdict
from repro.ct.log import CTLog
from repro.ct.crtsh import CrtShService
from repro.dns.records import RRType
from repro.ipintel.as2org import AS2Org
from repro.pdns.database import PassiveDNSDatabase
from repro.tls.revocation import RevocationRegistry

from tests.helpers import PERIOD, ScanSketch, make_cert, scan_dates

DATES = scan_dates()
ATTACKER_IP = "203.0.113.5"
HIJACK_DAY = DATES[12] - timedelta(days=2)


def shortlist_entry(sketch: ScanSketch, truly_anomalous=False):
    map_ = build_deployment_map(sketch.domain, sketch.records, PERIOD, DATES)
    classifications = {(sketch.domain, PERIOD.index): classify(map_)}
    entries, _ = Shortlister(AS2Org()).evaluate(classifications)
    assert entries, "sketch must produce a shortlisted transient"
    entry = entries[0]
    if truly_anomalous:
        entry.truly_anomalous = True
    return entry


def t1_sketch(rogue_cert):
    stable = make_cert("www.x.gr", 1, date(2018, 12, 1))
    return (
        ScanSketch("x.gr")
        .presence(DATES, "10.0.0.1", 100, "GR", stable)
        .presence(DATES[12:13], ATTACKER_IP, 666, "NL", rogue_cert)
    )


def t2_sketch():
    stable = make_cert("mail.x.gr", 1, date(2018, 12, 1))
    return (
        ScanSketch("x.gr")
        .presence(DATES, "10.0.0.1", 100, "GR", stable)
        .presence(DATES[12:13], ATTACKER_IP, 666, "NL", stable)
    )


def make_inspector(pdns=None, certs_to_log=()):
    log = CTLog()
    for cert, logged_on in certs_to_log:
        log.submit(cert, logged_on)
    crtsh = CrtShService([log], RevocationRegistry(), asof=date(2021, 1, 1))
    return Inspector(pdns or PassiveDNSDatabase(), crtsh), crtsh, log


class TestT1Rule:
    def rogue_cert(self, issued=HIJACK_DAY - timedelta(days=1)):
        return make_cert("mail.x.gr", 2, issued, days=90, issuer="Let's Encrypt")

    def test_hijacked_with_a_redirect_near_issuance(self):
        rogue = self.rogue_cert()
        pdns = PassiveDNSDatabase()
        pdns.add_observation("mail.x.gr", RRType.A, ATTACKER_IP, HIJACK_DAY)
        inspector, _, _ = make_inspector(pdns)
        result = inspector.inspect(shortlist_entry(t1_sketch(rogue)))
        assert result.verdict is Verdict.HIJACKED
        assert result.detection is DetectionType.T1
        assert ATTACKER_IP in result.attacker_ips

    def test_hijacked_with_ns_change_near_issuance(self):
        rogue = self.rogue_cert()
        pdns = PassiveDNSDatabase()
        # Long-lived legitimate delegation...
        for offset in range(0, 170, 7):
            pdns.add_observation(
                "x.gr", RRType.NS, "ns1.x.gr", PERIOD.start + timedelta(days=offset)
            )
        # ...and a one-day rogue delegation at hijack time.
        pdns.add_observation("x.gr", RRType.NS, "ns1.rogue.net", HIJACK_DAY)
        inspector, _, _ = make_inspector(pdns)
        result = inspector.inspect(shortlist_entry(t1_sketch(rogue)))
        assert result.verdict is Verdict.HIJACKED
        assert result.attacker_ns == frozenset({"ns1.rogue.net"})

    def test_no_pdns_defers_to_t1_star(self):
        rogue = self.rogue_cert()
        inspector, _, _ = make_inspector()
        result = inspector.inspect(shortlist_entry(t1_sketch(rogue)))
        assert result.verdict is Verdict.INCONCLUSIVE
        assert result.pending_t1_star

    def test_t1_star_second_pass_upgrades_on_shared_ip(self):
        rogue = self.rogue_cert()
        inspector, _, _ = make_inspector()
        result = inspector.inspect(shortlist_entry(t1_sketch(rogue)))
        upgraded = Inspector.resolve_t1_star([result], frozenset({ATTACKER_IP}))
        assert upgraded == [result]
        assert result.verdict is Verdict.HIJACKED
        assert result.detection is DetectionType.T1_STAR

    def test_t1_star_second_pass_ignores_unrelated_ip(self):
        rogue = self.rogue_cert()
        inspector, _, _ = make_inspector()
        result = inspector.inspect(shortlist_entry(t1_sketch(rogue)))
        assert Inspector.resolve_t1_star([result], frozenset({"198.51.100.1"})) == []
        assert result.verdict is Verdict.INCONCLUSIVE

    def test_stale_certificate_is_benign(self):
        """Cert issued months before the transient, nothing in pDNS/CT:
        a legitimate deployment briefly visible (the 8143->1256 prune)."""
        rogue = self.rogue_cert(issued=HIJACK_DAY - timedelta(days=150))
        inspector, _, _ = make_inspector()
        result = inspector.inspect(shortlist_entry(t1_sketch(rogue)))
        assert result.verdict is Verdict.BENIGN
        assert result.evidence.stale_certificate

    def test_redirect_far_from_issuance_not_corroborated(self):
        rogue = self.rogue_cert(issued=HIJACK_DAY - timedelta(days=150))
        pdns = PassiveDNSDatabase()
        pdns.add_observation("mail.x.gr", RRType.A, ATTACKER_IP, HIJACK_DAY)
        inspector, _, _ = make_inspector(pdns)
        result = inspector.inspect(shortlist_entry(t1_sketch(rogue)))
        assert result.verdict is Verdict.INCONCLUSIVE


class TestT2Rule:
    def suspicious_ct_cert(self):
        return make_cert(
            "mail.x.gr", 9, HIJACK_DAY - timedelta(days=1), days=90, issuer="Let's Encrypt"
        )

    def test_hijacked_with_pdns_and_ct(self):
        pdns = PassiveDNSDatabase()
        pdns.add_observation("mail.x.gr", RRType.A, ATTACKER_IP, HIJACK_DAY)
        suspicious = self.suspicious_ct_cert()
        inspector, _, _ = make_inspector(
            pdns, certs_to_log=[(suspicious, suspicious.not_before)]
        )
        result = inspector.inspect(shortlist_entry(t2_sketch()))
        assert result.verdict is Verdict.HIJACKED
        assert result.detection is DetectionType.T2
        assert result.malicious_cert is not None
        assert result.malicious_cert.certificate.fingerprint == suspicious.fingerprint

    def test_redirect_without_certificate_is_targeted(self):
        """The ais.gov.vn rule."""
        pdns = PassiveDNSDatabase()
        pdns.add_observation("mail.x.gr", RRType.A, ATTACKER_IP, HIJACK_DAY)
        inspector, _, _ = make_inspector(pdns)
        result = inspector.inspect(shortlist_entry(t2_sketch()))
        assert result.verdict is Verdict.TARGETED

    def test_truly_anomalous_without_corroboration_is_targeted(self):
        inspector, _, _ = make_inspector()
        result = inspector.inspect(shortlist_entry(t2_sketch(), truly_anomalous=True))
        assert result.verdict is Verdict.TARGETED

    def test_plain_t2_without_corroboration_inconclusive(self):
        inspector, _, _ = make_inspector()
        result = inspector.inspect(shortlist_entry(t2_sketch()))
        assert result.verdict is Verdict.INCONCLUSIVE

    def test_legitimate_rollover_not_suspicious(self):
        """A renewal repeating (SAN set, issuer) must not corroborate."""
        pdns = PassiveDNSDatabase()
        pdns.add_observation("mail.x.gr", RRType.A, ATTACKER_IP, HIJACK_DAY)
        older = make_cert("mail.x.gr", 5, PERIOD.start - timedelta(days=80), issuer="DigiCert Inc")
        renewal = make_cert("mail.x.gr", 6, HIJACK_DAY - timedelta(days=1), issuer="DigiCert Inc")
        inspector, _, _ = make_inspector(
            pdns,
            certs_to_log=[(older, older.not_before), (renewal, renewal.not_before)],
        )
        result = inspector.inspect(shortlist_entry(t2_sketch()))
        # Renewal excluded -> no CT corroboration -> targeted (pDNS only).
        assert result.verdict is Verdict.TARGETED
        assert result.evidence.ct_entries == []
