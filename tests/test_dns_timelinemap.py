"""Tests for interval timelines (the shadowing semantics everything
time-dependent in the DNS substrate relies on)."""

from datetime import datetime, timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.timelinemap import TimelineMap

T0 = datetime(2019, 1, 1, 0, 0)


def at_hours(h: float) -> datetime:
    return T0 + timedelta(hours=h)


class TestShadowing:
    def test_open_baseline(self):
        tm: TimelineMap[str, str] = TimelineMap()
        tm.set("k", "base", T0)
        assert tm.at("k", at_hours(1)) == "base"
        assert tm.at("k", at_hours(24 * 365)) == "base"
        assert tm.at("k", T0 - timedelta(hours=1)) is None

    def test_window_shadows_and_restores(self):
        """The hijack-window primitive: a temporary override resumes the
        baseline automatically when it ends."""
        tm: TimelineMap[str, str] = TimelineMap()
        tm.set("k", "legit", T0)
        tm.set_window("k", "rogue", at_hours(10), at_hours(16))
        assert tm.at("k", at_hours(9)) == "legit"
        assert tm.at("k", at_hours(10)) == "rogue"
        assert tm.at("k", at_hours(15.99)) == "rogue"
        assert tm.at("k", at_hours(16)) == "legit"  # end is exclusive

    def test_nested_windows_newest_wins(self):
        tm: TimelineMap[str, str] = TimelineMap()
        tm.set("k", "a", T0)
        tm.set_window("k", "b", at_hours(1), at_hours(10))
        tm.set_window("k", "c", at_hours(3), at_hours(5))
        assert tm.at("k", at_hours(2)) == "b"
        assert tm.at("k", at_hours(4)) == "c"
        assert tm.at("k", at_hours(6)) == "b"

    def test_rejects_empty_interval(self):
        tm: TimelineMap[str, str] = TimelineMap()
        with pytest.raises(ValueError):
            tm.set("k", "x", T0, T0)

    def test_unknown_key(self):
        tm: TimelineMap[str, str] = TimelineMap()
        assert tm.at("nope", T0) is None
        assert "nope" not in tm


class TestEffectiveChanges:
    def test_changes_capture_window_boundaries(self):
        tm: TimelineMap[str, str] = TimelineMap()
        tm.set("k", "legit", T0)
        tm.set_window("k", "rogue", at_hours(10), at_hours(16))
        changes = tm.effective_changes("k", T0, at_hours(24))
        values = [v for _, v in changes]
        assert values == ["legit", "rogue", "legit"]

    def test_no_change_single_entry(self):
        tm: TimelineMap[str, str] = TimelineMap()
        tm.set("k", "only", T0)
        changes = tm.effective_changes("k", at_hours(1), at_hours(5))
        assert [v for _, v in changes] == ["only"]

    def test_includes_value_in_force_at_start(self):
        tm: TimelineMap[str, str] = TimelineMap()
        tm.set("k", "early", T0)
        changes = tm.effective_changes("k", at_hours(100), at_hours(101))
        assert changes[0][1] == "early"

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(1, 50)), min_size=1, max_size=8))
    def test_changes_agree_with_pointwise_at(self, windows):
        """effective_changes must agree with at() sampled at boundaries."""
        tm: TimelineMap[str, int] = TimelineMap()
        tm.set("k", -1, T0)
        for value, (start_h, dur_h) in enumerate(windows):
            tm.set_window("k", value, at_hours(start_h), at_hours(start_h + dur_h))
        changes = tm.effective_changes("k", T0, at_hours(200))
        for instant, value in changes:
            assert tm.at("k", instant) == value
