"""Tests for the Section 7.2 mitigation model: registry lock and the
conditional-trust hierarchy."""

from datetime import date, datetime

import pytest

from repro.core.types import DetectionType
from repro.world.attacker import (
    AttackerProfile,
    CampaignBlocked,
    CampaignMode,
    CampaignSpec,
    Capability,
    run_campaign,
)
from repro.world.entities import Sector
from repro.world.world import World


def build(capability: Capability, locked: bool):
    world = World(seed=23, start=date(2019, 1, 1), end=date(2019, 12, 31))
    provider = world.add_provider("victim-isp", 65001, [("10.128.0.0/16", "GR")])
    attacker_provider = world.add_provider("bullet", 64666, [("203.0.113.0/24", "NL")])
    victim = world.setup_domain("ministry.gr", provider, services=("www", "mail"))
    if locked:
        world.registry_for("ministry.gr").lock_domain("ministry.gr")
    spec = CampaignSpec(
        victim=victim,
        sector=Sector.GOVERNMENT_MINISTRY,
        victim_cc="GR",
        mode=CampaignMode.T1,
        expected_detection=DetectionType.T1,
        hijack_date=date(2019, 8, 10),
        attacker=AttackerProfile(name="actor", ns_domain="rogue.net"),
        attacker_provider=attacker_provider,
        target_subdomain="mail",
        ca_name="Let's Encrypt",
        capability=capability,
    )
    return world, victim, spec


class TestRegistryLock:
    def test_lock_blocks_account_path(self):
        world, _, spec = build(Capability.ACCOUNT, locked=True)
        with pytest.raises(CampaignBlocked):
            run_campaign(world, spec)
        # Nothing was hijacked; no malicious certificate exists (the
        # victim's own DigiCert chain legitimately covers the name).
        assert len(world.ground_truth) == 0
        issuers = {e.issuer for e in world.crtsh.search_exact("mail.ministry.gr")}
        assert "Let's Encrypt" not in issuers

    def test_lock_blocks_registrar_path(self):
        world, _, spec = build(Capability.REGISTRAR, locked=True)
        with pytest.raises(CampaignBlocked):
            run_campaign(world, spec)

    def test_lock_does_not_stop_registry_compromise(self):
        """Defenses are conditional on upstream entities: an attacker in
        the registry database bypasses the lock entirely."""
        world, victim, spec = build(Capability.REGISTRY, locked=True)
        record = run_campaign(world, spec)
        assert record.crtsh_id > 0
        hijack_instant = datetime(2019, 8, 10, 6, 0)
        assert world.resolver.resolve_a("mail.ministry.gr", hijack_instant) == record.attacker_ips

    def test_unlocked_account_path_succeeds(self):
        world, _, spec = build(Capability.ACCOUNT, locked=False)
        record = run_campaign(world, spec)
        assert record.crtsh_id > 0

    def test_lock_lifecycle(self):
        world, _, _ = build(Capability.ACCOUNT, locked=False)
        registry = world.registry_for("ministry.gr")
        assert not registry.is_locked("ministry.gr")
        registry.lock_domain("ministry.gr")
        assert registry.is_locked("ministry.gr")
        registry.unlock_domain("ministry.gr")
        assert not registry.is_locked("ministry.gr")

    def test_legitimate_changes_also_blocked_while_locked(self):
        """The lock is symmetric friction: the owner's own registrar
        channel is gated too (why locks see little adoption)."""
        world, victim, _ = build(Capability.ACCOUNT, locked=True)
        from repro.dns.registrar import RegistrarError

        with pytest.raises((PermissionError, RegistrarError)):
            victim.registrar.update_delegation(
                victim.credential, "ministry.gr", ("ns9.new-provider.net",),
                start=datetime(2019, 9, 1),
            )


class TestTwoFactorIsInsufficient:
    def test_stolen_credential_bypasses_2fa(self):
        """The paper's footnote: attackers bypassed 2FA by compromising
        sessions or the registrar — account 2FA alone does not stop the
        capability development."""
        world, victim, spec = build(Capability.ACCOUNT, locked=False)
        victim.registrar.account(victim.credential.username).two_factor = True
        record = run_campaign(world, spec)
        assert record.crtsh_id > 0
