"""Tests for pivot analysis (step 5)."""

from datetime import date, timedelta

from repro.core.inspection import InspectionConfig
from repro.core.pivot import PivotAnalyzer
from repro.core.types import DetectionType, Verdict
from repro.ct.crtsh import CrtShService
from repro.ct.log import CTLog
from repro.dns.records import RRType
from repro.pdns.database import PassiveDNSDatabase
from repro.tls.revocation import RevocationRegistry

from tests.helpers import make_cert

ATTACKER_IP = "94.103.91.159"
ROGUE_NS = "ns1.kg-infocom.ru"
HIJACK = date(2020, 12, 20)


def make_analyzer(pdns, certs=()):
    log = CTLog()
    for cert in certs:
        log.submit(cert, cert.not_before)
    crtsh = CrtShService([log], RevocationRegistry(), asof=date(2021, 6, 1))
    return PivotAnalyzer(pdns, crtsh)


def seed_confirmed_victim(pdns):
    """The already-confirmed hijack the pivot expands from."""
    pdns.add_observation("mail.mfa.gov.kg", RRType.A, ATTACKER_IP, HIJACK)
    pdns.add_observation("mfa.gov.kg", RRType.NS, ROGUE_NS, HIJACK)


class TestNsPivot:
    def test_finds_domain_delegated_to_rogue_ns(self):
        pdns = PassiveDNSDatabase()
        seed_confirmed_victim(pdns)
        pdns.add_observation("fiu.gov.kg", RRType.NS, ROGUE_NS, date(2020, 12, 28))
        pdns.add_observation(
            "mail.fiu.gov.kg", RRType.A, "178.20.41.140", date(2020, 12, 28)
        )
        cert = make_cert("mail.fiu.gov.kg", 77, date(2020, 12, 27), issuer="Let's Encrypt")
        analyzer = make_analyzer(pdns, [cert])
        findings = analyzer.pivot(
            frozenset({ATTACKER_IP}), frozenset({ROGUE_NS}), {"mfa.gov.kg"}
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.domain == "fiu.gov.kg"
        assert finding.detection is DetectionType.P_NS
        assert finding.verdict is Verdict.HIJACKED
        assert finding.via == ROGUE_NS
        # The rogue nameserver's answers implicate a NEW attacker IP.
        assert "178.20.41.140" in finding.attacker_ips
        assert finding.malicious_cert is not None
        assert finding.malicious_cert.crtsh_id == cert.crtsh_id or finding.malicious_cert.certificate.common_name == "mail.fiu.gov.kg"

    def test_excludes_known_victims_and_attacker_domains(self):
        pdns = PassiveDNSDatabase()
        seed_confirmed_victim(pdns)
        # The attacker's own nameserver domain resolves to their IP too.
        pdns.add_observation(ROGUE_NS, RRType.A, ATTACKER_IP, HIJACK)
        analyzer = make_analyzer(pdns)
        findings = analyzer.pivot(
            frozenset({ATTACKER_IP}), frozenset({ROGUE_NS}), {"mfa.gov.kg"}
        )
        assert findings == []

    def test_long_lived_delegation_not_pivoted(self):
        """A legitimate long-term customer of a shared NS must not be
        flagged: only short-lived delegations count."""
        pdns = PassiveDNSDatabase()
        seed_confirmed_victim(pdns)
        for offset in range(0, 300, 7):
            pdns.add_observation(
                "legit-customer.kg", RRType.NS, ROGUE_NS, HIJACK - timedelta(days=offset)
            )
        analyzer = make_analyzer(pdns)
        findings = analyzer.pivot(
            frozenset({ATTACKER_IP}), frozenset({ROGUE_NS}), {"mfa.gov.kg"}
        )
        assert findings == []


class TestIpPivot:
    def test_finds_domain_resolving_to_attacker_ip(self):
        pdns = PassiveDNSDatabase()
        seed_confirmed_victim(pdns)
        pdns.add_observation("mbox.cyta.com.cy", RRType.A, ATTACKER_IP, date(2021, 1, 5))
        analyzer = make_analyzer(pdns)
        findings = analyzer.pivot(
            frozenset({ATTACKER_IP}), frozenset(), {"mfa.gov.kg"}
        )
        assert len(findings) == 1
        assert findings[0].domain == "cyta.com.cy"
        assert findings[0].detection is DetectionType.P_IP
        assert findings[0].via == ATTACKER_IP

    def test_ns_pass_takes_precedence(self):
        """A domain reachable via both channels is attributed P-NS."""
        pdns = PassiveDNSDatabase()
        seed_confirmed_victim(pdns)
        pdns.add_observation("both.gov.kg", RRType.NS, ROGUE_NS, date(2021, 1, 2))
        pdns.add_observation("mail.both.gov.kg", RRType.A, ATTACKER_IP, date(2021, 1, 2))
        analyzer = make_analyzer(pdns)
        findings = analyzer.pivot(
            frozenset({ATTACKER_IP}), frozenset({ROGUE_NS}), {"mfa.gov.kg"}
        )
        assert len(findings) == 1
        assert findings[0].detection is DetectionType.P_NS

    def test_no_infrastructure_no_findings(self):
        analyzer = make_analyzer(PassiveDNSDatabase())
        assert analyzer.pivot(frozenset(), frozenset(), set()) == []

    def test_each_domain_reported_once(self):
        pdns = PassiveDNSDatabase()
        seed_confirmed_victim(pdns)
        pdns.add_observation("victim2.kg", RRType.NS, ROGUE_NS, date(2021, 1, 2))
        pdns.add_observation("mail.victim2.kg", RRType.A, ATTACKER_IP, date(2021, 1, 2))
        pdns.add_observation("imap.victim2.kg", RRType.A, ATTACKER_IP, date(2021, 1, 3))
        analyzer = make_analyzer(pdns)
        findings = analyzer.pivot(
            frozenset({ATTACKER_IP}), frozenset({ROGUE_NS}), {"mfa.gov.kg"}
        )
        assert [f.domain for f in findings] == ["victim2.kg"]
