"""Tests for the scan substrate: hosts, engine, annotation, dataset."""

from datetime import date, timedelta

import pytest

from repro.ipintel.geo import GeoDB
from repro.ipintel.pfx2as import RoutingTable
from repro.net.timeline import DateInterval, Period
from repro.scan.annotate import Annotator
from repro.scan.dataset import ScanDataset
from repro.scan.engine import ScanEngine
from repro.scan.host import HostPopulation, TLS_PORTS
from repro.tls.certificate import Certificate
from repro.tls.truststore import TrustStore


def cert(name, serial=1, issuer="Let's Encrypt", issued=date(2019, 1, 1), days=365):
    return Certificate(
        serial=serial,
        common_name=name,
        sans=(name,),
        issuer=issuer,
        not_before=issued,
        not_after=issued + timedelta(days=days),
    )


@pytest.fixture
def population():
    hosts = HostPopulation()
    hosts.add_service(
        "10.0.0.1", (443, 993), cert("mail.x.gr"),
        DateInterval(date(2019, 1, 1), date(2019, 6, 30)),
    )
    return hosts


class TestHostPopulation:
    def test_serving_within_interval(self, population):
        assert population.serving("10.0.0.1", 443, date(2019, 3, 1)) is not None
        assert population.serving("10.0.0.1", 443, date(2019, 7, 15)) is None
        assert population.serving("10.0.0.1", 995, date(2019, 3, 1)) is None

    def test_serving_all_multiple_certs(self, population):
        """An endpoint can expose several certificates at once (shared
        attacker hosts, rollover overlap)."""
        population.add_service(
            "10.0.0.1", (443,), cert("mail.y.gr", serial=2),
            DateInterval(date(2019, 2, 1), date(2019, 4, 1)),
        )
        certs = population.serving_all("10.0.0.1", 443, date(2019, 3, 1))
        assert {c.common_name for c in certs} == {"mail.x.gr", "mail.y.gr"}

    def test_rejects_unscanned_port(self, population):
        with pytest.raises(ValueError):
            population.add_service(
                "10.0.0.2", (8443,), cert("a.x.gr"), DateInterval(date(2019, 1, 1))
            )

    def test_reliability_bounds(self, population):
        with pytest.raises(ValueError):
            population.add_service(
                "10.0.0.2", (443,), cert("a.x.gr"),
                DateInterval(date(2019, 1, 1)), reliability=0.0,
            )

    def test_ports_constant_matches_paper(self):
        assert TLS_PORTS == (443, 465, 587, 993, 995)


class TestScanEngine:
    def test_deterministic_across_runs(self, population):
        dates = tuple(date(2019, 1, 1) + timedelta(days=7 * i) for i in range(10))
        a = ScanEngine(population, seed=42).run(dates)
        b = ScanEngine(population, seed=42).run(dates)
        assert [(o.scan_date, o.ip, o.port) for o in a] == [
            (o.scan_date, o.ip, o.port) for o in b
        ]

    def test_no_loss_configuration_sees_everything(self, population):
        dates = (date(2019, 3, 4),)
        observations = ScanEngine(population, seed=1, port_loss=0.0).run(dates)
        assert {(o.ip, o.port) for o in observations} == {("10.0.0.1", 443), ("10.0.0.1", 993)}

    def test_unreliable_host_misses_scans(self):
        hosts = HostPopulation()
        hosts.add_service(
            "10.0.0.9", (443,), cert("flaky.x.gr"),
            DateInterval(date(2019, 1, 1), date(2019, 12, 31)), reliability=0.5,
        )
        dates = tuple(date(2019, 1, 7) + timedelta(days=7 * i) for i in range(40))
        observations = ScanEngine(hosts, seed=7, port_loss=0.0).run(dates)
        seen = len({o.scan_date for o in observations})
        assert 8 <= seen <= 32  # around half, deterministic given the seed


class TestAnnotator:
    def make_annotator(self):
        routing = RoutingTable()
        routing.add("10.0.0.0/8", 65001)
        geo = GeoDB()
        geo.add("10.0.0.0/8", "GR")
        trust = TrustStore()
        trust.include("Let's Encrypt")
        return Annotator(routing, geo, trust)

    def test_annotation_fields(self, population):
        annotator = self.make_annotator()
        observations = ScanEngine(population, seed=1, port_loss=0.0).run((date(2019, 3, 4),))
        records = annotator.annotate(observations)
        assert len(records) == 1  # aggregated across ports
        record = records[0]
        assert record.ports == (443, 993)
        assert record.asn == 65001
        assert record.country == "GR"
        assert record.trusted
        assert record.sensitive  # "mail" substring
        assert record.base_domains == ("x.gr",)

    def test_unknown_ip_annotated_as_unknown(self, population):
        annotator = Annotator(RoutingTable(), GeoDB(), TrustStore())
        observations = ScanEngine(population, seed=1, port_loss=0.0).run((date(2019, 3, 4),))
        record = annotator.annotate(observations)[0]
        assert record.asn == 0
        assert record.country == "ZZ"
        assert not record.trusted  # CA not in any root program


class TestScanDataset:
    def make_dataset(self):
        annotator = TestAnnotator().make_annotator()
        hosts = HostPopulation()
        hosts.add_service(
            "10.0.0.1", (443,), cert("mail.x.gr"),
            DateInterval(date(2019, 1, 1), date(2019, 6, 30)),
        )
        dates = tuple(date(2019, 1, 7) + timedelta(days=7 * i) for i in range(26))
        records = annotator.annotate(ScanEngine(hosts, seed=1, port_loss=0.0).run(dates))
        return ScanDataset(records, dates)

    def test_domain_index(self):
        dataset = self.make_dataset()
        assert dataset.domains() == ("x.gr",)
        assert len(dataset.records_for("x.gr")) == 25  # active through Jun 30
        assert dataset.records_for("other.org") == ()

    def test_presence(self):
        dataset = self.make_dataset()
        period = Period(index=0, start=date(2019, 1, 1), end=date(2019, 6, 30))
        assert dataset.presence("x.gr", period) == 1.0
        late = Period(index=1, start=date(2019, 7, 1), end=date(2019, 12, 31))
        assert dataset.presence("x.gr", late) == 0.0
