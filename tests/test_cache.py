"""The content-addressed stage cache: store, fingerprints, run wiring.

The differential byte-identity checks against the pinned golden reports
live in ``tests/test_golden_reports.py``; this module covers the cache
mechanics themselves — entry round-trips, corruption detection and
eviction, LRU garbage collection, fault-plan keying, the manifest's
``cache`` section, and the ``repro-hunt cache`` CLI.
"""

from __future__ import annotations

import os

import pytest

from repro.cache import StageCache, derive_run_key, stage_fingerprint
from repro.cache.store import _MAGIC
from repro.cli import main
from repro.core.pipeline import PipelineConfig, PipelineInputs
from repro.exec.metrics import StageStats, format_run_metrics
from repro.faults import FaultPlan
from repro.io.golden import encode_report


def _entry_files(cache: StageCache) -> list:
    return sorted(cache.root.glob("??/*.entry"))


class TestStore:
    def test_put_get_round_trip(self, tmp_path):
        cache = StageCache(tmp_path)
        products = {"shortlist": ["a", "b"], "decisions": [("c", True)]}
        nbytes = cache.put("ab" * 24, "shortlist", StageStats(5, 2), products)
        entry = cache.get("ab" * 24)
        assert entry is not None
        assert entry.stage == "shortlist"
        assert entry.stats.n_in == 5 and entry.stats.n_out == 2
        assert entry.products == products
        assert entry.nbytes == nbytes
        assert cache.counters.hits == 1
        assert cache.counters.bytes_read == nbytes

    def test_absent_fingerprint_is_a_miss(self, tmp_path):
        cache = StageCache(tmp_path)
        assert cache.get("cd" * 24) is None
        assert cache.counters.misses == 1
        assert cache.counters.evictions == 0

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda blob: blob[: len(blob) // 2],            # truncated
            lambda blob: blob[:-3] + b"xyz",                # flipped payload
            lambda blob: b"not-a-cache-entry" + blob[17:],  # foreign magic
            lambda blob: _MAGIC + b"short\n" + blob,        # malformed header
        ],
        ids=["truncated", "bitflip", "bad-magic", "bad-header"],
    )
    def test_corrupt_entry_is_evicted_not_crashed(self, tmp_path, mangle):
        cache = StageCache(tmp_path)
        fingerprint = "ef" * 24
        cache.put(fingerprint, "pivot", StageStats(1, 1), {"pivots": []})
        (path,) = _entry_files(cache)
        path.write_bytes(mangle(path.read_bytes()))
        assert cache.get(fingerprint) is None
        assert not path.exists(), "corrupt entry must be evicted"
        assert cache.counters.evictions == 1
        # The slot is writable again and the rewrite round-trips.
        cache.put(fingerprint, "pivot", StageStats(1, 1), {"pivots": []})
        assert cache.get(fingerprint) is not None

    def test_unpicklable_payload_is_a_miss(self, tmp_path):
        import hashlib

        cache = StageCache(tmp_path)
        payload = b"\x80\x05garbage"
        checksum = hashlib.blake2b(payload, digest_size=16).hexdigest()
        path = cache._path("aa" * 24)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(_MAGIC + checksum.encode() + b"\n" + payload)
        assert cache.get("aa" * 24) is None
        assert not path.exists()

    def test_stats_clear(self, tmp_path):
        cache = StageCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" * 24, "s", StageStats(1, 1), {"x": i})
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.total_bytes == sum(p.stat().st_size for p in _entry_files(cache))
        assert cache.clear() == 3
        assert cache.stats().entries == 0

    def test_gc_evicts_least_recently_used(self, tmp_path):
        cache = StageCache(tmp_path)
        for i in range(4):
            cache.put(f"{i:02d}" * 24, "s", StageStats(1, 1), {"x": list(range(50))})
        paths = {p.name: p for p in _entry_files(cache)}
        # Age everything, then touch entry 2 via get() — the LRU order
        # must come from read recency, not write order.
        for name, path in paths.items():
            os.utime(path, (1000, 1000))
        assert cache.get("02" * 24) is not None
        size = next(iter(paths.values())).stat().st_size
        result = cache.gc(max_bytes=size)
        assert result.kept == 1
        assert result.removed == 3
        assert cache.get("02" * 24) is not None
        assert cache.get("01" * 24) is None  # evicted → miss

    def test_gc_zero_budget_clears_everything(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.put("aa" * 24, "s", StageStats(1, 1), {"x": 1})
        result = cache.gc(max_bytes=0)
        assert result.removed == 1 and result.kept == 0
        assert cache.stats().entries == 0

    def test_gc_pins_resume_manifest_units(self, tmp_path):
        """A live resume manifest and its banked shard entries are one
        unit: gc keeps them all regardless of age or budget, and they
        become ordinary evictable entries once the manifest is
        discarded."""
        from repro.cache.resume import ResumeManifest

        cache = StageCache(tmp_path)
        manifest = ResumeManifest(cache.root)
        base_fp = "ab" * 24
        shard_keys = [f"{base_fp}-shard-{i}" for i in range(2)]
        cache.put(base_fp, "deployment", StageStats(4, 0), {"partial": True})
        for ordinal, key in enumerate(shard_keys):
            cache.put(key, "deployment", StageStats(2, 0), {"results": [(), ()]})
            manifest.record(base_fp, "deployment", 4, 2, ordinal, key)
        cache.put("cd" * 24, "s", StageStats(1, 1), {"x": list(range(50))})
        for path in _entry_files(cache):
            os.utime(path, (1000, 1000))  # everything is ancient

        result = cache.gc(max_bytes=0)
        assert result.kept == 3  # fingerprint + both shard entries
        assert result.removed == 1  # only the unpinned entry went
        assert cache.get(base_fp) is not None
        for key in shard_keys:
            assert cache.get(key) is not None

        manifest.discard(base_fp)
        result = cache.gc(max_bytes=0)
        assert result.kept == 0
        assert cache.stats().entries == 0


class TestRunWiring:
    def test_cold_then_warm_is_byte_identical(self, small_study, tmp_path):
        cache = StageCache(tmp_path)
        cold, cold_metrics = small_study.profile_pipeline(cache=cache)
        warm, warm_metrics = small_study.profile_pipeline(cache=cache)
        baseline = small_study.run_pipeline()
        assert encode_report(cold) == encode_report(baseline)
        assert encode_report(warm) == encode_report(baseline)
        assert cold_metrics.cache["misses"] > 0
        assert cold_metrics.cache["hits"] == 0
        assert warm_metrics.cache["hits"] == cold_metrics.cache["stores"]
        assert warm_metrics.cache["misses"] == 0
        assert warm_metrics.cache["bytes_read"] == cold_metrics.cache["bytes_written"]

    def test_warm_manifest_marks_cached_stages(self, small_study, tmp_path):
        cache = StageCache(tmp_path)
        small_study.profile_pipeline(cache=cache)
        _, metrics = small_study.profile_pipeline(cache=cache)
        by_name = {s.name: s for s in metrics.stages}
        for name in (
            "deployment_maps",
            "classify",
            "shortlist",
            "inspect",
            "pivot",
            "assemble",
        ):
            assert by_name[name].cached is True
            assert by_name[name].busy_seconds == 0.0
            assert by_name[name].utilization == 0.0
        rendered = format_run_metrics(metrics)
        assert "cached" in rendered
        assert "cache:" in rendered

    def test_cached_stage_keeps_funnel_cardinalities(self, small_study, tmp_path):
        cache = StageCache(tmp_path)
        _, cold = small_study.profile_pipeline(cache=cache)
        _, warm = small_study.profile_pipeline(cache=cache)
        for cold_stage, warm_stage in zip(cold.stages, warm.stages):
            assert warm_stage.n_in == cold_stage.n_in
            assert warm_stage.n_out == cold_stage.n_out

    def test_uncached_run_has_no_cache_section(self, small_study):
        _, metrics = small_study.profile_pipeline()
        assert metrics.cache is None
        assert "cache:" not in format_run_metrics(metrics)

    def test_worker_fault_seed_is_normalized(self, small_study, tmp_path):
        """Worker faults are timing-only — no draw of theirs ever
        reaches a product — so a different --fault-seed on a
        worker-only plan shares the clean plan's run key and warm-hits
        its entries.  This is the invariant that lets a crash-injected
        run's banked shards satisfy the clean re-run."""
        cache = StageCache(tmp_path)
        spec = "workers.slow=0.1,workers.slow_ms=1"
        _, first = small_study.profile_pipeline(
            faults=FaultPlan.from_spec(spec, seed=1), cache=cache
        )
        assert first.cache["hits"] == 0
        rerun, second = small_study.profile_pipeline(
            faults=FaultPlan.from_spec(spec, seed=2), cache=cache
        )
        assert second.cache["misses"] == 0
        assert second.cache["hits"] > 0
        cold_rerun = small_study.run_pipeline(
            faults=FaultPlan.from_spec(spec, seed=2)
        )
        assert encode_report(rerun) == encode_report(cold_rerun)

    def test_different_data_fault_seed_misses(self, small_study, tmp_path):
        """A data fault's seed picks which records degrade, so with a
        data channel active the seed is key material again — a
        different --fault-seed must never hit."""
        cache = StageCache(tmp_path)
        spec = "scan.drop_weeks=0.3"
        _, first = small_study.profile_pipeline(
            faults=FaultPlan.from_spec(spec, seed=1), cache=cache
        )
        _, second = small_study.profile_pipeline(
            faults=FaultPlan.from_spec(spec, seed=2), cache=cache
        )
        assert first.cache["hits"] == 0
        assert second.cache["hits"] == 0

    def test_dataset_faults_key_on_degraded_content(self, small_study, tmp_path):
        cache = StageCache(tmp_path)
        small_study.profile_pipeline(cache=cache)
        _, degraded = small_study.profile_pipeline(
            faults=FaultPlan.from_spec("scan.drop_weeks=0.3", seed=5), cache=cache
        )
        assert degraded.cache["hits"] == 0

    def test_empty_plan_seed_is_normalized(self, small_study, tmp_path):
        """An empty plan is byte-identical to no plan, so its seed must
        not key differently — seed 99 warm-hits the seed-0 entries."""
        cache = StageCache(tmp_path)
        small_study.profile_pipeline(cache=cache)
        _, metrics = small_study.profile_pipeline(
            faults=FaultPlan.from_spec(None, seed=99), cache=cache
        )
        assert metrics.cache["misses"] == 0

    def test_corrupted_entry_mid_cache_recomputes(self, small_study, tmp_path):
        cache = StageCache(tmp_path)
        cold, _ = small_study.profile_pipeline(cache=cache)
        victim = _entry_files(cache)[0]
        victim.write_bytes(victim.read_bytes()[:40])
        warm, metrics = small_study.profile_pipeline(cache=cache)
        assert encode_report(warm) == encode_report(cold)
        assert metrics.cache["misses"] == 1
        assert metrics.cache["stores"] == 1  # the slot was refilled
        _, rewarm = small_study.profile_pipeline(cache=cache)
        assert rewarm.cache["misses"] == 0

    def test_config_change_invalidates_downstream_only(self, small_study, tmp_path):
        """Scoped config deps: sweeping an inspection knob reuses the
        deployment maps and the shortlist."""
        from repro.core.inspection import InspectionConfig

        cache = StageCache(tmp_path)
        small_study.profile_pipeline(cache=cache)
        config = PipelineConfig(inspection=InspectionConfig(window_days=21))
        _, metrics = small_study.profile_pipeline(config=config, cache=cache)
        by_name = {s.name: s for s in metrics.stages}
        assert by_name["deployment_maps"].cached is True
        assert by_name["shortlist"].cached is True
        assert by_name["inspect"].cached is False
        assert by_name["pivot"].cached is False

    def test_unknown_config_dep_raises(self, small_study):
        inputs = PipelineInputs.from_study(small_study)
        key = derive_run_key(inputs, FaultPlan.from_spec(None), PipelineConfig())
        with pytest.raises(ValueError, match="unknown config dependencies"):
            stage_fingerprint(key, [("bogus", 1, ("no_such_knob",))])


class TestCacheCLI:
    def _populate(self, small_study, directory) -> StageCache:
        cache = StageCache(directory)
        small_study.run_pipeline(cache=cache)
        return cache

    def test_stats_clear_gc(self, small_study, tmp_path, capsys):
        cache = self._populate(small_study, tmp_path / "cache")
        n_entries = cache.stats().entries
        assert n_entries > 0

        assert main(["-q", "cache", "stats", "--dir", str(cache.root)]) == 0
        out = capsys.readouterr().out
        assert f"{n_entries} entries" in out

        assert main([
            "-q", "cache", "gc", "--dir", str(cache.root), "--max-bytes", "1",
        ]) == 0
        assert "evicted" in capsys.readouterr().out
        assert cache.stats().entries < n_entries

        assert main(["-q", "cache", "clear", "--dir", str(cache.root)]) == 0
        assert "removed" in capsys.readouterr().out
        assert cache.stats().entries == 0

    def test_gc_requires_max_bytes(self, tmp_path, capsys):
        assert main(["-q", "cache", "gc", "--dir", str(tmp_path)]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_no_directory_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["-q", "cache", "stats"]) == 2
        assert "REPRO_CACHE_DIR" in capsys.readouterr().err

    def test_env_default_directory(self, small_study, tmp_path, capsys, monkeypatch):
        cache = self._populate(small_study, tmp_path / "envcache")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache.root))
        assert main(["-q", "cache", "stats"]) == 0
        assert "entries" in capsys.readouterr().out

    def test_paper_cache_flag_round_trip(self, tmp_path, capsys):
        """`paper --cache DIR` twice: the second run is all hits and
        prints the same tables."""
        args = [
            "-q", "paper", "--seed", "7", "--background", "12",
            "--cache", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert warm_out == cold_out
        assert StageCache(tmp_path / "cache").stats().entries > 0

    def test_no_cache_flag_disables_env(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "never"))
        assert main([
            "-q", "paper", "--seed", "7", "--background", "12", "--no-cache",
        ]) == 0
        capsys.readouterr()
        assert not (tmp_path / "never").exists()
