"""Differential property tests: segment-backed tables vs in-RAM builds.

Arbitrary scan histories, pDNS observation streams, and CT submissions
are built in RAM, written as ``repro-segment/1`` files, and reopened
through the mmap-backed table subclasses.  Every query surface the
pipeline touches — interned pools, CSR slices, record materialization,
``select()`` derivation, pDNS blackout windows, CT base searches — must
answer identically from both backings; the openers change storage,
never semantics.

The corruption classes pin the other half of the format contract: a
truncated or bit-flipped segment raises a *typed* ``SegmentError``
(usually the ``SegmentChecksumError`` subclass) from the verify pass —
never garbage rows, never a downstream unpickling crash.
"""

from datetime import date, timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ct.log import CTLog
from repro.ct.table import CtTable
from repro.dns.records import RRType
from repro.net.timeline import DateInterval
from repro.pdns.database import PassiveDNSDatabase
from repro.scan.dataset import ScanDataset
from repro.segments import (
    SegmentChecksumError,
    SegmentError,
    open_ct_table,
    open_pdns_table,
    open_scan_table,
    verify_segment,
    write_ct_table,
    write_pdns_table,
    write_scan_table,
)
from repro.tls.certificate import Certificate

from tests.helpers import ALL_PERIODS, ScanSketch, make_cert, scan_dates

DATES = scan_dates()
DOMAINS = ("alpha.com", "beta.org", "gamma.net")

_SCAN_POOLS = (
    "ips", "cert_fps", "countries", "domains",
    "port_sets", "name_sets", "base_sets",
)

# One presence run: (domain, asn selector, first scan index, length, cert).
_presence = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=24),
    st.integers(min_value=1, max_value=26),
    st.integers(min_value=0, max_value=3),
)
_history = st.lists(_presence, min_size=1, max_size=8)

# One pDNS observation: (name, A-or-NS, rdata, day index).
_observation = st.tuples(
    st.integers(min_value=0, max_value=5),
    st.booleans(),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=25),
)
_observations = st.lists(_observation, min_size=1, max_size=30)

# One CT submission: (subject, serial bump, extra-SAN, day offset).
_submission = st.tuples(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=400),
)
_submissions = st.lists(_submission, min_size=1, max_size=20)


def _dataset_from(history) -> ScanDataset:
    sketches = {d: ScanSketch(d) for d in DOMAINS}
    certs = {
        (d, i): make_cert(f"www{i}.{d}", 500 + 10 * di + i, date(2018, 12, 1))
        for di, d in enumerate(DOMAINS)
        for i in range(4)
    }
    for dom_sel, asn_sel, start, length, cert_sel in history:
        domain = DOMAINS[dom_sel]
        dates = DATES[start : min(start + length, len(DATES))]
        if not dates:
            continue
        sketches[domain].presence(
            dates,
            f"10.{dom_sel}.{asn_sel}.1",
            1000 + asn_sel,
            "US" if asn_sel % 2 == 0 else "DE",
            certs[(domain, cert_sel)],
        )
    records = [r for sketch in sketches.values() for r in sketch.records]
    return ScanDataset(records, DATES)


def _pdns_from(observations) -> PassiveDNSDatabase:
    db = PassiveDNSDatabase()
    names = [
        "alpha.com", "www.alpha.com", "mail.alpha.com",
        "beta.org", "www.beta.org", "gamma.net",
    ]
    for name_sel, is_a, rdata_sel, day in observations:
        if is_a:
            rtype, rdata = RRType.A, f"10.20.{rdata_sel}.1"
        else:
            rtype, rdata = RRType.NS, f"ns{rdata_sel}.dns.example.org"
        db.add_observation(names[name_sel], rtype, rdata, DATES[day])
    return db


def _ct_from(submissions) -> CtTable:
    subjects = ("alpha.com", "beta.org", "gamma.net", "delta.io", "echo.dev")
    log = CTLog(name="prop-log")
    for k, (subj_sel, bump, san_sel, day_offset) in enumerate(submissions):
        name = subjects[subj_sel]
        sans = (f"www.{name}", name)
        if san_sel != subj_sel:
            sans = sans + (subjects[san_sel],)
        cert = Certificate(
            serial=7000 + 100 * k + bump,
            common_name=f"www.{name}",
            sans=sans,
            issuer="Prop CA",
            not_before=date(2018, 6, 1) + timedelta(days=day_offset),
            not_after=date(2020, 6, 1),
        )
        log.submit(cert, date(2018, 6, 2) + timedelta(days=day_offset))
    return CtTable.from_logs([log])


def _rows(records):
    return [
        (r.rrname, r.rtype, r.rdata, r.first_seen, r.last_seen, r.count)
        for r in records
    ]


class TestScanSegmentRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(_history)
    def test_round_trip_preserves_ids_and_slices(self, tmp_path_factory, history):
        dataset = _dataset_from(history)
        table = dataset.table
        path = tmp_path_factory.mktemp("scanseg") / "scan.seg"
        write_scan_table(table, path, scan_dates=dataset.scan_dates)
        reopened = open_scan_table(path)

        assert list(reopened.row_dicts()) == list(table.row_dicts())
        for pool in _SCAN_POOLS:
            assert list(getattr(reopened, pool)) == list(getattr(table, pool))
        for domain in dataset.domains():
            assert reopened.domain_slice(domain) == table.domain_slice(domain)
            assert reopened.records_for(domain) == table.records_for(domain)
            for period in ALL_PERIODS:
                assert reopened.period_slice(
                    domain, period.start, period.end
                ) == table.period_slice(domain, period.start, period.end)

    @settings(max_examples=25, deadline=None)
    @given(_history, st.sets(st.integers(min_value=0, max_value=200), max_size=30))
    def test_select_reinterns_identically(
        self, tmp_path_factory, history, row_picks
    ):
        """``select()`` over a mapped table re-interns exactly like the
        in-RAM build — the cache-safety invariant shard products rely on."""
        dataset = _dataset_from(history)
        table = dataset.table
        rows = sorted(r for r in row_picks if r < len(table))
        path = tmp_path_factory.mktemp("scansel") / "scan.seg"
        write_scan_table(table, path, scan_dates=dataset.scan_dates)
        reopened = open_scan_table(path)

        derived_ram = table.select(rows)
        derived_seg = reopened.select(rows)
        assert list(derived_seg.row_dicts()) == list(derived_ram.row_dicts())
        for column in ("ip_id", "asn_id", "cert_id", "country_id"):
            assert list(getattr(derived_seg, column)) == list(
                getattr(derived_ram, column)
            )
        for pool in _SCAN_POOLS:
            assert list(getattr(derived_seg, pool)) == list(
                getattr(derived_ram, pool)
            )

    @settings(max_examples=25, deadline=None)
    @given(_history)
    def test_dataset_calendar_survives(self, tmp_path_factory, history):
        dataset = _dataset_from(history)
        path = tmp_path_factory.mktemp("scancal") / "scan.seg"
        write_scan_table(
            dataset.table, path,
            scan_dates=dataset.scan_dates,
            known_missing=(DATES[0], DATES[3]),
        )
        reopened = open_scan_table(path)
        restored = ScanDataset.from_table(
            reopened,
            tuple(
                date.fromordinal(o) for o in reopened.segment.meta["scan_dates"]
            ),
            known_missing_dates=tuple(
                date.fromordinal(o)
                for o in reopened.segment.meta["known_missing"]
            ),
        )
        assert restored.scan_dates == dataset.scan_dates
        assert restored.known_missing_dates == frozenset((DATES[0], DATES[3]))
        assert restored.records() == dataset.records()


class TestPdnsSegmentRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(_observations)
    def test_every_query_surface_matches(self, tmp_path_factory, observations):
        db = _pdns_from(observations)
        path = tmp_path_factory.mktemp("pdnsseg") / "pdns.seg"
        write_pdns_table(db.table, path)
        reopened = PassiveDNSDatabase.from_table(open_pdns_table(path))

        assert _rows(reopened.all_records()) == _rows(db.all_records())
        assert list(reopened.table.row_dicts()) == list(db.table.row_dicts())
        window = DateInterval(DATES[5], DATES[20])
        for name in {r.rrname for r in db.all_records()}:
            for rtype in (None, RRType.A, RRType.NS):
                assert _rows(reopened.query_name(name, rtype)) == _rows(
                    db.query_name(name, rtype)
                )
            assert _rows(reopened.query_name(name, window=window)) == _rows(
                db.query_name(name, window=window)
            )
        for base in DOMAINS:
            assert _rows(reopened.query_domain(base)) == _rows(
                db.query_domain(base)
            )
        for rdata in {r.rdata for r in db.all_records()}:
            assert _rows(reopened.query_rdata(rdata)) == _rows(
                db.query_rdata(rdata)
            )

    @settings(max_examples=25, deadline=None)
    @given(
        _observations,
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=1, max_value=8),
    )
    def test_without_windows_matches(
        self, tmp_path_factory, observations, start, length
    ):
        """Blackout derivation from a mapped table == from the in-RAM
        database it round-tripped from (same rows, spans, counts)."""
        db = _pdns_from(observations)
        path = tmp_path_factory.mktemp("pdnswin") / "pdns.seg"
        write_pdns_table(db.table, path)
        reopened = PassiveDNSDatabase.from_table(open_pdns_table(path))

        blackout = DateInterval(DATES[start], DATES[min(start + length, 25)])
        assert _rows(reopened.without_windows([blackout]).all_records()) == _rows(
            db.without_windows([blackout]).all_records()
        )


class TestCtSegmentRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(_submissions)
    def test_round_trip_preserves_rows_and_searches(
        self, tmp_path_factory, submissions
    ):
        table = _ct_from(submissions)
        path = tmp_path_factory.mktemp("ctseg") / "ct.seg"
        write_ct_table(table, path)
        reopened = open_ct_table(path)

        assert list(reopened.row_dicts()) == list(table.row_dicts())
        assert list(reopened.bases) == list(table.bases)
        assert reopened.hidden_entries == table.hidden_entries
        after = date(2018, 8, 1).toordinal()
        for base in table.bases:
            assert reopened.search_rows(base) == table.search_rows(base)
            assert reopened.search_rows(base, after_ord=after) == table.search_rows(
                base, after_ord=after
            )
        for row in range(len(table)):
            assert reopened.certificate(row) == table.certificate(row)
            assert reopened.logged_date(row) == table.logged_date(row)


class TestCorruptionDetection:
    @settings(max_examples=20, deadline=None)
    @given(_history, st.data())
    def test_bit_flip_raises_typed_error(self, tmp_path_factory, history, data):
        """Any single-bit flip anywhere in the file is caught by the
        verify pass as a SegmentError — never decoded into rows."""
        dataset = _dataset_from(history)
        tmp = tmp_path_factory.mktemp("flip")
        path = tmp / "scan.seg"
        write_scan_table(dataset.table, path, scan_dates=dataset.scan_dates)
        blob = bytearray(path.read_bytes())
        position = data.draw(
            st.integers(min_value=0, max_value=len(blob) - 1), label="position"
        )
        bit = data.draw(st.integers(min_value=0, max_value=7), label="bit")
        blob[position] ^= 1 << bit
        flipped = tmp / "flipped.seg"
        flipped.write_bytes(bytes(blob))
        with pytest.raises(SegmentError):
            open_scan_table(flipped)
        with pytest.raises(SegmentError):
            verify_segment(flipped)

    @settings(max_examples=20, deadline=None)
    @given(_history, st.data())
    def test_truncation_raises_typed_error(self, tmp_path_factory, history, data):
        dataset = _dataset_from(history)
        tmp = tmp_path_factory.mktemp("trunc")
        path = tmp / "scan.seg"
        write_scan_table(dataset.table, path, scan_dates=dataset.scan_dates)
        blob = path.read_bytes()
        keep = data.draw(
            st.integers(min_value=0, max_value=len(blob) - 1), label="keep"
        )
        truncated = tmp / "truncated.seg"
        truncated.write_bytes(blob[:keep])
        with pytest.raises(SegmentError):
            open_scan_table(truncated)
        with pytest.raises(SegmentError):
            verify_segment(truncated)

    def test_payload_flip_is_a_checksum_error(self, tmp_path):
        """A flip past the header is specifically the checksum subclass."""
        dataset = _dataset_from([(0, 0, 0, 5, 0)])
        path = tmp_path / "scan.seg"
        write_scan_table(dataset.table, path, scan_dates=dataset.scan_dates)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(SegmentChecksumError):
            verify_segment(path)

    def test_wrong_table_is_a_typed_error(self, tmp_path):
        dataset = _dataset_from([(0, 0, 0, 5, 0)])
        path = tmp_path / "scan.seg"
        write_scan_table(dataset.table, path, scan_dates=dataset.scan_dates)
        with pytest.raises(SegmentError):
            open_pdns_table(path)
        with pytest.raises(SegmentError):
            open_ct_table(path)
