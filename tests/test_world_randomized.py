"""Robustness tests: randomized campaign worlds across seeds.

The strongest claim the reproduction can make: the pipeline recovers
attacks it has never seen before — randomized victims, dates, clouds,
and modes — not just the memorized paper layout.
"""

import pytest

from repro.analysis.evaluation import evaluate_report
from repro.core.types import DetectionType, Verdict
from repro.world.randomized import RandomWorldConfig, random_world
from repro.world.sim import run_study


@pytest.mark.parametrize("seed", [1, 2, 3])
class TestRandomWorlds:
    def test_full_recall_zero_false_positives(self, seed):
        world = random_world(seed=seed)
        study = run_study(world)
        report = study.run_pipeline()
        evaluation = evaluate_report(report, study.ground_truth)
        assert evaluation.recall == 1.0, [
            (s.domain, s.expected_detection, s.verdict) for s in evaluation.missed()
        ]
        assert evaluation.false_positives == []

    def test_detection_channels_match_modes(self, seed):
        world = random_world(seed=seed)
        study = run_study(world)
        report = study.run_pipeline()
        for record in study.ground_truth.records:
            finding = report.finding_for(record.domain)
            assert finding is not None, record.domain
            if record.expected_detection is DetectionType.T2_TARGETED:
                assert finding.verdict is Verdict.TARGETED, record.domain
            else:
                assert finding.verdict is Verdict.HIJACKED, record.domain
            if record.expected_detection in (DetectionType.T1, DetectionType.T2):
                assert finding.detection is record.expected_detection, record.domain


class TestGeneratorShape:
    def test_deterministic(self):
        a = run_study(random_world(seed=9)).ground_truth
        b = run_study(random_world(seed=9)).ground_truth
        assert [(r.domain, r.hijack_date, r.attacker_ips) for r in a.records] == [
            (r.domain, r.hijack_date, r.attacker_ips) for r in b.records
        ]

    def test_seeds_differ(self):
        a = random_world(seed=4).ground_truth
        b = random_world(seed=5).ground_truth
        assert [(r.domain, r.hijack_date) for r in a.records] != [
            (r.domain, r.hijack_date) for r in b.records
        ]

    def test_config_scales(self):
        config = RandomWorldConfig(n_victims=4, n_background=10)
        world = random_world(seed=6, config=config)
        assert len(world.ground_truth) == 4
