"""Tests for the time-aware recursive resolver and DNSSEC validation."""

from datetime import datetime

import pytest

from repro.dns.dnssec import DnssecStatus, validate_chain
from repro.dns.nameserver import NameserverDirectory, NameserverHost
from repro.dns.records import RRType
from repro.dns.registry import Registry
from repro.dns.resolver import RecursiveResolver, ResolutionStatus

T0 = datetime(2018, 1, 1)
HIJACK_START = datetime(2020, 12, 20, 1)
HIJACK_END = datetime(2020, 12, 20, 9)


@pytest.fixture
def world():
    registry = Registry("gov.kg")
    directory = NameserverDirectory()
    resolver = RecursiveResolver([registry], directory)

    legit = NameserverHost(operator="infocom")
    directory.bind("ns1.infocom.kg", legit, start=T0)
    directory.bind("ns2.infocom.kg", legit, start=T0)
    registry.register(
        "mfa.gov.kg", ("ns1.infocom.kg", "ns2.infocom.kg"), "reg", at=T0
    )
    legit.add_record("mail.mfa.gov.kg", RRType.A, "10.128.0.10", start=T0)

    rogue = NameserverHost(operator="attacker")
    directory.bind("ns1.kg-infocom.ru", rogue, start=datetime(2020, 11, 1))
    directory.bind("ns2.kg-infocom.ru", rogue, start=datetime(2020, 11, 1))
    registry.set_delegation(
        "mfa.gov.kg", ("ns1.kg-infocom.ru", "ns2.kg-infocom.ru"),
        HIJACK_START, HIJACK_END,
    )
    rogue.add_record(
        "mail.mfa.gov.kg", RRType.A, "94.103.91.159", HIJACK_START, HIJACK_END
    )
    return registry, directory, resolver, legit, rogue


class TestResolution:
    def test_steady_state(self, world):
        _, _, resolver, _, _ = world
        result = resolver.resolve("mail.mfa.gov.kg", RRType.A, datetime(2019, 6, 1))
        assert result.ok
        assert result.answers == ("10.128.0.10",)
        assert result.answering_ns == "ns1.infocom.kg"
        assert result.delegation == ("ns1.infocom.kg", "ns2.infocom.kg")

    def test_resolution_during_hijack_window(self, world):
        """The crux: inside the window everyone gets the attacker's answer."""
        _, _, resolver, _, _ = world
        result = resolver.resolve(
            "mail.mfa.gov.kg", RRType.A, datetime(2020, 12, 20, 5)
        )
        assert result.answers == ("94.103.91.159",)
        assert result.delegation == ("ns1.kg-infocom.ru", "ns2.kg-infocom.ru")

    def test_resolution_reverts_after_window(self, world):
        _, _, resolver, _, _ = world
        result = resolver.resolve(
            "mail.mfa.gov.kg", RRType.A, datetime(2020, 12, 20, 10)
        )
        assert result.answers == ("10.128.0.10",)

    def test_ns_query_returns_delegation(self, world):
        _, _, resolver, _, _ = world
        result = resolver.resolve("mfa.gov.kg", RRType.NS, datetime(2020, 12, 20, 5))
        assert result.answers == ("ns1.kg-infocom.ru", "ns2.kg-infocom.ru")

    def test_nxdomain_for_unregistered(self, world):
        _, _, resolver, _, _ = world
        result = resolver.resolve("ghost.gov.kg", RRType.A, datetime(2019, 1, 1))
        assert result.status is ResolutionStatus.NXDOMAIN

    def test_servfail_for_unknown_tld(self, world):
        _, _, resolver, _, _ = world
        result = resolver.resolve("example.com", RRType.A, datetime(2019, 1, 1))
        assert result.status is ResolutionStatus.SERVFAIL
        assert not resolver.suffix_known("example.com")

    def test_nodata_for_missing_record(self, world):
        _, _, resolver, _, _ = world
        result = resolver.resolve("www.mfa.gov.kg", RRType.A, datetime(2019, 1, 1))
        assert result.status is ResolutionStatus.NODATA

    def test_servfail_when_no_nameserver_host_alive(self, world):
        registry, directory, resolver, _, _ = world
        registry.register("dead.gov.kg", ("ns1.gone.example",), "reg", at=T0)
        result = resolver.resolve("www.dead.gov.kg", RRType.A, datetime(2019, 1, 1))
        assert result.status is ResolutionStatus.SERVFAIL

    def test_resolve_a_helper(self, world):
        _, _, resolver, _, _ = world
        assert resolver.resolve_a("mail.mfa.gov.kg", datetime(2019, 1, 1)) == (
            "10.128.0.10",
        )
        assert resolver.resolve_a("nope.example.org", datetime(2019, 1, 1)) == ()


class TestDnssec:
    def test_insecure_without_ds(self, world):
        registry, directory, _, _, _ = world
        status = validate_chain(registry, directory, "mfa.gov.kg", datetime(2019, 1, 1))
        assert status is DnssecStatus.INSECURE

    def test_secure_chain(self, world):
        registry, directory, _, legit, _ = world
        registry.set_ds("mfa.gov.kg", ("ds",), T0)
        legit.sign_zone("mfa.gov.kg", T0)
        status = validate_chain(registry, directory, "mfa.gov.kg", datetime(2019, 1, 1))
        assert status is DnssecStatus.SECURE

    def test_hijack_without_signing_is_bogus(self, world):
        """DS present, rogue host doesn't sign: validating resolvers fail."""
        registry, directory, _, legit, _ = world
        registry.set_ds("mfa.gov.kg", ("ds",), T0)
        legit.sign_zone("mfa.gov.kg", T0)
        status = validate_chain(
            registry, directory, "mfa.gov.kg", datetime(2020, 12, 20, 5)
        )
        assert status is DnssecStatus.BOGUS

    def test_attacker_strips_ds_to_evade(self, world):
        """The real attack: remove DS during the window (Section 2.2)."""
        registry, directory, _, legit, _ = world
        registry.set_ds("mfa.gov.kg", ("ds",), T0)
        legit.sign_zone("mfa.gov.kg", T0)
        registry.remove_ds("mfa.gov.kg", HIJACK_START, HIJACK_END)
        status = validate_chain(
            registry, directory, "mfa.gov.kg", datetime(2020, 12, 20, 5)
        )
        assert status is DnssecStatus.INSECURE  # validates as unsigned
