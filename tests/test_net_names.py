"""Tests for domain-name parsing and the sensitive-name matcher."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.names import (
    SENSITIVE_SUBSTRINGS,
    DomainName,
    is_sensitive_name,
    public_suffix,
    registered_domain,
    sensitive_substring,
    subdomain_labels,
)


class TestSuffixes:
    def test_multi_label_suffixes(self):
        assert public_suffix("mail.mfa.gov.kg") == "gov.kg"
        assert public_suffix("cyta.com.cy") == "com.cy"
        assert public_suffix("kotc.com.kw") == "com.kw"

    def test_single_label_fallback(self):
        assert public_suffix("pch.net") == "net"
        assert public_suffix("netnod.se") == "se"
        assert public_suffix("manchesternh.gov") == "gov"

    def test_registered_domain(self):
        assert registered_domain("mail.mfa.gov.kg") == "mfa.gov.kg"
        assert registered_domain("mfa.gov.kg") == "mfa.gov.kg"
        assert registered_domain("a.b.c.example.com") == "example.com"

    def test_registered_domain_of_bare_suffix(self):
        assert registered_domain("gov.kg") == "gov.kg"
        assert registered_domain("com") == "com"

    def test_subdomain_labels(self):
        assert subdomain_labels("mail.mfa.gov.kg") == ("mail",)
        assert subdomain_labels("a.b.example.com") == ("a", "b")
        assert subdomain_labels("example.com") == ()

    def test_normalization(self):
        assert registered_domain("MAIL.MFA.GOV.KG.") == "mfa.gov.kg"

    def test_rejects_malformed(self):
        for bad in ("", ".", "a..b", "x" * 300):
            with pytest.raises(ValueError):
                registered_domain(bad)


class TestSensitive:
    def test_paper_examples(self):
        # Subdomains from Table 2 of the paper.
        for fqdn in (
            "mail.mfa.gov.kg",
            "webmail.mofa.gov.ae",
            "advpn.adpolice.gov.ae",
            "owa.e-albania.al",
            "sslvpn.gov.cy",
            "keriomail.pch.net",
            "dnsnodeapi.netnod.se",  # "api" substring
            "mail2010.kotc.com.kw",
            "pop3.mfa.gr",
            "connect.ocom.com",
        ):
            assert is_sensitive_name(fqdn), fqdn

    def test_registered_domain_label_counts(self):
        # webmail.gov.cy: the registrable label itself is sensitive.
        assert is_sensitive_name("webmail.gov.cy")
        assert is_sensitive_name("owa.gov.cy")

    def test_non_sensitive(self):
        assert not is_sensitive_name("www.example.com")
        assert not is_sensitive_name("example.com")
        assert not is_sensitive_name("static.cdn77.org")

    def test_substring_semantics(self):
        # Substring, not whole-label, matching (the paper's rule).
        assert sensitive_substring("mymail2.example.com") == "mail"
        assert sensitive_substring("intranet.ais.gov.vn") == "intranet"

    def test_bare_suffix_never_sensitive(self):
        assert not is_sensitive_name("gov.kg")

    @given(st.sampled_from(SENSITIVE_SUBSTRINGS))
    def test_every_listed_substring_matches_as_label(self, substring):
        assert is_sensitive_name(f"{substring}.example.com")


class TestDomainName:
    def test_accessors(self):
        name = DomainName("Mail.MFA.gov.kg")
        assert name.fqdn == "mail.mfa.gov.kg"
        assert name.registered_domain == "mfa.gov.kg"
        assert name.public_suffix == "gov.kg"
        assert name.subdomain == "mail"
        assert name.is_sensitive
        assert not name.is_registered_domain

    def test_subdomain_relation(self):
        name = DomainName("mail.mfa.gov.kg")
        assert name.is_subdomain_of("mfa.gov.kg")
        assert name.is_subdomain_of(DomainName("gov.kg"))
        assert not name.is_subdomain_of("fa.gov.kg")

    def test_child(self):
        assert DomainName("example.com").child("mail").fqdn == "mail.example.com"
