"""Tests for the naive rule-based detectors (stage-value comparison)."""

from repro.baseline.naive import (
    NaiveResult,
    flag_all_transients,
    flag_shortlisted,
    format_comparison,
)


class TestScoring:
    def test_score_arithmetic(self):
        result = NaiveResult("x", frozenset({"a.com", "b.com", "c.com"}))
        precision, recall, fp = result.score({"a.com", "d.com"})
        assert precision == 1 / 3
        assert recall == 0.5
        assert fp == 2

    def test_empty_flagged(self):
        precision, recall, fp = NaiveResult("x", frozenset()).score({"a.com"})
        assert (precision, recall, fp) == (1.0, 0.0, 0)


class TestNaiveDetectors:
    def test_all_transients_flags_victim_and_more(self, small_study):
        result = flag_all_transients(small_study.scan, small_study.periods)
        truth = small_study.ground_truth.domains()
        assert truth <= result.flagged
        # Without the heuristics, benign lookalikes get flagged too.
        _, recall, _ = result.score(truth)
        assert recall == 1.0

    def test_shortlist_is_a_subset_of_all_transients(self, small_study):
        everything = flag_all_transients(small_study.scan, small_study.periods)
        shortlisted = flag_shortlisted(
            small_study.scan, small_study.periods, small_study.as2org
        )
        assert shortlisted.flagged <= everything.flagged

    def test_stage_precision_is_monotone(self, paper, paper_report):
        """Each stage of the funnel improves (or preserves) precision:
        all-transients <= shortlist <= full pipeline."""
        truth = paper.ground_truth.domains()
        everything = flag_all_transients(paper.scan, paper.periods)
        shortlisted = flag_shortlisted(paper.scan, paper.periods, paper.as2org)
        pipeline = NaiveResult(
            "full-pipeline", frozenset(f.domain for f in paper_report.findings)
        )
        p_all, _, _ = everything.score(truth)
        p_short, _, _ = shortlisted.score(truth)
        p_full, r_full, fp_full = pipeline.score(truth)
        assert p_all <= p_short <= p_full
        assert p_full == 1.0 and fp_full == 0

    def test_rendering(self, small_study):
        results = [flag_all_transients(small_study.scan, small_study.periods)]
        text = format_comparison(results, small_study.ground_truth.domains())
        assert "all-transients" in text
        assert "precision" in text
