"""Tests for the ML-classifier baseline (features, logistic regression,
end-to-end training on a study)."""

import numpy as np
import pytest

from repro.baseline.features import FEATURE_NAMES, domain_features
from repro.baseline.logreg import LogisticRegression
from repro.baseline.model import compare_methods, train_baseline


class TestLogisticRegression:
    def test_learns_separable_data(self):
        rng = np.random.default_rng(0)
        n = 400
        x = rng.normal(size=(n, 3))
        labels = (x[:, 0] + 2 * x[:, 1] > 0).astype(int)
        model = LogisticRegression(iterations=3000)
        model.fit(x, labels)
        accuracy = (model.predict(x) == labels).mean()
        assert accuracy > 0.95

    def test_class_weighting_handles_imbalance(self):
        rng = np.random.default_rng(1)
        negatives = rng.normal(loc=0.0, size=(500, 2))
        positives = rng.normal(loc=2.5, size=(10, 2))
        x = np.vstack([negatives, positives])
        labels = np.array([0] * 500 + [1] * 10)
        model = LogisticRegression(iterations=3000)
        model.fit(x, labels)
        recall = model.predict(positives).mean()
        assert recall >= 0.8

    def test_constant_feature_does_not_crash(self):
        x = np.column_stack([np.ones(50), np.arange(50)])
        labels = (np.arange(50) > 25).astype(int)
        LogisticRegression(iterations=500).fit(x, labels)

    def test_validates_inputs(self):
        model = LogisticRegression()
        with pytest.raises(ValueError):
            model.fit(np.zeros((5, 2)), np.array([0, 1, 2, 0, 1]))
        with pytest.raises(ValueError):
            model.fit(np.zeros(5), np.zeros(5))
        with pytest.raises(RuntimeError):
            model.predict_proba(np.zeros((1, 2)))

    def test_probabilities_bounded(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 2)) * 100
        labels = (x[:, 0] > 0).astype(int)
        model = LogisticRegression().fit(x, labels)
        probabilities = model.predict_proba(x)
        assert np.all((probabilities >= 0) & (probabilities <= 1))


class TestFeatures:
    def test_feature_vector_shape(self, small_study):
        period = small_study.periods[1]
        features = domain_features(
            "example-ministry.gr", small_study.scan, small_study.pdns, period
        )
        assert len(features) == len(FEATURE_NAMES)
        assert all(isinstance(v, float) for v in features)

    def test_attack_period_features_differ_from_benign(self, small_study):
        period = small_study.periods[1]  # the hijack period (Aug 2018)
        victim = domain_features(
            "example-ministry.gr", small_study.scan, small_study.pdns, period
        )
        by_name = dict(zip(FEATURE_NAMES, victim))
        assert by_name["n_deployments"] >= 2
        assert by_name["n_countries"] >= 2
        assert by_name["has_sensitive_san"] == 1.0

    def test_unknown_domain_features_are_zeroish(self, small_study):
        period = small_study.periods[0]
        features = domain_features(
            "never-seen.example", small_study.scan, small_study.pdns, period
        )
        assert dict(zip(FEATURE_NAMES, features))["n_deployments"] == 0.0


class TestTrainedBaseline:
    def test_baseline_flags_the_victim(self, small_study):
        classifier = train_baseline(
            small_study.scan, small_study.pdns, small_study.periods,
            small_study.ground_truth,
        )
        flagged = classifier.flagged_domains()
        assert "example-ministry.gr" in flagged

    def test_comparison_rows(self, small_study):
        truth = small_study.ground_truth.domains()
        with pytest.warns(DeprecationWarning, match="score_sets"):
            rows = compare_methods(
                flagged={"example-ministry.gr", "bg000001.com"},
                pipeline_found={"example-ministry.gr"},
                truth=truth,
                all_domains=set(small_study.scan.domains()),
            )
        baseline_row = next(r for r in rows if r.method == "ml-baseline")
        pipeline_row = next(r for r in rows if r.method == "pipeline")
        assert baseline_row.recall == 1.0
        assert baseline_row.precision == 0.5
        assert pipeline_row.precision == 1.0
        assert pipeline_row.f1 == 1.0
