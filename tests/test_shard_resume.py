"""Crash/resume integration: per-shard products survive a killed run.

A shard-partitioned pool run with ``--shard-cache`` streams each
completed shard's products into the stage cache as it lands.  These
tests kill such a run mid-stage with injected worker crashes (reusing
:mod:`repro.faults`'s crash channel), then re-run clean against the
same cache root and pin the recovery contract:

* the final report is byte-identical to the pinned golden (the shards
  banked by the dead run are semantically invisible);
* the run's metrics — and the ledger record built from them — show
  exactly the remaining shards recomputed (``shards.resumed`` +
  ``shards.computed`` == ``shards.total``);
* the resume manifest under the cache root maps ordinals to shard keys.
"""

from __future__ import annotations

import pytest

from repro.cache import ResumeManifest, StageCache
from repro.core.pipeline import HijackPipeline
from repro.exec import ProcessPoolBackend
from repro.faults import FaultPlan, FaultSpec
from repro.faults.errors import RetryBudgetExceeded
from repro.io.golden import encode_report

from tests.test_golden_reports import _golden_text, _study

#: Deterministic crash geometry: with this plan over the seed-7 golden
#: study (8 deployment shards, 2 workers), shard 3 exhausts its single
#: retry after three earlier shards have already been banked.
CRASH_SPEC = FaultSpec(worker_crash=0.4, max_retries=1)
CRASH_PLAN_SEED = 3
STUDY_SEED = 7


def _sharded_backend(**kwargs) -> ProcessPoolBackend:
    return ProcessPoolBackend(
        jobs=2, partition="shard", shard_cache=True, **kwargs
    )


def _crash_run(cache: StageCache) -> None:
    plan = FaultPlan(spec=CRASH_SPEC, seed=CRASH_PLAN_SEED)
    pipeline = HijackPipeline.from_study(_study(STUDY_SEED), faults=plan)
    with pytest.raises(RetryBudgetExceeded):
        pipeline.run(_sharded_backend(), cache=cache)


def test_crashed_run_banks_completed_shards(tmp_path):
    cache = StageCache(tmp_path / "cache")
    _crash_run(cache)
    assert cache.counters.stores > 0, "no shard products were banked"
    # The resume directory exists and carries at least one manifest
    # mapping shard ordinals to their cache keys.
    manifests = list((tmp_path / "cache" / "resume").glob("*.json"))
    assert manifests, "no resume manifest was written"


def test_clean_rerun_resumes_and_matches_golden(tmp_path):
    golden = _golden_text(STUDY_SEED)
    cache = StageCache(tmp_path / "cache")
    _crash_run(cache)
    banked = cache.counters.stores

    # Clean re-run (no worker faults) against the same cache root: the
    # banked shards are resumed, only the remainder recomputed, and the
    # report is byte-identical to the pinned golden.
    rerun_cache = StageCache(tmp_path / "cache")
    pipeline = HijackPipeline.from_study(_study(STUDY_SEED))
    report, metrics = pipeline.profile(_sharded_backend(), cache=rerun_cache)
    assert encode_report(report) == golden

    counters = metrics.metrics["counters"]
    assert counters["shards.resumed"] == banked
    assert counters["shards.resumed"] > 0
    assert (
        counters["shards.computed"]
        == counters["shards.total"] - counters["shards.resumed"]
    )


def test_ledger_records_resumed_shard_counters(tmp_path):
    """The durable record of a resumed run carries the shard economics —
    how much of the dead run's work was salvaged is auditable later."""
    from repro.obs import RunLedger

    cache = StageCache(tmp_path / "cache")
    _crash_run(cache)

    ledger = RunLedger(tmp_path / "ledger")
    report, _metrics = HijackPipeline.from_study(_study(STUDY_SEED)).profile(
        _sharded_backend(), cache=StageCache(tmp_path / "cache"), ledger=ledger
    )
    assert encode_report(report) == _golden_text(STUDY_SEED)

    record = ledger.load(ledger.latest().run_id)
    counters = record.metrics["counters"]
    assert counters["shards.resumed"] > 0
    assert (
        counters["shards.computed"]
        == counters["shards.total"] - counters["shards.resumed"]
    )


def test_resume_manifest_maps_ordinals_to_shard_keys(tmp_path):
    cache = StageCache(tmp_path / "cache")
    _crash_run(cache)
    manifest = ResumeManifest(cache.root)
    fingerprints = [p.stem for p in (cache.root / "resume").glob("*.json")]
    assert fingerprints
    completed = manifest.completed(fingerprints[0])
    assert completed, "manifest holds no completed shards"
    assert all(isinstance(k, int) for k in completed)
    assert all(isinstance(v, str) and len(v) == 48 for v in completed.values())


def test_spawn_pool_rebuild_survives_crashes_and_matches_golden(tmp_path):
    """Under spawn, replacement workers after injected crashes reattach
    to the parent's shared-memory input image (never a re-pickle), and
    the retried run still reproduces the golden bytes."""
    plan = FaultPlan(spec=FaultSpec(worker_crash=0.3, max_retries=6), seed=5)
    pipeline = HijackPipeline.from_study(_study(STUDY_SEED), faults=plan)
    backend = ProcessPoolBackend(jobs=2, partition="shard", start_method="spawn")
    report = pipeline.run(backend)
    assert encode_report(report) == _golden_text(STUDY_SEED)
