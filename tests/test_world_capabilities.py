"""Tests for the three capability-development paths (Section 3).

All three paths — account theft, registrar compromise, registry
compromise — must produce the same observable attack and the same
detection outcome; what differs is the access used.
"""

from datetime import date, datetime

import pytest

from repro.core.types import DetectionType, Verdict
from repro.world.attacker import (
    AttackerProfile,
    CampaignMode,
    CampaignSpec,
    Capability,
    run_campaign,
)
from repro.world.entities import Sector
from repro.world.sim import run_study
from repro.world.world import World


def build_world(capability: Capability):
    world = World(seed=17, start=date(2019, 1, 1), end=date(2019, 12, 31))
    provider = world.add_provider("victim-isp", 65001, [("10.128.0.0/16", "GR")])
    attacker_provider = world.add_provider("bullet", 64666, [("203.0.113.0/24", "NL")])
    victim = world.setup_domain("ministry.gr", provider, services=("www", "mail"))
    spec = CampaignSpec(
        victim=victim,
        sector=Sector.GOVERNMENT_MINISTRY,
        victim_cc="GR",
        mode=CampaignMode.T1,
        expected_detection=DetectionType.T1,
        hijack_date=date(2019, 8, 10),
        attacker=AttackerProfile(name="actor", ns_domain="rogue.net"),
        attacker_provider=attacker_provider,
        target_subdomain="mail",
        ca_name="Let's Encrypt",
        capability=capability,
    )
    record = run_campaign(world, spec)
    return world, victim, record


@pytest.mark.parametrize(
    "capability", [Capability.ACCOUNT, Capability.REGISTRAR, Capability.REGISTRY]
)
class TestCapabilityPaths:
    def test_hijack_window_works(self, capability):
        world, victim, record = build_world(capability)
        hijack_instant = datetime(2019, 8, 10, 6, 0)
        assert world.resolver.resolve_a("mail.ministry.gr", hijack_instant) == record.attacker_ips
        assert world.resolver.resolve_a("mail.ministry.gr", datetime(2019, 9, 1)) == victim.ips

    def test_certificate_obtained(self, capability):
        _, _, record = build_world(capability)
        assert record.crtsh_id > 0
        assert record.ca == "Let's Encrypt"

    def test_pipeline_detects_identically(self, capability):
        """Detection is capability-blind: a third party sees the same
        side effects regardless of which upstream entity was compromised."""
        world, _, _ = build_world(capability)
        report = run_study(world).run_pipeline()
        finding = report.finding_for("ministry.gr")
        assert finding is not None
        assert finding.verdict is Verdict.HIJACKED
        assert finding.detection is DetectionType.T1


class TestCapabilityDifferences:
    def test_registrar_path_leaves_registrar_compromised(self):
        world, victim, _ = build_world(Capability.REGISTRAR)
        # Privileged updates now work for ANY domain at that registrar.
        other = world.setup_domain(
            "bystander.gr", world.providers[65001], services=("www",)
        )
        victim.registrar.privileged_update(
            "bystander.gr", ("ns1.rogue.net",), start=datetime(2019, 10, 1)
        )
        registry = world.registry_for("bystander.gr")
        assert registry.delegation_at("bystander.gr", datetime(2019, 11, 1)) == (
            "ns1.rogue.net",
        )

    def test_account_path_respects_other_accounts(self):
        world, victim, _ = build_world(Capability.ACCOUNT)
        from repro.dns.registrar import RegistrarError

        with pytest.raises(RegistrarError):
            victim.registrar.privileged_update(
                "ministry.gr", ("ns1.rogue.net",), start=datetime(2019, 10, 1)
            )
