"""The ``repro.obs`` observability layer.

Covers the PR's contracts: the tracer builds a run → stage → task-chunk
span tree and exports valid Chrome trace-event JSON; a disabled tracer
is a no-op; the metrics registry counts, merges, and drains correctly
across the worker boundary; and every identified domain carries a
provenance trail that survives the findings JSONL round trip.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.exec import ProcessPoolBackend, SerialBackend
from repro.obs import (
    EVIDENCE_KINDS,
    NULL_TRACER,
    EvidenceRef,
    FunnelTransition,
    MetricsRegistry,
    Tracer,
    drain_worker_snapshot,
    format_provenance,
    get_registry,
    mark_worker,
    set_registry,
    transitions_from_dicts,
    transitions_to_dicts,
)
from repro.obs.memory import current_rss_bytes
from repro.obs.metrics import BUCKET_BOUNDS


# ---------------------------------------------------------------------------
# tracer


class TestTracer:
    def test_span_nesting_records_parent_ids(self):
        tracer = Tracer()
        with tracer.span("run", category="run") as run:
            with tracer.span("classify", category="stage") as stage:
                assert stage.parent_id == run.span_id
        spans = tracer.spans
        assert [s.name for s in spans] == ["classify", "run"]  # completion order
        assert spans[1].parent_id is None
        assert all(s.end >= s.start for s in spans)

    def test_event_attaches_to_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("run", category="run"):
            with tracer.span("inspect", category="stage"):
                tracer.event("retry", kernel="inspect", attempt=1)
        stage = next(s for s in tracer.spans if s.name == "inspect")
        assert [e.name for e in stage.events] == ["retry"]
        assert stage.events[0].attrs == {"kernel": "inspect", "attempt": 1}
        run = next(s for s in tracer.spans if s.name == "run")
        assert run.events == []

    def test_task_span_grafts_under_open_stage(self):
        tracer = Tracer()
        with tracer.span("run", category="run"):
            with tracer.span("classify", category="stage") as stage:
                tracer.add_task_span("chunk:classify", 1.0, 2.5, pid=4242, items=7)
        task = next(s for s in tracer.spans if s.category == "task")
        assert task.parent_id == stage.span_id
        assert task.pid == 4242
        assert task.duration == pytest.approx(1.5)
        assert task.attrs == {"items": 7}
        assert tracer.worker_pids() == {4242}

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        with tracer.span("run", category="run") as span:
            assert span is None
            tracer.event("retry")
            tracer.add_task_span("chunk", 0.0, 1.0, pid=1)
        assert tracer.spans == []
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.spans == []

    def test_jsonl_export_is_one_parseable_line_per_span(self):
        tracer = Tracer()
        with tracer.span("run", category="run"):
            with tracer.span("stage", category="stage"):
                pass
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 2
        rows = [json.loads(line) for line in lines]
        assert {row["category"] for row in rows} == {"run", "stage"}
        assert all(row["dur_us"] >= 0 for row in rows)
        assert min(row["ts_us"] for row in rows) == 0.0

    def test_chrome_export_shape(self):
        tracer = Tracer()
        with tracer.span("run", category="run", backend="serial"):
            with tracer.span("inspect", category="stage"):
                tracer.event("retry", attempt=2)
                tracer.add_task_span("chunk:inspect", 0.0, 0.1, pid=999)
        data = tracer.to_chrome()
        events = data["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"run", "inspect", "chunk:inspect"}
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["pid"] for e in metadata} == {os.getpid(), 999}

    def test_write_exports_to_disk(self, tmp_path):
        tracer = Tracer()
        with tracer.span("run", category="run"):
            pass
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.spans.jsonl"
        tracer.write_chrome(chrome)
        tracer.write_jsonl(jsonl)
        assert json.loads(chrome.read_text())["traceEvents"]
        assert json.loads(jsonl.read_text().splitlines()[0])["name"] == "run"


# ---------------------------------------------------------------------------
# metrics registry


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("a.hits")
        registry.inc("a.hits", 4)
        registry.set_gauge("a.level", 2.0)
        registry.set_gauge("a.level", 7.0)
        assert registry.counter("a.hits") == 5
        assert registry.counter("missing") == 0
        assert registry.gauge("a.level") == 7.0
        assert registry.gauge("missing") is None

    def test_histogram_buckets_account_for_every_observation(self):
        registry = MetricsRegistry()
        for value in (0.0001, 0.003, 0.2, 99.0):  # last lands in +inf slot
            registry.observe("k.seconds", value)
        data = registry.histogram("k.seconds")
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(99.2031)
        assert data["min"] == pytest.approx(0.0001)
        assert data["max"] == pytest.approx(99.0)
        assert len(data["buckets"]) == len(BUCKET_BOUNDS) + 1
        assert sum(data["buckets"]) == data["count"]
        assert data["buckets"][-1] == 1

    def test_snapshot_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2)
        a.observe("h", 0.01)
        a.set_gauge("g", 1.0)
        b.inc("n", 3)
        b.inc("only_b")
        b.observe("h", 0.02)
        b.set_gauge("g", 5.0)
        a.merge(b.snapshot())
        assert a.counter("n") == 5
        assert a.counter("only_b") == 1
        assert a.histogram("h")["count"] == 2
        assert a.gauge("g") == 5.0  # last write wins

    def test_drain_resets_and_returns_none_when_empty(self):
        registry = MetricsRegistry()
        assert registry.drain() is None
        registry.inc("x")
        snapshot = registry.drain()
        assert snapshot["counters"] == {"x": 1}
        assert registry.empty
        assert registry.drain() is None

    def test_parent_process_never_drains_the_run_registry(self):
        """run_inline chunks must not ship deltas the reducer would
        merge back into the same registry (double counting)."""
        previous = get_registry()
        try:
            registry = set_registry(MetricsRegistry())
            registry.inc("stage.items", 10)
            assert drain_worker_snapshot() is None
            assert registry.counter("stage.items") == 10  # untouched
        finally:
            set_registry(previous)

    def test_marked_worker_drains_per_chunk_deltas(self):
        previous = get_registry()
        try:
            set_registry(MetricsRegistry())  # shed counts from other tests
            mark_worker()
            get_registry().inc("chunk.items", 3)
            snapshot = drain_worker_snapshot()
            assert snapshot["counters"] == {"chunk.items": 3}
            # Counters are per-chunk deltas, never totals.  Each drain
            # also stamps the worker's instantaneous resident set, so
            # on Linux a quiet chunk still ships that one gauge.
            second = drain_worker_snapshot()
            if current_rss_bytes() is None:  # pragma: no cover - non-Linux
                assert second is None
            else:
                assert second["counters"] == {}
                assert set(second["gauges"]) == {"workers.rss_bytes"}
        finally:
            set_registry(previous)


# ---------------------------------------------------------------------------
# provenance


class TestProvenance:
    def test_evidence_ref_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            EvidenceRef(kind="hearsay", ref="x")

    def test_transitions_round_trip_through_dicts(self):
        trail = (
            FunnelTransition(
                stage="inspect",
                outcome="HIJACKED (T1)",
                rationale="corroborated",
                evidence=(
                    EvidenceRef("pdns", "a.example NS evil.net", "seen twice"),
                    EvidenceRef("ct", "crt.sh #7"),
                ),
            ),
        )
        assert transitions_from_dicts(transitions_to_dicts(trail)) == trail

    def test_format_provenance_renders_every_transition(self):
        trail = (
            FunnelTransition(
                stage="classify",
                outcome="TRANSIENT (period 2)",
                rationale="brief excursion",
                evidence=(EvidenceRef("scan", "2018-09-16 1.2.3.4", "AS1 NL"),),
            ),
        )
        text = format_provenance("victim.example", trail)
        assert text.startswith("provenance: victim.example")
        assert "[classify] TRANSIENT (period 2)" in text
        assert "why: brief excursion" in text
        assert "scan     2018-09-16 1.2.3.4  (AS1 NL)" in text

    def test_empty_trail_renders_placeholder(self):
        assert "no provenance" in format_provenance("x.example", ())


class TestPipelineProvenance:
    def test_direct_finding_carries_full_funnel_trail(self, small_report):
        finding = small_report.finding_for("example-ministry.gr")
        stages = [t.stage for t in finding.provenance]
        assert stages[:3] == ["classify", "shortlist", "inspect"]
        assert stages[-1] == "assemble"
        for transition in finding.provenance:
            assert transition.rationale
            for ref in transition.evidence:
                assert ref.kind in EVIDENCE_KINDS
        inspect = finding.provenance[2]
        assert any(ref.kind in ("pdns", "ct") for ref in inspect.evidence)
        assemble = finding.provenance[-1]
        assert all(ref.kind == "routing" for ref in assemble.evidence)

    def test_pivot_findings_carry_pivot_trails(self, paper_report):
        pivots = [
            f for f in paper_report.findings
            if f.provenance and f.provenance[0].stage == "pivot"
        ]
        assert pivots, "the paper scenario always finds pivot victims"
        for finding in pivots:
            assert [t.stage for t in finding.provenance] == ["pivot", "assemble"]
            assert any(r.kind == "pdns" for r in finding.provenance[0].evidence)

    def test_provenance_survives_findings_round_trip(self, small_report, tmp_path):
        from repro.io import load_findings, save_findings

        path = tmp_path / "findings.jsonl"
        save_findings(small_report.findings, path)
        loaded = load_findings(path)
        assert [f.provenance for f in loaded] == [
            f.provenance for f in small_report.findings
        ]


# ---------------------------------------------------------------------------
# end-to-end: traced + metered runs


@pytest.fixture(scope="module")
def traced_serial(small_study):
    tracer = Tracer()
    report, metrics = small_study.profile_pipeline(
        backend=SerialBackend(), tracer=tracer
    )
    return report, metrics, tracer


class TestExecutorObservability:
    def test_span_tree_covers_run_stages_and_chunks(self, traced_serial):
        _report, _metrics, tracer = traced_serial
        spans = tracer.spans
        runs = [s for s in spans if s.category == "run"]
        assert len(runs) == 1 and runs[0].parent_id is None
        stages = [s for s in spans if s.category == "stage"]
        assert {s.parent_id for s in stages} == {runs[0].span_id}
        stage_ids = {s.span_id for s in stages}
        tasks = [s for s in spans if s.category == "task"]
        assert tasks and all(s.parent_id in stage_ids for s in tasks)

    def test_manifest_embeds_merged_metrics(self, traced_serial):
        _report, metrics, _tracer = traced_serial
        counters = metrics.metrics["counters"]
        assert counters["inspection.inspected"] >= 1
        assert counters["inspection.pdns_lookups"] >= 1
        gauges = metrics.metrics["gauges"]
        assert gauges["report.findings"] == len(_report.findings)
        histograms = metrics.metrics["histograms"]
        assert histograms["kernel.classify.seconds"]["count"] >= 1
        assert histograms["kernel.inspect.seconds"]["count"] >= 1

    def test_untraced_profile_embeds_metrics_too(self, small_study):
        _report, metrics = small_study.profile_pipeline(backend=SerialBackend())
        assert metrics.metrics["counters"]["inspection.inspected"] >= 1

    def test_pool_metrics_match_serial_and_spans_cross_pids(
        self, small_study, traced_serial
    ):
        """Worker-side counts ride the TaskEvent return path home."""
        _r, serial_metrics, _t = traced_serial
        tracer = Tracer()
        _report, pool_metrics = small_study.profile_pipeline(
            backend=ProcessPoolBackend(jobs=2), tracer=tracer
        )
        assert pool_metrics.metrics["counters"] == serial_metrics.metrics["counters"]
        assert any(pid != os.getpid() for pid in tracer.worker_pids())
