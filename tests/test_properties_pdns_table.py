"""Differential property tests: columnar pDNS table vs the row path.

Arbitrary observation histories — several rrnames across registered
domains (including a multi-label co.uk suffix and an irregular,
unparsable owner name), all record types, overlapping date spans — are
aggregated into a :class:`PassiveDNSDatabase`, and every query the
inspection stage makes is answered twice: through the
:class:`~repro.pdns.table.PdnsTable` CSR kernels and through the
original linear reference implementations.  The answers must be
identical, including ordering.  The suite also pins the io round-trip
and the ``select()`` re-interning invariant (a degraded view's ids equal
a fresh build's) that make table row ids safe cache currency.
"""

from datetime import date, timedelta

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.records import RRType
from repro.io.datasets import load_pdns, save_pdns
from repro.net.timeline import DateInterval
from repro.pdns.database import PassiveDNSDatabase
from repro.pdns.table import PdnsTable

BASE = date(2019, 1, 1)

#: Owner names spanning the tricky cases: plain subdomains, an apex, a
#: multi-label public suffix (beta.co.uk), and an irregular name whose
#: registered domain is unparsable (empty label) — the linear path
#: happily aggregates it, so the table must answer for it too.
RRNAMES = (
    "www.alpha.com",
    "ns1.alpha.com",
    "alpha.com",
    "login.beta.co.uk",
    "beta.co.uk",
    "bad..name",
)
RTYPES = (RRType.A, RRType.NS, RRType.CNAME)
RDATA = ("10.0.0.1", "10.0.0.2", "ns.evil.net", "ns.good.org")

# One observation run: (rrname, rtype, rdata, first day index, span).
_observation = st.tuples(
    st.integers(min_value=0, max_value=len(RRNAMES) - 1),
    st.integers(min_value=0, max_value=len(RTYPES) - 1),
    st.integers(min_value=0, max_value=len(RDATA) - 1),
    st.integers(min_value=0, max_value=90),
    st.integers(min_value=1, max_value=30),
)
_history = st.lists(_observation, min_size=1, max_size=20)

_window = st.one_of(
    st.none(),
    st.tuples(
        st.integers(min_value=0, max_value=100),
        st.one_of(st.none(), st.integers(min_value=0, max_value=120)),
    ),
)


def _database_from(history) -> PassiveDNSDatabase:
    db = PassiveDNSDatabase()
    for name_sel, rtype_sel, rdata_sel, start, span in history:
        day = BASE + timedelta(days=start)
        db.add_observation(RRNAMES[name_sel], RTYPES[rtype_sel], RDATA[rdata_sel], day)
        db.add_observation(
            RRNAMES[name_sel],
            RTYPES[rtype_sel],
            RDATA[rdata_sel],
            day + timedelta(days=span),
        )
    return db


def _interval(window) -> DateInterval | None:
    if window is None:
        return None
    start, end = window
    return DateInterval(
        BASE + timedelta(days=start),
        None if end is None else BASE + timedelta(days=max(start, end)),
    )


def _keyed(records):
    return [
        (r.rrname, r.rtype, r.rdata, r.first_seen, r.last_seen, r.count)
        for r in records
    ]


class TestQueryEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(_history, _window)
    def test_query_name_matches_linear(self, history, window):
        """Same rows either way, and the table's order satisfies the
        documented ``(first_seen, rdata)`` sort.  The linear reference
        leaves cross-rtype ties in set-iteration order, so tie order is
        compared as a multiset, not positionally."""
        db = _database_from(history)
        interval = _interval(window)
        for rrname in RRNAMES:
            for rtype in (None, *RTYPES):
                via_table = _keyed(db.query_name(rrname, rtype, interval))
                via_linear = _keyed(
                    db._query_name_linear(rrname.lower(), rtype, interval)
                )
                assert sorted(map(repr, via_table)) == sorted(map(repr, via_linear))
                sort_keys = [(first, rdata) for _, _, rdata, first, _, _ in via_table]
                assert sort_keys == sorted(sort_keys)

    @settings(max_examples=50, deadline=None)
    @given(_history, _window)
    def test_query_domain_matches_linear(self, history, window):
        """The per-domain CSR slice (plus the irregular-row merge) equals
        the linear suffix scan, for subdomain, apex, multi-label-suffix,
        and bare-public-suffix queries alike."""
        db = _database_from(history)
        interval = _interval(window)
        for query in (
            "www.alpha.com",
            "alpha.com",
            "login.beta.co.uk",
            "beta.co.uk",
            "co.uk",          # bare public suffix: linear fallback
            "missing.example.org",
        ):
            via_table = _keyed(db.query_domain(query, interval))
            via_linear = _keyed(db._query_domain_linear(_base_of(query), interval))
            assert sorted(map(repr, via_table)) == sorted(map(repr, via_linear))
            sort_keys = [
                (rrname, first, rdata)
                for rrname, _, rdata, first, _, _ in via_table
            ]
            assert sort_keys == sorted(sort_keys)

    @settings(max_examples=30, deadline=None)
    @given(_history)
    def test_histories_toggle_identically(self, history):
        """a_history / ns_history answer identically with the table off."""
        db = _database_from(history)
        legacy = _database_from(history)
        legacy.use_table = False
        for rrname in RRNAMES:
            assert _keyed(db.a_history(rrname)) == _keyed(legacy.a_history(rrname))
            if rrname != "bad..name":  # ns_history resolves a registered domain
                assert _keyed(db.ns_history(rrname)) == _keyed(
                    legacy.ns_history(rrname)
                )


def _base_of(query: str) -> str:
    from repro.net.names import registered_domain

    return registered_domain(query)


class TestRowEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(_history)
    def test_row_dicts_match_all_records(self, history):
        """The canonical column walk equals the aggregated record list —
        same rows, same (rrname, rtype, rdata) order, same aggregates."""
        db = _database_from(history)
        expected = [
            {
                "rrname": r.rrname,
                "rtype": r.rtype.value,
                "rdata": r.rdata,
                "first": r.first_seen.toordinal(),
                "last": r.last_seen.toordinal(),
                "count": r.count,
            }
            for r in db.all_records()
        ]
        assert list(db.table.row_dicts()) == expected

    @settings(max_examples=50, deadline=None)
    @given(_history)
    def test_row_of_inverts_record(self, history):
        db = _database_from(history)
        table = db.table
        for row in range(len(table)):
            record = table.record(row)
            assert table.row_of(record.rrname, record.rtype, record.rdata) == row

    @settings(max_examples=50, deadline=None)
    @given(_history)
    def test_table_rebuilds_after_growth(self, history):
        """Adding observations invalidates the lazy table (version bump):
        queries never answer from a stale snapshot."""
        db = _database_from(history)
        before = len(db.table)
        db.add_observation("late.alpha.com", RRType.A, "10.9.9.9", BASE)
        assert len(db.table) != before or any(
            r["rrname"] == "late.alpha.com" for r in db.table.row_dicts()
        )
        assert _keyed(db.query_name("late.alpha.com")) == _keyed(
            db._query_name_linear("late.alpha.com", None, None)
        )


class TestDegradedRebuild:
    @settings(max_examples=50, deadline=None)
    @given(_history, st.sets(st.integers(min_value=0, max_value=120), max_size=4))
    def test_blackout_view_interns_like_fresh_build(self, history, dark_days):
        """The fault path (without_windows) produces a database whose
        table columns and pool ids equal a table freshly built from the
        surviving aggregates — the cache-safety invariant."""
        db = _database_from(history)
        blackouts = [
            DateInterval(BASE + timedelta(days=d), BASE + timedelta(days=d + 6))
            for d in sorted(dark_days)
        ]
        degraded = db.without_windows(blackouts)
        rebuilt = PdnsTable.from_records(degraded.all_records())
        assert list(degraded.table.row_dicts()) == list(rebuilt.row_dicts())
        for column in ("rrname_id", "rtype_code", "rdata_id", "first_ord", "last_ord"):
            assert getattr(degraded.table, column) == getattr(rebuilt, column)
        assert degraded.table.rrnames == rebuilt.rrnames
        assert degraded.table.rdatas == rebuilt.rdatas

    @settings(max_examples=50, deadline=None)
    @given(_history, st.integers(min_value=1, max_value=3))
    def test_select_reinterns_like_fresh_build(self, history, keep_mod):
        """select() over any row subset re-interns in first-seen order, so
        a derived table equals one built from the surviving records —
        including after a second derivation (double degradation)."""
        db = _database_from(history)
        table = db.table
        kept = [row for row in range(len(table)) if row % keep_mod == 0]
        derived = table.select(kept)
        rebuilt = PdnsTable.from_records([table.record(r) for r in kept])
        assert list(derived.row_dicts()) == list(rebuilt.row_dicts())
        assert derived.rrnames == rebuilt.rrnames
        assert derived.rdatas == rebuilt.rdatas
        # Degrade the already-degraded view again: ids still canonical.
        again = derived.select(range(0, len(derived), 2))
        rebuilt_again = PdnsTable.from_records(
            [derived.record(r) for r in range(0, len(derived), 2)]
        )
        assert list(again.row_dicts()) == list(rebuilt_again.row_dicts())
        assert again.rrnames == rebuilt_again.rrnames


class TestIORoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(_history)
    def test_save_load_preserves_columns_and_queries(self, tmp_path_factory, history):
        db = _database_from(history)
        path = tmp_path_factory.mktemp("pdns") / "pdns.jsonl"
        save_pdns(db, path)
        loaded = load_pdns(path)
        assert list(loaded.table.row_dicts()) == list(db.table.row_dicts())
        assert loaded.table.rrnames == db.table.rrnames
        assert loaded.table.rdatas == db.table.rdatas
        for rrname in RRNAMES:
            assert _keyed(loaded.query_name(rrname)) == _keyed(db.query_name(rrname))


class TestPickleRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(_history)
    def test_worker_rebuild_interns_identical_ids(self, history):
        """Pickling drops the table; the receiving process's lazy rebuild
        interns identical ids (the worker-result safety invariant)."""
        import pickle

        db = _database_from(history)
        original_rows = list(db.table.row_dicts())
        clone = pickle.loads(pickle.dumps(db))
        assert clone._table is None
        assert list(clone.table.row_dicts()) == original_rows
        assert clone.table.rrname_id == db.table.rrname_id
        assert clone.table.rdata_id == db.table.rdata_id
