"""Tests for world-construction helpers not covered elsewhere."""

from datetime import date

import pytest

from repro.net.timeline import DateInterval
from repro.world.world import World


@pytest.fixture
def world():
    return World(seed=31, start=date(2019, 1, 1), end=date(2020, 12, 31))


class TestCertificateHelpers:
    def test_issue_chain_covers_interval(self, world):
        interval = DateInterval(date(2019, 1, 1), date(2020, 12, 31))
        chain = world.issue_chain("Let's Encrypt", ("www.x.com",), interval)
        # 90-day certs over two years: roughly one every 76 days.
        assert 8 <= len(chain) <= 12
        day = interval.start
        from datetime import timedelta

        while day <= interval.end:
            assert any(c.valid_on(day) for c in chain), day
            day += timedelta(days=30)

    def test_issue_chain_rejects_open_interval(self, world):
        with pytest.raises(ValueError):
            world.issue_chain("Let's Encrypt", ("www.x.com",), DateInterval(date(2019, 1, 1)))

    def test_issue_direct_ct_logging_optional(self, world):
        logged = world.issue_direct("DigiCert Inc", ("www.a.com",), date(2019, 2, 1))
        unlogged = world.issue_direct(
            "DigiCert Inc", ("www.b.com",), date(2019, 2, 1), log_to_ct=False
        )
        assert logged.crtsh_id > 0
        assert unlogged.crtsh_id == 0
        assert world.crtsh.search("a.com")
        assert world.crtsh.search("b.com") == []

    def test_cert_at_selects_by_date(self, world):
        provider = world.add_provider("p", 65001, [("10.128.0.0/16", "GR")])
        victim = world.setup_domain("x.gr", provider, ca_name="Let's Encrypt")
        early = victim.cert_at(date(2019, 2, 1))
        late = victim.cert_at(date(2020, 11, 1))
        assert early is not None and late is not None
        assert early.fingerprint != late.fingerprint
        assert victim.cert_at(date(2030, 1, 1)) is None


class TestProviderHelpers:
    def test_extend_provider_registers_tables(self, world):
        world.add_provider("p", 65001, [("10.128.0.0/16", "GR")])
        world.extend_provider(65001, "198.51.100.0/24", "RU")
        assert world.routing.lookup("198.51.100.7") == 65001
        assert world.geo.lookup("198.51.100.7") == "RU"
        assert world.providers[65001].claim("198.51.100.7") == "198.51.100.7"

    def test_extend_unknown_provider_raises(self, world):
        with pytest.raises(KeyError):
            world.extend_provider(4242, "198.51.100.0/24", "RU")

    def test_registrar_reuse(self, world):
        a = world.registrar("r1")
        b = world.registrar("r1")
        assert a is b
        assert world.registrar("r2") is not a


class TestPipelineIdempotence:
    def test_two_runs_identical(self, small_study):
        """The pipeline holds no mutable state between runs."""
        first = small_study.run_pipeline()
        second = small_study.run_pipeline()
        assert [(f.domain, f.detection, f.attacker_ips, f.crtsh_id) for f in first.findings] == [
            (f.domain, f.detection, f.attacker_ips, f.crtsh_id) for f in second.findings
        ]
        assert first.funnel.n_maps == second.funnel.n_maps
        assert first.funnel.prune_reasons == second.funnel.prune_reasons
