"""Property-based tests over the core data structures and invariants.

Random deployment histories are generated as compact "presence specs"
(per-ASN lists of scan-index runs with a certificate id), turned into
annotated records, and pushed through deployment mapping and
classification.  The invariants checked are the ones the methodology's
correctness rests on.
"""

from datetime import date

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deployment import build_deployment_map
from repro.core.patterns import PatternConfig, classify
from repro.core.types import PatternKind
from repro.dns.records import RRType
from repro.net.timeline import TRANSIENT_MAX_DAYS
from repro.pdns.database import PassiveDNSDatabase

from tests.helpers import PERIOD, ScanSketch, make_cert, scan_dates

DATES = scan_dates()

# One deployment's presence: (asn_offset, start_index, length, cert_id).
_presence = st.tuples(
    st.integers(min_value=0, max_value=4),   # asn selector
    st.integers(min_value=0, max_value=24),  # first scan index
    st.integers(min_value=1, max_value=26),  # run length
    st.integers(min_value=0, max_value=3),   # certificate selector
)
_history = st.lists(_presence, min_size=1, max_size=6)


def _sketch_from(history) -> ScanSketch:
    sketch = ScanSketch("prop.com")
    certs = {
        i: make_cert(f"www{i}.prop.com", 100 + i, date(2018, 12, 1)) for i in range(4)
    }
    for asn_sel, start, length, cert_sel in history:
        dates = DATES[start : min(start + length, len(DATES))]
        if not dates:
            continue
        sketch.presence(
            dates, f"10.{asn_sel}.0.1", 1000 + asn_sel, "US", certs[cert_sel]
        )
    return sketch


class TestDeploymentInvariants:
    @settings(max_examples=60)
    @given(_history)
    def test_groups_partition_records(self, history):
        """Every in-period record lands in exactly one deployment group,
        and group dates/ASNs cover exactly the record set."""
        sketch = _sketch_from(history)
        map_ = build_deployment_map("prop.com", sketch.records, PERIOD, DATES)
        record_cells = {(r.scan_date, r.asn) for r in sketch.records}
        group_cells = {
            (g.scan_date, g.asn) for d in map_.deployments for g in d.groups
        }
        assert group_cells == record_cells

    @settings(max_examples=60)
    @given(_history)
    def test_deployments_ordered_and_asn_homogeneous(self, history):
        sketch = _sketch_from(history)
        map_ = build_deployment_map("prop.com", sketch.records, PERIOD, DATES)
        for deployment in map_.deployments:
            dates = deployment.dates()
            assert list(dates) == sorted(dates)
            assert deployment.first_seen <= deployment.last_seen
            assert all(g.asn == deployment.asn for g in deployment.groups)

    @settings(max_examples=60)
    @given(_history)
    def test_presence_bounded(self, history):
        sketch = _sketch_from(history)
        map_ = build_deployment_map("prop.com", sketch.records, PERIOD, DATES)
        assert 0.0 <= map_.presence <= 1.0


class TestClassifierInvariants:
    @settings(max_examples=80)
    @given(_history)
    def test_every_map_gets_exactly_one_kind(self, history):
        sketch = _sketch_from(history)
        map_ = build_deployment_map("prop.com", sketch.records, PERIOD, DATES)
        classification = classify(map_)
        assert classification.kind in PatternKind

    @settings(max_examples=80)
    @given(_history)
    def test_transient_requires_stable_background(self, history):
        """A TRANSIENT verdict always coexists with a stable deployment —
        the definition in Section 4.2.3."""
        sketch = _sketch_from(history)
        map_ = build_deployment_map("prop.com", sketch.records, PERIOD, DATES)
        classification = classify(map_)
        if classification.kind is PatternKind.TRANSIENT:
            assert classification.stable
            assert classification.transients

    @settings(max_examples=80)
    @given(_history)
    def test_transients_respect_threshold(self, history):
        sketch = _sketch_from(history)
        map_ = build_deployment_map("prop.com", sketch.records, PERIOD, DATES)
        classification = classify(map_)
        for transient in classification.transients:
            if classification.kind is PatternKind.TRANSIENT:
                assert transient.span_days <= TRANSIENT_MAX_DAYS

    @settings(max_examples=40)
    @given(_history, st.integers(min_value=7, max_value=183))
    def test_monotone_in_threshold(self, history, threshold):
        """Raising the transient threshold never *removes* a transient
        verdict's transients (it may add more)."""
        sketch = _sketch_from(history)
        map_ = build_deployment_map("prop.com", sketch.records, PERIOD, DATES)
        narrow = classify(map_, PatternConfig(transient_max_days=threshold))
        wide = classify(map_, PatternConfig(transient_max_days=threshold + 30))
        if narrow.kind is PatternKind.TRANSIENT:
            narrow_set = {(t.asn, t.first_seen) for t in narrow.transients}
            wide_set = {(t.asn, t.first_seen) for t in wide.transients}
            assert narrow_set <= wide_set or wide.kind is not PatternKind.TRANSIENT


_pdns_obs = st.tuples(
    st.sampled_from(["mail.a.gov.kg", "www.a.gov.kg", "a.gov.kg"]),
    st.sampled_from([RRType.A, RRType.NS]),
    st.sampled_from(["10.0.0.1", "10.0.0.2", "ns1.a.gov.kg", "203.0.113.5"]),
    st.integers(min_value=0, max_value=400),
)


class TestPdnsInvariants:
    @settings(max_examples=60)
    @given(st.lists(_pdns_obs, min_size=1, max_size=50))
    def test_aggregation_laws(self, observations):
        """first <= last; count equals observation count; spans contain
        every observed day."""
        db = PassiveDNSDatabase()
        expected: dict = {}
        base = date(2020, 1, 1)
        from datetime import timedelta

        for rrname, rtype, rdata, offset in observations:
            day = base + timedelta(days=offset)
            db.add_observation(rrname, rtype, rdata, day)
            key = (rrname, rtype, rdata.lower().rstrip(".") if rtype is RRType.NS else rdata)
            bucket = expected.setdefault(key, [])
            bucket.append(day)

        for record in db.all_records():
            key = (record.rrname, record.rtype, record.rdata)
            days = expected[key]
            assert record.first_seen == min(days)
            assert record.last_seen == max(days)
            assert record.count == len(days)
            assert record.span_days >= 1

    @settings(max_examples=40)
    @given(st.lists(_pdns_obs, min_size=1, max_size=50))
    def test_inverse_index_consistent(self, observations):
        """Everything findable forward is findable through the inverse
        (pivot) index and vice versa."""
        db = PassiveDNSDatabase()
        base = date(2020, 1, 1)
        from datetime import timedelta

        for rrname, rtype, rdata, offset in observations:
            db.add_observation(rrname, rtype, rdata, base + timedelta(days=offset))

        for record in db.all_records():
            forward = db.query_name(record.rrname, record.rtype)
            assert any(r.rdata == record.rdata for r in forward)
            inverse = db.query_rdata(record.rdata, record.rtype)
            assert any(r.rrname == record.rrname for r in inverse)
