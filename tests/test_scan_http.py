"""Tests for the HTTP service-context substrate and content analysis."""

from datetime import date

from repro.analysis.content import compare_pages
from repro.net.timeline import DateInterval
from repro.scan.http import HTTP_CONTEXT_START, HttpContentStore, HttpResponse


class TestHttpResponse:
    def test_login_pages_share_look_not_code(self):
        a = HttpResponse.login_page("Zimbra Web Client", operator="mfa.gov.kg")
        b = HttpResponse.login_page("Zimbra Web Client", operator="other.org")
        assert a.title == b.title
        assert a.forms == b.forms
        assert a.body_fingerprint != b.body_fingerprint

    def test_mimicry_preserves_look_changes_code(self):
        real = HttpResponse.login_page("Zimbra Web Client", operator="mfa.gov.kg")
        fake = real.mimicked_by(attacker="actor")
        assert fake.title == real.title
        assert fake.forms == real.forms
        assert fake.body_fingerprint != real.body_fingerprint

    def test_mimicry_can_inject_scripts(self):
        real = HttpResponse.login_page("Zimbra Web Client", operator="mfa.gov.kg")
        fake = real.mimicked_by(attacker="actor", scripts=("update-mfa.exe",))
        assert "update-mfa.exe" in fake.scripts
        assert "update-mfa.exe" not in real.scripts


class TestContentStore:
    def test_interval_lookup(self):
        store = HttpContentStore()
        page = HttpResponse.login_page("Zimbra Web Client", operator="x")
        store.serve("1.2.3.4", page, DateInterval(date(2020, 12, 1), date(2020, 12, 15)))
        assert store.content_at("1.2.3.4", date(2020, 12, 10)) is page
        assert store.content_at("1.2.3.4", date(2021, 1, 1)) is None
        assert store.content_at("9.9.9.9", date(2020, 12, 10)) is None

    def test_scan_respects_collection_start(self):
        """No HTTP context exists before Censys started collecting it."""
        store = HttpContentStore()
        page = HttpResponse.login_page("Zimbra Web Client", operator="x")
        store.serve("1.2.3.4", page, DateInterval(date(2019, 1, 1), date(2021, 3, 1)))
        assert store.scan(date(2020, 6, 1)) == []
        assert len(store.scan(HTTP_CONTEXT_START)) == 1

    def test_scan_range(self):
        store = HttpContentStore()
        page = HttpResponse.login_page("Zimbra Web Client", operator="x")
        store.serve("1.2.3.4", page, DateInterval(date(2020, 11, 1), date(2020, 12, 31)))
        dates = (date(2020, 10, 1), date(2020, 11, 15), date(2020, 12, 15))
        observations = store.scan_range(dates)
        assert [o.scan_date for o in observations] == [date(2020, 11, 15), date(2020, 12, 15)]


class TestComparison:
    def test_counterfeit_detected(self):
        real = HttpResponse.login_page("Zimbra Web Client", operator="mfa.gov.kg")
        fake = real.mimicked_by(attacker="actor")
        verdict = compare_pages(real, fake, "1.2.3.4", date(2020, 12, 22))
        assert verdict.is_counterfeit
        assert not verdict.delivers_malware

    def test_real_page_is_not_counterfeit(self):
        real = HttpResponse.login_page("Zimbra Web Client", operator="mfa.gov.kg")
        verdict = compare_pages(real, real, "10.0.0.1", date(2020, 12, 22))
        assert not verdict.is_counterfeit
        assert verdict.same_code

    def test_unrelated_page_is_not_counterfeit(self):
        real = HttpResponse.login_page("Zimbra Web Client", operator="mfa.gov.kg")
        other = HttpResponse.login_page("Roundcube Webmail", operator="elsewhere")
        verdict = compare_pages(real, other, "1.2.3.4", date(2020, 12, 22))
        assert not verdict.mimics_look
        assert not verdict.is_counterfeit

    def test_injected_script_flagged(self):
        real = HttpResponse.login_page("Zimbra Web Client", operator="mfa.gov.kg")
        fake = real.mimicked_by(attacker="actor", scripts=("update-mfa.exe",))
        verdict = compare_pages(real, fake, "1.2.3.4", date(2021, 5, 12))
        assert verdict.delivers_malware
        assert verdict.injected_scripts == ("update-mfa.exe",)
