"""Tests for the parameter-sensitivity sweeps."""

from repro.analysis.sweeps import (
    format_sweep,
    sweep_corroboration_window,
    sweep_transient_threshold,
    sweep_visibility_floor,
)


class TestTransientThresholdSweep:
    def test_detection_at_default_threshold(self, small_study):
        result = sweep_transient_threshold(small_study, values=[30, 91, 183])
        by_value = {p.value: p for p in result.points}
        # At the paper's 91-day threshold the hijack is found.
        assert by_value[91.0].hijacked_found == 1
        assert by_value[91.0].recall == 1.0
        assert by_value[91.0].false_positives == 0
        # Wider thresholds never lose it.
        assert by_value[183.0].hijacked_found == 1

    def test_best_point_selection(self, small_study):
        result = sweep_transient_threshold(small_study, values=[91, 183])
        assert result.best().recall == 1.0


class TestVisibilitySweep:
    def test_extreme_floor_loses_victims(self, small_study):
        """Requiring ~perfect presence eventually prunes real victims
        (the paper's bias-toward-stable-deployments caveat)."""
        result = sweep_visibility_floor(small_study, values=[0.8, 0.999])
        by_value = {p.value: p for p in result.points}
        assert by_value[0.8].hijacked_found == 1
        # A 99.9% floor may or may not lose the victim depending on scan
        # noise, but it can never find more than the default.
        assert by_value[0.999].hijacked_found <= by_value[0.8].hijacked_found


class TestWindowSweep:
    def test_tiny_window_loses_corroboration(self, small_study):
        result = sweep_corroboration_window(small_study, values=[3, 30])
        by_value = {p.value: p for p in result.points}
        assert by_value[30.0].hijacked_found == 1
        # The 3-day window can only do worse or equal.
        assert by_value[3.0].hijacked_found <= 1

    def test_rendering(self, small_study):
        result = sweep_corroboration_window(small_study, values=[30])
        text = format_sweep(result)
        assert "window_days" in text
        assert "recall" in text
