"""The run ledger: an append-only, checksummed history of every run.

A long-running detection service is only trustworthy if every run
leaves a durable, comparable record.  The ledger is that record: one
append per pipeline or arena run, written automatically at run end by
the executor, holding the run's key digests (config, fault plan),
per-stage wall/busy times and memory samples, cache accounting, the
metrics-registry snapshot, the canonical report digest, and — for arena
runs — the leaderboard rows.

On-disk layout (schema ``repro-ledger/1``) under ``REPRO_LEDGER_DIR``
(default ``.repro-ledger/``)::

    <root>/index.jsonl             one line per run, append-only
    <root>/records/<aa>/<digest>.json   content-addressed full records

Each index line carries the record's relative path plus a blake2b
checksum of the record file's bytes, so corruption anywhere — a
truncated index line from a crashed append, a bit-flipped or truncated
record file — is a detectable *skip*: the bad entry is evicted from
reads (and its record file unlinked when the checksum fails), never a
crash and never a silently wrong baseline.

The record filename is the digest of the record's canonical JSON, so
identical content dedupes on disk while the index preserves the append
order; ``run_id`` is ``<seq>-<digest prefix>`` which keeps ids unique
even for byte-identical re-runs.

The *ledger key* groups comparable runs: the regression sentinel
(:mod:`repro.obs.sentinel`) builds its rolling baseline from runs with
the candidate's key.  The key folds in the run kind, configuration
digest, backend shape, and the **data-channel** fault digest only —
worker faults (injected crashes/slowdowns) perturb timing but are
required not to change outputs, so a slowdown-injected run lands in the
same key bucket as its clean baseline and the sentinel can flag it.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from dataclasses import dataclass, field, replace
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from repro.io.golden import canonical_json

if TYPE_CHECKING:
    from repro.exec.metrics import RunMetrics
    from repro.faults.plan import FaultPlan

logger = logging.getLogger("repro.obs.ledger")

LEDGER_SCHEMA = "repro-ledger/1"
LEDGER_ENV_VAR = "REPRO_LEDGER_DIR"
DEFAULT_LEDGER_DIR = ".repro-ledger"

_DIGEST_BYTES = 16
_CHECKSUM_BYTES = 16


def _digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=_DIGEST_BYTES).hexdigest()


def _checksum(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=_CHECKSUM_BYTES).hexdigest()


# -- the record ----------------------------------------------------------------


@dataclass
class RunRecord:
    """Everything the ledger keeps about one run."""

    kind: str  # "pipeline" | "arena"
    key: str  # the matching-key digest baselines group by
    label: str  # human-readable run description
    recorded_at: str  # ISO-8601 UTC
    backend: str
    jobs: int
    wall_seconds: float
    stages: list[dict[str, Any]] = field(default_factory=list)
    funnel: dict[str, Any] = field(default_factory=dict)
    cache: dict[str, Any] | None = None
    memory: dict[str, Any] | None = None
    metrics: dict[str, Any] | None = None
    data_quality: dict[str, Any] | None = None
    config_digest: str = ""
    faults_digest: str = ""
    faults: str = ""  # the spec string, for humans
    report_digest: str | None = None
    leaderboard: list[dict[str, Any]] | None = None
    run_id: str = ""  # assigned by append()

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": LEDGER_SCHEMA,
            "run_id": self.run_id,
            "kind": self.kind,
            "key": self.key,
            "label": self.label,
            "recorded_at": self.recorded_at,
            "backend": self.backend,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "stages": self.stages,
            "funnel": self.funnel,
            "cache": self.cache,
            "memory": self.memory,
            "metrics": self.metrics,
            "data_quality": self.data_quality,
            "config_digest": self.config_digest,
            "faults_digest": self.faults_digest,
            "faults": self.faults,
            "report_digest": self.report_digest,
            "leaderboard": self.leaderboard,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> RunRecord:
        if data.get("schema") != LEDGER_SCHEMA:
            raise ValueError(
                f"unsupported ledger record schema {data.get('schema')!r} "
                f"(expected {LEDGER_SCHEMA!r})"
            )
        return cls(
            kind=data["kind"],
            key=data["key"],
            label=data.get("label", ""),
            recorded_at=data["recorded_at"],
            backend=data.get("backend", ""),
            jobs=int(data.get("jobs", 1)),
            wall_seconds=float(data["wall_seconds"]),
            stages=list(data.get("stages", [])),
            funnel=dict(data.get("funnel", {})),
            cache=data.get("cache"),
            memory=data.get("memory"),
            metrics=data.get("metrics"),
            data_quality=data.get("data_quality"),
            config_digest=data.get("config_digest", ""),
            faults_digest=data.get("faults_digest", ""),
            faults=data.get("faults", ""),
            report_digest=data.get("report_digest"),
            leaderboard=data.get("leaderboard"),
            run_id=data.get("run_id", ""),
        )

    # -- derived figures the sentinel and diff views compare -----------------

    def stage(self, name: str) -> dict[str, Any] | None:
        for stage in self.stages:
            if stage.get("name") == name:
                return stage
        return None

    @property
    def peak_rss_bytes(self) -> int | None:
        if not self.memory:
            return None
        value = self.memory.get("peak_rss_bytes")
        return int(value) if isinstance(value, (int, float)) else None

    @property
    def cache_hit_rate(self) -> float | None:
        if not self.cache:
            return None
        probes = self.cache.get("hits", 0) + self.cache.get("misses", 0)
        return self.cache.get("hits", 0) / probes if probes else None


@dataclass(frozen=True, slots=True)
class IndexEntry:
    """One parsed line of ``index.jsonl``."""

    seq: int
    run_id: str
    kind: str
    key: str
    recorded_at: str
    wall_seconds: float
    path: str  # relative to the ledger root
    checksum: str


@dataclass(frozen=True, slots=True)
class LedgerInfo:
    """The identity material a run hands the executor for its record.

    Built by whoever owns the run's semantics (the pipeline, the arena)
    and threaded to :meth:`PipelineExecutor.execute`, which fills in the
    measured half from the run manifest.
    """

    kind: str
    key: str
    label: str
    config_digest: str = ""
    faults_digest: str = ""
    faults: str = ""


# -- key derivation ------------------------------------------------------------


def data_fault_digest(plan: FaultPlan) -> str:
    """Digest of the plan's *data-channel* identity only.

    Worker-channel faults (crashes, slowdowns, retry policy) are
    absorbed by the backends and must not change outputs; excluding
    them keys a slowdown-injected run identically to a clean one, which
    is what lets the sentinel compare the two.  An all-worker (or
    empty) plan normalizes to the empty digest regardless of seed, for
    the same reason an empty plan's seed is normalized in the cache.
    """
    from repro.cache.fingerprint import value_digest

    spec = plan.spec
    data_channels = {
        "drop_weeks": spec.drop_weeks,
        "drop_ports": spec.drop_ports,
        "pdns_blackouts": spec.pdns_blackouts,
        "pdns_blackout_days": spec.pdns_blackout_days,
        "ct_delay_days": spec.ct_delay_days,
        "routing_stale": spec.routing_stale,
    }
    if not any(
        data_channels[name]
        for name in (
            "drop_weeks", "drop_ports", "pdns_blackouts",
            "ct_delay_days", "routing_stale",
        )
    ):
        return ""
    return value_digest({"seed": plan.seed, **data_channels})


def ledger_key(
    kind: str,
    label: str,
    *,
    config_digest: str,
    faults_digest: str,
    backend: str,
    jobs: int,
    extra: Any = None,
) -> str:
    """The matching-key digest comparable runs share.

    ``faults_digest`` should be the :func:`data_fault_digest` so that
    timing-only worker faults do not fragment the baseline.
    """
    from repro.cache.fingerprint import value_digest

    return value_digest(
        {
            "kind": kind,
            "label": label,
            "config": config_digest,
            "faults": faults_digest,
            "backend": backend,
            "jobs": jobs,
            "extra": extra,
        }
    )


def record_from_metrics(metrics: RunMetrics, info: LedgerInfo) -> RunRecord:
    """Assemble a ledger record from a finished run's manifest."""
    return RunRecord(
        kind=info.kind,
        key=info.key,
        label=info.label,
        recorded_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        backend=metrics.backend,
        jobs=metrics.jobs,
        wall_seconds=round(metrics.wall_seconds, 6),
        stages=[stage.to_dict() for stage in metrics.stages],
        funnel=dict(metrics.funnel),
        cache=metrics.cache,
        memory=metrics.memory,
        metrics=metrics.metrics,
        data_quality=metrics.data_quality,
        config_digest=info.config_digest,
        faults_digest=info.faults_digest,
        faults=info.faults,
    )


# -- the store -----------------------------------------------------------------


def ledger_dir_from_env() -> str | None:
    """The environment-configured ledger directory, if any."""
    return os.environ.get(LEDGER_ENV_VAR) or None


class RunLedger:
    """Append-only, checksummed on-disk run history."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root or ledger_dir_from_env() or DEFAULT_LEDGER_DIR)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Entries dropped by the last read because of corruption.
        self.evicted: int = 0

    @property
    def index_path(self) -> Path:
        return self.root / "index.jsonl"

    def _record_path(self, relative: str) -> Path:
        return self.root / relative

    # -- appending -------------------------------------------------------------

    def append(self, record: RunRecord) -> str:
        """Write the record file, then the index line; returns run_id.

        The record file lands first (atomically), so a crash between
        the two steps leaves an orphaned record — garbage the next gc
        collects — never an index line pointing at nothing.
        """
        seq = self._next_seq()
        payload_dict = record.to_dict()
        payload_dict["run_id"] = ""  # the id derives from the content
        payload = canonical_json(payload_dict).encode("utf-8")
        digest = _digest(payload)
        record.run_id = f"{seq:06d}-{digest[:12]}"
        payload_dict["run_id"] = record.run_id
        blob = (json.dumps(payload_dict, indent=2, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        relative = f"records/{digest[:2]}/{digest}.json"
        path = self._record_path(relative)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        line = json.dumps(
            {
                "schema": LEDGER_SCHEMA,
                "seq": seq,
                "run_id": record.run_id,
                "kind": record.kind,
                "key": record.key,
                "recorded_at": record.recorded_at,
                "wall_seconds": record.wall_seconds,
                "path": relative,
                "checksum": _checksum(blob),
            },
            sort_keys=True,
        )
        with self.index_path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return record.run_id

    def _next_seq(self) -> int:
        try:
            with self.index_path.open("rb") as handle:
                return sum(1 for _ in handle)
        except OSError:
            return 0

    # -- reading ---------------------------------------------------------------

    def entries(self) -> list[IndexEntry]:
        """Every readable index entry, oldest first.

        Corrupt lines — truncated JSON from a crashed append, missing
        fields, a wrong schema — are skipped and counted in
        :attr:`evicted`, so one bad line never takes the history down.
        """
        self.evicted = 0
        try:
            text = self.index_path.read_text(encoding="utf-8")
        except OSError:
            return []
        entries: list[IndexEntry] = []
        for lineno, line in enumerate(text.splitlines()):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
                if data.get("schema") != LEDGER_SCHEMA:
                    raise ValueError(f"schema {data.get('schema')!r}")
                entries.append(
                    IndexEntry(
                        seq=int(data["seq"]),
                        run_id=data["run_id"],
                        kind=data["kind"],
                        key=data["key"],
                        recorded_at=data["recorded_at"],
                        wall_seconds=float(data["wall_seconds"]),
                        path=data["path"],
                        checksum=data["checksum"],
                    )
                )
            except (ValueError, KeyError, TypeError) as error:
                self.evicted += 1
                logger.warning(
                    "ledger %s: skipping corrupt index line %d (%s)",
                    self.index_path, lineno + 1, error,
                )
        return entries

    def load_entry(self, entry: IndexEntry) -> RunRecord | None:
        """Load and verify one record; evicts the file on bad checksum."""
        path = self._record_path(entry.path)
        try:
            blob = path.read_bytes()
        except OSError:
            self.evicted += 1
            return None
        if _checksum(blob) != entry.checksum:
            self.evicted += 1
            logger.warning(
                "ledger %s: checksum mismatch for %s; evicting record file",
                self.root, entry.run_id,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            return RunRecord.from_dict(json.loads(blob))
        except (ValueError, KeyError, TypeError):
            self.evicted += 1
            return None

    def load(self, run_id: str) -> RunRecord | None:
        """Load one run by id (or unique id prefix)."""
        matches = [
            e for e in self.entries()
            if e.run_id == run_id or e.run_id.startswith(run_id)
        ]
        exact = [e for e in matches if e.run_id == run_id]
        if exact:
            matches = exact
        if len(matches) != 1:
            return None
        return self.load_entry(matches[0])

    def records(
        self,
        *,
        kind: str | None = None,
        key: str | None = None,
        limit: int | None = None,
    ) -> list[RunRecord]:
        """Matching runs, oldest first; corrupt entries skipped."""
        selected = [
            e
            for e in self.entries()
            if (kind is None or e.kind == kind)
            and (key is None or e.key == key)
        ]
        if limit is not None:
            selected = selected[-limit:]
        loaded = (self.load_entry(e) for e in selected)
        return [r for r in loaded if r is not None]

    def latest(
        self, *, kind: str | None = None, key: str | None = None
    ) -> RunRecord | None:
        records = self.records(kind=kind, key=key, limit=1)
        return records[-1] if records else None

    # -- maintenance -----------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Counts and latest-run figures for the OpenMetrics exporter."""
        entries = self.entries()
        kinds: dict[str, int] = {}
        for entry in entries:
            kinds[entry.kind] = kinds.get(entry.kind, 0) + 1
        last = entries[-1] if entries else None
        return {
            "runs": len(entries),
            "kinds": kinds,
            "evicted": self.evicted,
            "last_run_id": last.run_id if last else None,
            "last_recorded_at": last.recorded_at if last else None,
            "last_wall_seconds": last.wall_seconds if last else None,
        }

    def gc(self, keep: int) -> dict[str, int]:
        """Compact to the newest ``keep`` runs.

        Rewrites the index atomically with the surviving entries and
        unlinks record files nothing references anymore (including
        orphans from interrupted appends).
        """
        entries = self.entries()
        kept = entries[-keep:] if keep > 0 else []
        dropped = len(entries) - len(kept)
        lines = []
        referenced: set[Path] = set()
        for entry in kept:
            referenced.add(self._record_path(entry.path).resolve())
            lines.append(
                json.dumps(
                    {
                        "schema": LEDGER_SCHEMA,
                        "seq": entry.seq,
                        "run_id": entry.run_id,
                        "kind": entry.kind,
                        "key": entry.key,
                        "recorded_at": entry.recorded_at,
                        "wall_seconds": entry.wall_seconds,
                        "path": entry.path,
                        "checksum": entry.checksum,
                    },
                    sort_keys=True,
                )
            )
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in lines))
        os.replace(tmp, self.index_path)
        removed_files = 0
        for path in self.root.glob("records/??/*.json"):
            if path.resolve() not in referenced:
                try:
                    path.unlink()
                    removed_files += 1
                except OSError:
                    pass
        return {
            "kept": len(kept),
            "dropped_entries": dropped,
            "removed_files": removed_files,
        }


# -- formatting ----------------------------------------------------------------


def format_runs_table(records: Iterable[RunRecord]) -> str:
    """Render runs as the ``repro-hunt runs list`` table, oldest first."""
    header = (
        f"{'run':<20} {'kind':<9} {'recorded (UTC)':<21} {'backend':<8} "
        f"{'wall':>9} {'rss':>9} {'cache':>11} {'key':<12}"
    )
    lines = [header, "-" * len(header)]
    for record in records:
        rss = record.peak_rss_bytes
        rss_text = f"{rss / (1024 * 1024):.0f}M" if rss else "-"
        if record.cache:
            cache_text = (
                f"{record.cache.get('hits', 0)}h/{record.cache.get('misses', 0)}m"
            )
        else:
            cache_text = "-"
        lines.append(
            f"{record.run_id:<20} {record.kind:<9} "
            f"{record.recorded_at.replace('+00:00', 'Z'):<21} "
            f"{record.backend:<8} {record.wall_seconds:>8.3f}s {rss_text:>9} "
            f"{cache_text:>11} {record.key[:12]:<12}"
        )
    return "\n".join(lines)


def diff_records(old: RunRecord, new: RunRecord) -> list[dict[str, Any]]:
    """Per-metric deltas between two runs (``runs diff`` rows).

    Covers total wall, per-stage wall times, peak RSS, per-stage
    tracemalloc deltas when both runs carried them, and cache hit
    counts.  ``delta_pct`` is None when the baseline side is zero.
    """

    def _row(metric: str, a: Any, b: Any) -> dict[str, Any]:
        delta = None
        delta_pct = None
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            delta = b - a
            delta_pct = (b - a) / a * 100.0 if a else None
        return {
            "metric": metric,
            "old": a,
            "new": b,
            "delta": delta,
            "delta_pct": delta_pct,
        }

    rows = [_row("wall_seconds", old.wall_seconds, new.wall_seconds)]
    new_stages = {s.get("name"): s for s in new.stages}
    for stage in old.stages:
        name = stage.get("name")
        other = new_stages.get(name)
        if other is None:
            continue
        rows.append(
            _row(
                f"stage.{name}.wall_seconds",
                stage.get("wall_seconds"),
                other.get("wall_seconds"),
            )
        )
        mem_a = (stage.get("memory") or {}).get("tracemalloc_delta_bytes")
        mem_b = (other.get("memory") or {}).get("tracemalloc_delta_bytes")
        if mem_a is not None and mem_b is not None:
            rows.append(_row(f"stage.{name}.tracemalloc_delta_bytes", mem_a, mem_b))
    if old.peak_rss_bytes is not None and new.peak_rss_bytes is not None:
        rows.append(_row("peak_rss_bytes", old.peak_rss_bytes, new.peak_rss_bytes))
    if old.cache is not None and new.cache is not None:
        for field_name in ("hits", "misses", "stores"):
            rows.append(
                _row(
                    f"cache.{field_name}",
                    old.cache.get(field_name, 0),
                    new.cache.get(field_name, 0),
                )
            )
    return rows


def format_diff(old: RunRecord, new: RunRecord) -> str:
    """Render ``runs diff`` as an aligned delta table."""
    header = f"{'metric':<40} {'old':>14} {'new':>14} {'delta':>14}"
    lines = [
        f"diff: {old.run_id} -> {new.run_id}",
        header,
        "-" * len(header),
    ]
    for row in diff_records(old, new):
        old_v, new_v = row["old"], row["new"]

        def _fmt(v: Any) -> str:
            if isinstance(v, float):
                return f"{v:.4f}"
            return str(v) if v is not None else "-"

        if row["delta_pct"] is not None:
            delta_text = f"{row['delta_pct']:+.1f}%"
        elif row["delta"] is not None:
            delta_text = f"{row['delta']:+g}"
        else:
            delta_text = "-"
        lines.append(
            f"{row['metric']:<40} {_fmt(old_v):>14} {_fmt(new_v):>14} "
            f"{delta_text:>14}"
        )
    return "\n".join(lines)


def arena_record(
    *,
    key: str,
    label: str,
    leaderboard: list[dict[str, Any]],
    wall_seconds: float,
    config_digest: str = "",
    faults_digest: str = "",
    faults: str = "",
    funnel: dict[str, Any] | None = None,
) -> RunRecord:
    """A ledger record for one arena sweep (leaderboard rows attached)."""
    return RunRecord(
        kind="arena",
        key=key,
        label=label,
        recorded_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        backend="serial",
        jobs=1,
        wall_seconds=round(wall_seconds, 6),
        funnel=dict(funnel or {}),
        config_digest=config_digest,
        faults_digest=faults_digest,
        faults=faults,
        leaderboard=leaderboard,
    )


__all__ = [
    "DEFAULT_LEDGER_DIR",
    "LEDGER_ENV_VAR",
    "LEDGER_SCHEMA",
    "IndexEntry",
    "LedgerInfo",
    "RunLedger",
    "RunRecord",
    "arena_record",
    "data_fault_digest",
    "diff_records",
    "format_diff",
    "format_runs_table",
    "ledger_dir_from_env",
    "ledger_key",
    "record_from_metrics",
]
