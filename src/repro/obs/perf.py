"""Performance accounting: the ``BENCH_perf.json`` summary.

One JSON document per profiled run, recording the three quantities the
perf trajectory tracks across commits and Python versions:

* per-stage wall times (straight from the run manifest);
* dataset footprint — row/domain counts, resident typed-array bytes of
  the columnar :class:`~repro.scan.table.ScanTable`, and the pickled
  payload the process backends ship to spawn workers;
* worker/cache payload bytes of the deployment-map stage, measured for
  both representations — the legacy object-graph maps and the columnar
  int-tuple encoding — alongside a timed before/after of the kernel
  itself (the pre-columnar row path is kept here as the *before*);
* per-stage funnel timings (``funnel_stages``, when pipeline inputs are
  supplied) — classify, shortlist, inspect, and assemble each measured
  legacy vs columnar, the same retained references the differential
  suites compare for identity.

Everything is measured on the actual study being profiled, never
hand-asserted; ``repro-hunt profile --json FILE`` writes the document
and CI uploads it as an artifact per Python version.
"""

from __future__ import annotations

import gc
import json
import os
import pickle
import platform
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.exec.metrics import RunMetrics
    from repro.net.timeline import Period
    from repro.scan.dataset import ScanDataset

PERF_SCHEMA = "repro.bench.perf/1"


def legacy_domain_maps(
    dataset: ScanDataset,
    periods: tuple[Period, ...],
    max_gap_scans: int = 6,
) -> dict[tuple[str, int], Any]:
    """The pre-columnar deployment kernel, kept as the measured *before*.

    Re-filters each domain's record objects once per period and clusters
    row-at-a-time — exactly what the deployment kernel did before the
    columnar rewrite (maps built without records, as on the wire),
    including the per-call ``scan_dates_in`` recompute the old dataset
    performed.  The differential tests also use it as the row-path
    oracle (there via the memoized dataset API; the oracle is the
    clustering, not the date filter).
    """
    from repro.core.deployment import build_deployment_map

    maps: dict[tuple[str, int], Any] = {}
    for domain in dataset.domains():
        records = list(dataset.records_for(domain))
        for period in periods:
            dates_in_period = tuple(
                d for d in dataset.scan_dates if period.contains(d)
            )
            if not dates_in_period:
                continue
            if not any(period.contains(r.scan_date) for r in records):
                continue
            maps[(domain, period.index)] = build_deployment_map(
                domain, records, period, dates_in_period, max_gap_scans,
                with_records=False,
            )
    return maps


def measure_deployment_kernel(
    dataset: ScanDataset,
    periods: tuple[Period, ...],
    max_gap_scans: int = 6,
) -> dict[str, Any]:
    """Time and weigh the deployment-map kernel, before vs after.

    Two speedups are reported, both measured:

    * ``speedup`` compares the kernels alone — the legacy row path over
      pre-materialized records versus columnar encode + decode (both
      producing maps without records, as on the wire);
    * ``roundtrip_speedup`` adds what the process backend pays on top —
      pickling the worker-result form, unpickling it in the parent, and
      attaching period records (the legacy per-map record filter versus
      the decode-side CSR slice).

    Payload bytes are the pickled worker-result forms: object-graph
    maps before, the run-length int encoding after.
    """
    from repro.core.deployment import decode_domain_maps, encode_domain_maps

    # Pre-materialize the row view: the pre-columnar dataset held eager
    # record objects, so the legacy kernel must not be charged for lazy
    # materialization.  Each phase frees its intermediates and collects
    # before the next so neither timing pays the other's garbage.
    records = {
        domain: list(dataset.records_for(domain)) for domain in dataset.domains()
    }
    gc.collect()

    t0 = time.perf_counter()
    encoded = [
        (domain, encode_domain_maps(dataset, domain, periods, max_gap_scans))
        for domain in dataset.domains()
    ]
    columnar_maps: dict[tuple[str, int], Any] = {}
    for domain, enc in encoded:
        columnar_maps.update(
            decode_domain_maps(domain, enc, dataset, periods, with_records=False)
        )
    columnar_seconds = time.perf_counter() - t0
    n_maps = len(columnar_maps)
    columnar_maps.clear()
    gc.collect()

    t0 = time.perf_counter()
    encoded_blob = pickle.dumps([pair for pair in encoded if pair[1]], protocol=5)
    for domain, enc in pickle.loads(encoded_blob):
        decode_domain_maps(domain, enc, dataset, periods, with_records=True)
    columnar_roundtrip = time.perf_counter() - t0
    gc.collect()

    t0 = time.perf_counter()
    legacy = legacy_domain_maps(dataset, periods, max_gap_scans)
    legacy_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    legacy_blob = pickle.dumps(list(legacy.items()), protocol=5)
    legacy_loaded = pickle.loads(legacy_blob)
    for (domain, _), map_ in legacy_loaded:
        map_.records = [
            r for r in records[domain] if map_.period.contains(r.scan_date)
        ]
    legacy_roundtrip = time.perf_counter() - t0
    del legacy, legacy_loaded, records
    gc.collect()

    def _ratio(a: float, b: float) -> float | None:
        return round(a / b, 2) if b > 0 else None

    return {
        "maps": n_maps,
        "legacy_seconds": round(legacy_seconds, 6),
        "columnar_seconds": round(columnar_seconds, 6),
        "speedup": _ratio(legacy_seconds, columnar_seconds),
        "legacy_roundtrip_seconds": round(legacy_roundtrip, 6),
        "columnar_roundtrip_seconds": round(columnar_roundtrip, 6),
        "roundtrip_speedup": _ratio(
            legacy_seconds + legacy_roundtrip,
            columnar_seconds + columnar_roundtrip,
        ),
        "legacy_payload_bytes": len(legacy_blob),
        "encoded_payload_bytes": len(encoded_blob),
        "payload_ratio": _ratio(len(legacy_blob), len(encoded_blob)),
    }


def measure_funnel_stages(inputs: Any, config: Any = None) -> dict[str, Any]:
    """Time funnel stages 2–4 plus assembly, legacy vs columnar.

    Every rewritten stage keeps its row-at-a-time reference alive (the
    differential suites compare the two for identity); this measures
    both on the same inputs so the speedups in ``BENCH_perf.json`` are
    observed, never asserted:

    * **classify** — object-graph :func:`classify` over deployment maps
      versus :func:`classify_encoded` over the deployment wire form
      (plus the parent-side decode, what the stage actually pays);
    * **shortlist** — the datasetless :class:`Shortlister` (per-map
      record filtering) versus the dataset-attached bisect-slice path;
    * **inspect** — the same :class:`Inspector` over the linear pDNS /
      per-base CT indexes (``use_table = False``) versus the CSR and
      bisect kernels;
    * **assemble** — the per-finding victim-infrastructure rescan
      versus the precomputed single-pass index.
    """
    from repro.core.deployment import decode_domain_maps, encode_domain_maps
    from repro.core.inspection import Inspector
    from repro.core.patterns import classify, classify_encoded, decode_classification
    from repro.core.pipeline import PipelineConfig, _FindingBuilder
    from repro.core.shortlist import Shortlister
    from repro.core.types import Verdict

    config = config or PipelineConfig()
    dataset, periods = inputs.scan, inputs.periods

    def _ratio(a: float, b: float) -> float | None:
        return round(a / b, 2) if b > 0 else None

    def _stage(legacy: float, columnar: float) -> dict[str, Any]:
        return {
            "legacy_seconds": round(legacy, 6),
            "columnar_seconds": round(columnar, 6),
            "speedup": _ratio(legacy, columnar),
        }

    # Stage-1 products, shared by both sides: the deployment wire forms
    # and the decoded maps (with period records attached — the legacy
    # shortlist evidence path filters them).
    encoded_items = [
        (domain, encode_domain_maps(dataset, domain, periods, config.max_gap_scans))
        for domain in dataset.domains()
    ]
    maps: dict[tuple[str, int], Any] = {}
    for domain, enc in encoded_items:
        maps.update(
            decode_domain_maps(domain, enc, dataset, periods, with_records=True)
        )
    date_ords = {
        p.index: tuple(d.toordinal() for d in dataset.scan_dates_in(p))
        for p in periods
    }
    gc.collect()

    # -- stage 2: classify -------------------------------------------------
    t0 = time.perf_counter()
    classifications = {
        key: classify(map_, config.patterns) for key, map_ in maps.items()
    }
    legacy_classify = time.perf_counter() - t0
    gc.collect()
    t0 = time.perf_counter()
    for domain, enc_maps in encoded_items:
        for period_index, enc_deployments in enc_maps:
            encoded = classify_encoded(
                enc_deployments, date_ords[period_index], config.patterns
            )
            decode_classification(maps[(domain, period_index)], encoded)
    columnar_classify = time.perf_counter() - t0
    gc.collect()

    # -- stage 3: shortlist ------------------------------------------------
    known_missing = dataset.known_missing_dates
    reference = Shortlister(inputs.as2org, config.shortlist, known_missing)
    t0 = time.perf_counter()
    reference.evaluate(classifications)
    legacy_shortlist = time.perf_counter() - t0
    gc.collect()
    columnar = Shortlister(
        inputs.as2org, config.shortlist, known_missing, dataset=dataset
    )
    t0 = time.perf_counter()
    entries, _decisions = columnar.evaluate(classifications)
    columnar_shortlist = time.perf_counter() - t0
    gc.collect()

    # -- stage 4: inspect ----------------------------------------------------
    inspector = Inspector(inputs.pdns, inputs.crtsh, config.inspection)
    inputs.pdns.use_table = False
    inputs.crtsh.use_table = False
    try:
        t0 = time.perf_counter()
        inspector.inspect_many(entries)
        legacy_inspect = time.perf_counter() - t0
    finally:
        inputs.pdns.use_table = True
        inputs.crtsh.use_table = True
    gc.collect()
    inputs.pdns.table  # noqa: B018 — prime the lazy builds so the kernel
    inputs.crtsh.search("warmup.invalid")  # timing excludes one-time setup
    t0 = time.perf_counter()
    inspections = inspector.inspect_many(entries)
    columnar_inspect = time.perf_counter() - t0
    gc.collect()

    # -- assembly ------------------------------------------------------------
    flagged = [
        r
        for r in inspections
        if r.verdict in (Verdict.HIJACKED, Verdict.TARGETED)
    ]
    t0 = time.perf_counter()
    builder = _FindingBuilder(inputs)
    for result in flagged:
        builder.from_inspection(result, classifications)
    legacy_assemble = time.perf_counter() - t0
    gc.collect()
    t0 = time.perf_counter()
    builder = _FindingBuilder(inputs, classifications)
    for result in flagged:
        builder.from_inspection(result, classifications)
    columnar_assemble = time.perf_counter() - t0
    gc.collect()

    return {
        "n_maps": len(maps),
        "n_shortlisted": len(entries),
        "n_flagged": len(flagged),
        "classify": _stage(legacy_classify, columnar_classify),
        "shortlist": _stage(legacy_shortlist, columnar_shortlist),
        "inspect": _stage(legacy_inspect, columnar_inspect),
        "assemble": _stage(legacy_assemble, columnar_assemble),
    }


def measure_segments(
    n_domains: int,
    baseline_domains: int | None = None,
    *,
    n_active: int = 200,
    seed: int = 0,
    jobs: int = 2,
) -> dict[str, Any]:
    """Segment data plane vs in-RAM: open latency and pooled peak RSS.

    Builds one ``n_domains`` scale world, writes it as a segment bundle,
    and measures the two quantities the segment format exists for:

    * **open latency** — remapping the bundle versus unpickling the
      in-RAM input bundle (the payload a pickle-shipping backend pays
      per process);
    * **pooled peak RSS** — a segment-backed shard-partitioned pool run
      at ``n_domains`` versus an in-RAM pooled run at
      ``baseline_domains`` (default: ``n_domains``), each probed in a
      fresh interpreter via :mod:`repro.obs.rss_probe` so neither
      inherits the other's high-water mark.

    ``rss_within_baseline`` is the headline invariant CI floors on: a
    segment-backed run at full scale must not out-consume the in-RAM
    path at baseline scale.
    """
    import subprocess
    import tempfile

    import repro
    from repro.segments import load_segment_inputs, write_segments
    from repro.world.scale import scale_world

    if baseline_domains is None:
        baseline_domains = n_domains

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )

    def _probe(argv: list[str]) -> dict[str, Any]:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.rss_probe", *argv],
            env=env, capture_output=True, text=True, check=True,
        )
        return json.loads(proc.stdout)

    with tempfile.TemporaryDirectory(prefix="repro-seg-bench-") as tmp:
        directory = Path(tmp) / "segments"

        t0 = time.perf_counter()
        inputs = scale_world(n_domains, n_active=n_active, seed=seed)
        build_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        paths = write_segments(inputs, directory)
        write_seconds = time.perf_counter() - t0
        segment_bytes = sum(path.stat().st_size for path in paths.values())

        blob = pickle.dumps(inputs, protocol=5)
        del inputs
        gc.collect()
        t0 = time.perf_counter()
        pickle.loads(blob)
        pickle_load_seconds = time.perf_counter() - t0
        pickle_bytes = len(blob)
        del blob
        gc.collect()

        t0 = time.perf_counter()
        load_segment_inputs(directory)
        open_seconds = time.perf_counter() - t0
        gc.collect()

        seg = _probe(
            ["segment", "--dir", str(directory), "--jobs", str(jobs),
             "--partition", "shard"]
        )
        inram = _probe(
            ["inram", "--scale", str(baseline_domains),
             "--active", str(n_active), "--seed", str(seed),
             "--jobs", str(jobs)]
        )

    return {
        "n_domains": n_domains,
        "baseline_domains": baseline_domains,
        "n_active": n_active,
        "jobs": jobs,
        "build_seconds": round(build_seconds, 6),
        "write_seconds": round(write_seconds, 6),
        "segment_bytes": segment_bytes,
        "pickle_bytes": pickle_bytes,
        "open_seconds": round(open_seconds, 6),
        "pickle_load_seconds": round(pickle_load_seconds, 6),
        "open_speedup": round(pickle_load_seconds / open_seconds, 2)
        if open_seconds > 0
        else None,
        "segment_run": seg,
        "inram_run": inram,
        "rss_within_baseline": seg["peak_rss_bytes"] <= inram["peak_rss_bytes"],
    }


def measure_epochs(
    n_domains: int,
    *,
    n_active: int = 200,
    seed: int = 0,
    fraction: float = 0.01,
) -> dict[str, Any]:
    """Incremental epoch apply vs full cold rerun over the merged data.

    Builds one ``n_domains`` scale world, runs it once against a stage
    cache (the banked base products an operator would already have),
    generates a deterministic ``fraction`` epoch delta, and measures
    the two paths to the same merged-dataset report:

    * ``epoch_seconds`` — :func:`repro.epochs.run_epoch` over the base
      with the warm cache: overlay merge, dirty-set computation, cache
      seeding from the base products, and the seeded pipeline run;
    * ``full_seconds`` — the counterfactual without the epoch engine:
      the merged table rebuilt from the full concatenated row stream
      (interning + CSR indexing, what regenerating the dataset costs),
      then a cold run against a fresh cache (cold fingerprints, every
      stage recomputed and stored).  Row tuples are materialized
      *outside* the timer — reading the source data is common to both
      workflows, the rebuild and the cold run are not.

    ``identical`` is the oracle (byte-identity of the two reports) and
    ``speedup`` the CI-floored headline: a ≤1% delta must not pay for
    the 99% it carried over.
    """
    import tempfile
    from dataclasses import replace

    from repro.cache import StageCache
    from repro.core.pipeline import HijackPipeline
    from repro.epochs import merge_inputs, run_epoch
    from repro.io.golden import encode_report
    from repro.scan.dataset import ScanDataset
    from repro.scan.table import _SENSITIVE, _TRUSTED, ScanTable
    from repro.world.scale import make_delta, scale_world

    inputs = scale_world(n_domains, n_active=n_active, seed=seed)
    delta = make_delta(inputs, seed=seed, fraction=fraction)

    with tempfile.TemporaryDirectory(prefix="repro-epoch-bench-") as tmp:
        cache = StageCache(tmp)
        t0 = time.perf_counter()
        HijackPipeline(inputs).profile(cache=cache)
        base_seconds = time.perf_counter() - t0
        gc.collect()

        t0 = time.perf_counter()
        report, metrics, _dirty = run_epoch(inputs, delta, cache=cache)
        epoch_seconds = time.perf_counter() - t0
    gc.collect()

    merged = merge_inputs(inputs, delta)
    table = merged.scan.table
    rows = [
        (
            table.date_ord[r],
            table.ips[table.ip_id[r]],
            table.asns[table.asn_id[r]],
            table.certs[table.cert_id[r]],
            table.countries[table.country_id[r]],
            table.port_sets[table.ports_id[r]],
            table.name_sets[table.names_id[r]],
            table.base_sets[table.bases_id[r]],
            bool(table.flags[r] & _TRUSTED),
            bool(table.flags[r] & _SENSITIVE),
        )
        for r in range(len(table.date_ord))
    ]
    gc.collect()

    with tempfile.TemporaryDirectory(prefix="repro-epoch-bench-") as tmp:
        t0 = time.perf_counter()
        builder = ScanTable.build()
        for row in rows:
            builder.append_row(*row)
        rebuilt = ScanDataset.from_table(
            builder.finish(),
            merged.scan.scan_dates,
            known_missing_dates=merged.scan.known_missing_dates,
        )
        rebuild_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        full_report, _ = HijackPipeline(replace(merged, scan=rebuilt)).profile(
            cache=StageCache(tmp)
        )
        full_run_seconds = time.perf_counter() - t0
    full_seconds = rebuild_seconds + full_run_seconds
    del rows
    gc.collect()

    stats = metrics.epoch or {}
    return {
        "n_domains": n_domains,
        "n_active": n_active,
        "fraction": fraction,
        "delta": delta.counts(),
        "base_seconds": round(base_seconds, 6),
        "epoch_seconds": round(epoch_seconds, 6),
        "rebuild_seconds": round(rebuild_seconds, 6),
        "full_run_seconds": round(full_run_seconds, 6),
        "full_seconds": round(full_seconds, 6),
        "speedup": round(full_seconds / epoch_seconds, 2)
        if epoch_seconds > 0
        else None,
        "domains_dirty": stats.get("domains_dirty"),
        "domains_reused": stats.get("domains_reused"),
        "seeded": stats.get("seeded"),
        "identical": encode_report(report) == encode_report(full_report),
    }


def measure_dataset(dataset: ScanDataset) -> dict[str, Any]:
    """Footprint of the scan dataset in both representations."""
    table = dataset.table
    columnar_pickle = len(pickle.dumps(dataset, protocol=5))
    legacy_pickle = len(pickle.dumps(dataset.records(), protocol=5))
    return {
        "records": len(dataset),
        "domains": len(dataset.domains()),
        "scan_dates": len(dataset.scan_dates),
        "column_bytes": table.column_bytes(),
        "columnar_pickle_bytes": columnar_pickle,
        "legacy_pickle_bytes": legacy_pickle,
        "pickle_ratio": round(legacy_pickle / columnar_pickle, 2)
        if columnar_pickle > 0
        else None,
    }


def perf_summary(
    dataset: ScanDataset,
    periods: tuple[Period, ...],
    metrics: RunMetrics | None = None,
    max_gap_scans: int = 6,
    inputs: Any = None,
    config: Any = None,
) -> dict[str, Any]:
    """The full ``BENCH_perf.json`` document for one profiled run.

    With ``inputs`` (a :class:`~repro.core.pipeline.PipelineInputs`),
    the document additionally carries ``funnel_stages`` — the measured
    legacy-vs-columnar timings of stages 2–4 and assembly.
    """
    summary: dict[str, Any] = {
        "schema": PERF_SCHEMA,
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "dataset": measure_dataset(dataset),
        "deployment_kernel": measure_deployment_kernel(
            dataset, periods, max_gap_scans
        ),
    }
    if inputs is not None:
        summary["funnel_stages"] = measure_funnel_stages(inputs, config)
    if metrics is not None:
        summary["stages"] = [
            {
                "name": stage.name,
                "wall_seconds": round(stage.wall_seconds, 6),
                "n_in": stage.n_in,
                "n_out": stage.n_out,
                "cached": stage.cached,
                "memory": dict(stage.memory) if stage.memory else None,
            }
            for stage in metrics.stages
        ]
        summary["total_wall_seconds"] = round(
            sum(stage.wall_seconds for stage in metrics.stages), 6
        )
        # Run-level memory accounting (run-manifest/5): peak RSS always,
        # tracemalloc figures when the run traced allocations.
        if metrics.memory:
            summary["memory"] = dict(metrics.memory)
    # The segment-vs-in-RAM section is opt-in by environment: building
    # and probing a 10^5-10^6-domain scale world is a CI-budget decision,
    # not something every `profile --json` should pay.
    scale = os.environ.get("REPRO_SEGMENTS_SCALE")
    if scale:
        baseline = os.environ.get("REPRO_SEGMENTS_BASELINE")
        summary["segments"] = measure_segments(
            int(scale), int(baseline) if baseline else None
        )
    # Likewise for the incremental-epoch comparison: one base run plus a
    # full cold rerun at 10^5-10^6 domains is the expensive half of the
    # measurement, so it only runs where CI budgets for it.
    epochs_scale = os.environ.get("REPRO_EPOCHS_SCALE")
    if epochs_scale:
        summary["epochs"] = measure_epochs(int(epochs_scale))
    return summary


def write_perf_summary(path: str | Path, summary: dict[str, Any]) -> None:
    Path(path).write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")


__all__ = [
    "PERF_SCHEMA",
    "legacy_domain_maps",
    "measure_deployment_kernel",
    "measure_dataset",
    "measure_epochs",
    "measure_funnel_stages",
    "measure_segments",
    "perf_summary",
    "write_perf_summary",
]
