"""Live progress events: the executor's heartbeat channel.

The executor emits one structured event per run/stage boundary, per
absorbed fault, and per completed task chunk, through a sink callback.
Events are plain dicts — ``{"event": <name>, "ts": <unix seconds>,
...}`` — so sinks can be composed freely:

* :class:`JsonlEventSink` appends one JSON line per event to a file
  (the ``--events FILE`` stream; schema ``repro.obs.events/1``);
* :class:`TTYProgressSink` renders a single self-overwriting progress
  line (``[3/6] inspect … eta 0.4s``) on a terminal stream;
* :class:`CompositeEventSink` fans one emission out to several sinks.

Event names and payloads:

==============  ==============================================================
``run_start``   ``backend``, ``jobs``, ``total_stages``, ``stages`` (names)
``stage_start`` ``stage``, ``index`` (1-based), ``total``
``stage_finish`` ``stage``, ``index``, ``total``, ``wall_seconds``,
                ``cached``, ``n_in``, ``n_out``, ``eta_seconds`` (estimated
                time to run end from mean stage cost so far)
``chunk``       ``stage``, ``kernel``, ``pid``, ``items``, ``seconds``
``retry``       ``stage``, ``kernel``, ``kind`` (crash / pool_rebuild /
                slow), ``attempt``
``run_finish``  ``wall_seconds``, ``total_stages``
==============  ==============================================================

Every event additionally carries ``ts`` (wall-clock Unix seconds).  The
report is required to be byte-identical with events enabled or disabled
— sinks observe the run, they never steer it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, IO

EVENTS_SCHEMA = "repro.obs.events/1"


class EventSink:
    """Base sink: receives every heartbeat event; default drops them."""

    def emit(self, event: dict[str, Any]) -> None:  # pragma: no cover - interface
        pass

    def close(self) -> None:
        """Flush and release resources; emitting afterwards is undefined."""


#: Shared inert sink — the executor's default; every emit is a no-op.
NULL_EVENTS = EventSink()


class JsonlEventSink(EventSink):
    """Append events as JSON lines to a file (the ``--events`` stream).

    The first line is a header record carrying the schema tag, so a
    reader can reject streams written by an incompatible build.  Lines
    are flushed as written: a crashed run leaves a readable prefix, and
    a tail process sees stages the moment they finish.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._write({"event": "header", "schema": EVENTS_SCHEMA})

    def _write(self, event: dict[str, Any]) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def emit(self, event: dict[str, Any]) -> None:
        self._write(event)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TTYProgressSink(EventSink):
    """One self-overwriting progress line on a terminal stream.

    Renders stage transitions only (chunk events would redraw far too
    often to read); the line is erased by a final newline at run end so
    subsequent output starts clean.
    """

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream
        self._dirty = False

    def _render(self, text: str) -> None:
        self.stream.write("\r\x1b[2K" + text)
        self.stream.flush()
        self._dirty = True

    def emit(self, event: dict[str, Any]) -> None:
        kind = event.get("event")
        if kind == "stage_start":
            self._render(
                f"[{event['index']}/{event['total']}] {event['stage']} ..."
            )
        elif kind == "stage_finish":
            eta = event.get("eta_seconds")
            suffix = " (cached)" if event.get("cached") else ""
            eta_text = f" eta {eta:.1f}s" if isinstance(eta, (int, float)) else ""
            self._render(
                f"[{event['index']}/{event['total']}] {event['stage']} "
                f"{event['wall_seconds'] * 1e3:.0f}ms{suffix}{eta_text}"
            )
        elif kind == "retry":
            self._render(
                f"retry: {event['kernel']} {event['kind']} "
                f"(attempt {event['attempt'] + 1})"
            )
        elif kind == "run_finish" and self._dirty:
            self.stream.write("\r\x1b[2K")
            self.stream.flush()
            self._dirty = False

    def close(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False


class CompositeEventSink(EventSink):
    """Fan one emission out to several sinks, in order."""

    def __init__(self, sinks: list[EventSink]) -> None:
        self.sinks = list(sinks)

    def emit(self, event: dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class EventRecorder(EventSink):
    """Test helper: keep every event in memory."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, event: dict[str, Any]) -> None:
        self.events.append(dict(event))

    def of(self, kind: str) -> list[dict[str, Any]]:
        return [e for e in self.events if e.get("event") == kind]


def stamp(event: dict[str, Any]) -> dict[str, Any]:
    """Attach the wall-clock timestamp every emitted event carries."""
    event["ts"] = round(time.time(), 6)
    return event


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Load an events JSONL stream, validating the header line."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    events = [json.loads(line) for line in lines if line.strip()]
    if not events or events[0].get("schema") != EVENTS_SCHEMA:
        raise ValueError(
            f"{path}: not a {EVENTS_SCHEMA} event stream "
            f"(header: {events[0] if events else None!r})"
        )
    return events


__all__ = [
    "EVENTS_SCHEMA",
    "CompositeEventSink",
    "EventRecorder",
    "EventSink",
    "JsonlEventSink",
    "NULL_EVENTS",
    "TTYProgressSink",
    "read_events",
    "stamp",
]
