"""Per-stage memory accounting for the run manifest.

Two complementary signals, both recorded by the executor into
run-manifest/5:

* **peak RSS** — the process's resident-set high-water mark, read from
  ``getrusage`` after every stage.  One syscall per stage boundary, so
  it is always on.  The kernel's counter is monotone: a stage's value is
  "the peak *so far*", and the run-level figure is the final high-water
  mark.  Unavailable platforms (no :mod:`resource`) report ``None``.
* **tracemalloc deltas** — per-stage allocated-byte deltas and peaks
  from :mod:`tracemalloc`.  Tracing every allocation costs real time
  (2-4x on allocation-heavy stages), so this is opt-in
  (``repro-hunt profile --memory``); untraced runs skip every
  tracemalloc call.

The sampler owns the tracemalloc lifecycle: it starts tracing only if
nobody else has, and stops only what it started, so it composes with an
outer profiler or test harness that is already tracing.
"""

from __future__ import annotations

import sys
from typing import Any

try:  # Windows has no resource module; RSS degrades to None there.
    import resource
except ImportError:  # pragma: no cover - platform dependent
    resource = None  # type: ignore[assignment]

import tracemalloc


def peak_rss_bytes() -> int | None:
    """The process's resident-set high-water mark, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; None where
    :mod:`resource` does not exist.
    """
    if resource is None:  # pragma: no cover - platform dependent
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform dependent
        return int(peak)
    return int(peak) * 1024


def current_rss_bytes() -> int | None:
    """The process's resident set *right now*, in bytes; None off Linux.

    Pool workers sample this at chunk boundaries and ship the reading
    home in their metric snapshots (gauge ``workers.rss_bytes``).  The
    instantaneous figure is the only honest one a forked worker has:
    both ``ru_maxrss`` and ``VmHWM`` are inherited from the parent at
    ``fork()``, so a slim worker forked from a fat parent reports the
    parent's high-water mark through every peak-oriented interface.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover - platform
        pass
    return None


class MemorySampler:
    """Stage-boundary memory probe used by the executor.

    ``trace_allocations=False`` (the default) keeps the probe at one
    ``getrusage`` call per boundary; ``True`` additionally snapshots
    tracemalloc around every stage.
    """

    def __init__(self, trace_allocations: bool = False) -> None:
        self.trace_allocations = trace_allocations
        self._started_tracing = False
        self._stage_current = 0

    # -- run lifecycle -------------------------------------------------------

    def start_run(self) -> None:
        if self.trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True

    def finish_run(self) -> dict[str, Any]:
        """The manifest's run-level ``memory`` section."""
        summary: dict[str, Any] = {
            "peak_rss_bytes": peak_rss_bytes(),
            "tracemalloc": self.trace_allocations,
        }
        if self.trace_allocations and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            summary["tracemalloc_current_bytes"] = current
            summary["tracemalloc_peak_bytes"] = peak
            if self._started_tracing:
                tracemalloc.stop()
                self._started_tracing = False
        return summary

    # -- stage boundaries ----------------------------------------------------

    def start_stage(self) -> None:
        if self.trace_allocations and tracemalloc.is_tracing():
            self._stage_current = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()

    def finish_stage(self) -> dict[str, Any]:
        """The per-stage ``memory`` dict for :class:`StageMetrics`."""
        sample: dict[str, Any] = {"peak_rss_bytes": peak_rss_bytes()}
        if self.trace_allocations and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            sample["tracemalloc_delta_bytes"] = current - self._stage_current
            sample["tracemalloc_peak_bytes"] = peak
        return sample


__all__ = ["MemorySampler", "peak_rss_bytes"]
