"""Subprocess-isolated peak-RSS measurement of one pipeline run.

Peak RSS (``getrusage .ru_maxrss``) is a process-lifetime high-water
mark — once an in-RAM baseline has run in a process, a segment-backed
run in the same process can never measure below it.  So the memory
benchmarks execute each workload in a fresh interpreter::

    python -m repro.obs.rss_probe segment --dir SEGDIR [--jobs N]
    python -m repro.obs.rss_probe inram --scale N [--active N] [--jobs N]

and read one JSON object from stdout: the run's wall seconds, findings
count, and peak RSS of the probe process itself plus the maximum the
pool workers self-reported (gauge ``workers.rss_bytes``; getrusage on
reaped children is useless here — a forked worker inherits the parent's
``ru_maxrss``).  ``repro.obs.perf.measure_segments`` and
``benchmarks/test_bench_segments.py`` drive it; nothing else imports
this module.
"""

from __future__ import annotations

import argparse
import json
import re
import resource
import sys
import time
from typing import Any

PROBE_SCHEMA = "repro.obs.rss-probe/1"

#: ``ru_maxrss`` unit: kilobytes on Linux, bytes on macOS.
_RU_MAXRSS_UNIT = 1 if sys.platform == "darwin" else 1024


def _self_peak_rss() -> int:
    # ``ru_maxrss`` can survive fork+exec (the child starts life already
    # carrying the launching process's high-water mark), which would make
    # every probe spawned from a fat benchmark parent report the parent's
    # footprint.  ``VmHWM`` belongs to the mm the exec created, so it
    # counts only this interpreter; fall back to getrusage off Linux.
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            match = re.search(r"VmHWM:\s+(\d+) kB", handle.read())
        if match:
            return int(match.group(1)) * 1024
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_UNIT




def _make_backend(args: argparse.Namespace):
    from repro.exec import ProcessPoolBackend, SerialBackend

    if args.jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(
        jobs=args.jobs,
        start_method=None if args.backend == "auto" else args.backend,
        partition=args.partition,
    )


def _run(inputs: Any, args: argparse.Namespace) -> dict[str, Any]:
    from repro.core.pipeline import HijackPipeline

    backend = _make_backend(args)
    start = time.perf_counter()
    report, metrics = HijackPipeline(inputs).profile(backend)
    seconds = time.perf_counter() - start
    rss_self = _self_peak_rss()
    # Pool workers self-sample VmRSS at chunk boundaries and ship the
    # readings home as the ``workers.rss_bytes`` max-gauge — the only
    # measurement a forked worker can make that does not inherit the
    # parent's high-water mark (see repro.obs.memory.current_rss_bytes).
    rss_workers = int(metrics.metrics.get("gauges", {}).get("workers.rss_bytes", 0))
    return {
        "schema": PROBE_SCHEMA,
        "jobs": args.jobs,
        "seconds": round(seconds, 6),
        "findings": len(report.findings),
        "funnel_domains": report.funnel.n_domains,
        "peak_rss_self_bytes": rss_self,
        "peak_rss_workers_bytes": rss_workers,
        "peak_rss_bytes": max(rss_self, rss_workers),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs.rss_probe")
    sub = parser.add_subparsers(dest="workload", required=True)

    def _common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=2)
        p.add_argument(
            "--backend", choices=["auto", "fork", "spawn"], default="auto"
        )
        p.add_argument(
            "--partition", choices=["hash", "shard"], default="shard"
        )

    segment = sub.add_parser("segment", help="segment-backed run over --dir")
    segment.add_argument("--dir", required=True)
    _common(segment)

    inram = sub.add_parser("inram", help="in-RAM scale world run")
    inram.add_argument("--scale", type=int, required=True)
    inram.add_argument("--active", type=int, default=200)
    inram.add_argument("--seed", type=int, default=0)
    _common(inram)

    args = parser.parse_args(argv)
    if args.workload == "segment":
        from repro.segments import load_segment_inputs

        inputs = load_segment_inputs(args.dir)
    else:
        from repro.world.scale import scale_world

        inputs = scale_world(args.scale, n_active=args.active, seed=args.seed)

    result = _run(inputs, args)
    result["workload"] = args.workload
    json.dump(result, sys.stdout, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
