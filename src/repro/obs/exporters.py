"""Prometheus/OpenMetrics text exposition for metrics and the ledger.

:func:`render_openmetrics` turns a :class:`MetricsRegistry` snapshot
(plus, optionally, a ledger summary and the latest run's per-stage
figures) into the OpenMetrics text format a Prometheus scrape endpoint
serves.  ``repro-hunt metrics export`` is the CLI face; the future
``serve`` daemon mounts the same renderer on ``/metrics``.

Name mapping: dotted registry names become ``repro_``-prefixed
underscore names (``cache.bytes_read`` → ``repro_cache_bytes_read``),
counters gain the OpenMetrics-mandated ``_total`` suffix, and histogram
buckets are converted from the registry's per-bin counts to the
cumulative ``le``-labeled series Prometheus expects.  The output ends
with the ``# EOF`` terminator so strict OpenMetrics parsers accept it.

:func:`validate_openmetrics` is a minimal structural checker used by
tests and ``metrics export --check``: every sample line must parse, be
preceded by a ``# TYPE`` declaration for its family, and the exposition
must end with ``# EOF``.  It is not a full OpenMetrics parser — it
exists to catch renderer regressions, not to certify arbitrary input.
"""

from __future__ import annotations

import re
from typing import Any

from repro.obs.ledger import RunLedger
from repro.obs.metrics import BUCKET_BOUNDS

_PREFIX = "repro_"
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$"
)


def metric_name(dotted: str) -> str:
    """``cache.bytes_read`` → ``repro_cache_bytes_read``."""
    return _PREFIX + _NAME_RE.sub("_", dotted.replace(".", "_"))


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Exposition:
    """Accumulates TYPE/HELP-declared metric families in order."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._declared: set[str] = set()

    def declare(self, name: str, kind: str, help_text: str) -> None:
        if name in self._declared:
            return
        self._declared.add(name)
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, value: Any, labels: dict[str, str] | None = None
    ) -> None:
        label_text = ""
        if labels:
            inner = ",".join(
                f'{k}="{_escape_label(str(v))}"' for k, v in labels.items()
            )
            label_text = "{" + inner + "}"
        self.lines.append(f"{name}{label_text} {_format_value(value)}")

    def counter(self, dotted: str, value: Any, help_text: str) -> None:
        name = metric_name(dotted)
        if not name.endswith("_total"):
            name += "_total"
        self.declare(name, "counter", help_text)
        self.sample(name, value)

    def gauge(
        self,
        dotted: str,
        value: Any,
        help_text: str,
        labels: dict[str, str] | None = None,
    ) -> None:
        name = metric_name(dotted)
        self.declare(name, "gauge", help_text)
        self.sample(name, value, labels)

    def histogram(self, dotted: str, data: dict[str, Any], help_text: str) -> None:
        """Registry per-bin buckets → cumulative ``le`` series."""
        name = metric_name(dotted)
        self.declare(name, "histogram", help_text)
        cumulative = 0
        bins = data.get("buckets", [])
        for bound, count in zip(BUCKET_BOUNDS, bins):
            cumulative += count
            self.sample(f"{name}_bucket", cumulative, {"le": _format_value(bound)})
        cumulative += bins[len(BUCKET_BOUNDS)] if len(bins) > len(BUCKET_BOUNDS) else 0
        self.sample(f"{name}_bucket", cumulative, {"le": "+Inf"})
        self.sample(f"{name}_sum", data.get("sum", 0.0))
        self.sample(f"{name}_count", data.get("count", 0))

    def render(self) -> str:
        return "\n".join(self.lines + ["# EOF"]) + "\n"


def render_openmetrics(
    snapshot: dict[str, Any] | None = None,
    *,
    ledger: RunLedger | None = None,
    funnel: dict[str, Any] | None = None,
) -> str:
    """Render a metrics snapshot (and optional ledger state) as
    OpenMetrics text.

    ``snapshot`` is the ``MetricsRegistry.snapshot()`` /
    run-manifest ``metrics`` shape.  When a ledger is given, its
    summary gauges and the latest run's total/per-stage wall times,
    memory, and cache accounting are appended so a scrape sees both
    live-process metrics and last-run facts.
    """
    out = _Exposition()
    snapshot = snapshot or {}
    for dotted, value in snapshot.get("counters", {}).items():
        out.counter(dotted, value, f"Counter {dotted} from the metrics registry.")
    for dotted, value in snapshot.get("gauges", {}).items():
        out.gauge(dotted, value, f"Gauge {dotted} from the metrics registry.")
    for dotted, data in snapshot.get("histograms", {}).items():
        out.histogram(
            dotted, data, f"Histogram {dotted} from the metrics registry."
        )
    if funnel:
        for key, value in funnel.items():
            out.gauge(
                f"funnel.{key}", value, "Funnel cardinality from the last run."
            )
    if ledger is not None:
        summary = ledger.summary()
        out.gauge(
            "ledger.runs",
            summary["runs"],
            "Total readable runs recorded in the ledger.",
        )
        out.gauge(
            "ledger.evicted",
            summary["evicted"],
            "Corrupt ledger entries evicted during the last read.",
        )
        for kind, count in sorted(summary["kinds"].items()):
            out.gauge(
                "ledger.runs_by_kind",
                count,
                "Ledger runs by kind.",
                {"kind": kind},
            )
        last = ledger.latest()
        if last is not None:
            labels = {"run_id": last.run_id, "kind": last.kind}
            out.gauge(
                "ledger.last_run.wall_seconds",
                last.wall_seconds,
                "Wall time of the newest ledger run.",
                labels,
            )
            if last.peak_rss_bytes is not None:
                out.gauge(
                    "ledger.last_run.peak_rss_bytes",
                    last.peak_rss_bytes,
                    "Peak RSS of the newest ledger run.",
                    labels,
                )
            if last.cache_hit_rate is not None:
                out.gauge(
                    "ledger.last_run.cache_hit_rate",
                    last.cache_hit_rate,
                    "Stage-cache hit rate of the newest ledger run.",
                    labels,
                )
            for stage in last.stages:
                out.gauge(
                    "ledger.last_run.stage_wall_seconds",
                    stage.get("wall_seconds"),
                    "Per-stage wall time of the newest ledger run.",
                    {"stage": str(stage.get("name"))},
                )
    return out.render()


def validate_openmetrics(text: str) -> list[str]:
    """Structural errors in an exposition; empty when it parses clean."""
    errors: list[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        errors.append("missing '# EOF' terminator")
    declared: dict[str, str] = {}
    for lineno, line in enumerate(lines, start=1):
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "info",
            ):
                errors.append(f"line {lineno}: malformed TYPE declaration")
            else:
                declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP and other comments
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        family = re.sub(r"_(bucket|sum|count|total)$", "", name)
        if name not in declared and family not in declared:
            errors.append(f"line {lineno}: sample {name!r} has no TYPE declaration")
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                errors.append(f"line {lineno}: non-numeric value {value!r}")
    return errors


__all__ = ["metric_name", "render_openmetrics", "validate_openmetrics"]
