"""Process-local metrics registry: named counters, gauges, histograms.

Every process — the parent and each pool worker — owns exactly one
*current* registry.  Pipeline code increments it through plain calls
(``inc`` / ``set_gauge`` / ``observe``); the executor installs a fresh
registry per run and folds worker-side snapshots back in as they arrive
on the ``TaskEvent`` return path, so the manifest's ``metrics`` section
is the union of every process's observations.

Fork safety: a pool worker forked from the parent inherits the parent's
registry object *with the parent's counts already in it*.  Shipping
those inherited counts back would double-count them, so the registry is
pid-stamped — the first :func:`get_registry` call in a forked child
discards the inherited state and starts from zero.

Metric names are dotted paths, ``<subsystem>.<quantity>`` (e.g.
``inspection.pdns_lookups``, ``kernel.inspect.seconds``); see
docs/observability.md for the naming conventions.
"""

from __future__ import annotations

import os
from typing import Any

#: Histogram bucket upper bounds, in the metric's native unit (latency
#: histograms observe seconds).  Shared by every histogram so snapshots
#: merge bucket-by-bucket without negotiation.
BUCKET_BOUNDS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Gauges that are process high-water marks: :meth:`MetricsRegistry.merge`
#: folds them in with ``max`` instead of last-write-wins, so the run-level
#: value is the peak over every contributing worker.
MAX_GAUGES: frozenset[str] = frozenset({"workers.rss_bytes"})


class _Histogram:
    """Count/sum/min/max plus fixed exponential buckets."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        # One slot per bound plus the +inf overflow slot.
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(BUCKET_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": round(self.min, 9),
            "max": round(self.max, 9),
            "buckets": list(self.buckets),
        }

    def merge_dict(self, data: dict[str, Any]) -> None:
        self.count += data["count"]
        self.total += data["sum"]
        self.min = min(self.min, data["min"])
        self.max = max(self.max, data["max"])
        for i, n in enumerate(data["buckets"]):
            self.buckets[i] += n


class MetricsRegistry:
    """One process's named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = _Histogram()
        histogram.observe(value)

    # -- reading -------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> dict[str, Any] | None:
        histogram = self._histograms.get(name)
        return histogram.to_dict() if histogram is not None else None

    @property
    def empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe copy of everything recorded so far, keys sorted."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].to_dict() for k in sorted(self._histograms)
            },
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold another process's snapshot in: counters and histograms
        add, gauges take the incoming value (last write wins, except
        the high-water gauges in :data:`MAX_GAUGES`, which keep the
        maximum seen across every contributing process)."""
        for name, n in snapshot.get("counters", {}).items():
            self.inc(name, n)
        for name, value in snapshot.get("gauges", {}).items():
            if name in MAX_GAUGES:
                value = max(value, self._gauges.get(name, value))
            self.set_gauge(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram()
            histogram.merge_dict(data)

    def drain(self) -> dict[str, Any] | None:
        """Snapshot-and-reset; None when nothing was recorded.

        Workers call this after every chunk so each snapshot carries
        only that chunk's deltas.
        """
        if self.empty:
            return None
        snapshot = self.snapshot()
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        return snapshot


_CURRENT = MetricsRegistry()
_OWNER_PID = os.getpid()
#: True in pool workers: chunk ends drain per-chunk deltas for the
#: reducer.  False in the process that owns the run's registry — its
#: counts are already *in* that registry, and draining them would make
#: the executor's merge double-count every parent-side chunk.
_DRAIN_DELTAS = False


def get_registry() -> MetricsRegistry:
    """The calling process's current registry.

    A forked child sees the parent's registry object on first call and
    replaces it with a fresh one so inherited counts are never shipped
    back as if the child had observed them; from then on the child
    drains per-chunk deltas.
    """
    global _CURRENT, _OWNER_PID, _DRAIN_DELTAS
    if os.getpid() != _OWNER_PID:
        _CURRENT = MetricsRegistry()
        _OWNER_PID = os.getpid()
        _DRAIN_DELTAS = True
    return _CURRENT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as this process's current one (per run)."""
    global _CURRENT, _OWNER_PID, _DRAIN_DELTAS
    _CURRENT = registry
    _OWNER_PID = os.getpid()
    _DRAIN_DELTAS = False
    return registry


def mark_worker() -> None:
    """Declare this process a pool worker (spawn-platform initializer)."""
    global _DRAIN_DELTAS
    get_registry()
    _DRAIN_DELTAS = True


def drain_worker_snapshot() -> dict[str, Any] | None:
    """Chunk-end hook: a worker's per-chunk metric deltas, else None.

    In the parent the chunk's counts already live in the run's registry,
    so nothing ships and nothing is cleared.  Workers stamp each
    snapshot with their instantaneous resident set (``workers.rss_bytes``,
    a :data:`MAX_GAUGES` member) — at chunk end the chunk's results are
    fully built, so the reading approximates the worker's working-set
    peak without the fork-inherited bias of ``ru_maxrss``/``VmHWM``.
    """
    registry = get_registry()
    if not _DRAIN_DELTAS:
        return None
    from repro.obs.memory import current_rss_bytes

    rss = current_rss_bytes()
    if rss is not None:
        registry.set_gauge("workers.rss_bytes", rss)
    return registry.drain()
