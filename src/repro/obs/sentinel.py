"""The regression sentinel: drift detection over ledger history.

``repro-hunt runs check`` compares a candidate run (by default the
newest ledger entry) against a **rolling baseline**: the per-metric
median of the last *N* prior runs sharing the candidate's ledger key.
Medians make the baseline robust to one outlier run; the matching key
(see :mod:`repro.obs.ledger`) guarantees the candidate is only ever
compared against runs of the same config/backend/data-fault shape.

Checked dimensions and their default tolerances:

* total wall time (+50% fractional),
* per-stage wall times (+75% fractional, stages under
  ``min_stage_seconds`` skipped — micro-stage jitter on a loaded CI
  box easily exceeds any honest fractional bound),
* peak RSS (+50% fractional),
* cache hit rate (-0.25 absolute drop),
* arena mean F1 (-0.05 absolute drop, arena records only).

Regressions are *one-sided*: a run that got faster, slimmer, or more
accurate never fails.  With fewer than ``min_baseline`` comparable
prior runs the check passes vacuously (exit 0) and says so — a fresh
ledger must not fail CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Any

from repro.obs.ledger import RunLedger, RunRecord


@dataclass(frozen=True, slots=True)
class Tolerances:
    """How much worse a candidate may be before the sentinel fails it."""

    #: Fractional ceiling on total wall time (0.5 = +50%).
    total_time: float = 0.5
    #: Fractional ceiling on any single stage's wall time.
    stage_time: float = 0.75
    #: Stages whose baseline wall time is below this are not checked.
    min_stage_seconds: float = 0.05
    #: Fractional ceiling on peak RSS growth.
    memory: float = 0.5
    #: Absolute ceiling on cache hit-rate drop (0.25 = 25 points).
    cache_hit_rate: float = 0.25
    #: Absolute ceiling on arena mean-F1 drop.
    f1: float = 0.05
    #: Minimum comparable prior runs before the check has teeth.
    min_baseline: int = 1

    @classmethod
    def from_args(cls, **overrides: float | int | None) -> Tolerances:
        """Build tolerances from CLI flags, ignoring unset (None) ones."""
        return cls(**{k: v for k, v in overrides.items() if v is not None})


@dataclass(frozen=True, slots=True)
class SentinelRow:
    """One checked metric: baseline vs candidate and the verdict."""

    metric: str
    baseline: float
    candidate: float
    limit: float  # the failing threshold for the candidate value
    regressed: bool

    @property
    def delta_pct(self) -> float | None:
        if self.baseline == 0:
            return None
        return (self.candidate - self.baseline) / self.baseline * 100.0


@dataclass
class SentinelReport:
    """The full verdict ``runs check`` renders and exits on."""

    key: str
    candidate_id: str
    baseline_ids: list[str]
    rows: list[SentinelRow] = field(default_factory=list)
    skipped_reason: str | None = None  # set when the check was vacuous

    @property
    def ok(self) -> bool:
        return not any(row.regressed for row in self.rows)

    @property
    def regressions(self) -> list[SentinelRow]:
        return [row for row in self.rows if row.regressed]

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "key": self.key,
            "candidate": self.candidate_id,
            "baseline": self.baseline_ids,
            "skipped_reason": self.skipped_reason,
            "rows": [
                {
                    "metric": row.metric,
                    "baseline": row.baseline,
                    "candidate": row.candidate,
                    "limit": row.limit,
                    "regressed": row.regressed,
                    "delta_pct": row.delta_pct,
                }
                for row in self.rows
            ],
        }


def _median_of(values: list[float | None]) -> float | None:
    present = [v for v in values if isinstance(v, (int, float))]
    return float(median(present)) if present else None


def _arena_mean_f1(record: RunRecord) -> float | None:
    if not record.leaderboard:
        return None
    scores = [
        row.get("mean_f1")
        for row in record.leaderboard
        if isinstance(row.get("mean_f1"), (int, float))
    ]
    return max(scores) if scores else None


def compare(
    candidate: RunRecord,
    baseline: list[RunRecord],
    tolerances: Tolerances = Tolerances(),
) -> SentinelReport:
    """Check one run against the medians of its baseline set."""
    report = SentinelReport(
        key=candidate.key,
        candidate_id=candidate.run_id,
        baseline_ids=[r.run_id for r in baseline],
    )
    if len(baseline) < tolerances.min_baseline:
        report.skipped_reason = (
            f"only {len(baseline)} comparable prior run(s) in the ledger "
            f"(need {tolerances.min_baseline}); nothing to regress against"
        )
        return report

    def _check_upper(
        metric: str, base: float | None, cand: float | None, fraction: float
    ) -> None:
        """One-sided fractional check: candidate must not exceed
        baseline × (1 + fraction)."""
        if base is None or cand is None:
            return
        limit = base * (1.0 + fraction)
        report.rows.append(
            SentinelRow(
                metric=metric,
                baseline=base,
                candidate=cand,
                limit=limit,
                regressed=cand > limit,
            )
        )

    def _check_lower(
        metric: str, base: float | None, cand: float | None, drop: float
    ) -> None:
        """One-sided absolute check: candidate must not fall below
        baseline − drop."""
        if base is None or cand is None:
            return
        limit = base - drop
        report.rows.append(
            SentinelRow(
                metric=metric,
                baseline=base,
                candidate=cand,
                limit=limit,
                regressed=cand < limit,
            )
        )

    _check_upper(
        "wall_seconds",
        _median_of([r.wall_seconds for r in baseline]),
        candidate.wall_seconds,
        tolerances.total_time,
    )
    for stage in candidate.stages:
        name = stage.get("name")
        base_walls = []
        for prior in baseline:
            prior_stage = prior.stage(name)
            base_walls.append(prior_stage.get("wall_seconds") if prior_stage else None)
        base_wall = _median_of(base_walls)
        if base_wall is None or base_wall < tolerances.min_stage_seconds:
            continue
        _check_upper(
            f"stage.{name}.wall_seconds",
            base_wall,
            stage.get("wall_seconds"),
            tolerances.stage_time,
        )
    _check_upper(
        "peak_rss_bytes",
        _median_of([r.peak_rss_bytes for r in baseline]),
        candidate.peak_rss_bytes,
        tolerances.memory,
    )
    _check_lower(
        "cache_hit_rate",
        _median_of([r.cache_hit_rate for r in baseline]),
        candidate.cache_hit_rate,
        tolerances.cache_hit_rate,
    )
    _check_lower(
        "arena_mean_f1",
        _median_of([_arena_mean_f1(r) for r in baseline]),
        _arena_mean_f1(candidate),
        tolerances.f1,
    )
    return report


def check_run(
    ledger: RunLedger,
    *,
    run_id: str | None = None,
    window: int = 5,
    tolerances: Tolerances = Tolerances(),
) -> SentinelReport:
    """Check the named (default: newest) ledger run against its history.

    The baseline is the up-to-``window`` runs *preceding* the candidate
    that share its ledger key.
    """
    entries = ledger.entries()
    if not entries:
        report = SentinelReport(key="", candidate_id="", baseline_ids=[])
        report.skipped_reason = "the ledger is empty; nothing to check"
        return report
    if run_id is None:
        candidate_entry = entries[-1]
    else:
        matching = [
            e for e in entries
            if e.run_id == run_id or e.run_id.startswith(run_id)
        ]
        if len(matching) != 1:
            raise ValueError(
                f"run {run_id!r} is {'ambiguous' if matching else 'unknown'} "
                f"in ledger {ledger.root}"
            )
        candidate_entry = matching[0]
    candidate = ledger.load_entry(candidate_entry)
    if candidate is None:
        raise ValueError(
            f"run {candidate_entry.run_id} failed checksum verification"
        )
    prior_entries = [
        e
        for e in entries
        if e.key == candidate_entry.key and e.seq < candidate_entry.seq
    ][-window:]
    baseline = [
        record
        for record in (ledger.load_entry(e) for e in prior_entries)
        if record is not None
    ]
    return compare(candidate, baseline, tolerances)


def format_sentinel(report: SentinelReport) -> str:
    """Render the verdict as the human-readable delta table."""
    lines = [
        f"sentinel: candidate {report.candidate_id or '(none)'} vs "
        f"median of {len(report.baseline_ids)} baseline run(s) "
        f"[key {report.key[:12] or '-'}]"
    ]
    if report.skipped_reason is not None:
        lines.append(f"PASS (vacuous): {report.skipped_reason}")
        return "\n".join(lines)
    header = (
        f"{'metric':<34} {'baseline':>12} {'candidate':>12} {'delta':>9} "
        f"{'limit':>12} {'verdict':>8}"
    )
    lines += [header, "-" * len(header)]
    for row in report.rows:
        delta = f"{row.delta_pct:+.1f}%" if row.delta_pct is not None else "-"
        lines.append(
            f"{row.metric:<34} {row.baseline:>12.4f} {row.candidate:>12.4f} "
            f"{delta:>9} {row.limit:>12.4f} "
            f"{'REGRESS' if row.regressed else 'ok':>8}"
        )
    verdict = "FAIL" if not report.ok else "PASS"
    lines.append(
        f"{verdict}: {len(report.regressions)} regression(s) across "
        f"{len(report.rows)} checked metric(s)"
    )
    return "\n".join(lines)


__all__ = [
    "SentinelReport",
    "SentinelRow",
    "Tolerances",
    "check_run",
    "compare",
    "format_sentinel",
]
