"""Hierarchical run tracing with Chrome trace-event export.

A trace is a tree of spans — run → stage → task-chunk — plus point
events (fault retries, injected slowdowns, pool rebuilds) attached to
whichever span was open when they happened.  Parent-side spans are
opened and closed with :meth:`Tracer.span`; worker-side chunk timings
ride home on the existing ``TaskEvent`` return path and are grafted in
with :meth:`Tracer.add_task_span`, so no extra IPC channel exists for
tracing.

Timestamps are ``time.perf_counter()`` readings.  On platforms where
that clock is system-wide (Linux ``CLOCK_MONOTONIC``) worker and parent
spans share a timebase; elsewhere worker tracks may be offset, which
skews the picture but never the durations.

Two export formats:

* :meth:`Tracer.write_jsonl` — one span per line, full structure, for
  programmatic analysis;
* :meth:`Tracer.write_chrome` — the Chrome trace-event JSON object
  format, loadable in Perfetto or ``chrome://tracing``.

A disabled tracer (``Tracer(enabled=False)``, or the shared
:data:`NULL_TRACER`) turns every call into an immediate no-op, which is
what keeps untraced runs at seed-baseline cost.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Iterator


@dataclass
class SpanEvent:
    """A point-in-time annotation on a span (retry, slowdown, rebuild)."""

    name: str
    ts: float
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One timed node of the run → stage → task-chunk hierarchy."""

    span_id: int
    parent_id: int | None
    name: str
    category: str  # "run" | "stage" | "task"
    start: float
    end: float
    pid: int
    attrs: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects one run's span tree; inert when ``enabled`` is False."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, category: str, **attrs: Any) -> Iterator[Span | None]:
        """Open a child of the innermost open span for the block's duration."""
        if not self.enabled:
            yield None
            return
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            category=category,
            start=perf_counter(),
            end=0.0,
            pid=os.getpid(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = perf_counter()
            self._stack.pop()
            self._spans.append(span)

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point event to the innermost open span."""
        if not self.enabled or not self._stack:
            return
        self._stack[-1].events.append(SpanEvent(name, perf_counter(), dict(attrs)))

    def add_task_span(
        self, name: str, start: float, end: float, pid: int, **attrs: Any
    ) -> None:
        """Graft a worker-measured chunk span under the open stage span.

        The (start, end) pair traveled back with the chunk's
        ``TaskEvent``; the span is recorded against the *worker's* pid
        so each worker renders as its own track.
        """
        if not self.enabled:
            return
        self._spans.append(
            Span(
                span_id=self._next_id,
                parent_id=self._stack[-1].span_id if self._stack else None,
                name=name,
                category="task",
                start=start,
                end=end,
                pid=pid,
                attrs=dict(attrs),
            )
        )
        self._next_id += 1

    # -- reading -------------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Closed spans, in completion order."""
        return list(self._spans)

    def worker_pids(self) -> set[int]:
        return {span.pid for span in self._spans if span.category == "task"}

    # -- export --------------------------------------------------------------

    def _origin(self) -> float:
        return min((s.start for s in self._spans), default=0.0)

    def to_jsonl(self) -> str:
        """One JSON object per span, timestamps in µs from run start."""
        origin = self._origin()
        lines = []
        for span in self._spans:
            lines.append(
                json.dumps(
                    {
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        "name": span.name,
                        "category": span.category,
                        "ts_us": round((span.start - origin) * 1e6, 1),
                        "dur_us": round(span.duration * 1e6, 1),
                        "pid": span.pid,
                        "attrs": span.attrs,
                        "events": [
                            {
                                "name": e.name,
                                "ts_us": round((e.ts - origin) * 1e6, 1),
                                "attrs": e.attrs,
                            }
                            for e in span.events
                        ],
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome trace-event JSON object format.

        Spans become complete ("ph": "X") events; span events become
        instants ("ph": "i"); process-name metadata labels the parent
        and each worker track.
        """
        origin = self._origin()
        trace_events: list[dict[str, Any]] = []
        named_pids: set[int] = set()
        for span in self._spans:
            if span.pid not in named_pids:
                named_pids.add(span.pid)
                role = "worker" if span.category == "task" else "pipeline"
                trace_events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": span.pid,
                        "tid": 0,
                        "args": {"name": f"{role} (pid {span.pid})"},
                    }
                )
            trace_events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": round((span.start - origin) * 1e6, 1),
                    "dur": round(span.duration * 1e6, 1),
                    "pid": span.pid,
                    "tid": 0,
                    "args": dict(span.attrs),
                }
            )
            for event in span.events:
                trace_events.append(
                    {
                        "name": event.name,
                        "cat": span.category,
                        "ph": "i",
                        "s": "t",
                        "ts": round((event.ts - origin) * 1e6, 1),
                        "pid": span.pid,
                        "tid": 0,
                        "args": dict(event.attrs),
                    }
                )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_jsonl(self, path: str | Path) -> None:
        Path(path).write_text(self.to_jsonl())

    def write_chrome(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_chrome(), indent=1) + "\n")


#: Shared inert tracer: every record call is a single attribute test.
NULL_TRACER = Tracer(enabled=False)
