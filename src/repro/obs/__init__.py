"""Observability: tracing, metrics, memory, events, ledger, provenance.

Zero-dependency instrumentation threaded through the staged executor,
both backends, the fault layer, and the CLI:

* ``trace`` — hierarchical spans (run → stage → task-chunk) with fault
  retries / slowdowns / pool rebuilds as span events, exported as JSONL
  and Chrome trace-event JSON (Perfetto / ``chrome://tracing``).
  Opt-in: a disabled tracer is a no-op and untraced runs stay at
  seed-baseline cost.
* ``metrics`` — a process-local registry of named counters, gauges, and
  latency histograms; worker snapshots ride the ``TaskEvent`` return
  path and are merged by the executor into the run manifest's
  ``metrics`` section.
* ``memory`` — stage-boundary peak-RSS sampling (always on, one syscall
  per boundary) plus opt-in tracemalloc allocation deltas, recorded
  into run-manifest/5.
* ``events`` — live heartbeat events (run/stage/chunk boundaries,
  retries, ETA) through composable sinks: a JSONL ``--events`` stream,
  a TTY progress line, in-memory recording for tests.
* ``ledger`` — an append-only, checksummed on-disk history of every
  pipeline/arena run (schema ``repro-ledger/1``), queryable via
  ``repro-hunt runs``.
* ``sentinel`` — drift detection: the newest run against the median of
  its matching-key ledger history, with configurable tolerances.
* ``exporters`` — Prometheus/OpenMetrics text exposition of the
  metrics registry and ledger summary (``repro-hunt metrics export``).
* ``provenance`` — a typed per-domain evidence trail recording which
  scan snapshots, pDNS rows, CT entries, and routing decisions drove
  each funnel transition; rendered by ``repro-hunt explain``.

See docs/observability.md for the span model and naming conventions.
"""

from repro.obs.events import (
    EVENTS_SCHEMA,
    CompositeEventSink,
    EventRecorder,
    EventSink,
    JsonlEventSink,
    NULL_EVENTS,
    TTYProgressSink,
    read_events,
)
from repro.obs.exporters import render_openmetrics, validate_openmetrics
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LedgerInfo,
    RunLedger,
    RunRecord,
    ledger_key,
)
from repro.obs.memory import MemorySampler, peak_rss_bytes
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    drain_worker_snapshot,
    get_registry,
    mark_worker,
    set_registry,
)
from repro.obs.provenance import (
    EVIDENCE_KINDS,
    EvidenceRef,
    FunnelTransition,
    format_provenance,
    routing_ref,
    trail_from_inspection,
    trail_from_pivot,
    transitions_from_dicts,
    transitions_to_dicts,
)
from repro.obs.sentinel import SentinelReport, Tolerances, check_run, format_sentinel
from repro.obs.trace import NULL_TRACER, Span, SpanEvent, Tracer

__all__ = [
    "BUCKET_BOUNDS",
    "MetricsRegistry",
    "drain_worker_snapshot",
    "get_registry",
    "mark_worker",
    "set_registry",
    "EVENTS_SCHEMA",
    "CompositeEventSink",
    "EventRecorder",
    "EventSink",
    "JsonlEventSink",
    "NULL_EVENTS",
    "TTYProgressSink",
    "read_events",
    "render_openmetrics",
    "validate_openmetrics",
    "LEDGER_SCHEMA",
    "LedgerInfo",
    "RunLedger",
    "RunRecord",
    "ledger_key",
    "MemorySampler",
    "peak_rss_bytes",
    "SentinelReport",
    "Tolerances",
    "check_run",
    "format_sentinel",
    "EVIDENCE_KINDS",
    "EvidenceRef",
    "FunnelTransition",
    "format_provenance",
    "routing_ref",
    "trail_from_inspection",
    "trail_from_pivot",
    "transitions_from_dicts",
    "transitions_to_dicts",
    "NULL_TRACER",
    "Span",
    "SpanEvent",
    "Tracer",
]
