"""Observability: tracing, metrics, and decision provenance.

Zero-dependency instrumentation threaded through the staged executor,
both backends, the fault layer, and the CLI:

* ``trace`` — hierarchical spans (run → stage → task-chunk) with fault
  retries / slowdowns / pool rebuilds as span events, exported as JSONL
  and Chrome trace-event JSON (Perfetto / ``chrome://tracing``).
  Opt-in: a disabled tracer is a no-op and untraced runs stay at
  seed-baseline cost.
* ``metrics`` — a process-local registry of named counters, gauges, and
  latency histograms; worker snapshots ride the ``TaskEvent`` return
  path and are merged by the executor into the run manifest's
  ``metrics`` section (schema ``run-manifest/3``).
* ``provenance`` — a typed per-domain evidence trail recording which
  scan snapshots, pDNS rows, CT entries, and routing decisions drove
  each funnel transition; rendered by ``repro-hunt explain``.

See docs/observability.md for the span model and naming conventions.
"""

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    drain_worker_snapshot,
    get_registry,
    mark_worker,
    set_registry,
)
from repro.obs.provenance import (
    EVIDENCE_KINDS,
    EvidenceRef,
    FunnelTransition,
    format_provenance,
    routing_ref,
    trail_from_inspection,
    trail_from_pivot,
    transitions_from_dicts,
    transitions_to_dicts,
)
from repro.obs.trace import NULL_TRACER, Span, SpanEvent, Tracer

__all__ = [
    "BUCKET_BOUNDS",
    "MetricsRegistry",
    "drain_worker_snapshot",
    "get_registry",
    "mark_worker",
    "set_registry",
    "EVIDENCE_KINDS",
    "EvidenceRef",
    "FunnelTransition",
    "format_provenance",
    "routing_ref",
    "trail_from_inspection",
    "trail_from_pivot",
    "transitions_from_dicts",
    "transitions_to_dicts",
    "NULL_TRACER",
    "Span",
    "SpanEvent",
    "Tracer",
]
