"""Per-domain decision provenance: why did this verdict happen?

The paper's authors manually walked scan, pDNS, and CT evidence for
every candidate (§5); this module makes that walk a first-class,
machine-readable artifact.  Each identified domain carries a trail of
:class:`FunnelTransition`\\ s — one per funnel step the domain passed
through — and every transition cites the concrete data rows that drove
it as typed :class:`EvidenceRef`\\ s:

* ``scan``    — an annotated scan snapshot (date + IP) of the transient;
* ``pdns``    — a passive-DNS aggregate row (NS change or A redirect);
* ``ct``      — a CT log entry (crt.sh id, issuer, names);
* ``routing`` — an IP → ASN / country attribution lookup;
* ``rule``    — a methodology rule that fired without a data row.

Trails are assembled in the parent during report assembly from products
that are identical on every backend, so two backends produce equal
trails and the golden reports (which do not serialize trails) stay
byte-identical.  ``repro-hunt explain <domain>`` renders the trail.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from dataclasses import dataclass

if TYPE_CHECKING:
    from repro.core.inspection import Evidence, InspectionResult
    from repro.core.pivot import PivotFinding
    from repro.core.shortlist import ShortlistEntry
    from repro.ct.crtsh import CrtShEntry
    from repro.pdns.database import PdnsRecord

#: kinds an :class:`EvidenceRef` may carry.
EVIDENCE_KINDS = ("scan", "pdns", "ct", "routing", "rule")


@dataclass(frozen=True, slots=True)
class EvidenceRef:
    """One concrete piece of data behind a funnel transition."""

    kind: str   # one of EVIDENCE_KINDS
    ref: str    # the row's identity (date+IP, rrset, crt.sh id, ...)
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVIDENCE_KINDS:
            raise ValueError(
                f"unknown evidence kind {self.kind!r} (expected one of {EVIDENCE_KINDS})"
            )


@dataclass(frozen=True, slots=True)
class FunnelTransition:
    """One funnel step the domain passed through, with its evidence."""

    stage: str      # "classify" | "shortlist" | "inspect" | "t1_star" | "pivot" | "assemble"
    outcome: str    # e.g. "TRANSIENT (period 2)", "HIJACKED (T1)"
    rationale: str
    evidence: tuple[EvidenceRef, ...] = ()


# -- evidence-ref constructors -------------------------------------------------


def _pdns_ref(row: PdnsRecord) -> EvidenceRef:
    return EvidenceRef(
        kind="pdns",
        ref=f"{row.rrname} {row.rtype.value} {row.rdata}",
        detail=f"seen {row.first_seen.isoformat()}..{row.last_seen.isoformat()} "
        f"({row.count} obs)",
    )


def _ct_ref(entry: CrtShEntry) -> EvidenceRef:
    names = ", ".join(entry.certificate.sans)
    return EvidenceRef(
        kind="ct",
        ref=f"crt.sh #{entry.crtsh_id}",
        detail=f"{entry.issuer} for [{names}], issued {entry.issued_on.isoformat()}, "
        f"logged {entry.logged_at.isoformat()}",
    )


def _sorted_pdns(rows: list[PdnsRecord]) -> list[PdnsRecord]:
    return sorted(rows, key=lambda r: (r.first_seen, r.rrname, r.rtype.value, r.rdata))


def routing_ref(ip: str, asn: int | None, cc: str | None) -> EvidenceRef:
    located = " ".join(
        part
        for part in (f"AS{asn}" if asn is not None else None, cc)
        if part is not None
    )
    return EvidenceRef(
        kind="routing",
        ref=ip,
        detail=f"attributed to {located}" if located else "no attribution available",
    )


# -- trail builders ------------------------------------------------------------


def _classify_transition(entry: ShortlistEntry) -> FunnelTransition:
    transient = entry.transient
    snapshots = tuple(
        EvidenceRef(
            kind="scan",
            ref=f"{record.scan_date.isoformat()} {record.ip}",
            detail=f"AS{record.asn} {record.country}, "
            f"cert crt.sh #{record.crtsh_id or '?'} by {record.issuer}",
        )
        for record in sorted(
            entry.transient_records, key=lambda r: (r.scan_date, r.ip)
        )
    )
    return FunnelTransition(
        stage="classify",
        outcome=f"TRANSIENT (period {entry.period_index})",
        rationale=(
            f"deployment map shows a transient on AS{transient.asn} "
            f"({transient.first_seen.isoformat()}..{transient.last_seen.isoformat()}) "
            "alongside the stable infrastructure"
        ),
        evidence=snapshots,
    )


def _shortlist_transition(entry: ShortlistEntry) -> FunnelTransition:
    reasons = [
        "transient ASN not org-related to stable ASNs",
        "transient country differs from stable countries",
    ]
    evidence = [
        EvidenceRef(kind="rule", ref="sensitive-name", detail=name)
        for name in entry.sensitive_names
    ]
    if entry.truly_anomalous:
        reasons.append("truly anomalous: stable the full period before and after")
        evidence.append(
            EvidenceRef(
                kind="rule",
                ref="truly-anomalous",
                detail="stable classification in the adjacent periods",
            )
        )
    return FunnelTransition(
        stage="shortlist",
        outcome=f"shortlisted as {entry.subpattern.name}",
        rationale="; ".join(reasons),
        evidence=tuple(evidence),
    )


def _inspection_evidence(evidence: Evidence) -> tuple[EvidenceRef, ...]:
    refs: list[EvidenceRef] = []
    refs.extend(_pdns_ref(row) for row in _sorted_pdns(evidence.ns_changes))
    refs.extend(_pdns_ref(row) for row in _sorted_pdns(evidence.a_redirects))
    refs.extend(
        _ct_ref(entry)
        for entry in sorted(evidence.ct_entries, key=lambda e: e.crtsh_id)
    )
    return tuple(refs)


def trail_from_inspection(
    result: InspectionResult,
    locate: Callable[[str], tuple[int | None, str | None]] | None = None,
) -> tuple[FunnelTransition, ...]:
    """The full funnel trail for a directly-inspected finding."""
    entry = result.entry
    transitions = [
        _classify_transition(entry),
        _shortlist_transition(entry),
    ]

    verdict = result.verdict.name
    detection = result.detection.value if result.detection else "-"
    evidence = list(_inspection_evidence(result.evidence))
    if result.malicious_cert is not None:
        cert_ref = _ct_ref(result.malicious_cert)
        if cert_ref not in evidence:
            evidence.append(cert_ref)
    window = result.evidence.window
    rationale = "; ".join(result.evidence.notes) or (
        f"corroborated in window {window.start.isoformat()}.."
        f"{window.end.isoformat() if window.end else '...'}"
    )
    transitions.append(
        FunnelTransition(
            stage="inspect",
            outcome=f"{verdict} ({detection})",
            rationale=rationale,
            evidence=tuple(evidence),
        )
    )

    from repro.core.types import DetectionType  # local: avoid import cycle

    if result.detection is DetectionType.T1_STAR:
        transitions.append(
            FunnelTransition(
                stage="t1_star",
                outcome="upgraded to HIJACKED (T1*)",
                rationale="transient IPs shared with independently confirmed hijacks",
                evidence=tuple(
                    EvidenceRef(kind="rule", ref="shared-infrastructure", detail=ip)
                    for ip in sorted(result.attacker_ips)
                ),
            )
        )

    transitions.append(_assemble_transition(sorted(result.attacker_ips), locate))
    return tuple(transitions)


def trail_from_pivot(
    pivot: PivotFinding,
    locate: Callable[[str], tuple[int | None, str | None]] | None = None,
) -> tuple[FunnelTransition, ...]:
    """The trail for a victim found through shared attacker infrastructure."""
    evidence = [_pdns_ref(row) for row in _sorted_pdns(pivot.pdns_rows)]
    if pivot.malicious_cert is not None:
        evidence.append(_ct_ref(pivot.malicious_cert))
    transitions = [
        FunnelTransition(
            stage="pivot",
            outcome=f"{pivot.verdict.name} ({pivot.detection.value})",
            rationale=(
                f"pDNS pivot on confirmed attacker infrastructure {pivot.via}: "
                "short-lived resolutions tie this domain to it"
            ),
            evidence=tuple(evidence),
        ),
        _assemble_transition(sorted(pivot.attacker_ips), locate),
    ]
    return tuple(transitions)


def _assemble_transition(
    attacker_ips: list[str],
    locate: Callable[[str], tuple[int | None, str | None]] | None,
) -> FunnelTransition:
    refs: list[EvidenceRef] = []
    for ip in attacker_ips:
        asn, cc = locate(ip) if locate is not None else (None, None)
        refs.append(routing_ref(ip, asn, cc))
    return FunnelTransition(
        stage="assemble",
        outcome="finding assembled",
        rationale="attacker infrastructure attributed via routing table / geolocation",
        evidence=tuple(refs),
    )


# -- serialization + rendering -------------------------------------------------


def transitions_to_dicts(transitions: tuple[FunnelTransition, ...]) -> list[dict]:
    return [
        {
            "stage": t.stage,
            "outcome": t.outcome,
            "rationale": t.rationale,
            "evidence": [
                {"kind": e.kind, "ref": e.ref, "detail": e.detail} for e in t.evidence
            ],
        }
        for t in transitions
    ]


def transitions_from_dicts(rows: list[dict]) -> tuple[FunnelTransition, ...]:
    return tuple(
        FunnelTransition(
            stage=row["stage"],
            outcome=row["outcome"],
            rationale=row.get("rationale", ""),
            evidence=tuple(
                EvidenceRef(
                    kind=e["kind"], ref=e["ref"], detail=e.get("detail", "")
                )
                for e in row.get("evidence", [])
            ),
        )
        for row in rows
    )


def format_provenance(
    domain: str, transitions: tuple[FunnelTransition, ...]
) -> str:
    """Render a trail as the ``repro-hunt explain`` block."""
    if not transitions:
        return f"{domain}: no provenance recorded"
    lines = [f"provenance: {domain}"]
    for transition in transitions:
        lines.append(f"  [{transition.stage}] {transition.outcome}")
        lines.append(f"      why: {transition.rationale}")
        for ref in transition.evidence:
            detail = f"  ({ref.detail})" if ref.detail else ""
            lines.append(f"      {ref.kind:<8} {ref.ref}{detail}")
    return "\n".join(lines)
