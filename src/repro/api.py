"""The small stable facade for external callers.

Examples, notebooks, and downstream tooling should import from here
instead of reaching into deep module paths: these few names are the
supported surface, and they stay put while the internals keep moving.

    from repro import api

    run = api.run_study("small")                # build + run a scenario pack
    print(len(run.report.findings))

    names = api.list_detectors()                # every registered method
    result = api.run_arena(packs=["small"])     # the evaluation arena
    findings = api.load_report("findings.jsonl")

Everything here is a thin delegation; the heavy imports happen lazily
inside each call so ``import repro.api`` stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:
    from repro.core.pipeline import PipelineReport
    from repro.core.report import DomainFinding
    from repro.detect.arena import ArenaResult
    from repro.exec.metrics import RunMetrics


@dataclass
class StudyRun:
    """What :func:`run_study` hands back: the world's datasets, the
    pipeline's report, and the run manifest."""

    scenario: str
    study: Any
    report: "PipelineReport"
    metrics: "RunMetrics"


def run_study(
    scenario: str = "paper",
    *,
    seed: int | None = None,
    n_background: int | None = None,
    config: Any = None,
    faults: Any = None,
    backend: Any = None,
) -> StudyRun:
    """Build a registered scenario pack and run the funnel over it.

    ``scenario`` is a pack name from
    :func:`repro.world.scenarios.list_packs` ("paper", "kyrgyzstan",
    "small", or anything registered since).  ``seed`` / ``n_background``
    override the pack's canonical defaults.
    """
    from repro.world.scenarios import build_pack

    study = build_pack(scenario, seed=seed, n_background=n_background)
    report, metrics = study.profile_pipeline(
        config=config, backend=backend, faults=faults
    )
    return StudyRun(scenario=scenario, study=study, report=report, metrics=metrics)


def load_report(path: str | Path) -> "list[DomainFinding]":
    """Load findings previously exported as JSONL (``save_findings`` /
    ``repro-hunt hunt --out`` / ``repro-hunt paper --save``)."""
    from repro.io import load_findings

    return load_findings(path)


def list_detectors() -> tuple[str, ...]:
    """Every registered detector name (built-ins plus entry points)."""
    import repro.detect as detect

    return detect.list_detectors()


def run_arena(
    packs: Sequence[str] | None = None,
    detectors: Sequence[str] | None = None,
    **kwargs: Any,
) -> "ArenaResult":
    """Sweep registered detectors across scenario packs; see
    :func:`repro.detect.arena.run_arena` for the full signature."""
    from repro.detect.arena import run_arena as _run_arena

    return _run_arena(packs, detectors, **kwargs)


__all__ = ["StudyRun", "list_detectors", "load_report", "run_arena", "run_study"]
