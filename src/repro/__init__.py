"""repro — retroactive identification of targeted DNS infrastructure hijacking.

A from-scratch reproduction of the IMC 2022 paper's methodology and its
entire data substrate.  The public API has three layers:

* ``repro.core`` — the detection pipeline (deployment maps, pattern
  classification, shortlisting, pDNS/CT inspection, pivot analysis).
* ``repro.world`` — the synthetic Internet that generates causally
  consistent scan / passive-DNS / CT datasets, including the full paper
  scenario (``repro.world.scenarios.paper_study``).
* ``repro.analysis`` — the evaluation analyses reproducing each table
  and figure of the paper.

Quick start::

    from repro.world.scenarios import small_world
    from repro.world.sim import run_study

    study = run_study(small_world())
    report = study.run_pipeline()
    for finding in report.hijacked():
        print(finding.domain, finding.detection, finding.attacker_ips)
"""

from repro.core import HijackPipeline, PipelineConfig, PipelineReport

__version__ = "1.0.0"

__all__ = ["HijackPipeline", "PipelineConfig", "PipelineReport", "__version__"]
