"""Step 4 — inspecting suspicious deployments (Section 4.4).

Codifies the paper's manual corroboration rules against passive DNS and
CT data:

* **Worth examining.**  A transient whose certificate was issued many
  weeks before the deployment became visible, with no pDNS or CT
  activity in the timeframe, is a legitimate deployment briefly visible
  to scans — dropped (the paper's 8143 → 1256 prune).
* **Pattern T1** (transient returns a NEW certificate): hijacked when
  pDNS shows a short-lived nameserver-delegation change or a resolution
  of a secured subdomain to the transient's IPs, with the certificate
  issued near that change.  With no pDNS at all, the entry is deferred:
  if its IP was used to hijack another confirmed victim it becomes T1*.
* **Pattern T2** (transient returns the STABLE certificate — the proxy
  prelude): hijacked when pDNS shows the redirection AND CT shows a new
  certificate for a sensitive subdomain in the window; with redirection
  but no certificate the domain is *targeted*; truly anomalous maps with
  no corroboration at all are likewise *targeted* (attack never
  launched, or our data missed it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, timedelta

from repro.core.shortlist import ShortlistEntry
from repro.core.types import DetectionType, SubPattern, Verdict
from repro.ct.crtsh import CrtShEntry, CrtShService
from repro.net.names import is_sensitive_name, registered_domain
from repro.net.timeline import DateInterval
from repro.obs.metrics import get_registry
from repro.pdns.database import PassiveDNSDatabase, PdnsRecord
from repro.tls.certificate import Certificate


@dataclass(frozen=True, slots=True)
class InspectionConfig:
    """Windows and proximities for corroboration."""

    window_days: int = 30           # search radius around the transient
    issue_proximity_days: int = 21  # cert issuance vs. DNS-change proximity
    stale_cert_days: int = 45       # cert older than this at first sight = stale
    anomalous_ns_max_span: int = 60 # short-lived delegation threshold
    pivot_max_span: int = 60        # (used by pivot) short-lived resolution


@dataclass
class Evidence:
    """What the data sources said about one suspicious deployment."""

    window: DateInterval
    ns_changes: list[PdnsRecord] = field(default_factory=list)
    a_redirects: list[PdnsRecord] = field(default_factory=list)
    ct_entries: list[CrtShEntry] = field(default_factory=list)
    stale_certificate: bool = False
    notes: list[str] = field(default_factory=list)

    @property
    def has_pdns(self) -> bool:
        return bool(self.ns_changes or self.a_redirects)

    @property
    def has_ct(self) -> bool:
        return bool(self.ct_entries)


@dataclass
class InspectionResult:
    """The verdict for one shortlisted entry."""

    entry: ShortlistEntry
    verdict: Verdict
    detection: DetectionType | None
    evidence: Evidence
    malicious_cert: CrtShEntry | None = None
    attacker_ips: frozenset[str] = frozenset()
    attacker_ns: frozenset[str] = frozenset()
    pending_t1_star: bool = False

    @property
    def domain(self) -> str:
        return self.entry.domain


class Inspector:
    """Corroborates shortlisted transients against pDNS and CT."""

    def __init__(
        self,
        pdns: PassiveDNSDatabase,
        crtsh: CrtShService,
        config: InspectionConfig | None = None,
    ) -> None:
        self._pdns = pdns
        self._crtsh = crtsh
        self._config = config or InspectionConfig()

    # -- helpers ---------------------------------------------------------------

    def _window_for(self, entry: ShortlistEntry) -> DateInterval:
        radius = timedelta(days=self._config.window_days)
        start = entry.transient.first_seen - radius
        end = entry.transient.last_seen + radius
        for cert in self._transient_certs(entry):
            if abs((cert.not_before - entry.transient.first_seen).days) <= 90:
                start = min(start, cert.not_before - radius)
        return DateInterval(start, end)

    @staticmethod
    def _transient_certs(entry: ShortlistEntry) -> list[Certificate]:
        certs: dict[str, Certificate] = {}
        for record in entry.transient_records:
            certs[record.certificate.fingerprint] = record.certificate
        return list(certs.values())

    def _anomalous_ns_changes(
        self, domain: str, window: DateInterval
    ) -> list[PdnsRecord]:
        """Short-lived NS rows that differ from the long-term delegation."""
        get_registry().inc("inspection.pdns_lookups")
        rows = self._pdns.ns_history(domain)
        if not rows:
            return []
        longest = max(r.span_days for r in rows)
        stable_ns = {r.rdata for r in rows if r.span_days == longest}
        anomalous = [
            r
            for r in rows
            if r.rdata not in stable_ns
            and r.span_days <= self._config.anomalous_ns_max_span
            and r.overlaps(window)
        ]
        return anomalous

    def _redirects_to(
        self, entry: ShortlistEntry, window: DateInterval, extra_names: tuple[str, ...] = ()
    ) -> list[PdnsRecord]:
        """pDNS A rows pointing names under the domain at the transient IPs."""
        get_registry().inc("inspection.pdns_lookups", 1 + len(extra_names))
        transient_ips = entry.transient.ips
        redirects: list[PdnsRecord] = []
        for row in self._pdns.query_domain(entry.domain, window):
            if row.rtype.value != "A":
                continue
            if row.rdata in transient_ips:
                redirects.append(row)
        for name in extra_names:
            for row in self._pdns.a_history(name, window):
                if row.rdata in transient_ips and row not in redirects:
                    redirects.append(row)
        return redirects

    def _suspicious_ct_certs(
        self, entry: ShortlistEntry, window: DateInterval
    ) -> list[CrtShEntry]:
        """New, trusted, sensitive-subdomain certs logged in the window.

        A routine renewal re-issues an already-seen (SAN-set, issuer)
        combination and is not suspicious; only a first-time combination
        (new name coverage or a new CA) counts — e.g. a bare
        ``mail.victim.gov`` certificate from a free CA where the domain
        always bought multi-SAN certificates from another.
        """
        get_registry().inc("inspection.ct_searches")
        stable_fps = entry.classification.stable_cert_fingerprints()
        history = self._crtsh.search(entry.domain)
        seen_combos = {
            (frozenset(e.certificate.sans), e.certificate.issuer)
            for e in history
            if e.certificate.not_before < window.start
        }
        suspicious: list[CrtShEntry] = []
        for ct_entry in history:
            cert = ct_entry.certificate
            if not (window.start <= cert.not_before <= (window.end or cert.not_before)):
                continue
            if cert.fingerprint in stable_fps:
                continue
            if (frozenset(cert.sans), cert.issuer) in seen_combos:
                continue
            if not any(is_sensitive_name(name) for name in cert.sans):
                continue
            suspicious.append(ct_entry)
        return suspicious

    # -- the verdict -----------------------------------------------------------

    def inspect_many(self, entries: list[ShortlistEntry]) -> list[InspectionResult]:
        """Inspect entries independently, results aligned with the input.

        Each entry's verdict depends only on that entry plus the
        read-only pDNS/CT datasets, which is what makes this the
        pipeline's step-4 fan-out unit.
        """
        return [self.inspect(entry) for entry in entries]

    def inspect(self, entry: ShortlistEntry) -> InspectionResult:
        get_registry().inc("inspection.inspected")
        window = self._window_for(entry)
        evidence = Evidence(window=window)

        transient_certs = self._transient_certs(entry)
        stale = bool(transient_certs) and all(
            (entry.transient.first_seen - c.not_before).days > self._config.stale_cert_days
            for c in transient_certs
        )

        evidence.ns_changes = self._anomalous_ns_changes(entry.domain, window)
        secured_names = tuple(
            name for cert in transient_certs for name in cert.sans
            if not name.startswith("*.")
        )
        evidence.a_redirects = self._redirects_to(entry, window, secured_names)
        evidence.ct_entries = self._suspicious_ct_certs(entry, window)
        # The stale-certificate prune applies only to T1-pattern entries: a
        # T1 transient showing a certificate issued many weeks earlier is a
        # legitimate deployment briefly visible to scans.  A T2 transient
        # serves the victim's long-lived stable certificate BY DEFINITION,
        # so its age says nothing.
        evidence.stale_certificate = (
            stale and not evidence.has_pdns and entry.subpattern is SubPattern.T1
        )

        if evidence.stale_certificate and not evidence.has_ct:
            evidence.notes.append(
                "certificate predates the transient deployment and no pDNS/CT "
                "activity in the timeframe: legitimate deployment briefly visible"
            )
            return InspectionResult(entry, Verdict.BENIGN, None, evidence)

        if entry.subpattern is SubPattern.T1:
            return self._inspect_t1(entry, evidence)
        return self._inspect_t2(entry, evidence)

    def _issued_near_change(
        self, cert: Certificate, evidence: Evidence
    ) -> bool:
        """Was the certificate issued close to an observed DNS change?"""
        proximity = self._config.issue_proximity_days
        change_dates: list[date] = []
        change_dates.extend(r.first_seen for r in evidence.ns_changes)
        change_dates.extend(r.first_seen for r in evidence.a_redirects)
        return any(abs((d - cert.not_before).days) <= proximity for d in change_dates)

    def _attacker_infra(
        self, entry: ShortlistEntry, evidence: Evidence
    ) -> tuple[frozenset[str], frozenset[str]]:
        ips = set(entry.transient.ips)
        ips.update(r.rdata for r in evidence.a_redirects)
        ns = {r.rdata for r in evidence.ns_changes}
        return frozenset(ips), frozenset(ns)

    def _inspect_t1(self, entry: ShortlistEntry, evidence: Evidence) -> InspectionResult:
        transient_certs = self._transient_certs(entry)
        corroborated = evidence.has_pdns and any(
            self._issued_near_change(cert, evidence) for cert in transient_certs
        )
        if corroborated:
            ips, ns = self._attacker_infra(entry, evidence)
            malicious = self._lookup_ct(transient_certs)
            return InspectionResult(
                entry, Verdict.HIJACKED, DetectionType.T1, evidence,
                malicious_cert=malicious, attacker_ips=ips, attacker_ns=ns,
            )
        if not evidence.has_pdns:
            # No pDNS corroboration: defer for the shared-infrastructure
            # second pass (T1*).  Requires the suspicious cert to be fresh.
            fresh = any(
                abs((entry.transient.first_seen - c.not_before).days)
                <= self._config.stale_cert_days
                for c in transient_certs
            )
            if fresh and entry.sensitive_names:
                evidence.notes.append("no pDNS corroboration; candidate for T1*")
                return InspectionResult(
                    entry, Verdict.INCONCLUSIVE, None, evidence,
                    malicious_cert=self._lookup_ct(transient_certs),
                    attacker_ips=entry.transient.ips,
                    pending_t1_star=True,
                )
        evidence.notes.append("T1 without convincing corroboration")
        return InspectionResult(entry, Verdict.INCONCLUSIVE, None, evidence)

    def _inspect_t2(self, entry: ShortlistEntry, evidence: Evidence) -> InspectionResult:
        if evidence.has_pdns and evidence.has_ct:
            malicious = min(
                evidence.ct_entries,
                key=lambda e: abs((e.issued_on - entry.transient.first_seen).days),
            )
            ips, ns = self._attacker_infra(entry, evidence)
            return InspectionResult(
                entry, Verdict.HIJACKED, DetectionType.T2, evidence,
                malicious_cert=malicious, attacker_ips=ips, attacker_ns=ns,
            )
        if evidence.has_pdns and not evidence.has_ct:
            # Redirection observed but no suspicious certificate issued:
            # the ais.gov.vn rule — targeted, not hijacked.
            ips, ns = self._attacker_infra(entry, evidence)
            evidence.notes.append("pDNS redirection without a suspicious certificate")
            return InspectionResult(
                entry, Verdict.TARGETED, DetectionType.T2_TARGETED, evidence,
                attacker_ips=ips, attacker_ns=ns,
            )
        if entry.truly_anomalous:
            evidence.notes.append(
                "truly anomalous transient (stable before and after) with no "
                "corroboration: targeted but not hijacked"
            )
            return InspectionResult(
                entry, Verdict.TARGETED, DetectionType.T2_TARGETED, evidence,
                attacker_ips=entry.transient.ips,
            )
        evidence.notes.append("T2 without corroboration and not truly anomalous")
        return InspectionResult(entry, Verdict.INCONCLUSIVE, None, evidence)

    def _lookup_ct(self, certs: list[Certificate]) -> CrtShEntry | None:
        for cert in certs:
            if cert.crtsh_id:
                found = self._crtsh.lookup_id(cert.crtsh_id)
                if found is not None:
                    return found
        return None

    # -- second pass ------------------------------------------------------------

    @staticmethod
    def resolve_t1_star(
        pending: list[InspectionResult],
        confirmed_attacker_ips: frozenset[str],
    ) -> list[InspectionResult]:
        """Upgrade deferred T1 entries whose IPs hijacked other domains."""
        upgraded: list[InspectionResult] = []
        for result in pending:
            if not result.pending_t1_star:
                continue
            shared = result.entry.transient.ips & confirmed_attacker_ips
            if shared:
                result.verdict = Verdict.HIJACKED
                result.detection = DetectionType.T1_STAR
                result.attacker_ips = frozenset(result.entry.transient.ips)
                result.evidence.notes.append(
                    f"transient IP(s) {sorted(shared)} shared with confirmed hijacks"
                )
                result.pending_t1_star = False
                upgraded.append(result)
        return upgraded


# -- the compact wire form -----------------------------------------------------

#: Canonical code tables for the encoded result: codes index these
#: tuples, a pure function of the enum declaration order.
ENCODED_VERDICTS: tuple[Verdict, ...] = tuple(Verdict)
ENCODED_DETECTIONS: tuple[DetectionType, ...] = tuple(DetectionType)
_VERDICT_CODE = {verdict: code for code, verdict in enumerate(ENCODED_VERDICTS)}
_DETECTION_CODE = {det: code for code, det in enumerate(ENCODED_DETECTIONS)}


def encode_inspection(
    result: InspectionResult,
    pdns: PassiveDNSDatabase,
    crtsh: CrtShService,
) -> tuple:
    """One result as plain ints and strings — the worker return value
    and the inspection stage's cache product.

    Evidence rows travel as references into the columnar stores: pDNS
    rows by table row id (the table's row order is canonical, a pure
    function of the aggregated content) and CT entries by
    ``(certificate fingerprint, publication ordinal)`` (stable even
    across log insertion orders).  The shortlist entry itself is *not*
    encoded — results align positionally with the stage's shortlist.
    """
    ptable = pdns.table
    evidence = result.evidence
    window = (
        evidence.window.start.toordinal(),
        evidence.window.end.toordinal() if evidence.window.end is not None else None,
    )
    ctable = crtsh.table

    def ct_ref(entry: CrtShEntry) -> tuple[str, int]:
        ordinal = entry.logged_at.toordinal()
        # Resolves now so a malformed reference fails at encode time.
        ctable.row_of(entry.certificate.fingerprint, ordinal)
        return (entry.certificate.fingerprint, ordinal)

    return (
        _VERDICT_CODE[result.verdict],
        None if result.detection is None else _DETECTION_CODE[result.detection],
        window,
        tuple(ptable.row_of(r.rrname, r.rtype, r.rdata) for r in evidence.ns_changes),
        tuple(ptable.row_of(r.rrname, r.rtype, r.rdata) for r in evidence.a_redirects),
        tuple(ct_ref(entry) for entry in evidence.ct_entries),
        evidence.stale_certificate,
        tuple(evidence.notes),
        None if result.malicious_cert is None else ct_ref(result.malicious_cert),
        tuple(sorted(result.attacker_ips)),
        tuple(sorted(result.attacker_ns)),
        result.pending_t1_star,
    )


def decode_inspection(
    encoded: tuple,
    entry: ShortlistEntry,
    pdns: PassiveDNSDatabase,
    crtsh: CrtShService,
) -> InspectionResult:
    """Materialize one result against the restoring process's tables."""
    (
        verdict_code,
        detection_code,
        (start_ord, end_ord),
        ns_rows,
        a_rows,
        ct_refs,
        stale,
        notes,
        malicious_ref,
        attacker_ips,
        attacker_ns,
        pending,
    ) = encoded
    ptable = pdns.table
    evidence = Evidence(
        window=DateInterval(
            date.fromordinal(start_ord),
            date.fromordinal(end_ord) if end_ord is not None else None,
        ),
        ns_changes=[ptable.record(row) for row in ns_rows],
        a_redirects=[ptable.record(row) for row in a_rows],
        ct_entries=[crtsh.entry_at(fp, ordinal) for fp, ordinal in ct_refs],
        stale_certificate=stale,
        notes=list(notes),
    )
    return InspectionResult(
        entry=entry,
        verdict=ENCODED_VERDICTS[verdict_code],
        detection=(
            None if detection_code is None else ENCODED_DETECTIONS[detection_code]
        ),
        evidence=evidence,
        malicious_cert=(
            None
            if malicious_ref is None
            else crtsh.entry_at(malicious_ref[0], malicious_ref[1])
        ),
        attacker_ips=frozenset(attacker_ips),
        attacker_ns=frozenset(attacker_ns),
        pending_t1_star=pending,
    )
