"""Findings and report rendering.

A :class:`DomainFinding` carries everything one row of the paper's
Table 2 / Table 3 reports: how the domain was identified, when, the
corroboration flags, and both sides' infrastructure.  Rendering helpers
produce aligned text tables for the examples and benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from repro.core.types import DetectionType, Verdict
from repro.obs.provenance import FunnelTransition


@dataclass
class DomainFinding:
    """One identified victim domain."""

    domain: str
    verdict: Verdict
    detection: DetectionType | None
    first_evidence: date | None
    subdomain: str = ""
    pdns_corroborated: bool = False
    ct_corroborated: bool = False
    attacker_ips: tuple[str, ...] = ()
    attacker_asn: int | None = None
    attacker_cc: str | None = None
    attacker_ns: tuple[str, ...] = ()
    victim_asns: tuple[int, ...] = ()
    victim_ccs: tuple[str, ...] = ()
    crtsh_id: int = 0
    issuer_ca: str = ""
    notes: tuple[str, ...] = ()
    #: The decision provenance trail: one typed transition per funnel
    #: step this domain passed through, each citing the scan / pDNS /
    #: CT / routing evidence that drove it (``repro-hunt explain``).
    provenance: tuple[FunnelTransition, ...] = ()

    @property
    def hijack_month(self) -> str:
        if self.first_evidence is None:
            return "?"
        return self.first_evidence.strftime("%b'%y")


@dataclass
class FunnelStats:
    """The Section 4.2-4.4 funnel, measured on this run's data."""

    n_domains: int = 0
    n_maps: int = 0
    n_stable: int = 0
    n_transition: int = 0
    n_transient: int = 0
    n_noisy: int = 0
    n_shortlisted: int = 0
    n_truly_anomalous: int = 0
    n_worth_examining: int = 0
    n_t1_hijacked: int = 0
    n_t2_hijacked: int = 0
    n_t1_star: int = 0
    n_pivot_ip: int = 0
    n_pivot_ns: int = 0
    n_targeted: int = 0
    prune_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def n_hijacked(self) -> int:
        return self.n_t1_hijacked + self.n_t2_hijacked + self.n_t1_star + self.n_pivot_ip + self.n_pivot_ns

    def fraction(self, count: int) -> float:
        return count / self.n_maps if self.n_maps else 0.0

    def rows(self) -> list[tuple[str, int, float]]:
        return [
            ("stable", self.n_stable, self.fraction(self.n_stable)),
            ("transition", self.n_transition, self.fraction(self.n_transition)),
            ("transient", self.n_transient, self.fraction(self.n_transient)),
            ("noisy", self.n_noisy, self.fraction(self.n_noisy)),
        ]


def _mark(flag: bool) -> str:
    return "Y" if flag else "x"


def format_findings_table(findings: list[DomainFinding]) -> str:
    """Render findings in the layout of the paper's Table 2 / Table 3."""
    header = (
        f"{'Type':<6} {'Hij.':<7} {'CC':<3} {'Domain':<26} {'Sub.':<11} "
        f"{'pDNS':<5} {'crt':<4} {'IP':<16} {'ASN':<7} {'CC':<3} "
        f"{'Victim ASNs':<20} {'CCs'}"
    )
    lines = [header, "-" * len(header)]
    for finding in findings:
        detection = finding.detection.value if finding.detection else "-"
        attacker_ip = finding.attacker_ips[0] if finding.attacker_ips else "-"
        lines.append(
            f"{detection:<6} {finding.hijack_month:<7} "
            f"{(finding.victim_ccs[0] if finding.victim_ccs else '--'):<3} "
            f"{finding.domain:<26} {(finding.subdomain or '-'):<11} "
            f"{_mark(finding.pdns_corroborated):<5} {_mark(finding.ct_corroborated):<4} "
            f"{attacker_ip:<16} {str(finding.attacker_asn or '-'):<7} "
            f"{(finding.attacker_cc or '--'):<3} "
            f"{str(list(finding.victim_asns) or '-'):<20} "
            f"{list(finding.victim_ccs) or '-'}"
        )
    return "\n".join(lines)


def format_funnel(stats: FunnelStats) -> str:
    """Render the map-classification and verdict funnel."""
    lines = [
        f"deployment maps: {stats.n_maps} (over {stats.n_domains} domains)",
    ]
    for name, count, fraction in stats.rows():
        lines.append(f"  {name:<11} {count:>8}  ({fraction:7.2%})")
    lines.append(f"shortlisted:      {stats.n_shortlisted}")
    lines.append(f"  truly anomalous: {stats.n_truly_anomalous}")
    lines.append(f"worth examining:  {stats.n_worth_examining}")
    lines.append(
        "hijacked: "
        f"{stats.n_hijacked} (T1={stats.n_t1_hijacked}, T2={stats.n_t2_hijacked}, "
        f"T1*={stats.n_t1_star}, P-IP={stats.n_pivot_ip}, P-NS={stats.n_pivot_ns})"
    )
    lines.append(f"targeted: {stats.n_targeted}")
    if stats.prune_reasons:
        lines.append("prunes:")
        for reason, count in sorted(stats.prune_reasons.items()):
            lines.append(f"  {reason:<22} {count}")
    return "\n".join(lines)
