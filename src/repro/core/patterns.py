"""Step 2 — classifying deployment maps (Section 4.2, Figures 3-5).

The classifier decides, per deployment, whether it is the *stable*
background (present from the start of the domain's visibility and still
present at the end), a *transition* (appears mid-period and persists —
a migration or expansion), or a *transient* (appears and disappears
within the three-month threshold).  The map's top-level kind follows:
any transient makes it TRANSIENT; otherwise any transition makes it
TRANSITION; otherwise STABLE — unless no deployment qualifies as stable
at all, in which case the map is NOISY ("domains that move deployments
continually and have no stable deployment").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.deployment import Deployment, DeploymentMap
from repro.core.types import PatternKind, SubPattern
from repro.net.timeline import TRANSIENT_MAX_DAYS


@dataclass(frozen=True, slots=True)
class PatternConfig:
    """Thresholds of the classifier.

    ``transient_max_days`` is the paper's three-month threshold ("the
    typical validity period of free certificates").  ``edge_scans``
    controls how close to the domain's first/last visible scan a
    deployment must reach to count as spanning the period's edge.
    ``stable_min_scans`` keeps a two-sample blip from qualifying as the
    stable background.
    """

    transient_max_days: int = TRANSIENT_MAX_DAYS
    edge_scans: int = 2
    stable_min_scans: int = 3
    noisy_min_deployments: int = 3


@dataclass
class Classification:
    """The classifier's output for one deployment map."""

    map: DeploymentMap
    kind: PatternKind
    subpatterns: tuple[SubPattern, ...]
    stable: list[Deployment] = field(default_factory=list)
    transitions: list[Deployment] = field(default_factory=list)
    transients: list[Deployment] = field(default_factory=list)

    @property
    def domain(self) -> str:
        return self.map.domain

    @property
    def period_index(self) -> int:
        return self.map.period.index

    def stable_cert_fingerprints(self) -> frozenset[str]:
        if not self.stable:
            return frozenset()
        return frozenset().union(*(d.cert_fingerprints for d in self.stable))

    def stable_asns(self) -> frozenset[int]:
        return frozenset(d.asn for d in self.stable)

    def stable_countries(self) -> frozenset[str]:
        if not self.stable:
            return frozenset()
        return frozenset().union(*(d.countries for d in self.stable))


def _spans_start(deployment: Deployment, visible: tuple, edge_scans: int) -> bool:
    return deployment.first_seen <= visible[min(edge_scans, len(visible) - 1)]

def _spans_end(deployment: Deployment, visible: tuple, edge_scans: int) -> bool:
    return deployment.last_seen >= visible[max(-1 - edge_scans, -len(visible))]


def _stable_subpatterns(stable: list[Deployment]) -> list[SubPattern]:
    """Which of Figure 3's shapes does the stable background exhibit?"""
    subpatterns: list[SubPattern] = []
    for deployment in stable:
        certs_by_date: list[frozenset[str]] = [g.cert_fingerprints for g in deployment.groups]
        all_certs = deployment.cert_fingerprints
        multi_country = len(deployment.countries) > 1
        if len(all_certs) == 1:
            subpatterns.append(SubPattern.S3 if multi_country else SubPattern.S1)
            continue
        # Multiple certificates: rollover (S2) when at most a short overlap
        # between consecutive certificates; otherwise an added certificate
        # on the same infrastructure (S4).
        overlap_scans = sum(1 for certs in certs_by_date if len(certs) > 1)
        if overlap_scans <= 2:
            subpatterns.append(SubPattern.S2)
        else:
            subpatterns.append(SubPattern.S4)
        if multi_country:
            subpatterns.append(SubPattern.S3)
    return subpatterns


def _transition_subpattern(
    transition: Deployment, stable: list[Deployment], visible: tuple, edge_scans: int
) -> SubPattern:
    """Which of Figure 4's shapes is this transition?"""
    new_certs = transition.cert_fingerprints
    for old in stable:
        if old.asn == transition.asn:
            continue
        old_runs_to_end = _spans_end(old, visible, edge_scans)
        if old_runs_to_end:
            shares_cert = bool(new_certs & old.cert_fingerprints)
            return SubPattern.X1 if shares_cert else SubPattern.X2
    return SubPattern.X3


def classify(map_: DeploymentMap, config: PatternConfig | None = None) -> Classification:
    """Classify one deployment map."""
    config = config or PatternConfig()
    visible = map_.visible_dates
    if not visible:
        return Classification(map_, PatternKind.NO_DATA, ())

    stable: list[Deployment] = []
    transitions: list[Deployment] = []
    transients: list[Deployment] = []
    for deployment in map_.deployments:
        starts = _spans_start(deployment, visible, config.edge_scans)
        ends = _spans_end(deployment, visible, config.edge_scans)
        if starts and ends and deployment.scan_count >= config.stable_min_scans:
            stable.append(deployment)
        elif ends and not starts:
            transitions.append(deployment)
        elif deployment.span_days <= config.transient_max_days:
            transients.append(deployment)
        else:
            # Long-lived but neither edge-spanning nor short: treat as a
            # transition that also ended (an X3 whose old deployment this
            # is, or generally unstable behaviour).
            transitions.append(deployment)

    subpatterns: list[SubPattern] = []
    if not stable:
        # An X3 migration has no single edge-to-edge deployment: accept the
        # special case of exactly one early deployment handing off to one
        # late deployment with minimal overlap.
        if len(map_.deployments) == 2:
            first, second = sorted(map_.deployments, key=lambda d: d.first_seen)
            # The paper allows a small overlap between old and new (the
            # shaded region of Figure 4), so only edge coverage matters —
            # but both halves must be substantial: for a domain visible in
            # a handful of scans, "spans the edges" is trivially true and
            # says nothing.
            handoff = (
                _spans_start(first, visible, config.edge_scans)
                and _spans_end(second, visible, config.edge_scans)
                and first.scan_count >= config.stable_min_scans
                and second.scan_count >= config.stable_min_scans
                and len(visible) >= 4 * config.stable_min_scans
            )
            if handoff:
                # Neither half is a *stable* background (the old one ends,
                # the new one starts mid-period); report both as the
                # transition pair.
                return Classification(
                    map_, PatternKind.TRANSITION, (SubPattern.X3,),
                    transitions=[first, second],
                )
        if len(map_.deployments) >= config.noisy_min_deployments:
            return Classification(
                map_, PatternKind.NOISY, (), transients=list(map_.deployments)
            )
        # A single short-lived deployment with nothing else: too little
        # signal to call anything; the paper's "too noisy or unstable".
        return Classification(map_, PatternKind.NOISY, (), transients=list(map_.deployments))

    if transients:
        stable_certs = frozenset().union(*(d.cert_fingerprints for d in stable))
        for transient in transients:
            if transient.cert_fingerprints <= stable_certs:
                subpatterns.append(SubPattern.T2)
            else:
                subpatterns.append(SubPattern.T1)
        return Classification(
            map_, PatternKind.TRANSIENT, tuple(dict.fromkeys(subpatterns)),
            stable=stable, transitions=transitions, transients=transients,
        )

    if transitions:
        for transition in transitions:
            subpatterns.append(
                _transition_subpattern(transition, stable, visible, config.edge_scans)
            )
        return Classification(
            map_, PatternKind.TRANSITION, tuple(dict.fromkeys(subpatterns)),
            stable=stable, transitions=transitions,
        )

    subpatterns = _stable_subpatterns(stable)
    return Classification(
        map_, PatternKind.STABLE, tuple(dict.fromkeys(subpatterns)), stable=stable
    )


def transient_subpattern_of(classification: Classification, transient: Deployment) -> SubPattern:
    """T1 or T2 for a specific transient deployment within a map."""
    stable_certs = classification.stable_cert_fingerprints()
    if transient.cert_fingerprints and transient.cert_fingerprints <= stable_certs:
        return SubPattern.T2
    return SubPattern.T1


# -- the encoded (columnar) classifier ----------------------------------------

#: Canonical code tables for the encoded wire form: codes index these
#: tuples, so they are a pure function of the enum declaration order and
#: mean the same thing in every process and cache entry.
ENCODED_KINDS: tuple[PatternKind, ...] = tuple(PatternKind)
ENCODED_SUBPATTERNS: tuple[SubPattern, ...] = tuple(SubPattern)
KIND_CODE = {kind: code for code, kind in enumerate(ENCODED_KINDS)}
SUBPATTERN_CODE = {sub: code for code, sub in enumerate(ENCODED_SUBPATTERNS)}

#: One encoded classification: ``(kind_code, subpattern_codes,
#: stable_positions, transition_positions, transient_positions)`` —
#: positions index the encoded (equivalently, decoded) deployment list.
EncodedClassification = tuple[
    int, tuple[int, ...], tuple[int, ...], tuple[int, ...], tuple[int, ...]
]


def classify_encoded(
    enc_deployments, date_ords: tuple[int, ...], config: PatternConfig | None = None
) -> EncodedClassification:
    """Classify one period's encoded deployments in interned-id space.

    Mirrors :func:`classify` over the compact
    :data:`~repro.core.deployment.EncodedDeployment` wire form instead
    of the decoded object map: scan-calendar indices stand in for dates
    (the mapping is monotone, so every edge comparison agrees), pool ids
    stand in for ASN/certificate/country values (the interning bijection
    preserves every equality and subset test), and ``date_ords`` — the
    period's scan-date ordinals — supplies the one genuinely calendar
    quantity, the transient span in days.  The wire form doubles as the
    classification stage's cache product; :func:`decode_classification`
    materializes the object view against the decoded map.
    """
    config = config or PatternConfig()
    # Per-deployment digests: (first_index, last_index, scan_count,
    # cert-id set, asn_id); runs are date-ordered so first/last are the
    # ends of the first/last run.
    digests = []
    visible_set: set[int] = set()
    for asn_id, runs in enc_deployments:
        first_index = runs[0][0][0]
        last_index = runs[-1][0][-1]
        scan_count = 0
        certs: set[int] = set()
        for indices, _ips, cert_ids, _ccs in runs:
            scan_count += len(indices)
            visible_set.update(indices)
            certs.update(cert_ids)
        digests.append((first_index, last_index, scan_count, certs, asn_id))
    visible = sorted(visible_set)
    if not visible:
        return (KIND_CODE[PatternKind.NO_DATA], (), (), (), ())

    start_edge = visible[min(config.edge_scans, len(visible) - 1)]
    end_edge = visible[max(-1 - config.edge_scans, -len(visible))]

    stable: list[int] = []
    transitions: list[int] = []
    transients: list[int] = []
    for pos, (first_index, last_index, scan_count, _certs, _asn_id) in enumerate(digests):
        starts = first_index <= start_edge
        ends = last_index >= end_edge
        if starts and ends and scan_count >= config.stable_min_scans:
            stable.append(pos)
        elif ends and not starts:
            transitions.append(pos)
        elif date_ords[last_index] - date_ords[first_index] + 1 <= config.transient_max_days:
            transients.append(pos)
        else:
            transitions.append(pos)

    subpatterns: list[int] = []
    if not stable:
        if len(enc_deployments) == 2:
            early, late = sorted(range(2), key=lambda p: digests[p][0])
            handoff = (
                digests[early][0] <= start_edge
                and digests[late][1] >= end_edge
                and digests[early][2] >= config.stable_min_scans
                and digests[late][2] >= config.stable_min_scans
                and len(visible) >= 4 * config.stable_min_scans
            )
            if handoff:
                return (
                    KIND_CODE[PatternKind.TRANSITION],
                    (SUBPATTERN_CODE[SubPattern.X3],),
                    (),
                    (early, late),
                    (),
                )
        # Noisy either way: many deployments with no stable background,
        # or a lone short-lived deployment with too little signal.
        return (
            KIND_CODE[PatternKind.NOISY],
            (),
            (),
            (),
            tuple(range(len(enc_deployments))),
        )

    if transients:
        stable_certs: set[int] = set()
        for pos in stable:
            stable_certs.update(digests[pos][3])
        for pos in transients:
            subpatterns.append(
                SUBPATTERN_CODE[SubPattern.T2]
                if digests[pos][3] <= stable_certs
                else SUBPATTERN_CODE[SubPattern.T1]
            )
        return (
            KIND_CODE[PatternKind.TRANSIENT],
            tuple(dict.fromkeys(subpatterns)),
            tuple(stable),
            tuple(transitions),
            tuple(transients),
        )

    if transitions:
        for pos in transitions:
            new_certs = digests[pos][3]
            sub = SubPattern.X3
            for old in stable:
                if digests[old][4] == digests[pos][4]:
                    continue
                if digests[old][1] >= end_edge:
                    sub = (
                        SubPattern.X1
                        if new_certs & digests[old][3]
                        else SubPattern.X2
                    )
                    break
            subpatterns.append(SUBPATTERN_CODE[sub])
        return (
            KIND_CODE[PatternKind.TRANSITION],
            tuple(dict.fromkeys(subpatterns)),
            tuple(stable),
            tuple(transitions),
            (),
        )

    for pos in stable:
        _first, _last, _count, all_certs, _asn_id = digests[pos]
        countries: set[int] = set()
        overlap_scans = 0
        for indices, _ips, cert_ids, cc_ids in enc_deployments[pos][1]:
            countries.update(cc_ids)
            if len(cert_ids) > 1:
                overlap_scans += len(indices)
        multi_country = len(countries) > 1
        if len(all_certs) == 1:
            subpatterns.append(
                SUBPATTERN_CODE[SubPattern.S3 if multi_country else SubPattern.S1]
            )
            continue
        subpatterns.append(
            SUBPATTERN_CODE[SubPattern.S2 if overlap_scans <= 2 else SubPattern.S4]
        )
        if multi_country:
            subpatterns.append(SUBPATTERN_CODE[SubPattern.S3])
    return (
        KIND_CODE[PatternKind.STABLE],
        tuple(dict.fromkeys(subpatterns)),
        tuple(stable),
        (),
        (),
    )


def decode_classification(
    map_: DeploymentMap, encoded: EncodedClassification
) -> Classification:
    """Materialize a :class:`Classification` over the decoded map."""
    kind_code, sub_codes, stable_pos, transition_pos, transient_pos = encoded
    deployments = map_.deployments
    return Classification(
        map=map_,
        kind=ENCODED_KINDS[kind_code],
        subpatterns=tuple(ENCODED_SUBPATTERNS[code] for code in sub_codes),
        stable=[deployments[pos] for pos in stable_pos],
        transitions=[deployments[pos] for pos in transition_pos],
        transients=[deployments[pos] for pos in transient_pos],
    )
