"""Step 1 — building deployment maps (Section 4.1).

A *deployment group* is the observable infrastructure (IPs + the
certificates they return) of one ASN for one domain on one scan date.
Groups of the same ASN clustered longitudinally form a *deployment*;
all deployments of a domain within one six-month period form its
*deployment map*.  A long gap in an ASN's presence splits it into two
deployments, so a provider that disappears for months and returns reads
as two events rather than one continuous deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from repro.net.timeline import DateInterval, Period
from repro.scan.annotate import AnnotatedScanRecord
from repro.scan.dataset import ScanDataset


@dataclass(frozen=True, slots=True)
class DeploymentGroup:
    """One (domain, scan-date, ASN) cell of observable infrastructure."""

    domain: str
    scan_date: date
    asn: int
    ips: frozenset[str]
    cert_fingerprints: frozenset[str]
    countries: frozenset[str]


@dataclass
class Deployment:
    """A deployment group seen longitudinally: one ASN over time."""

    domain: str
    asn: int
    groups: list[DeploymentGroup] = field(default_factory=list)

    @property
    def first_seen(self) -> date:
        return self.groups[0].scan_date

    @property
    def last_seen(self) -> date:
        return self.groups[-1].scan_date

    @property
    def span_days(self) -> int:
        return (self.last_seen - self.first_seen).days + 1

    @property
    def scan_count(self) -> int:
        return len(self.groups)

    @property
    def ips(self) -> frozenset[str]:
        return frozenset().union(*(g.ips for g in self.groups))

    @property
    def cert_fingerprints(self) -> frozenset[str]:
        return frozenset().union(*(g.cert_fingerprints for g in self.groups))

    @property
    def countries(self) -> frozenset[str]:
        return frozenset().union(*(g.countries for g in self.groups))

    @property
    def interval(self) -> DateInterval:
        return DateInterval(self.first_seen, self.last_seen)

    def dates(self) -> tuple[date, ...]:
        return tuple(g.scan_date for g in self.groups)


@dataclass
class DeploymentMap:
    """All deployments of one domain within one analysis period."""

    domain: str
    period: Period
    deployments: list[Deployment]
    scan_dates_in_period: tuple[date, ...]
    records: list[AnnotatedScanRecord] = field(default_factory=list, repr=False)

    @property
    def visible_dates(self) -> tuple[date, ...]:
        seen = sorted({g.scan_date for d in self.deployments for g in d.groups})
        return tuple(seen)

    @property
    def presence(self) -> float:
        """Fraction of the period's scans in which the domain appears."""
        if not self.scan_dates_in_period:
            return 0.0
        return len(self.visible_dates) / len(self.scan_dates_in_period)

    @property
    def asns(self) -> frozenset[int]:
        return frozenset(d.asn for d in self.deployments)

    def deployments_for_asn(self, asn: int) -> list[Deployment]:
        return [d for d in self.deployments if d.asn == asn]

    def __len__(self) -> int:
        return len(self.deployments)


def _cluster(
    domain: str,
    groups: list[DeploymentGroup],
    scan_dates: tuple[date, ...],
    max_gap_scans: int,
) -> list[Deployment]:
    """Cluster same-ASN groups, splitting on gaps > ``max_gap_scans``."""
    index_of = {d: i for i, d in enumerate(scan_dates)}
    by_asn: dict[int, list[DeploymentGroup]] = {}
    for group in groups:
        by_asn.setdefault(group.asn, []).append(group)

    deployments: list[Deployment] = []
    for asn, asn_groups in by_asn.items():
        asn_groups.sort(key=lambda g: g.scan_date)
        current = Deployment(domain=domain, asn=asn, groups=[asn_groups[0]])
        for group in asn_groups[1:]:
            gap = index_of[group.scan_date] - index_of[current.groups[-1].scan_date]
            if gap > max_gap_scans:
                deployments.append(current)
                current = Deployment(domain=domain, asn=asn, groups=[group])
            else:
                current.groups.append(group)
        deployments.append(current)
    deployments.sort(key=lambda d: (d.first_seen, d.asn))
    return deployments


def build_deployment_map(
    domain: str,
    records: list[AnnotatedScanRecord],
    period: Period,
    scan_dates_in_period: tuple[date, ...],
    max_gap_scans: int = 6,
    with_records: bool = True,
) -> DeploymentMap:
    """Build one domain's deployment map for one period.

    ``with_records=False`` leaves ``map.records`` empty — the execution
    backends use this so worker results ship only the clustered groups,
    and :func:`attach_period_records` restores the raw records in the
    parent from its own copy of the dataset.
    """
    in_period = [r for r in records if period.contains(r.scan_date)]
    cells: dict[tuple[date, int], dict[str, set]] = {}
    for record in in_period:
        cell = cells.setdefault(
            (record.scan_date, record.asn), {"ips": set(), "certs": set(), "ccs": set()}
        )
        cell["ips"].add(record.ip)
        cell["certs"].add(record.certificate.fingerprint)
        cell["ccs"].add(record.country)

    groups = [
        DeploymentGroup(
            domain=domain,
            scan_date=scan_date,
            asn=asn,
            ips=frozenset(cell["ips"]),
            cert_fingerprints=frozenset(cell["certs"]),
            countries=frozenset(cell["ccs"]),
        )
        for (scan_date, asn), cell in cells.items()
    ]
    deployments = _cluster(domain, groups, scan_dates_in_period, max_gap_scans)
    return DeploymentMap(
        domain=domain,
        period=period,
        deployments=deployments,
        scan_dates_in_period=scan_dates_in_period,
        records=in_period if with_records else [],
    )


def attach_period_records(map_: DeploymentMap, dataset: ScanDataset) -> None:
    """Restore ``map.records`` on a map built with ``with_records=False``.

    Produces the exact list ``build_deployment_map`` would have attached:
    the domain's records filtered to the map's period, in dataset order.
    """
    map_.records = [
        r
        for r in dataset.records_for(map_.domain)
        if map_.period.contains(r.scan_date)
    ]


def build_domain_maps(
    dataset: ScanDataset,
    domain: str,
    periods: tuple[Period, ...],
    max_gap_scans: int = 6,
    with_records: bool = True,
) -> list[tuple[tuple[str, int], DeploymentMap]]:
    """Build one domain's maps across all periods, keyed (domain, index).

    This is the per-domain unit of work the execution backends shard:
    it touches only the one domain's records, so any partition of the
    domain set rebuilds exactly :func:`build_deployment_maps`.
    """
    records = dataset.records_for(domain)
    maps: list[tuple[tuple[str, int], DeploymentMap]] = []
    for period in periods:
        dates_in_period = dataset.scan_dates_in(period)
        if not dates_in_period:
            continue
        if not any(period.contains(r.scan_date) for r in records):
            continue
        maps.append(
            (
                (domain, period.index),
                build_deployment_map(
                    domain, records, period, dates_in_period, max_gap_scans,
                    with_records=with_records,
                ),
            )
        )
    return maps


def build_deployment_maps(
    dataset: ScanDataset,
    periods: tuple[Period, ...],
    max_gap_scans: int = 6,
) -> dict[tuple[str, int], DeploymentMap]:
    """Build maps for every (domain, period) with any scan visibility.

    Keys are (domain, period.index).  Periods with no scan dates (or in
    which the domain never appears) produce no map, mirroring the paper:
    a deployment map exists only for domains with a publicly visible
    certificate in that period.
    """
    maps: dict[tuple[str, int], DeploymentMap] = {}
    for domain in dataset.domains():
        maps.update(build_domain_maps(dataset, domain, periods, max_gap_scans))
    return maps
