"""Step 1 — building deployment maps (Section 4.1).

A *deployment group* is the observable infrastructure (IPs + the
certificates they return) of one ASN for one domain on one scan date.
Groups of the same ASN clustered longitudinally form a *deployment*;
all deployments of a domain within one six-month period form its
*deployment map*.  A long gap in an ASN's presence splits it into two
deployments, so a provider that disappears for months and returns reads
as two events rather than one continuous deployment.

Two construction paths exist:

* the **columnar kernel** (:func:`encode_domain_maps` +
  :func:`decode_domain_maps`, wrapped by :func:`build_domain_maps`)
  clusters directly over the dataset's
  :class:`~repro.scan.table.ScanTable` column slices — each period is a
  bisect-found contiguous CSR slice, cells aggregate interned integer
  ids, and the result is a compact int-tuple *encoded* form that worker
  results and cache entries ship instead of object graphs;
* the **row path** (:func:`build_deployment_map`) takes explicit record
  lists — the original reference algorithm, still the API for callers
  holding loose records and the oracle the differential property tests
  compare the columnar kernel against.

Both are required to produce identical maps (group partition, ordering,
and ``map.records``) for any dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from functools import cached_property

from repro.net.timeline import DateInterval, Period
from repro.scan.annotate import AnnotatedScanRecord
from repro.scan.dataset import ScanDataset


@dataclass(frozen=True, slots=True)
class DeploymentGroup:
    """One (domain, scan-date, ASN) cell of observable infrastructure."""

    domain: str
    scan_date: date
    asn: int
    ips: frozenset[str]
    cert_fingerprints: frozenset[str]
    countries: frozenset[str]


_group_new = DeploymentGroup.__new__
_group_set = object.__setattr__


def _make_group(
    domain: str,
    scan_date: date,
    asn: int,
    ips: frozenset[str],
    cert_fingerprints: frozenset[str],
    countries: frozenset[str],
) -> DeploymentGroup:
    """Construct a group bypassing the frozen-dataclass ``__init__``.

    The generated init re-enters ``__setattr__`` per field through the
    FrozenInstanceError guard; the decode path builds tens of thousands
    of groups per run, so it pays the plain-slot-store price instead.
    """
    group = _group_new(DeploymentGroup)
    _group_set(group, "domain", domain)
    _group_set(group, "scan_date", scan_date)
    _group_set(group, "asn", asn)
    _group_set(group, "ips", ips)
    _group_set(group, "cert_fingerprints", cert_fingerprints)
    _group_set(group, "countries", countries)
    return group


@dataclass
class Deployment:
    """A deployment group seen longitudinally: one ASN over time.

    The union views (``ips``, ``cert_fingerprints``, ``countries``) and
    ``interval`` are cached on first access: classification, the
    shortlist checks, and inspection all hit them repeatedly, and a
    deployment's groups are fixed once clustering assembled it.  Call
    :meth:`invalidate` after mutating ``groups`` by hand.
    """

    domain: str
    asn: int
    groups: list[DeploymentGroup] = field(default_factory=list)

    @property
    def first_seen(self) -> date:
        return self.groups[0].scan_date

    @property
    def last_seen(self) -> date:
        return self.groups[-1].scan_date

    @property
    def span_days(self) -> int:
        return (self.last_seen - self.first_seen).days + 1

    @property
    def scan_count(self) -> int:
        return len(self.groups)

    @cached_property
    def ips(self) -> frozenset[str]:
        return frozenset().union(*(g.ips for g in self.groups))

    @cached_property
    def cert_fingerprints(self) -> frozenset[str]:
        return frozenset().union(*(g.cert_fingerprints for g in self.groups))

    @cached_property
    def countries(self) -> frozenset[str]:
        return frozenset().union(*(g.countries for g in self.groups))

    @cached_property
    def interval(self) -> DateInterval:
        return DateInterval(self.first_seen, self.last_seen)

    def invalidate(self) -> None:
        """Drop the cached union views after a manual ``groups`` edit."""
        for name in ("ips", "cert_fingerprints", "countries", "interval"):
            self.__dict__.pop(name, None)

    def dates(self) -> tuple[date, ...]:
        return tuple(g.scan_date for g in self.groups)


@dataclass
class DeploymentMap:
    """All deployments of one domain within one analysis period."""

    domain: str
    period: Period
    deployments: list[Deployment]
    scan_dates_in_period: tuple[date, ...]
    records: list[AnnotatedScanRecord] = field(default_factory=list, repr=False)

    @property
    def visible_dates(self) -> tuple[date, ...]:
        seen = sorted({g.scan_date for d in self.deployments for g in d.groups})
        return tuple(seen)

    @property
    def presence(self) -> float:
        """Fraction of the period's scans in which the domain appears."""
        if not self.scan_dates_in_period:
            return 0.0
        return len(self.visible_dates) / len(self.scan_dates_in_period)

    @property
    def asns(self) -> frozenset[int]:
        return frozenset(d.asn for d in self.deployments)

    def deployments_for_asn(self, asn: int) -> list[Deployment]:
        return [d for d in self.deployments if d.asn == asn]

    def __len__(self) -> int:
        return len(self.deployments)


def _cluster(
    domain: str,
    groups: list[DeploymentGroup],
    scan_dates: tuple[date, ...],
    max_gap_scans: int,
) -> list[Deployment]:
    """Cluster same-ASN groups, splitting on gaps > ``max_gap_scans``."""
    index_of = {d: i for i, d in enumerate(scan_dates)}
    by_asn: dict[int, list[DeploymentGroup]] = {}
    for group in groups:
        by_asn.setdefault(group.asn, []).append(group)

    deployments: list[Deployment] = []
    for asn, asn_groups in by_asn.items():
        asn_groups.sort(key=lambda g: g.scan_date)
        current = Deployment(domain=domain, asn=asn, groups=[asn_groups[0]])
        for group in asn_groups[1:]:
            gap = index_of[group.scan_date] - index_of[current.groups[-1].scan_date]
            if gap > max_gap_scans:
                deployments.append(current)
                current = Deployment(domain=domain, asn=asn, groups=[group])
            else:
                current.groups.append(group)
        deployments.append(current)
    deployments.sort(key=lambda d: (d.first_seen, d.asn))
    return deployments


def build_deployment_map(
    domain: str,
    records: list[AnnotatedScanRecord],
    period: Period,
    scan_dates_in_period: tuple[date, ...],
    max_gap_scans: int = 6,
    with_records: bool = True,
) -> DeploymentMap:
    """Build one domain's deployment map for one period (row path).

    This is the reference row-at-a-time algorithm over explicit record
    lists; dataset-wide construction goes through the columnar kernel
    (:func:`build_domain_maps`), which must produce identical maps.

    ``with_records=False`` leaves ``map.records`` empty — callers then
    restore the raw records with :func:`attach_period_records`.
    """
    in_period = [r for r in records if period.contains(r.scan_date)]
    cells: dict[tuple[date, int], dict[str, set]] = {}
    for record in in_period:
        cell = cells.setdefault(
            (record.scan_date, record.asn), {"ips": set(), "certs": set(), "ccs": set()}
        )
        cell["ips"].add(record.ip)
        cell["certs"].add(record.certificate.fingerprint)
        cell["ccs"].add(record.country)

    groups = [
        DeploymentGroup(
            domain=domain,
            scan_date=scan_date,
            asn=asn,
            ips=frozenset(cell["ips"]),
            cert_fingerprints=frozenset(cell["certs"]),
            countries=frozenset(cell["ccs"]),
        )
        for (scan_date, asn), cell in cells.items()
    ]
    deployments = _cluster(domain, groups, scan_dates_in_period, max_gap_scans)
    return DeploymentMap(
        domain=domain,
        period=period,
        deployments=deployments,
        scan_dates_in_period=scan_dates_in_period,
        records=in_period if with_records else [],
    )


def attach_period_records(map_: DeploymentMap, dataset: ScanDataset) -> None:
    """Restore ``map.records`` on a map built with ``with_records=False``.

    Produces the exact list ``build_deployment_map`` would have attached:
    the domain's records filtered to the map's period, in dataset order —
    one bisect-found contiguous CSR slice of the columnar table.
    """
    table = dataset.table
    lo, hi = table.period_slice(map_.domain, map_.period.start, map_.period.end)
    map_.records = [table.record(table.csr_rows[i]) for i in range(lo, hi)]


# -- the columnar kernel and its compact encoded form --------------------------

#: One encoded content run: ``(scan_indices, ip_ids, cert_ids,
#: country_ids)`` — a maximal stretch of *consecutive* groups within one
#: deployment whose observable content is identical.  Scan indices point
#: into the period's scan calendar (``dataset.scan_dates_in(period)``),
#: and every id resolves through the dataset table's shared intern
#: pools.  A stable deployment — the overwhelmingly common case — is a
#: single run: one content triple plus one small index per scan date,
#: instead of one full group tuple per date.
EncodedRun = tuple[
    tuple[int, ...], tuple[int, ...], tuple[int, ...], tuple[int, ...]
]

#: One encoded deployment: ``(asn_id, runs)``, runs being consecutive
#: date-ordered segments (content alternation yields multiple runs).
EncodedDeployment = tuple[int, tuple[EncodedRun, ...]]

#: One domain's encoded maps: ``period.index -> deployments`` pairs.
EncodedDomainMaps = list[tuple[int, tuple[EncodedDeployment, ...]]]


def _canonical_ids(
    ids: set[int], memo: dict[tuple[int, ...], tuple[int, ...]]
) -> tuple[int, ...]:
    """The set as a sorted tuple, interned via the table's tuple memo.

    Handing back one shared tuple per distinct content means pickle
    memoizes the repeats a stable deployment emits week after week —
    worker results and cache entries serialize each content once.
    """
    if len(ids) == 1:
        for value in ids:
            key = (value,)
            break
    else:
        key = tuple(sorted(ids))
    return memo.setdefault(key, key)


def encode_domain_maps(
    dataset: ScanDataset,
    domain: str,
    periods: tuple[Period, ...],
    max_gap_scans: int = 6,
) -> EncodedDomainMaps:
    """:func:`encode_domain_maps_at` by domain name (one index lookup)."""
    index = dataset.table.domain_index(domain)
    if index is None:
        return []
    return encode_domain_maps_at(dataset, index, periods, max_gap_scans)


def encode_domain_maps_at(
    dataset: ScanDataset,
    index: int,
    periods: tuple[Period, ...],
    max_gap_scans: int = 6,
) -> EncodedDomainMaps:
    """Cluster one domain's deployments straight off the column slices.

    Works entirely in interned-id space: the period is a bisect slice of
    the domain's CSR rows, cells aggregate integer ids, and clustering
    compares scan-calendar indices.  The slice is date-sorted, so cells
    are built one scan date at a time with plain-int ASN keys, each
    ASN's cell sequence comes out date-ordered with no sort, and
    consecutive cells with identical content collapse into one
    :data:`EncodedRun` (content tuples are interned, so "identical"
    is an ``is`` check).  The output is the compact encoded form;
    :func:`decode_domain_maps` materializes the object maps the rest of
    the pipeline consumes.

    The domain is named by its ordinal into ``table.domains`` — the CSR
    row index — so a shard worker sweeping an ordinal range never
    resolves a domain string at all.
    """
    table = dataset.table
    asn_id_col = table.asn_id
    ip_id_col = table.ip_id
    cert_id_col = table.cert_id
    country_id_col = table.country_id
    asns = table.asns
    id_tuples = table.id_tuples

    encoded: EncodedDomainMaps = []
    for period in periods:
        dates_in_period = dataset.scan_dates_in(period)
        if not dates_in_period:
            continue
        lo, hi = table.period_slice_at(index, period.start, period.end)
        if lo == hi:
            continue
        rows = table.csr_rows[lo:hi].tolist()
        ordinals = table.csr_dates[lo:hi].tolist()
        index_of = {d.toordinal(): i for i, d in enumerate(dates_in_period)}
        # by_asn keys appear in first-appearance order over the slice —
        # the same insertion order the row path's cell dict produces —
        # and each ASN's (scan_index, content) cells are date-ordered by
        # construction.
        by_asn: dict[int, list[tuple[int, tuple]]] = {}
        n = len(rows)
        i = 0
        while i < n:
            ordinal = ordinals[i]
            scan_index = index_of[ordinal]
            run_cells: dict[int, tuple[set[int], set[int], set[int]]] = {}
            while i < n and ordinals[i] == ordinal:
                row = rows[i]
                asn_id = asn_id_col[row]
                cell = run_cells.get(asn_id)
                if cell is None:
                    cell = (set(), set(), set())
                    run_cells[asn_id] = cell
                cell[0].add(ip_id_col[row])
                cell[1].add(cert_id_col[row])
                cell[2].add(country_id_col[row])
                i += 1
            for asn_id, (ips, certs, ccs) in run_cells.items():
                content = (
                    _canonical_ids(ips, id_tuples),
                    _canonical_ids(certs, id_tuples),
                    _canonical_ids(ccs, id_tuples),
                )
                content = id_tuples.setdefault(content, content)
                bucket = by_asn.get(asn_id)
                if bucket is None:
                    by_asn[asn_id] = [(scan_index, content)]
                else:
                    bucket.append((scan_index, content))

        # Longitudinal clustering on scan-calendar indices (split an
        # ASN's date-ordered cells on gaps > max_gap_scans), collapsing
        # consecutive same-content cells into runs as we go.
        deployments: list[tuple[int, int, int, tuple[EncodedRun, ...]]] = []
        for asn_id, cells in by_asn.items():
            asn = asns[asn_id]
            first_index, current = cells[0]
            runs: list[EncodedRun] = []
            indices = [first_index]
            previous_index = first_index
            for scan_index, content in cells[1:]:
                if scan_index - previous_index > max_gap_scans:
                    runs.append((tuple(indices),) + current)
                    deployments.append((first_index, asn, asn_id, tuple(runs)))
                    runs = []
                    indices = [scan_index]
                    current = content
                    first_index = scan_index
                elif content is current:
                    indices.append(scan_index)
                else:
                    runs.append((tuple(indices),) + current)
                    indices = [scan_index]
                    current = content
                previous_index = scan_index
            runs.append((tuple(indices),) + current)
            deployments.append((first_index, asn, asn_id, tuple(runs)))
        # The row path orders deployments by (first_seen, asn *value*);
        # scan indices are monotone in scan date, so the key matches.
        deployments.sort(key=lambda d: (d[0], d[1]))
        encoded.append(
            (
                period.index,
                tuple((asn_id, runs) for _, _, asn_id, runs in deployments),
            )
        )
    return encoded


def decode_domain_maps(
    domain: str,
    encoded: EncodedDomainMaps,
    dataset: ScanDataset,
    periods: tuple[Period, ...],
    with_records: bool = True,
) -> list[tuple[tuple[str, int], DeploymentMap]]:
    """Materialize object maps from the encoded form via the table pools.

    Each run resolves its content once — decoded frozensets are interned
    on the table per id tuple, so a stable deployment's unchanged
    IP/cert/country sets are one shared object across all its weekly
    groups — then fans out into one group per scan index, with dates
    read straight from the period's (memoized) scan calendar.
    """
    table = dataset.table
    asns = table.asns
    interned_set = table.interned_set
    by_index = {p.index: p for p in periods}

    maps: list[tuple[tuple[str, int], DeploymentMap]] = []
    for period_index, enc_deployments in encoded:
        period = by_index[period_index]
        dates_in_period = dataset.scan_dates_in(period)
        deployments: list[Deployment] = []
        for asn_id, runs in enc_deployments:
            asn = asns[asn_id]
            groups: list[DeploymentGroup] = []
            for indices, ip_ids, cert_ids, cc_ids in runs:
                ips = interned_set("ips", ip_ids)
                fps = interned_set("cert_fps", cert_ids)
                ccs = interned_set("countries", cc_ids)
                for scan_index in indices:
                    groups.append(
                        _make_group(
                            domain,
                            dates_in_period[scan_index],
                            asn,
                            ips,
                            fps,
                            ccs,
                        )
                    )
            deployments.append(Deployment(domain=domain, asn=asn, groups=groups))
        map_ = DeploymentMap(
            domain=domain,
            period=period,
            deployments=deployments,
            scan_dates_in_period=dates_in_period,
        )
        if with_records:
            attach_period_records(map_, dataset)
        maps.append(((domain, period_index), map_))
    return maps


def build_domain_maps(
    dataset: ScanDataset,
    domain: str,
    periods: tuple[Period, ...],
    max_gap_scans: int = 6,
    with_records: bool = True,
) -> list[tuple[tuple[str, int], DeploymentMap]]:
    """Build one domain's maps across all periods, keyed (domain, index).

    This is the per-domain unit of work the execution backends shard:
    it touches only the one domain's column slices, so any partition of
    the domain set rebuilds exactly :func:`build_deployment_maps`.
    """
    encoded = encode_domain_maps(dataset, domain, periods, max_gap_scans)
    return decode_domain_maps(
        domain, encoded, dataset, periods, with_records=with_records
    )


def build_deployment_maps(
    dataset: ScanDataset,
    periods: tuple[Period, ...],
    max_gap_scans: int = 6,
) -> dict[tuple[str, int], DeploymentMap]:
    """Build maps for every (domain, period) with any scan visibility.

    Keys are (domain, period.index).  Periods with no scan dates (or in
    which the domain never appears) produce no map, mirroring the paper:
    a deployment map exists only for domains with a publicly visible
    certificate in that period.
    """
    maps: dict[tuple[str, int], DeploymentMap] = {}
    for domain in dataset.domains():
        maps.update(build_domain_maps(dataset, domain, periods, max_gap_scans))
    return maps
