"""ASCII rendering of deployment maps (the Figure 2-5 visual language).

Each deployment is one row; columns are the period's weekly scan dates.
A filled cell means the ASN had observable infrastructure for the domain
in that scan; distinct certificates rotate through distinct glyphs so a
rollover or a new-certificate transient is visible at a glance.
"""

from __future__ import annotations

from repro.core.deployment import DeploymentMap
from repro.core.patterns import Classification
from repro.ipintel.asnames import as_name

_GLYPHS = "#o*+x%@&"


def render_deployment_map(map_: DeploymentMap, label_width: int = 30) -> str:
    """Render one deployment map as an ASCII timeline."""
    dates = map_.scan_dates_in_period
    index_of = {d: i for i, d in enumerate(dates)}

    glyph_of_cert: dict[str, str] = {}

    def glyph_for(fingerprints: frozenset[str]) -> str:
        key = min(fingerprints) if fingerprints else "?"
        if key not in glyph_of_cert:
            glyph_of_cert[key] = _GLYPHS[len(glyph_of_cert) % len(_GLYPHS)]
        return glyph_of_cert[key]

    header = (
        f"{map_.domain} — {map_.period.label} "
        f"({len(dates)} weekly scans, presence {map_.presence:.0%})"
    )
    lines = [header, "-" * max(len(header), label_width + len(dates) + 2)]
    for deployment in map_.deployments:
        row = [" "] * len(dates)
        for group in deployment.groups:
            row[index_of[group.scan_date]] = glyph_for(group.cert_fingerprints)
        countries = "/".join(sorted(deployment.countries))
        label = f"AS{deployment.asn} {as_name(deployment.asn)} [{countries}]"
        lines.append(f"{label[:label_width]:<{label_width}} |{''.join(row)}|")
    if glyph_of_cert:
        legend = ", ".join(
            f"{glyph}=cert {fp[:8]}" for fp, glyph in glyph_of_cert.items()
        )
        lines.append(f"{'':<{label_width}}  certs: {legend}")
    return "\n".join(lines)


def render_classification(classification: Classification) -> str:
    """Deployment map plus the classifier's verdict."""
    rendered = render_deployment_map(classification.map)
    subpatterns = ", ".join(p.value for p in classification.subpatterns) or "-"
    return (
        f"{rendered}\n"
        f"classified: {classification.kind.value.upper()} "
        f"(patterns: {subpatterns}; "
        f"stable={len(classification.stable)}, "
        f"transitions={len(classification.transitions)}, "
        f"transients={len(classification.transients)})"
    )
