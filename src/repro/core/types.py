"""Shared vocabulary of the methodology: patterns, verdicts, detections."""

from __future__ import annotations

from enum import Enum


class PatternKind(Enum):
    """Top-level categorization of a deployment map (Section 4.2)."""

    STABLE = "stable"
    TRANSITION = "transition"
    TRANSIENT = "transient"
    NOISY = "noisy"
    NO_DATA = "no-data"


class SubPattern(Enum):
    """The representative patterns of Figures 3-5."""

    S1 = "S1"  # single stable deployment, single certificate
    S2 = "S2"  # stable deployment with certificate rollover
    S3 = "S3"  # stable AS, new geography
    S4 = "S4"  # stable infrastructure, additional certificate
    X1 = "X1"  # expansion into a new AS, same certificate
    X2 = "X2"  # expansion into a new AS with an additional certificate
    X3 = "X3"  # migration to entirely new infrastructure
    T1 = "T1"  # transient deployment with a NEW certificate
    T2 = "T2"  # transient deployment serving the STABLE certificate


class Verdict(Enum):
    """Final per-domain outcome of inspection + pivot (Sections 4.4-4.5)."""

    HIJACKED = "hijacked"
    TARGETED = "targeted"
    INCONCLUSIVE = "inconclusive"
    BENIGN = "benign"


class DetectionType(Enum):
    """How a hijacked/targeted domain was identified (Table 2 "Type")."""

    T1 = "T1"
    T1_STAR = "T1*"
    T2 = "T2"
    P_IP = "P-IP"
    P_NS = "P-NS"
    T2_TARGETED = "T2-targeted"
