"""The paper's five-step methodology (Figure 1).

Step 1 (`deployment`): build per-domain, per-six-month-period deployment
maps from annotated scan records — deployment groups are the observable
infrastructure of one ASN on one scan date; deployments are their
longitudinal clusters.

Step 2 (`patterns`): classify each map as stable (S1-S4), transition
(X1-X3), transient (T1/T2), or noisy.

Step 3 (`shortlist`): prune transients that are organizationally
related, same-country, low-visibility, or chronically recurring; keep
those securing sensitive subdomains or that are truly anomalous.

Step 4 (`inspection`): corroborate survivors against passive DNS and CT
logs, codifying the paper's manual rules into deterministic verdicts
(HIJACKED via T1/T2/T1*, TARGETED, or inconclusive).

Step 5 (`pivot`): use confirmed attacker IPs and nameservers to find
victims invisible to deployment maps (P-IP / P-NS).

`pipeline` orchestrates all five steps and reports a funnel mirroring
the paper's Section 4 numbers.
"""

from repro.core.deployment import (
    Deployment,
    DeploymentGroup,
    DeploymentMap,
    build_deployment_map,
    build_deployment_maps,
    build_domain_maps,
)
from repro.core.inspection import InspectionConfig, Inspector
from repro.core.patterns import Classification, PatternConfig, classify
from repro.core.pipeline import (
    HijackPipeline,
    PipelineConfig,
    PipelineInputs,
    PipelineReport,
)
from repro.core.pivot import PivotAnalyzer
from repro.core.reactive import ReactiveAlert, ReactiveMonitor
from repro.core.render import render_classification, render_deployment_map
from repro.core.shortlist import ShortlistConfig, ShortlistEntry, Shortlister
from repro.core.types import DetectionType, PatternKind, SubPattern, Verdict

__all__ = [
    "Deployment",
    "DeploymentGroup",
    "DeploymentMap",
    "build_deployment_map",
    "build_deployment_maps",
    "build_domain_maps",
    "InspectionConfig",
    "Inspector",
    "Classification",
    "PatternConfig",
    "classify",
    "HijackPipeline",
    "PipelineConfig",
    "PipelineInputs",
    "PipelineReport",
    "PivotAnalyzer",
    "ReactiveAlert",
    "ReactiveMonitor",
    "render_classification",
    "render_deployment_map",
    "ShortlistConfig",
    "ShortlistEntry",
    "Shortlister",
    "DetectionType",
    "PatternKind",
    "SubPattern",
    "Verdict",
]
