"""Step 5 — pivot analysis (Section 4.5).

Confirmed hijacks reveal attacker infrastructure: the IPs their victims
were redirected to and the rogue nameservers the delegations briefly
pointed at.  The pivot asks passive DNS the inverse questions — which
*other* domains were ever delegated to those nameservers (P-NS) or had
names resolving to those IPs (P-IP)?  This catches victims invisible to
deployment maps: domains with no scan-visible stable infrastructure, no
TLS at all, or maps too noisy to classify.  The nameserver pass runs
first, matching the paper's per-domain attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import timedelta

from repro.core.inspection import InspectionConfig
from repro.core.types import DetectionType, Verdict
from repro.ct.crtsh import CrtShEntry, CrtShService
from repro.net.names import is_sensitive_name, registered_domain
from repro.net.timeline import DateInterval
from repro.pdns.database import PassiveDNSDatabase, PdnsRecord


@dataclass
class PivotFinding:
    """A victim discovered through shared attacker infrastructure."""

    domain: str
    detection: DetectionType  # P_IP or P_NS
    verdict: Verdict
    via: str                  # the IP or NS pivoted on
    pdns_rows: list[PdnsRecord] = field(default_factory=list)
    malicious_cert: CrtShEntry | None = None
    attacker_ips: frozenset[str] = frozenset()
    attacker_ns: frozenset[str] = frozenset()


class PivotAnalyzer:
    """Expands a set of confirmed attacker infrastructure into new victims."""

    def __init__(
        self,
        pdns: PassiveDNSDatabase,
        crtsh: CrtShService,
        config: InspectionConfig | None = None,
    ) -> None:
        self._pdns = pdns
        self._crtsh = crtsh
        self._config = config or InspectionConfig()

    def _attacker_owned(self, attacker_ns: frozenset[str]) -> set[str]:
        """Domains the attacker registered for their nameservers."""
        return {registered_domain(ns) for ns in attacker_ns}

    def _short_lived(self, row: PdnsRecord) -> bool:
        return row.span_days <= self._config.pivot_max_span

    def _find_cert(self, domain: str, rows: list[PdnsRecord]) -> CrtShEntry | None:
        """Locate the maliciously obtained certificate for a pivoted victim."""
        if not rows:
            return None
        center = min(r.first_seen for r in rows)
        window = DateInterval(
            center - timedelta(days=self._config.window_days),
            max(r.last_seen for r in rows) + timedelta(days=self._config.window_days),
        )
        candidates = [
            e
            for e in self._crtsh.search(
                domain, issued_after=window.start, issued_before=window.end
            )
            if any(is_sensitive_name(name) for name in e.certificate.sans)
            or any(
                name == r.rrname
                for name in e.certificate.sans
                for r in rows
            )
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda e: abs((e.issued_on - center).days))

    def pivot(
        self,
        attacker_ips: frozenset[str],
        attacker_ns: frozenset[str],
        known_victims: set[str],
    ) -> list[PivotFinding]:
        """Run the NS pass then the IP pass; returns newly found victims."""
        findings: list[PivotFinding] = []
        found: set[str] = set(known_victims)
        excluded = self._attacker_owned(attacker_ns)

        # Pass 1: domains briefly delegated to attacker nameservers.
        for ns in sorted(attacker_ns):
            rows = [
                r
                for r in self._pdns.query_rdata(ns)
                if r.rtype.value == "NS" and self._short_lived(r)
            ]
            for row in rows:
                domain = registered_domain(row.rrname)
                if domain in found or domain in excluded:
                    continue
                victim_rows = self._victim_rows(domain, attacker_ips, ns)
                cert = self._find_cert(domain, victim_rows or rows)
                findings.append(
                    PivotFinding(
                        domain=domain,
                        detection=DetectionType.P_NS,
                        verdict=Verdict.HIJACKED,
                        via=ns,
                        pdns_rows=victim_rows or [row],
                        malicious_cert=cert,
                        attacker_ips=frozenset(
                            r.rdata for r in victim_rows if r.rtype.value == "A"
                        ),
                        attacker_ns=frozenset({ns}),
                    )
                )
                found.add(domain)

        # Pass 2: domains with names briefly resolving to attacker IPs.
        for ip in sorted(attacker_ips):
            rows = [
                r
                for r in self._pdns.query_rdata(ip)
                if r.rtype.value == "A" and self._short_lived(r)
            ]
            for row in rows:
                domain = registered_domain(row.rrname)
                if domain in found or domain in excluded:
                    continue
                victim_rows = [
                    r
                    for r in self._pdns.query_domain(domain)
                    if r.rtype.value == "A"
                    and r.rdata in attacker_ips
                    and self._short_lived(r)
                ]
                cert = self._find_cert(domain, victim_rows or [row])
                findings.append(
                    PivotFinding(
                        domain=domain,
                        detection=DetectionType.P_IP,
                        verdict=Verdict.HIJACKED,
                        via=ip,
                        pdns_rows=victim_rows or [row],
                        malicious_cert=cert,
                        attacker_ips=frozenset(
                            r.rdata for r in (victim_rows or [row])
                        ),
                    )
                )
                found.add(domain)

        findings.sort(key=lambda f: f.domain)
        return findings

    def _victim_rows(
        self, domain: str, attacker_ips: frozenset[str], ns: str
    ) -> list[PdnsRecord]:
        """pDNS rows tying ``domain`` to the attacker's infrastructure.

        The rogue delegation rows themselves, resolutions to already-known
        attacker IPs, and short-lived A rows that appeared while the rogue
        delegation was live (the rogue nameserver's answers — possibly IPs
        not previously implicated, as with the fiu.gov.kg case).
        """
        all_rows = self._pdns.query_domain(domain)
        ns_rows = [r for r in all_rows if r.rtype.value == "NS" and r.rdata == ns]
        radius = timedelta(days=self._config.window_days)
        hijack_windows = [
            DateInterval(r.first_seen - radius, r.last_seen + radius) for r in ns_rows
        ]
        rows: list[PdnsRecord] = list(ns_rows)
        for row in all_rows:
            if row.rtype.value != "A":
                continue
            if row.rdata in attacker_ips:
                rows.append(row)
            elif self._short_lived(row) and any(row.overlaps(w) for w in hijack_windows):
                rows.append(row)
        return rows
