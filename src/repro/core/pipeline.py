"""The five-step pipeline orchestrator (Figure 1).

Wires the stages together: build deployment maps over every six-month
period, classify, shortlist, inspect with pDNS + CT corroboration, run
the T1* shared-infrastructure second pass, pivot on confirmed attacker
infrastructure, and assemble per-domain findings plus the funnel stats.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from datetime import date

logger = logging.getLogger(__name__)

from repro.core.deployment import build_deployment_maps
from repro.core.inspection import InspectionConfig, InspectionResult, Inspector
from repro.core.patterns import Classification, PatternConfig, classify
from repro.core.pivot import PivotAnalyzer, PivotFinding
from repro.core.report import DomainFinding, FunnelStats
from repro.core.shortlist import ShortlistConfig, ShortlistEntry, Shortlister
from repro.core.types import DetectionType, PatternKind, Verdict
from repro.ct.crtsh import CrtShService
from repro.ipintel.as2org import AS2Org
from repro.ipintel.geo import GeoDB
from repro.ipintel.pfx2as import RoutingTable
from repro.net.timeline import Period
from repro.pdns.database import PassiveDNSDatabase
from repro.scan.dataset import ScanDataset


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    patterns: PatternConfig = field(default_factory=PatternConfig)
    shortlist: ShortlistConfig = field(default_factory=ShortlistConfig)
    inspection: InspectionConfig = field(default_factory=InspectionConfig)
    max_gap_scans: int = 6
    enable_pivot: bool = True
    enable_t1_star: bool = True


@dataclass
class PipelineReport:
    """Everything the run produced."""

    funnel: FunnelStats
    findings: list[DomainFinding]
    classifications: dict[tuple[str, int], Classification]
    shortlist: list[ShortlistEntry]
    inspections: list[InspectionResult]
    pivots: list[PivotFinding]
    attacker_ips: frozenset[str] = frozenset()
    attacker_ns: frozenset[str] = frozenset()

    def finding_for(self, domain: str) -> DomainFinding | None:
        for finding in self.findings:
            if finding.domain == domain:
                return finding
        return None

    def hijacked(self) -> list[DomainFinding]:
        return [f for f in self.findings if f.verdict is Verdict.HIJACKED]

    def targeted(self) -> list[DomainFinding]:
        return [f for f in self.findings if f.verdict is Verdict.TARGETED]


class HijackPipeline:
    """End-to-end retroactive hijack identification."""

    def __init__(
        self,
        scan: ScanDataset,
        pdns: PassiveDNSDatabase,
        crtsh: CrtShService,
        as2org: AS2Org,
        periods: tuple[Period, ...],
        routing: RoutingTable | None = None,
        geo: GeoDB | None = None,
        config: PipelineConfig | None = None,
    ) -> None:
        self._scan = scan
        self._pdns = pdns
        self._crtsh = crtsh
        self._as2org = as2org
        self._periods = periods
        self._routing = routing
        self._geo = geo
        self._config = config or PipelineConfig()

    # -- annotation helpers ----------------------------------------------------

    def _locate_ip(self, ip: str) -> tuple[int | None, str | None]:
        asn = self._routing.lookup(ip) if self._routing else None
        cc = self._geo.lookup(ip) if self._geo else None
        return asn, cc

    def _victim_infra(
        self, classifications: dict[tuple[str, int], Classification], domain: str
    ) -> tuple[tuple[int, ...], tuple[str, ...]]:
        asns: list[int] = []
        ccs: list[str] = []
        for (d, _), classification in sorted(classifications.items()):
            if d != domain:
                continue
            for deployment in classification.stable:
                if deployment.asn not in asns:
                    asns.append(deployment.asn)
                for cc in sorted(deployment.countries):
                    if cc not in ccs:
                        ccs.append(cc)
        return tuple(asns), tuple(ccs)

    # -- finding assembly --------------------------------------------------------

    def _finding_from_inspection(
        self,
        result: InspectionResult,
        classifications: dict[tuple[str, int], Classification],
    ) -> DomainFinding:
        entry = result.entry
        first_evidence: date | None = None
        if result.evidence.a_redirects:
            first_evidence = min(r.first_seen for r in result.evidence.a_redirects)
        elif result.evidence.ns_changes:
            first_evidence = min(r.first_seen for r in result.evidence.ns_changes)
        else:
            first_evidence = entry.transient.first_seen

        attacker_ip = sorted(result.attacker_ips)
        asn, cc = (None, None)
        if attacker_ip:
            asn, cc = self._locate_ip(attacker_ip[0])
        if asn is None:
            asn = entry.transient.asn
        if cc is None:
            ccs = sorted(entry.transient.countries)
            cc = ccs[0] if ccs else None

        subdomain = ""
        target_names = list(entry.sensitive_names)
        if result.malicious_cert is not None:
            target_names = [
                n for n in result.malicious_cert.certificate.sans if not n.startswith("*.")
            ]
        if target_names:
            name = sorted(target_names, key=len)[0]
            if name != entry.domain and name.endswith("." + entry.domain):
                subdomain = name[: -(len(entry.domain) + 1)]

        victim_asns, victim_ccs = self._victim_infra(classifications, entry.domain)
        return DomainFinding(
            domain=entry.domain,
            verdict=result.verdict,
            detection=result.detection,
            first_evidence=first_evidence,
            subdomain=subdomain,
            pdns_corroborated=result.evidence.has_pdns,
            ct_corroborated=result.malicious_cert is not None or result.evidence.has_ct,
            attacker_ips=tuple(attacker_ip),
            attacker_asn=asn,
            attacker_cc=cc,
            attacker_ns=tuple(sorted(result.attacker_ns)),
            victim_asns=victim_asns,
            victim_ccs=victim_ccs,
            crtsh_id=result.malicious_cert.crtsh_id if result.malicious_cert else 0,
            issuer_ca=result.malicious_cert.issuer if result.malicious_cert else "",
            notes=tuple(result.evidence.notes),
        )

    def _finding_from_pivot(
        self,
        pivot: PivotFinding,
        classifications: dict[tuple[str, int], Classification],
    ) -> DomainFinding:
        a_rows = [r for r in pivot.pdns_rows if r.rtype.value == "A"]
        first_evidence = (
            min(r.first_seen for r in pivot.pdns_rows) if pivot.pdns_rows else None
        )
        attacker_ips = tuple(sorted(pivot.attacker_ips or {r.rdata for r in a_rows}))
        asn, cc = (None, None)
        if attacker_ips:
            asn, cc = self._locate_ip(attacker_ips[0])

        subdomain = ""
        named = [r.rrname for r in a_rows if r.rrname != pivot.domain]
        if pivot.malicious_cert is not None:
            sans = [
                n
                for n in pivot.malicious_cert.certificate.sans
                if not n.startswith("*.") and n != pivot.domain
            ]
            named = sans or named
        if named:
            name = sorted(named, key=len)[0]
            if name.endswith("." + pivot.domain):
                subdomain = name[: -(len(pivot.domain) + 1)]

        victim_asns, victim_ccs = self._victim_infra(classifications, pivot.domain)
        return DomainFinding(
            domain=pivot.domain,
            verdict=pivot.verdict,
            detection=pivot.detection,
            first_evidence=first_evidence,
            subdomain=subdomain,
            pdns_corroborated=bool(pivot.pdns_rows),
            ct_corroborated=pivot.malicious_cert is not None,
            attacker_ips=attacker_ips,
            attacker_asn=asn,
            attacker_cc=cc,
            attacker_ns=tuple(sorted(pivot.attacker_ns)),
            victim_asns=victim_asns,
            victim_ccs=victim_ccs,
            crtsh_id=pivot.malicious_cert.crtsh_id if pivot.malicious_cert else 0,
            issuer_ca=pivot.malicious_cert.issuer if pivot.malicious_cert else "",
            notes=(f"pivot via {pivot.via}",),
        )

    # -- the run -------------------------------------------------------------------

    def run(self) -> PipelineReport:
        config = self._config

        # Step 1: deployment maps.
        maps = build_deployment_maps(self._scan, self._periods, config.max_gap_scans)
        logger.info(
            "step 1: %d deployment maps over %d domains",
            len(maps), len({d for d, _ in maps}),
        )

        # Step 2: classification.
        classifications = {
            key: classify(map_, config.patterns) for key, map_ in maps.items()
        }
        n_transient = sum(
            1 for c in classifications.values() if c.kind is PatternKind.TRANSIENT
        )
        logger.info("step 2: %d transient maps", n_transient)

        # Step 3: shortlist.
        shortlister = Shortlister(self._as2org, config.shortlist)
        shortlist, decisions = shortlister.evaluate(classifications)
        logger.info(
            "step 3: %d shortlisted (%d pruned)",
            len(shortlist), sum(1 for d in decisions if not d.kept),
        )

        # Step 4: inspection.
        inspector = Inspector(self._pdns, self._crtsh, config.inspection)
        inspections = [inspector.inspect(entry) for entry in shortlist]
        logger.info(
            "step 4: %d hijacked, %d targeted from direct inspection",
            sum(1 for r in inspections if r.verdict is Verdict.HIJACKED),
            sum(1 for r in inspections if r.verdict is Verdict.TARGETED),
        )

        confirmed_ips: set[str] = set()
        confirmed_ns: set[str] = set()
        for result in inspections:
            if result.verdict is Verdict.HIJACKED:
                confirmed_ips.update(result.attacker_ips)
                confirmed_ns.update(result.attacker_ns)

        # Step 4b: T1* second pass on shared attacker infrastructure.
        if config.enable_t1_star:
            pending = [r for r in inspections if r.pending_t1_star]
            upgraded = Inspector.resolve_t1_star(pending, frozenset(confirmed_ips))
            for result in upgraded:
                confirmed_ips.update(result.attacker_ips)
                confirmed_ns.update(result.attacker_ns)

        # Step 5: pivot.
        pivots: list[PivotFinding] = []
        if config.enable_pivot and (confirmed_ips or confirmed_ns):
            known = {
                r.domain
                for r in inspections
                if r.verdict in (Verdict.HIJACKED, Verdict.TARGETED)
            }
            analyzer = PivotAnalyzer(self._pdns, self._crtsh, config.inspection)
            pivots = analyzer.pivot(
                frozenset(confirmed_ips), frozenset(confirmed_ns), known
            )
            logger.info(
                "step 5: pivot on %d IPs / %d nameservers found %d more victims",
                len(confirmed_ips), len(confirmed_ns), len(pivots),
            )

        # Findings: inspection verdicts first, pivots after, one per domain.
        findings: list[DomainFinding] = []
        seen: set[str] = set()
        for result in inspections:
            if result.verdict in (Verdict.HIJACKED, Verdict.TARGETED):
                if result.domain in seen:
                    continue
                findings.append(self._finding_from_inspection(result, classifications))
                seen.add(result.domain)
        for pivot in pivots:
            if pivot.domain in seen:
                continue
            findings.append(self._finding_from_pivot(pivot, classifications))
            seen.add(pivot.domain)
        findings.sort(key=lambda f: ((f.victim_ccs[0] if f.victim_ccs else "zz"), f.domain))

        funnel = self._funnel(classifications, shortlist, decisions, inspections, pivots)
        return PipelineReport(
            funnel=funnel,
            findings=findings,
            classifications=classifications,
            shortlist=shortlist,
            inspections=inspections,
            pivots=pivots,
            attacker_ips=frozenset(confirmed_ips),
            attacker_ns=frozenset(confirmed_ns),
        )

    def _funnel(self, classifications, shortlist, decisions, inspections, pivots) -> FunnelStats:
        stats = FunnelStats()
        stats.n_maps = len(classifications)
        stats.n_domains = len({d for d, _ in classifications})
        for classification in classifications.values():
            if classification.kind is PatternKind.STABLE:
                stats.n_stable += 1
            elif classification.kind is PatternKind.TRANSITION:
                stats.n_transition += 1
            elif classification.kind is PatternKind.TRANSIENT:
                stats.n_transient += 1
            elif classification.kind is PatternKind.NOISY:
                stats.n_noisy += 1
        stats.n_shortlisted = len(shortlist)
        stats.n_truly_anomalous = sum(1 for e in shortlist if e.truly_anomalous)
        stats.n_worth_examining = sum(
            1
            for r in inspections
            if not (r.verdict is Verdict.BENIGN and r.evidence.stale_certificate)
        )
        for decision in decisions:
            if not decision.kept:
                stats.prune_reasons[decision.reason] = (
                    stats.prune_reasons.get(decision.reason, 0) + 1
                )
        for result in inspections:
            if result.verdict is Verdict.HIJACKED:
                if result.detection is DetectionType.T1:
                    stats.n_t1_hijacked += 1
                elif result.detection is DetectionType.T2:
                    stats.n_t2_hijacked += 1
                elif result.detection is DetectionType.T1_STAR:
                    stats.n_t1_star += 1
            elif result.verdict is Verdict.TARGETED:
                stats.n_targeted += 1
        for pivot in pivots:
            if pivot.detection is DetectionType.P_IP:
                stats.n_pivot_ip += 1
            else:
                stats.n_pivot_ns += 1
        return stats
