"""The five-step pipeline orchestrator (Figure 1).

The funnel — deployment maps over every six-month period, pattern
classification, shortlisting, pDNS + CT inspection with the T1*
shared-infrastructure second pass, and the pivot on confirmed attacker
infrastructure — is expressed as a list of :class:`repro.exec.Stage`
objects over a shared :class:`HuntContext`, driven by a
:class:`repro.exec.PipelineExecutor`.  Steps 1, 2, and 4 fan out through
the executor's backend (serially by default; sharded across worker
processes by domain hash with :class:`repro.exec.ProcessPoolBackend`),
and every run can be profiled into a per-stage JSON manifest.

:class:`HijackPipeline` remains the front door: construct it from a
:class:`PipelineInputs` bundle (or the :meth:`HijackPipeline.from_study`
/ :meth:`HijackPipeline.from_directory` factories) and call
:meth:`HijackPipeline.run`.  Serial and parallel backends are required
to produce identical :class:`PipelineReport`\\ s.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, fields
from datetime import date
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cache.store import StageCache
    from repro.obs.events import EventSink
    from repro.obs.ledger import RunLedger

logger = logging.getLogger(__name__)

from repro.core.deployment import decode_domain_maps
from repro.core.inspection import (
    InspectionConfig,
    InspectionResult,
    Inspector,
    decode_inspection,
    encode_inspection,
)
from repro.core.patterns import Classification, PatternConfig, decode_classification
from repro.core.pivot import PivotAnalyzer, PivotFinding
from repro.core.report import DomainFinding, FunnelStats
from repro.core.shortlist import (
    PruneDecision,
    ShortlistConfig,
    ShortlistEntry,
    Shortlister,
    decode_shortlist,
    encode_shortlist,
)
from repro.core.types import DetectionType, PatternKind, Verdict
from repro.ct.crtsh import CrtShService
from repro.exec.backends import ExecutionBackend, SerialBackend
from repro.exec.executor import PipelineExecutor
from repro.exec.metrics import RunMetrics, StageStats
from repro.exec.stage import Stage, StageContext
from repro.faults import DataQuality, FaultPlan, FaultSpec, apply_faults
from repro.io.reports import finding_from_row, finding_to_row
from repro.ipintel.as2org import AS2Org
from repro.ipintel.geo import GeoDB
from repro.ipintel.pfx2as import RoutingTable
from repro.net.timeline import Period
from repro.obs.metrics import get_registry
from repro.obs.provenance import trail_from_inspection, trail_from_pivot
from repro.obs.trace import Tracer
from repro.pdns.database import PassiveDNSDatabase
from repro.scan.dataset import ScanDataset


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    patterns: PatternConfig = field(default_factory=PatternConfig)
    shortlist: ShortlistConfig = field(default_factory=ShortlistConfig)
    inspection: InspectionConfig = field(default_factory=InspectionConfig)
    max_gap_scans: int = 6
    enable_pivot: bool = True
    enable_t1_star: bool = True


@dataclass(frozen=True)
class PipelineInputs:
    """Everything the pipeline consumes, bundled once.

    Replaces the old eight-argument :class:`HijackPipeline` constructor:
    one immutable value carries the analyst's datasets, the intelligence
    tables, and the study periods, and is what the process-pool backend
    ships to its workers.
    """

    scan: ScanDataset
    pdns: PassiveDNSDatabase
    crtsh: CrtShService
    as2org: AS2Org
    periods: tuple[Period, ...]
    routing: RoutingTable | None = None
    geo: GeoDB | None = None

    @classmethod
    def from_study(cls, study) -> PipelineInputs:
        """Bundle the datasets of a simulated :class:`StudyDatasets`."""
        return cls(
            scan=study.scan,
            pdns=study.pdns,
            crtsh=study.crtsh,
            as2org=study.as2org,
            periods=study.periods,
            routing=study.routing,
            geo=study.geo,
        )

    @classmethod
    def from_directory(cls, path: str | Path) -> PipelineInputs:
        """Load an exported study (``repro-hunt paper --save DIR``).

        Expects ``scan.jsonl`` / ``pdns.jsonl`` / ``ct.jsonl`` /
        ``as2org.jsonl``; periods are derived from the scan calendar.
        Routing and geolocation tables are not part of the export, so
        attacker ASN/CC fall back to the scan annotations.
        """
        from repro.io import load_as2org, load_ct, load_pdns, load_scan_dataset
        from repro.net.timeline import study_periods

        directory = Path(path)
        required = ["scan.jsonl", "pdns.jsonl", "ct.jsonl", "as2org.jsonl"]
        missing = [name for name in required if not (directory / name).exists()]
        if missing:
            raise FileNotFoundError(
                f"{directory}/ is missing {', '.join(missing)}"
            )
        scan = load_scan_dataset(directory / "scan.jsonl")
        pdns = load_pdns(directory / "pdns.jsonl")
        _log, _revocations, crtsh = load_ct(directory / "ct.jsonl")
        as2org = load_as2org(directory / "as2org.jsonl")
        periods = study_periods(scan.scan_dates[0], scan.scan_dates[-1])
        return cls(scan=scan, pdns=pdns, crtsh=crtsh, as2org=as2org, periods=periods)


@dataclass
class PipelineReport:
    """Everything the run produced."""

    funnel: FunnelStats
    findings: list[DomainFinding]
    classifications: dict[tuple[str, int], Classification]
    shortlist: list[ShortlistEntry]
    inspections: list[InspectionResult]
    pivots: list[PivotFinding]
    attacker_ips: frozenset[str] = frozenset()
    attacker_ns: frozenset[str] = frozenset()

    def _finding_index(self) -> dict[str, DomainFinding]:
        # Findings are immutable after the run assembles them, so the
        # domain index is built once, lazily, and cached off-field (it
        # does not participate in dataclass equality).
        index = self.__dict__.get("_index_cache")
        if index is None:
            index = {}
            for finding in self.findings:
                index.setdefault(finding.domain, finding)
            self.__dict__["_index_cache"] = index
        return index

    def finding_for(self, domain: str) -> DomainFinding | None:
        return self._finding_index().get(domain)

    def by_verdict(self, verdict: Verdict) -> list[DomainFinding]:
        """Findings with the given verdict, in report order."""
        return [f for f in self.findings if f.verdict is verdict]

    def hijacked(self) -> list[DomainFinding]:
        return self.by_verdict(Verdict.HIJACKED)

    def targeted(self) -> list[DomainFinding]:
        return self.by_verdict(Verdict.TARGETED)


@dataclass
class HuntContext(StageContext):
    """The funnel's products as they accumulate stage by stage."""

    inputs: PipelineInputs
    config: PipelineConfig
    maps: dict[tuple[str, int], object] = field(default_factory=dict)
    maps_encoded: list = field(default_factory=list)
    classifications: dict[tuple[str, int], Classification] = field(default_factory=dict)
    classifications_encoded: list = field(default_factory=list)
    shortlist: list[ShortlistEntry] = field(default_factory=list)
    decisions: list[PruneDecision] = field(default_factory=list)
    inspections: list[InspectionResult] = field(default_factory=list)
    confirmed_ips: set[str] = field(default_factory=set)
    confirmed_ns: set[str] = field(default_factory=set)
    pivots: list[PivotFinding] = field(default_factory=list)
    findings: list[DomainFinding] = field(default_factory=list)
    report: PipelineReport | None = None


# -- finding assembly ----------------------------------------------------------


class _FindingBuilder:
    """Turns inspection / pivot results into per-domain findings."""

    def __init__(
        self,
        inputs: PipelineInputs,
        classifications: dict[tuple[str, int], Classification] | None = None,
    ) -> None:
        self._routing = inputs.routing
        self._geo = inputs.geo
        # One sorted pass over the classification table precomputes every
        # domain's stable infrastructure, so assembling N findings stops
        # rescanning the whole table N times.  Matches the row-at-a-time
        # reference (:meth:`_victim_infra`) per domain exactly.
        self._infra: dict[str, tuple[tuple[int, ...], tuple[str, ...]]] = {}
        if classifications is not None:
            acc: dict[str, tuple[list[int], list[str]]] = {}
            for (domain, _), classification in sorted(classifications.items()):
                asns, ccs = acc.setdefault(domain, ([], []))
                for deployment in classification.stable:
                    if deployment.asn not in asns:
                        asns.append(deployment.asn)
                    for cc in sorted(deployment.countries):
                        if cc not in ccs:
                            ccs.append(cc)
            self._infra = {
                domain: (tuple(asns), tuple(ccs))
                for domain, (asns, ccs) in acc.items()
            }

    def _locate_ip(self, ip: str) -> tuple[int | None, str | None]:
        asn = self._routing.lookup(ip) if self._routing else None
        cc = self._geo.lookup(ip) if self._geo else None
        return asn, cc

    def _victim_infra_for(
        self,
        classifications: dict[tuple[str, int], Classification],
        domain: str,
    ) -> tuple[tuple[int, ...], tuple[str, ...]]:
        if self._infra:
            return self._infra.get(domain, ((), ()))
        return self._victim_infra(classifications, domain)

    @staticmethod
    def _victim_infra(
        classifications: dict[tuple[str, int], Classification], domain: str
    ) -> tuple[tuple[int, ...], tuple[str, ...]]:
        asns: list[int] = []
        ccs: list[str] = []
        for (d, _), classification in sorted(classifications.items()):
            if d != domain:
                continue
            for deployment in classification.stable:
                if deployment.asn not in asns:
                    asns.append(deployment.asn)
                for cc in sorted(deployment.countries):
                    if cc not in ccs:
                        ccs.append(cc)
        return tuple(asns), tuple(ccs)

    def from_inspection(
        self,
        result: InspectionResult,
        classifications: dict[tuple[str, int], Classification],
    ) -> DomainFinding:
        entry = result.entry
        first_evidence: date | None = None
        if result.evidence.a_redirects:
            first_evidence = min(r.first_seen for r in result.evidence.a_redirects)
        elif result.evidence.ns_changes:
            first_evidence = min(r.first_seen for r in result.evidence.ns_changes)
        else:
            first_evidence = entry.transient.first_seen

        attacker_ip = sorted(result.attacker_ips)
        asn, cc = (None, None)
        if attacker_ip:
            asn, cc = self._locate_ip(attacker_ip[0])
        if asn is None:
            asn = entry.transient.asn
        if cc is None:
            ccs = sorted(entry.transient.countries)
            cc = ccs[0] if ccs else None

        subdomain = ""
        target_names = list(entry.sensitive_names)
        if result.malicious_cert is not None:
            target_names = [
                n for n in result.malicious_cert.certificate.sans if not n.startswith("*.")
            ]
        if target_names:
            name = sorted(target_names, key=len)[0]
            if name != entry.domain and name.endswith("." + entry.domain):
                subdomain = name[: -(len(entry.domain) + 1)]

        victim_asns, victim_ccs = self._victim_infra_for(classifications, entry.domain)
        return DomainFinding(
            domain=entry.domain,
            provenance=trail_from_inspection(result, self._locate_ip),
            verdict=result.verdict,
            detection=result.detection,
            first_evidence=first_evidence,
            subdomain=subdomain,
            pdns_corroborated=result.evidence.has_pdns,
            ct_corroborated=result.malicious_cert is not None or result.evidence.has_ct,
            attacker_ips=tuple(attacker_ip),
            attacker_asn=asn,
            attacker_cc=cc,
            attacker_ns=tuple(sorted(result.attacker_ns)),
            victim_asns=victim_asns,
            victim_ccs=victim_ccs,
            crtsh_id=result.malicious_cert.crtsh_id if result.malicious_cert else 0,
            issuer_ca=result.malicious_cert.issuer if result.malicious_cert else "",
            notes=tuple(result.evidence.notes),
        )

    def from_pivot(
        self,
        pivot: PivotFinding,
        classifications: dict[tuple[str, int], Classification],
    ) -> DomainFinding:
        a_rows = [r for r in pivot.pdns_rows if r.rtype.value == "A"]
        first_evidence = (
            min(r.first_seen for r in pivot.pdns_rows) if pivot.pdns_rows else None
        )
        attacker_ips = tuple(sorted(pivot.attacker_ips or {r.rdata for r in a_rows}))
        asn, cc = (None, None)
        if attacker_ips:
            asn, cc = self._locate_ip(attacker_ips[0])

        subdomain = ""
        named = [r.rrname for r in a_rows if r.rrname != pivot.domain]
        if pivot.malicious_cert is not None:
            sans = [
                n
                for n in pivot.malicious_cert.certificate.sans
                if not n.startswith("*.") and n != pivot.domain
            ]
            named = sans or named
        if named:
            name = sorted(named, key=len)[0]
            if name.endswith("." + pivot.domain):
                subdomain = name[: -(len(pivot.domain) + 1)]

        victim_asns, victim_ccs = self._victim_infra_for(classifications, pivot.domain)
        return DomainFinding(
            domain=pivot.domain,
            provenance=trail_from_pivot(pivot, self._locate_ip),
            verdict=pivot.verdict,
            detection=pivot.detection,
            first_evidence=first_evidence,
            subdomain=subdomain,
            pdns_corroborated=bool(pivot.pdns_rows),
            ct_corroborated=pivot.malicious_cert is not None,
            attacker_ips=attacker_ips,
            attacker_asn=asn,
            attacker_cc=cc,
            attacker_ns=tuple(sorted(pivot.attacker_ns)),
            victim_asns=victim_asns,
            victim_ccs=victim_ccs,
            crtsh_id=pivot.malicious_cert.crtsh_id if pivot.malicious_cert else 0,
            issuer_ca=pivot.malicious_cert.issuer if pivot.malicious_cert else "",
            notes=(f"pivot via {pivot.via}",),
        )


# -- the stages ----------------------------------------------------------------


class DeploymentMapStage(Stage):
    """Step 1: per-(domain, period) deployment maps, sharded by domain."""

    name = "deployment_maps"
    parallel = True
    products = ("maps",)
    cache_version = 2  # entries now store the encoded columnar form
    config_deps = ("max_gap_scans",)

    @staticmethod
    def _decode_all(
        ctx: HuntContext, encoded_by_domain: list
    ) -> dict[tuple[str, int], object]:
        maps: dict[tuple[str, int], object] = {}
        for domain, encoded in encoded_by_domain:
            maps.update(
                decode_domain_maps(
                    domain, encoded, ctx.inputs.scan, ctx.inputs.periods
                )
            )
        return maps

    def run(self, ctx: HuntContext, backend: ExecutionBackend) -> StageStats:
        domains = ctx.inputs.scan.domains()
        # Workers ship the compact int-tuple encoding — pool ids over
        # the shared scan table, not object graphs; materialize the map
        # objects (and their raw records) here against the parent table.
        per_domain = backend.map("deployment", domains, key=lambda d: d)
        # Index the pool only for domains that mapped to something:
        # enumerate keeps the sweep over a million-domain population from
        # decoding a million pooled strings just to pair empty results.
        ctx.maps_encoded = [
            (domains[i], encoded)
            for i, encoded in enumerate(per_domain)
            if encoded
        ]
        ctx.maps = self._decode_all(ctx, ctx.maps_encoded)
        n_domains = len({d for d, _ in ctx.maps})
        registry = get_registry()
        registry.set_gauge("deployment.maps", len(ctx.maps))
        registry.set_gauge("deployment.domains", n_domains)
        logger.info(
            "step 1: %d deployment maps over %d domains", len(ctx.maps), n_domains
        )
        return StageStats(
            n_in=len(domains), n_out=len(ctx.maps), detail={"domains_mapped": n_domains}
        )

    def cache_products(self, ctx: HuntContext) -> dict[str, object]:
        # Entries store the encoded columnar form — the same int-tuple
        # payload the workers shipped — never the map object graphs.
        # Decoding on a hit resolves pool ids against the restoring
        # process's table, whose interning is a pure function of the
        # digested row stream, so ids mean the same thing there.
        return {"encoded_maps": ctx.maps_encoded}

    def restore_products(self, ctx: HuntContext, products: dict) -> None:
        ctx.maps_encoded = products["encoded_maps"]
        if ctx.maps:
            return  # post-store call: the context already holds the maps
        ctx.maps = self._decode_all(ctx, ctx.maps_encoded)


class ClassificationStage(Stage):
    """Step 2: classify every map as stable/transition/transient/noisy.

    Runs inline in the parent on every backend: classifying a map costs
    microseconds while shipping it to a worker costs kilobytes, so
    fan-out can only lose here.  The classifier operates on the
    deployment stage's *encoded* maps — scan-calendar indices and pool
    ids, no object graphs — and its compact
    :data:`~repro.core.patterns.EncodedClassification` wire form doubles
    as the stage's cache product: a warm run restores the codes and
    decodes them against the already-restored maps, instead of the old
    uncacheable reclassify-every-map path.
    """

    name = "classify"
    products = ("classifications",)
    cache_version = 2  # entries now store the encoded columnar form
    config_deps = ("patterns",)

    @staticmethod
    def _decode_all(
        ctx: HuntContext, encoded_by_domain: list
    ) -> dict[tuple[str, int], Classification]:
        classifications: dict[tuple[str, int], Classification] = {}
        for domain, per_domain in encoded_by_domain:
            for period_index, encoded in per_domain:
                key = (domain, period_index)
                classifications[key] = decode_classification(ctx.maps[key], encoded)
        return classifications

    def run(self, ctx: HuntContext, backend: ExecutionBackend) -> StageStats:
        items = ctx.maps_encoded
        encoded = backend.run_inline("classify", items)
        ctx.classifications_encoded = [
            (domain, per_domain)
            for (domain, _), per_domain in zip(items, encoded)
        ]
        ctx.classifications = self._decode_all(ctx, ctx.classifications_encoded)
        kinds: dict[str, int] = {}
        for classification in ctx.classifications.values():
            kinds[classification.kind.name.lower()] = (
                kinds.get(classification.kind.name.lower(), 0) + 1
            )
        registry = get_registry()
        for kind, count in kinds.items():
            registry.inc(f"classify.{kind}", count)
        n_transient = kinds.get("transient", 0)
        logger.info("step 2: %d transient maps", n_transient)
        return StageStats(
            n_in=len(ctx.maps), n_out=len(ctx.classifications), detail=kinds
        )

    def cache_products(self, ctx: HuntContext) -> dict[str, object]:
        return {"encoded": ctx.classifications_encoded}

    def restore_products(self, ctx: HuntContext, products: dict) -> None:
        ctx.classifications_encoded = products["encoded"]
        if ctx.classifications:
            return  # post-store call: the context already holds the objects
        ctx.classifications = self._decode_all(ctx, ctx.classifications_encoded)


class ShortlistStage(Stage):
    """Step 3: prune transients down to the inspection shortlist.

    Serial by design: every check reads the full classification table
    (org relations across periods, recurring-transient runs).
    """

    name = "shortlist"
    products = ("shortlist", "decisions")
    cache_version = 2  # entries now store the encoded columnar form
    config_deps = ("shortlist",)

    def run(self, ctx: HuntContext, backend: ExecutionBackend) -> StageStats:
        shortlister = Shortlister(
            ctx.inputs.as2org,
            ctx.config.shortlist,
            known_missing=ctx.inputs.scan.known_missing_dates,
            dataset=ctx.inputs.scan,
        )
        ctx.shortlist, ctx.decisions = shortlister.evaluate(ctx.classifications)
        n_transient = sum(
            1
            for c in ctx.classifications.values()
            if c.kind is PatternKind.TRANSIENT
        )
        pruned: dict[str, int] = {}
        for decision in ctx.decisions:
            if not decision.kept:
                pruned[decision.reason] = pruned.get(decision.reason, 0) + 1
        registry = get_registry()
        registry.set_gauge("shortlist.candidates", len(ctx.shortlist))
        for reason, count in pruned.items():
            registry.inc(f"shortlist.pruned.{reason}", count)
        logger.info(
            "step 3: %d shortlisted (%d pruned)",
            len(ctx.shortlist), sum(pruned.values()),
        )
        return StageStats(n_in=n_transient, n_out=len(ctx.shortlist), detail=pruned)

    def cache_products(self, ctx: HuntContext) -> dict[str, object]:
        # Entries are positional references — transient index inside the
        # classification, scan-table row ids for the evidence records —
        # not the entry object graphs (see ``encode_shortlist``).
        return {"encoded": encode_shortlist(ctx.shortlist, ctx.decisions)}

    def restore_products(self, ctx: HuntContext, products: dict) -> None:
        if ctx.shortlist or ctx.decisions:
            return  # post-store call: the context already holds the objects
        ctx.shortlist, ctx.decisions = decode_shortlist(
            products["encoded"], ctx.classifications, ctx.inputs.scan
        )


class InspectionStage(Stage):
    """Step 4: corroborate entries (fan-out) plus the T1* second pass."""

    name = "inspect"
    parallel = True
    products = ("inspections", "confirmed_ips", "confirmed_ns")
    cache_version = 2  # entries now store the encoded columnar form
    config_deps = ("inspection", "enable_t1_star")

    def run(self, ctx: HuntContext, backend: ExecutionBackend) -> StageStats:
        # Workers ship each result's compact wire form — pDNS row ids
        # and (fingerprint, ordinal) CT references; materialize the
        # evidence object graphs here against the parent's tables.
        encoded = backend.map("inspect", ctx.shortlist, key=lambda e: e.domain)
        ctx.inspections = [
            decode_inspection(enc, entry, ctx.inputs.pdns, ctx.inputs.crtsh)
            for entry, enc in zip(ctx.shortlist, encoded)
        ]
        logger.info(
            "step 4: %d hijacked, %d targeted from direct inspection",
            sum(1 for r in ctx.inspections if r.verdict is Verdict.HIJACKED),
            sum(1 for r in ctx.inspections if r.verdict is Verdict.TARGETED),
        )

        for result in ctx.inspections:
            if result.verdict is Verdict.HIJACKED:
                ctx.confirmed_ips.update(result.attacker_ips)
                ctx.confirmed_ns.update(result.attacker_ns)

        n_upgraded = 0
        if ctx.config.enable_t1_star:
            pending = [r for r in ctx.inspections if r.pending_t1_star]
            upgraded = Inspector.resolve_t1_star(
                pending, frozenset(ctx.confirmed_ips)
            )
            n_upgraded = len(upgraded)
            for result in upgraded:
                ctx.confirmed_ips.update(result.attacker_ips)
                ctx.confirmed_ns.update(result.attacker_ns)

        n_out = sum(
            1
            for r in ctx.inspections
            if r.verdict in (Verdict.HIJACKED, Verdict.TARGETED)
        )
        registry = get_registry()
        registry.inc("inspection.t1_star_upgraded", n_upgraded)
        registry.set_gauge("inspection.positive", n_out)
        return StageStats(
            n_in=len(ctx.shortlist),
            n_out=n_out,
            detail={"t1_star_upgraded": n_upgraded},
        )

    def cache_products(self, ctx: HuntContext) -> dict[str, object]:
        # Results re-encode *after* the T1* second pass, so a warm run
        # restores the upgraded verdicts without repeating it.  Results
        # align positionally with the (restored) shortlist.
        return {
            "encoded": tuple(
                encode_inspection(result, ctx.inputs.pdns, ctx.inputs.crtsh)
                for result in ctx.inspections
            ),
            "confirmed_ips": tuple(sorted(ctx.confirmed_ips)),
            "confirmed_ns": tuple(sorted(ctx.confirmed_ns)),
        }

    def restore_products(self, ctx: HuntContext, products: dict) -> None:
        ctx.confirmed_ips = set(products["confirmed_ips"])
        ctx.confirmed_ns = set(products["confirmed_ns"])
        if ctx.inspections:
            return  # post-store call: the context already holds the objects
        ctx.inspections = [
            decode_inspection(enc, entry, ctx.inputs.pdns, ctx.inputs.crtsh)
            for entry, enc in zip(ctx.shortlist, products["encoded"])
        ]


class PivotStage(Stage):
    """Step 5: pivot on confirmed attacker IPs and nameservers."""

    name = "pivot"
    products = ("pivots",)
    config_deps = ("enable_pivot", "inspection")

    def run(self, ctx: HuntContext, backend: ExecutionBackend) -> StageStats:
        ctx.pivots = []
        n_infra = len(ctx.confirmed_ips) + len(ctx.confirmed_ns)
        if ctx.config.enable_pivot and (ctx.confirmed_ips or ctx.confirmed_ns):
            known = {
                r.domain
                for r in ctx.inspections
                if r.verdict in (Verdict.HIJACKED, Verdict.TARGETED)
            }
            analyzer = PivotAnalyzer(
                ctx.inputs.pdns, ctx.inputs.crtsh, ctx.config.inspection
            )
            ctx.pivots = analyzer.pivot(
                frozenset(ctx.confirmed_ips), frozenset(ctx.confirmed_ns), known
            )
            logger.info(
                "step 5: pivot on %d IPs / %d nameservers found %d more victims",
                len(ctx.confirmed_ips), len(ctx.confirmed_ns), len(ctx.pivots),
            )
        get_registry().set_gauge("pivot.findings", len(ctx.pivots))
        return StageStats(n_in=n_infra, n_out=len(ctx.pivots))


class AssembleStage(Stage):
    """Merge verdicts into per-domain findings, the funnel, the report.

    Cacheable since the wire-form rework: findings serialize as the same
    JSON-safe rows :func:`repro.io.reports.save_findings` writes, so a
    warm run restores them with :func:`finding_from_row` instead of
    re-walking provenance trails, then reassembles the (cheap) funnel
    and report from the restored upstream products — keeping the report
    gauges in the run's metrics registry either way.
    """

    name = "assemble"
    products = ("findings",)
    cache_version = 2  # entries store finding rows, not object graphs

    def run(self, ctx: HuntContext, backend: ExecutionBackend) -> StageStats:
        builder = _FindingBuilder(ctx.inputs, ctx.classifications)
        findings: list[DomainFinding] = []
        seen: set[str] = set()
        for result in ctx.inspections:
            if result.verdict in (Verdict.HIJACKED, Verdict.TARGETED):
                if result.domain in seen:
                    continue
                findings.append(builder.from_inspection(result, ctx.classifications))
                seen.add(result.domain)
        for pivot in ctx.pivots:
            if pivot.domain in seen:
                continue
            findings.append(builder.from_pivot(pivot, ctx.classifications))
            seen.add(pivot.domain)
        findings.sort(
            key=lambda f: ((f.victim_ccs[0] if f.victim_ccs else "zz"), f.domain)
        )
        ctx.findings = findings
        self._finish(ctx)
        n_in = len(ctx.inspections) + len(ctx.pivots)
        return StageStats(n_in=n_in, n_out=len(findings))

    @staticmethod
    def _finish(ctx: HuntContext) -> None:
        """Funnel, report, and gauges over the context's products."""
        funnel = _funnel_stats(
            ctx.classifications, ctx.shortlist, ctx.decisions, ctx.inspections,
            ctx.pivots,
        )
        ctx.report = PipelineReport(
            funnel=funnel,
            findings=ctx.findings,
            classifications=ctx.classifications,
            shortlist=ctx.shortlist,
            inspections=ctx.inspections,
            pivots=ctx.pivots,
            attacker_ips=frozenset(ctx.confirmed_ips),
            attacker_ns=frozenset(ctx.confirmed_ns),
        )
        registry = get_registry()
        registry.set_gauge("report.findings", len(ctx.findings))
        registry.set_gauge(
            "report.hijacked",
            sum(1 for f in ctx.findings if f.verdict is Verdict.HIJACKED),
        )

    def cache_products(self, ctx: HuntContext) -> dict[str, object]:
        return {"finding_rows": tuple(finding_to_row(f) for f in ctx.findings)}

    def restore_products(self, ctx: HuntContext, products: dict) -> None:
        if ctx.report is not None:
            return  # post-store call: the report is already assembled
        ctx.findings = [finding_from_row(row) for row in products["finding_rows"]]
        self._finish(ctx)


#: The funnel stages, in paper order, plus the report assembly.
def build_stages() -> tuple[Stage, ...]:
    return (
        DeploymentMapStage(),
        ClassificationStage(),
        ShortlistStage(),
        InspectionStage(),
        PivotStage(),
        AssembleStage(),
    )


def _funnel_stats(
    classifications, shortlist, decisions, inspections, pivots
) -> FunnelStats:
    stats = FunnelStats()
    stats.n_maps = len(classifications)
    stats.n_domains = len({d for d, _ in classifications})
    for classification in classifications.values():
        if classification.kind is PatternKind.STABLE:
            stats.n_stable += 1
        elif classification.kind is PatternKind.TRANSITION:
            stats.n_transition += 1
        elif classification.kind is PatternKind.TRANSIENT:
            stats.n_transient += 1
        elif classification.kind is PatternKind.NOISY:
            stats.n_noisy += 1
    stats.n_shortlisted = len(shortlist)
    stats.n_truly_anomalous = sum(1 for e in shortlist if e.truly_anomalous)
    stats.n_worth_examining = sum(
        1
        for r in inspections
        if not (r.verdict is Verdict.BENIGN and r.evidence.stale_certificate)
    )
    for decision in decisions:
        if not decision.kept:
            stats.prune_reasons[decision.reason] = (
                stats.prune_reasons.get(decision.reason, 0) + 1
            )
    for result in inspections:
        if result.verdict is Verdict.HIJACKED:
            if result.detection is DetectionType.T1:
                stats.n_t1_hijacked += 1
            elif result.detection is DetectionType.T2:
                stats.n_t2_hijacked += 1
            elif result.detection is DetectionType.T1_STAR:
                stats.n_t1_star += 1
        elif result.verdict is Verdict.TARGETED:
            stats.n_targeted += 1
    for pivot in pivots:
        if pivot.detection is DetectionType.P_IP:
            stats.n_pivot_ip += 1
        else:
            stats.n_pivot_ns += 1
    return stats


def _funnel_summary(funnel: FunnelStats) -> dict[str, int]:
    summary = {
        f.name: getattr(funnel, f.name)
        for f in fields(FunnelStats)
        if f.name != "prune_reasons"
    }
    summary["n_hijacked"] = funnel.n_hijacked
    return summary


class HijackPipeline:
    """End-to-end retroactive hijack identification."""

    def __init__(
        self,
        inputs: PipelineInputs,
        config: PipelineConfig | None = None,
        *,
        faults: FaultPlan | FaultSpec | str | None = None,
    ) -> None:
        if not isinstance(inputs, PipelineInputs):
            # The PR-1-deprecated eight-argument form (scan, pdns, crtsh,
            # as2org, periods, ...) is gone: bundling is the only path.
            raise TypeError(
                "HijackPipeline takes a PipelineInputs bundle (got "
                f"{type(inputs).__name__}); build one with PipelineInputs(...) "
                "or use HijackPipeline.from_study / from_directory"
            )
        self._inputs = inputs
        self._config = config or PipelineConfig()
        # A plan passes through as-is (its seed matters); a bare spec or
        # spec string binds to seed 0.
        self._faults = (
            faults
            if isinstance(faults, FaultPlan)
            else FaultPlan.from_spec(faults)
        )

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_study(
        cls,
        study,
        config: PipelineConfig | None = None,
        faults: FaultPlan | FaultSpec | str | None = None,
    ) -> HijackPipeline:
        """Build the pipeline over a simulated study's datasets."""
        return cls(PipelineInputs.from_study(study), config=config, faults=faults)

    @classmethod
    def from_directory(
        cls,
        path: str | Path,
        config: PipelineConfig | None = None,
        faults: FaultPlan | FaultSpec | str | None = None,
    ) -> HijackPipeline:
        """Build the pipeline over an exported study directory."""
        return cls(PipelineInputs.from_directory(path), config=config, faults=faults)

    @property
    def inputs(self) -> PipelineInputs:
        return self._inputs

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def faults(self) -> FaultPlan:
        return self._faults

    # -- the run ---------------------------------------------------------------

    def run(
        self,
        backend: ExecutionBackend | None = None,
        cache: StageCache | None = None,
    ) -> PipelineReport:
        """Run the funnel; identical reports under every backend."""
        report, _ = self.profile(backend, cache=cache)
        return report

    def profile(
        self,
        backend: ExecutionBackend | None = None,
        tracer: Tracer | None = None,
        cache: StageCache | None = None,
        events: EventSink | None = None,
        memory: bool = False,
        ledger: RunLedger | None = None,
        label: str = "hunt",
    ) -> tuple[PipelineReport, RunMetrics]:
        """Run the funnel and return the report plus its run manifest.

        With a non-empty fault plan the inputs are degraded up front
        (losses land in the context's :class:`DataQuality` ledger and in
        the manifest's ``data_quality`` section) and the backend injects
        the plan's worker faults, absorbing them via retry/backoff.  An
        empty plan takes exactly the fault-free code path.

        An enabled :class:`repro.obs.Tracer` collects the run's
        hierarchical span tree (run → stage → task-chunk across worker
        pids); the report is required to be byte-identical with tracing
        on or off.  Same contract for ``events`` (a live heartbeat
        :class:`repro.obs.EventSink`) and ``ledger`` (a
        :class:`repro.obs.RunLedger` the executor appends the run's
        durable record to, keyed so that timing-only worker faults land
        with the clean baseline).  ``memory=True`` additionally traces
        per-stage allocations with :mod:`tracemalloc` — measurably
        slower, so opt-in; peak RSS is sampled regardless.

        A :class:`repro.cache.StageCache` turns repeat runs into cache
        loads: the run key is derived from the *degraded* input bundle
        (so dataset faults key distinctly), the fault plan, and the
        configuration.  Warm runs are required to produce byte-identical
        reports under every backend.
        """
        quality = DataQuality()
        inputs = apply_faults(self._inputs, self._faults, quality)
        ctx = HuntContext(inputs=inputs, config=self._config, quality=quality)
        run_key = None
        if cache is not None:
            from repro.cache.fingerprint import derive_run_key

            run_key = derive_run_key(inputs, self._faults, self._config)
        ledger_info = None
        ledger_extra = None
        if ledger is not None:
            ledger_info, ledger_extra = self._ledger_identity(backend, label)
        executor = PipelineExecutor(
            build_stages(), backend=backend, tracer=tracer,
            cache=cache, run_key=run_key,
            events=events, memory=memory,
            ledger=ledger, ledger_info=ledger_info, ledger_extra=ledger_extra,
        )
        executor.backend.install_faults(self._faults)
        metrics = executor.execute(ctx)
        assert ctx.report is not None
        metrics.funnel = _funnel_summary(ctx.report.funnel)
        return ctx.report, metrics

    def _ledger_identity(self, backend: ExecutionBackend | None, label: str):
        """The run's ledger identity plus the record-finisher callback.

        The matching key folds in config and *data-channel* faults only
        — worker faults are timing-only by contract, so an injected
        slowdown shares the clean run's key and the regression sentinel
        can compare the two.  The finisher runs at run end inside the
        executor, attaching what only the pipeline can compute: the
        funnel summary and the report drift digest.
        """
        from repro.cache.fingerprint import config_digest
        from repro.io.golden import report_digest
        from repro.obs.ledger import LedgerInfo, data_fault_digest, ledger_key

        cfg_digest = config_digest(self._config)
        faults_digest = data_fault_digest(self._faults)
        resolved = backend or SerialBackend()
        info = LedgerInfo(
            kind="pipeline",
            key=ledger_key(
                "pipeline",
                label,
                config_digest=cfg_digest,
                faults_digest=faults_digest,
                backend=resolved.name,
                jobs=resolved.jobs,
            ),
            label=label,
            config_digest=cfg_digest,
            faults_digest=faults_digest,
            faults=(
                "" if self._faults.is_empty else self._faults.spec.format()
            ),
        )

        def finish(ctx: StageContext) -> dict:
            extra: dict = {}
            report = getattr(ctx, "report", None)
            if report is not None:
                extra["funnel"] = _funnel_summary(report.funnel)
                extra["report_digest"] = report_digest(report)
            return extra

        return info, finish
