"""Step 3 — shortlisting suspicious transient deployments (Section 4.3).

Four pruning checks, then the keep rule:

1. prune when the transient's ASN is organizationally related to any
   stable deployment's ASN (CAIDA AS2Org);
2. prune when the transient geolocates to the same country as any
   stable deployment;
3. prune when visibility is too unstable to judge — the domain misses
   more than 20% of the period's scans, or shows similar transients in
   three or more consecutive periods;
4. keep only transients whose certificate is browser-trusted and
   secures a *sensitive* subdomain — unless the transient is *truly
   anomalous* (the domain was fully stable the entire period before and
   after), which is kept regardless of naming.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import TYPE_CHECKING, Collection

from repro.core.deployment import Deployment, DeploymentMap
from repro.core.patterns import (
    ENCODED_SUBPATTERNS,
    SUBPATTERN_CODE,
    Classification,
    transient_subpattern_of,
)
from repro.core.types import PatternKind, SubPattern
from repro.ipintel.as2org import AS2Org
from repro.net.names import is_sensitive_name
from repro.scan.annotate import AnnotatedScanRecord

if TYPE_CHECKING:
    from repro.scan.dataset import ScanDataset


@dataclass(frozen=True, slots=True)
class ShortlistConfig:
    min_presence: float = 0.80
    recurring_periods: int = 3


@dataclass
class ShortlistEntry:
    """One shortlisted (domain, period, transient deployment)."""

    domain: str
    period_index: int
    classification: Classification
    transient: Deployment
    subpattern: SubPattern
    truly_anomalous: bool
    sensitive_names: tuple[str, ...]
    transient_records: list[AnnotatedScanRecord]
    #: Scan-table row ids behind ``transient_records`` when the columnar
    #: path produced them (None on the row-at-a-time reference path).
    #: Excluded from equality: the two paths must compare equal.
    transient_rows: tuple[int, ...] | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def transient_ips(self) -> frozenset[str]:
        return self.transient.ips

    @property
    def transient_asn(self) -> int:
        return self.transient.asn


@dataclass
class PruneDecision:
    """Why a transient was dropped (kept entries have ``kept=True``)."""

    domain: str
    period_index: int
    kept: bool
    reason: str


class Shortlister:
    """Applies the Section 4.3 heuristics across all classified maps."""

    def __init__(
        self,
        as2org: AS2Org,
        config: ShortlistConfig | None = None,
        known_missing: Collection[date] = (),
        dataset: ScanDataset | None = None,
    ) -> None:
        self._as2org = as2org
        self._config = config or ShortlistConfig()
        # Scan dates the collector is known to have lost (telemetry gaps,
        # injected faults): excluded from the visibility denominator so a
        # missing scan is not mistaken for the domain going dark.
        self._known_missing = frozenset(known_missing)
        # With the scan dataset attached, transient evidence rows come
        # from bisect slices of its columnar table instead of filtering
        # the map's record list, and sensitive-name screening memoizes
        # per interned SAN set; without it the row-at-a-time reference
        # below answers (the differential suites compare the two).
        self._dataset = dataset
        self._sensitive_memo: dict[int, tuple[str, ...]] = {}

    # -- individual checks ---------------------------------------------------

    def org_related(self, classification: Classification, transient: Deployment) -> bool:
        return any(
            self._as2org.related(transient.asn, stable_asn)
            for stable_asn in classification.stable_asns()
        )

    def same_country(self, classification: Classification, transient: Deployment) -> bool:
        stable_ccs = classification.stable_countries()
        return bool(transient.countries & stable_ccs)

    def low_visibility(self, map_: DeploymentMap) -> bool:
        if not self._known_missing:
            return map_.presence < self._config.min_presence
        observed = [
            d for d in map_.scan_dates_in_period if d not in self._known_missing
        ]
        if not observed:
            return True  # every scan of the period was lost: cannot judge
        return len(map_.visible_dates) / len(observed) < self._config.min_presence

    def chronically_transient(
        self,
        domain: str,
        classifications: dict[tuple[str, int], Classification],
    ) -> bool:
        """Similar transients in >= N consecutive six-month periods."""
        indices = sorted(
            idx
            for (d, idx), c in classifications.items()
            if d == domain and c.kind is PatternKind.TRANSIENT
        )
        run = best = 1 if indices else 0
        for previous, current in zip(indices, indices[1:]):
            run = run + 1 if current == previous + 1 else 1
            best = max(best, run)
        return best >= self._config.recurring_periods

    @staticmethod
    def truly_anomalous(
        domain: str,
        period_index: int,
        classifications: dict[tuple[str, int], Classification],
    ) -> bool:
        """Stable for the full six-month period before AND after."""
        before = classifications.get((domain, period_index - 1))
        after = classifications.get((domain, period_index + 1))
        return (
            before is not None
            and after is not None
            and before.kind is PatternKind.STABLE
            and after.kind is PatternKind.STABLE
        )

    # -- the full shortlist --------------------------------------------------

    def _transient_records(
        self, classification: Classification, transient: Deployment
    ) -> list[AnnotatedScanRecord]:
        dates = set(transient.dates())
        return [
            r
            for r in classification.map.records
            if r.scan_date in dates
            and r.asn == transient.asn
            and r.ip in transient.ips
        ]

    def _transient_rows(
        self, classification: Classification, transient: Deployment
    ) -> tuple[int, ...]:
        """Columnar mirror of :meth:`_transient_records`: the matching
        scan-table row ids, in the same (date, ip)-sorted CSR order the
        map's record list carries."""
        table = self._dataset.table
        map_ = classification.map
        lo, hi = table.period_slice(map_.domain, map_.period.start, map_.period.end)
        wanted = {d.toordinal() for d in transient.dates()}
        asn = transient.asn
        ips = transient.ips
        csr_rows, csr_dates = table.csr_rows, table.csr_dates
        asn_id, asns = table.asn_id, table.asns
        ip_id, ip_pool = table.ip_id, table.ips
        rows: list[int] = []
        for i in range(lo, hi):
            if csr_dates[i] not in wanted:
                continue
            row = csr_rows[i]
            if asns[asn_id[row]] != asn or ip_pool[ip_id[row]] not in ips:
                continue
            rows.append(row)
        return tuple(rows)

    def _sensitive_from_rows(self, rows: tuple[int, ...]) -> tuple[str, ...]:
        """Columnar mirror of :meth:`_sensitive_trusted_names`, memoized
        per interned SAN-set id (the screen is a pure name predicate)."""
        table = self._dataset.table
        names: list[str] = []
        names_id, name_sets = table.names_id, table.name_sets
        for row in rows:
            if not table.trusted(row):
                continue
            ident = names_id[row]
            sensitive = self._sensitive_memo.get(ident)
            if sensitive is None:
                sensitive = tuple(
                    n for n in name_sets[ident] if is_sensitive_name(n)
                )
                self._sensitive_memo[ident] = sensitive
            names.extend(sensitive)
        return tuple(dict.fromkeys(names))

    def _sensitive_trusted_names(
        self, classification: Classification, transient: Deployment
    ) -> tuple[str, ...]:
        names: list[str] = []
        for record in self._transient_records(classification, transient):
            if not record.trusted:
                continue
            names.extend(n for n in record.names if is_sensitive_name(n))
        return tuple(dict.fromkeys(names))

    def evaluate(
        self,
        classifications: dict[tuple[str, int], Classification],
    ) -> tuple[list[ShortlistEntry], list[PruneDecision]]:
        """Shortlist every transient deployment across all maps."""
        entries: list[ShortlistEntry] = []
        decisions: list[PruneDecision] = []
        columnar = self._dataset is not None

        # One pass indexes every domain's transient periods so the
        # recurring-transient check stops rescanning the whole table per
        # candidate (the sorted-subset order matches the per-domain
        # comprehension it replaces).
        transient_periods: dict[str, list[int]] = {}
        for (domain, period_index), classification in classifications.items():
            if classification.kind is PatternKind.TRANSIENT:
                transient_periods.setdefault(domain, []).append(period_index)

        def chronic(domain: str) -> bool:
            indices = sorted(transient_periods.get(domain, ()))
            run = best = 1 if indices else 0
            for previous, current in zip(indices, indices[1:]):
                run = run + 1 if current == previous + 1 else 1
                best = max(best, run)
            return best >= self._config.recurring_periods

        for (domain, period_index), classification in sorted(classifications.items()):
            if classification.kind is not PatternKind.TRANSIENT:
                continue

            def prune(reason: str) -> None:
                decisions.append(PruneDecision(domain, period_index, False, reason))

            if self.low_visibility(classification.map):
                prune("low-visibility")
                continue
            if chronic(domain):
                prune("recurring-transients")
                continue

            for transient in classification.transients:
                if self.org_related(classification, transient):
                    prune("org-related-asn")
                    continue
                if self.same_country(classification, transient):
                    prune("same-country")
                    continue
                anomalous = self.truly_anomalous(domain, period_index, classifications)
                if columnar:
                    rows = self._transient_rows(classification, transient)
                    sensitive = self._sensitive_from_rows(rows)
                else:
                    rows = None
                    sensitive = self._sensitive_trusted_names(classification, transient)
                if not sensitive and not anomalous:
                    prune("no-sensitive-name")
                    continue
                table = self._dataset.table if columnar else None
                entries.append(
                    ShortlistEntry(
                        domain=domain,
                        period_index=period_index,
                        classification=classification,
                        transient=transient,
                        subpattern=transient_subpattern_of(classification, transient),
                        truly_anomalous=anomalous,
                        sensitive_names=sensitive,
                        transient_records=(
                            [table.record(row) for row in rows]
                            if columnar
                            else self._transient_records(classification, transient)
                        ),
                        transient_rows=rows,
                    )
                )
                decisions.append(PruneDecision(domain, period_index, True, "shortlisted"))
        return entries, decisions


# -- the compact wire form -----------------------------------------------------


def encode_shortlist(
    entries: list[ShortlistEntry], decisions: list[PruneDecision]
) -> tuple:
    """The shortlist stage's cache product: plain ints and strings.

    Each entry is referenced by position — its transient's index inside
    the classification's ``transients`` list and its evidence rows'
    scan-table ids — so the payload carries no object graphs and decodes
    against whatever process restores it.
    """
    enc_entries = []
    for entry in entries:
        transients = entry.classification.transients
        position = next(
            pos for pos, t in enumerate(transients) if t is entry.transient
        )
        enc_entries.append(
            (
                entry.domain,
                entry.period_index,
                position,
                SUBPATTERN_CODE[entry.subpattern],
                entry.truly_anomalous,
                entry.sensitive_names,
                entry.transient_rows,
            )
        )
    enc_decisions = [
        (d.domain, d.period_index, d.kept, d.reason) for d in decisions
    ]
    return (tuple(enc_entries), tuple(enc_decisions))


def decode_shortlist(
    encoded: tuple,
    classifications: dict[tuple[str, int], Classification],
    dataset: ScanDataset,
) -> tuple[list[ShortlistEntry], list[PruneDecision]]:
    """Materialize entries/decisions against the restored upstream
    classifications and the scan table."""
    enc_entries, enc_decisions = encoded
    table = dataset.table
    entries: list[ShortlistEntry] = []
    for domain, period_index, position, sub_code, anomalous, sensitive, rows in enc_entries:
        classification = classifications[(domain, period_index)]
        entries.append(
            ShortlistEntry(
                domain=domain,
                period_index=period_index,
                classification=classification,
                transient=classification.transients[position],
                subpattern=ENCODED_SUBPATTERNS[sub_code],
                truly_anomalous=anomalous,
                sensitive_names=sensitive,
                transient_records=[table.record(row) for row in rows],
                transient_rows=rows,
            )
        )
    decisions = [
        PruneDecision(domain, period_index, kept, reason)
        for domain, period_index, kept, reason in enc_decisions
    ]
    return entries, decisions
