"""Step 3 — shortlisting suspicious transient deployments (Section 4.3).

Four pruning checks, then the keep rule:

1. prune when the transient's ASN is organizationally related to any
   stable deployment's ASN (CAIDA AS2Org);
2. prune when the transient geolocates to the same country as any
   stable deployment;
3. prune when visibility is too unstable to judge — the domain misses
   more than 20% of the period's scans, or shows similar transients in
   three or more consecutive periods;
4. keep only transients whose certificate is browser-trusted and
   secures a *sensitive* subdomain — unless the transient is *truly
   anomalous* (the domain was fully stable the entire period before and
   after), which is kept regardless of naming.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Collection

from repro.core.deployment import Deployment, DeploymentMap
from repro.core.patterns import Classification, transient_subpattern_of
from repro.core.types import PatternKind, SubPattern
from repro.ipintel.as2org import AS2Org
from repro.net.names import is_sensitive_name
from repro.scan.annotate import AnnotatedScanRecord


@dataclass(frozen=True, slots=True)
class ShortlistConfig:
    min_presence: float = 0.80
    recurring_periods: int = 3


@dataclass
class ShortlistEntry:
    """One shortlisted (domain, period, transient deployment)."""

    domain: str
    period_index: int
    classification: Classification
    transient: Deployment
    subpattern: SubPattern
    truly_anomalous: bool
    sensitive_names: tuple[str, ...]
    transient_records: list[AnnotatedScanRecord]

    @property
    def transient_ips(self) -> frozenset[str]:
        return self.transient.ips

    @property
    def transient_asn(self) -> int:
        return self.transient.asn


@dataclass
class PruneDecision:
    """Why a transient was dropped (kept entries have ``kept=True``)."""

    domain: str
    period_index: int
    kept: bool
    reason: str


class Shortlister:
    """Applies the Section 4.3 heuristics across all classified maps."""

    def __init__(
        self,
        as2org: AS2Org,
        config: ShortlistConfig | None = None,
        known_missing: Collection[date] = (),
    ) -> None:
        self._as2org = as2org
        self._config = config or ShortlistConfig()
        # Scan dates the collector is known to have lost (telemetry gaps,
        # injected faults): excluded from the visibility denominator so a
        # missing scan is not mistaken for the domain going dark.
        self._known_missing = frozenset(known_missing)

    # -- individual checks ---------------------------------------------------

    def org_related(self, classification: Classification, transient: Deployment) -> bool:
        return any(
            self._as2org.related(transient.asn, stable_asn)
            for stable_asn in classification.stable_asns()
        )

    def same_country(self, classification: Classification, transient: Deployment) -> bool:
        stable_ccs = classification.stable_countries()
        return bool(transient.countries & stable_ccs)

    def low_visibility(self, map_: DeploymentMap) -> bool:
        if not self._known_missing:
            return map_.presence < self._config.min_presence
        observed = [
            d for d in map_.scan_dates_in_period if d not in self._known_missing
        ]
        if not observed:
            return True  # every scan of the period was lost: cannot judge
        return len(map_.visible_dates) / len(observed) < self._config.min_presence

    def chronically_transient(
        self,
        domain: str,
        classifications: dict[tuple[str, int], Classification],
    ) -> bool:
        """Similar transients in >= N consecutive six-month periods."""
        indices = sorted(
            idx
            for (d, idx), c in classifications.items()
            if d == domain and c.kind is PatternKind.TRANSIENT
        )
        run = best = 1 if indices else 0
        for previous, current in zip(indices, indices[1:]):
            run = run + 1 if current == previous + 1 else 1
            best = max(best, run)
        return best >= self._config.recurring_periods

    @staticmethod
    def truly_anomalous(
        domain: str,
        period_index: int,
        classifications: dict[tuple[str, int], Classification],
    ) -> bool:
        """Stable for the full six-month period before AND after."""
        before = classifications.get((domain, period_index - 1))
        after = classifications.get((domain, period_index + 1))
        return (
            before is not None
            and after is not None
            and before.kind is PatternKind.STABLE
            and after.kind is PatternKind.STABLE
        )

    # -- the full shortlist --------------------------------------------------

    def _transient_records(
        self, classification: Classification, transient: Deployment
    ) -> list[AnnotatedScanRecord]:
        dates = set(transient.dates())
        return [
            r
            for r in classification.map.records
            if r.scan_date in dates
            and r.asn == transient.asn
            and r.ip in transient.ips
        ]

    def _sensitive_trusted_names(
        self, classification: Classification, transient: Deployment
    ) -> tuple[str, ...]:
        names: list[str] = []
        for record in self._transient_records(classification, transient):
            if not record.trusted:
                continue
            names.extend(n for n in record.names if is_sensitive_name(n))
        return tuple(dict.fromkeys(names))

    def evaluate(
        self,
        classifications: dict[tuple[str, int], Classification],
    ) -> tuple[list[ShortlistEntry], list[PruneDecision]]:
        """Shortlist every transient deployment across all maps."""
        entries: list[ShortlistEntry] = []
        decisions: list[PruneDecision] = []

        for (domain, period_index), classification in sorted(classifications.items()):
            if classification.kind is not PatternKind.TRANSIENT:
                continue

            def prune(reason: str) -> None:
                decisions.append(PruneDecision(domain, period_index, False, reason))

            if self.low_visibility(classification.map):
                prune("low-visibility")
                continue
            if self.chronically_transient(domain, classifications):
                prune("recurring-transients")
                continue

            for transient in classification.transients:
                if self.org_related(classification, transient):
                    prune("org-related-asn")
                    continue
                if self.same_country(classification, transient):
                    prune("same-country")
                    continue
                anomalous = self.truly_anomalous(domain, period_index, classifications)
                sensitive = self._sensitive_trusted_names(classification, transient)
                if not sensitive and not anomalous:
                    prune("no-sensitive-name")
                    continue
                entries.append(
                    ShortlistEntry(
                        domain=domain,
                        period_index=period_index,
                        classification=classification,
                        transient=transient,
                        subpattern=transient_subpattern_of(classification, transient),
                        truly_anomalous=anomalous,
                        sensitive_names=sensitive,
                        transient_records=self._transient_records(
                            classification, transient
                        ),
                    )
                )
                decisions.append(PruneDecision(domain, period_index, True, "shortlisted"))
        return entries, decisions
