"""Reactive monitoring on certificate issuance (Section 7.1 future work).

The paper's proposed intervention: "automatically triggering reactive
DNS measurements on certificate issuance ... cross-referenced with
historical deployment maps to flag suspicious certificate issuance" in
near real time, instead of retroactively.

:class:`ReactiveMonitor` watches a CT log for certificates naming a
registered set of domains.  On each issuance it immediately measures the
domain's delegation and the certified names' resolutions through the
live resolver and compares against the domain's baseline (its known
nameservers and address space).  A DV certificate whose issuance-time
measurement shows a foreign delegation or foreign addresses is exactly
the attacker-workflow signature — the hijack window must be open for
domain validation to have passed.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime, time, timedelta
from typing import Callable

from repro.ct.log import CTLog
from repro.dns.dnssec import DnssecStatus
from repro.dns.resolver import RecursiveResolver
from repro.net.names import registered_domain
from repro.tls.certificate import Certificate

#: Signature of an optional DNSSEC chain validator: (domain, instant) -> status.
ChainValidator = Callable[[str, datetime], DnssecStatus]


@dataclass(frozen=True, slots=True)
class DomainBaseline:
    """What the monitor expects the domain's DNS to look like."""

    domain: str
    nameservers: frozenset[str]
    address_space: frozenset[str]  # legitimate service IPs
    dnssec_secure: bool = False    # chain validated SECURE at baseline time


@dataclass(frozen=True, slots=True)
class ReactiveAlert:
    """A suspicious issuance caught at certificate-issuance time."""

    domain: str
    names: tuple[str, ...]
    crtsh_id: int
    issued_on: date
    reason: str  # "rogue-delegation" | "foreign-resolution" | "dnssec-stripped"
    observed_ns: tuple[str, ...]
    observed_ips: tuple[str, ...]


class ReactiveMonitor:
    """Flags suspicious certificate issuance in near real time."""

    def __init__(
        self,
        resolver: RecursiveResolver,
        measurement_delay_minutes: int = 30,
        chain_validator: ChainValidator | None = None,
    ) -> None:
        self._resolver = resolver
        self._baselines: dict[str, DomainBaseline] = {}
        self._delay = timedelta(minutes=measurement_delay_minutes)
        self._chain_validator = chain_validator
        self._processed = 0

    # -- registration -----------------------------------------------------------

    def watch(
        self,
        domain: str,
        nameservers: tuple[str, ...] | frozenset[str],
        address_space: tuple[str, ...] | frozenset[str],
        dnssec_secure: bool = False,
    ) -> None:
        """Register a domain with its known-good delegation and IPs."""
        base = registered_domain(domain)
        self._baselines[base] = DomainBaseline(
            domain=base,
            nameservers=frozenset(ns.lower().rstrip(".") for ns in nameservers),
            address_space=frozenset(address_space),
            dnssec_secure=dnssec_secure,
        )

    def watch_from_current_state(self, domain: str, asof: datetime) -> None:
        """Learn the baseline by measuring the domain right now."""
        base = registered_domain(domain)
        delegation = self._resolver.delegation_of(base, asof)
        ips: set[str] = set()
        for prefix in ("www", "mail", ""):
            fqdn = f"{prefix}.{base}" if prefix else base
            ips.update(self._resolver.resolve_a(fqdn, asof))
        secure = False
        if self._chain_validator is not None:
            secure = self._chain_validator(base, asof) is DnssecStatus.SECURE
        self.watch(base, tuple(delegation), tuple(ips), dnssec_secure=secure)

    def watched(self) -> tuple[str, ...]:
        return tuple(sorted(self._baselines))

    # -- the reactive measurement -------------------------------------------------

    def on_certificate(self, cert: Certificate, logged_at: date) -> ReactiveAlert | None:
        """React to one CT entry: measure and compare against baseline.

        Only certificates naming a watched domain are examined.  The
        measurement happens ``measurement_delay_minutes`` after the
        (simulated) issuance instant — CT log monitors see entries within
        minutes, while attacker hijack windows last hours.
        """
        concrete = [n for n in cert.sans if not n.startswith("*.")]
        bases = {registered_domain(n) for n in concrete}
        watched = [b for b in bases if b in self._baselines]
        if not watched:
            return None
        base = watched[0]
        baseline = self._baselines[base]

        # Issuance happens at 02:00 in the simulation's attack playbook;
        # measure shortly after the certificate hits the log.
        measure_at = datetime.combine(logged_at, time(2, 0)) + self._delay

        observed_ns = tuple(
            ns.lower().rstrip(".") for ns in self._resolver.delegation_of(base, measure_at)
        )
        observed_ips: list[str] = []
        for name in concrete:
            if registered_domain(name) == base:
                observed_ips.extend(self._resolver.resolve_a(name, measure_at))
        observed_ips = list(dict.fromkeys(observed_ips))

        if observed_ns and not set(observed_ns) <= baseline.nameservers:
            reason = "rogue-delegation"
        elif observed_ips and not set(observed_ips) <= baseline.address_space:
            reason = "foreign-resolution"
        elif (
            baseline.dnssec_secure
            and self._chain_validator is not None
            and self._chain_validator(base, measure_at) is not DnssecStatus.SECURE
        ):
            # Delegation and addresses look right, but the chain that was
            # SECURE at baseline no longer validates at issuance time —
            # the attacker stripped the DS records (Section 7.1's "changes
            # in DNSSEC status" signal).
            reason = "dnssec-stripped"
        else:
            return None
        return ReactiveAlert(
            domain=base,
            names=tuple(concrete),
            crtsh_id=cert.crtsh_id,
            issued_on=cert.not_before,
            reason=reason,
            observed_ns=observed_ns,
            observed_ips=tuple(observed_ips),
        )

    def scan_log(self, log: CTLog, since_index: int = 0) -> list[ReactiveAlert]:
        """Process a CT log's entries (optionally incrementally)."""
        alerts: list[ReactiveAlert] = []
        for entry in log.entries()[since_index:]:
            alert = self.on_certificate(entry.certificate, entry.timestamp)
            if alert is not None:
                alerts.append(alert)
        self._processed = len(log)
        return alerts

    @property
    def processed(self) -> int:
        return self._processed
