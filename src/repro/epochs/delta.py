"""The ``repro-delta/1`` epoch delta file: appended evidence, one epoch.

A delta is the unit of longitudinal growth: the new scan observations,
pDNS aggregate updates, and CT log entries that arrived since the last
run over a base dataset.  It is append-only by construction — a delta
never rewrites or retracts base evidence, which is precisely the
property that makes the overlay merge (:mod:`repro.segments.overlay`)
id-stable and the dirty-set computation (:mod:`repro.epochs.dirty`)
exact.

On disk a delta reuses the segment container
(:mod:`repro.segments.format`): the header carries the schema, epoch
number, label, row counts, and any scan-calendar additions; the three
evidence channels travel as pickle blobs (deltas are small by
definition — the point of the epoch engine is that the *delta* is the
unit of work, so a columnar layout would buy nothing here).  The
container's trailing checksum makes truncation and corruption a load
error rather than a silently short epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.segments.format import Segment, SegmentError, SegmentWriter

if TYPE_CHECKING:
    from repro.pdns.database import RRType
    from repro.tls.certificate import Certificate

DELTA_SCHEMA = "repro-delta/1"

#: One appended scan observation, in :meth:`_TableBuilder.append_row`
#: argument order: ``(date_ordinal, ip, asn, certificate, country,
#: ports, names, base_domains, trusted, sensitive)``.
ScanRow = tuple


@dataclass(frozen=True)
class EpochDelta:
    """Everything one epoch appends to a base dataset."""

    epoch: int
    label: str = ""
    #: Appended scan rows (``ScanRow`` tuples, dataset append order).
    scan_rows: tuple[ScanRow, ...] = ()
    #: Scan-calendar dates the epoch adds (new weekly snapshots).
    scan_dates: tuple[date, ...] = ()
    #: Scheduled scans the epoch learned were lost.
    known_missing: tuple[date, ...] = ()
    #: ``(rrname, rtype, rdata, day)`` pDNS observations to fold in.
    pdns_observations: tuple[tuple[str, "RRType", str, date], ...] = ()
    #: ``(certificate, logged_day)`` CT submissions.
    ct_entries: tuple[tuple["Certificate", date], ...] = ()
    #: Revocations learned this epoch: ``(fingerprint, revoked_on,
    #: reason)`` records, installed into the merged service's registry.
    revocations: tuple[tuple[str, date, str], ...] = ()

    def __len__(self) -> int:
        return (
            len(self.scan_rows)
            + len(self.pdns_observations)
            + len(self.ct_entries)
        )

    def counts(self) -> dict[str, int]:
        return {
            "scan_rows": len(self.scan_rows),
            "scan_dates": len(self.scan_dates),
            "pdns_observations": len(self.pdns_observations),
            "ct_entries": len(self.ct_entries),
            "revocations": len(self.revocations),
        }

    def fingerprint_payload(self) -> dict[str, Any]:
        """A canonical JSON-safe identity (certificates by fingerprint)."""
        return {
            "schema": DELTA_SCHEMA,
            "epoch": self.epoch,
            "label": self.label,
            "scan_rows": [
                [
                    row[0], row[1], row[2], row[3].fingerprint, row[4],
                    list(row[5]), list(row[6]), list(row[7]),
                    bool(row[8]), bool(row[9]),
                ]
                for row in self.scan_rows
            ],
            "scan_dates": [d.isoformat() for d in self.scan_dates],
            "known_missing": [d.isoformat() for d in self.known_missing],
            "pdns": [
                [rrname, rtype.name, rdata, day.isoformat()]
                for rrname, rtype, rdata, day in self.pdns_observations
            ],
            "ct": [
                [cert.fingerprint, day.isoformat()]
                for cert, day in self.ct_entries
            ],
            "revocations": sorted(
                [fp, on.isoformat(), reason]
                for fp, on, reason in self.revocations
            ),
        }

    def digest(self) -> str:
        from repro.cache.fingerprint import value_digest

        return value_digest(self.fingerprint_payload())


def write_delta(delta: EpochDelta, path: str | Path) -> Path:
    """Write one delta as a checksummed ``repro-delta/1`` container."""
    writer = SegmentWriter(
        "delta",
        meta={
            "schema": DELTA_SCHEMA,
            "epoch": delta.epoch,
            "label": delta.label,
            "scan_dates": sorted(d.toordinal() for d in delta.scan_dates),
            "known_missing": sorted(d.toordinal() for d in delta.known_missing),
            "counts": delta.counts(),
        },
    )
    writer.add_pickle("scan_rows", list(delta.scan_rows))
    writer.add_pickle(
        "pdns",
        [
            (rrname, rtype, rdata, day)
            for rrname, rtype, rdata, day in delta.pdns_observations
        ],
    )
    writer.add_pickle("ct", list(delta.ct_entries))
    writer.add_pickle("revocations", sorted(delta.revocations))
    return writer.write(path)


def read_delta(path: str | Path) -> EpochDelta:
    """Load and verify one ``repro-delta/1`` file."""
    segment = Segment.open(path)
    if segment.table != "delta":
        raise SegmentError(
            f"{path}: expected a delta container, found {segment.table!r}"
        )
    meta = segment.meta
    if meta.get("schema") != DELTA_SCHEMA:
        raise SegmentError(
            f"{path}: unsupported delta schema {meta.get('schema')!r} "
            f"(expected {DELTA_SCHEMA!r})"
        )
    return EpochDelta(
        epoch=int(meta["epoch"]),
        label=str(meta.get("label", "")),
        scan_rows=tuple(tuple(row) for row in segment.pickle("scan_rows")),
        scan_dates=tuple(
            date.fromordinal(o) for o in meta.get("scan_dates", ())
        ),
        known_missing=tuple(
            date.fromordinal(o) for o in meta.get("known_missing", ())
        ),
        pdns_observations=tuple(
            tuple(obs) for obs in segment.pickle("pdns")
        ),
        ct_entries=tuple(tuple(entry) for entry in segment.pickle("ct")),
        revocations=tuple(
            tuple(rec) for rec in segment.pickle("revocations")
        ),
    )


__all__ = ["DELTA_SCHEMA", "EpochDelta", "read_delta", "write_delta"]
