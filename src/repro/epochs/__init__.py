"""Epoch deltas and the incremental re-run engine.

A study grows by **epochs**: append-only ``repro-delta/1`` files carry
the scan rows, pDNS observations, CT entries, and revocations that
arrived since the last run.  The engine merges a delta onto the base
bundle as an id-stable overlay, computes exactly which domains the
delta can affect (the dirty set), and re-runs the stage kernels only
over them — reusing the base run's banked cache products for every
clean shard of the population.  The result is required to be
byte-identical to a full cold run over the merged dataset.

* :mod:`repro.epochs.delta` — the delta file format and value object.
* :mod:`repro.epochs.dirty` — the dirty-set scheduler.
* :mod:`repro.epochs.engine` — merge + seeded incremental run.
"""

from repro.epochs.delta import DELTA_SCHEMA, EpochDelta, read_delta, write_delta
from repro.epochs.dirty import DirtySet, compute_dirty_set
from repro.epochs.engine import merge_inputs, run_epoch

__all__ = [
    "DELTA_SCHEMA",
    "DirtySet",
    "EpochDelta",
    "compute_dirty_set",
    "merge_inputs",
    "read_delta",
    "run_epoch",
    "write_delta",
]
