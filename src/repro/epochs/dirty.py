"""The dirty-set scheduler: which domains can an epoch's delta affect?

The epoch engine re-runs the deployment kernel only over domains whose
*own* scan rows changed (a per-domain encoding is a pure function of
that domain's rows, the scan calendar, and the periods).  But a report
can change further out: inspection reads pDNS and CT, and the pivot can
attach a finding to a domain that shares attacker infrastructure with a
directly-touched one.  The dirty set therefore layers four widening
rings, each computed exactly from the delta and the base evidence:

* ``scan_direct`` — registered domains of appended scan rows (including
  brand-new domains).  This ring alone gates deployment-map reuse.
* ``pdns_touched`` / ``ct_touched`` — registered domains of appended
  pDNS observations and CT entries (the channels inspection reads).
* ``transitive`` — one hop over shared evidence: domains whose base
  scan rows share an IP, ASN, or certificate with the delta's rows (or
  with a directly-touched domain's rows), plus domains co-resolving to
  an rdata the delta's pDNS observations mention.  This bounds how far
  the pivot stage can carry a delta's influence in one run.

``calendar_changed`` flags in-period scan-calendar additions: encoded
deployment maps embed per-period scan *indices*, so a calendar change
inside any study period invalidates every clean domain's encoding at
once and the engine falls back to a full deployment sweep.

The property suite's soundness oracle (every domain whose report
changes between the base run and the merged run is in ``all_dirty``)
is what keeps this set honest — the engine may over-approximate, never
under-approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.net.names import registered_domain

if TYPE_CHECKING:
    from repro.core.pipeline import PipelineInputs
    from repro.epochs.delta import EpochDelta


def _registered(name: str) -> str | None:
    try:
        return registered_domain(name[2:] if name.startswith("*.") else name)
    except ValueError:
        return None


@dataclass(frozen=True)
class DirtySet:
    """The domains one epoch's delta can affect, by widening ring."""

    scan_direct: frozenset[str]
    pdns_touched: frozenset[str]
    ct_touched: frozenset[str]
    transitive: frozenset[str]
    calendar_changed: bool

    @property
    def all_dirty(self) -> frozenset[str]:
        return (
            self.scan_direct
            | self.pdns_touched
            | self.ct_touched
            | self.transitive
        )

    def counts(self) -> dict[str, int]:
        return {
            "scan_direct": len(self.scan_direct),
            "pdns_touched": len(self.pdns_touched),
            "ct_touched": len(self.ct_touched),
            "transitive": len(self.transitive),
            "total": len(self.all_dirty),
        }


def compute_dirty_set(inputs: PipelineInputs, delta: EpochDelta) -> DirtySet:
    """The exact dirty set of ``delta`` over the base ``inputs``."""
    table = inputs.scan.table

    # -- ring 1: domains with appended scan rows ------------------------------
    scan_direct: set[str] = set()
    for row in delta.scan_rows:
        scan_direct.update(row[7])

    # -- calendar: any new scan date inside a study period? -------------------
    existing = set(inputs.scan.scan_dates)
    calendar_changed = any(
        day not in existing
        and any(p.contains(day) for p in inputs.periods)
        for day in delta.scan_dates
    )

    # -- ring 2: channels inspection reads ------------------------------------
    pdns_touched: set[str] = set()
    for rrname, _rtype, _rdata, _day in delta.pdns_observations:
        base = _registered(rrname.lower())
        if base is not None:
            pdns_touched.add(base)
    ct_touched: set[str] = set()
    for cert, _day in delta.ct_entries:
        for san in cert.sans:
            base = _registered(san)
            if base is not None:
                ct_touched.add(base)
    for fingerprint, _on, _reason in delta.revocations:
        ct_touched.update(_cert_domains(inputs, delta, fingerprint))

    # -- ring 3: one hop over shared scan evidence ----------------------------
    hot_ips: set[str] = set()
    hot_asns: set[int] = set()
    hot_certs: set[str] = set()
    for row in delta.scan_rows:
        hot_ips.add(row[1])
        hot_asns.add(row[2])
        hot_certs.add(row[3].fingerprint)
    # A directly-touched domain's *existing* evidence is hot too: the
    # pivot can link through infrastructure the domain already had.
    for name in scan_direct:
        lo, hi = table.domain_slice(name)
        for i in range(lo, hi):
            row = table.csr_rows[i]
            hot_ips.add(table.ips[table.ip_id[row]])
            hot_asns.add(table.asns[table.asn_id[row]])
            hot_certs.add(table.cert_fps[table.cert_id[row]])

    hot_ip_ids = {i for i, ip in enumerate(table.ips) if ip in hot_ips}
    hot_asn_ids = {i for i, asn in enumerate(table.asns) if asn in hot_asns}
    hot_cert_ids = {
        i for i, fp in enumerate(table.cert_fps) if fp in hot_certs
    }
    transitive: set[str] = set()
    if hot_ip_ids or hot_asn_ids or hot_cert_ids:
        ip_id, asn_id, cert_id = table.ip_id, table.asn_id, table.cert_id
        bases_id, base_sets = table.bases_id, table.base_sets
        touched_bases: set[int] = set()
        for row in range(len(table)):
            if (
                ip_id[row] in hot_ip_ids
                or asn_id[row] in hot_asn_ids
                or cert_id[row] in hot_cert_ids
            ):
                touched_bases.add(bases_id[row])
        for ident in touched_bases:
            transitive.update(base_sets[ident])

    # -- ring 3b: pDNS rdata overlap ------------------------------------------
    delta_rdatas = {rdata for _n, _t, rdata, _d in delta.pdns_observations}
    if delta_rdatas:
        for record in inputs.pdns.all_records():
            if record.rdata in delta_rdatas:
                base = _registered(record.rrname.lower())
                if base is not None:
                    transitive.add(base)

    return DirtySet(
        scan_direct=frozenset(scan_direct),
        pdns_touched=frozenset(pdns_touched),
        ct_touched=frozenset(ct_touched),
        transitive=frozenset(transitive),
        calendar_changed=calendar_changed,
    )


def _cert_domains(
    inputs: PipelineInputs, delta: EpochDelta, fingerprint: str
) -> set[str]:
    """Registered domains named by one revoked certificate.

    The certificate may live in the base CT logs or arrive in this very
    delta (revoked-on-arrival), so both views are searched.
    """
    domains: set[str] = set()

    def fold(cert) -> None:
        for san in cert.sans:
            base = _registered(san)
            if base is not None:
                domains.add(base)

    for log in inputs.crtsh._logs:
        for entry in log.entries():
            if entry.certificate.fingerprint == fingerprint:
                fold(entry.certificate)
    for cert, _day in delta.ct_entries:
        if cert.fingerprint == fingerprint:
            fold(cert)
    return domains


__all__ = ["DirtySet", "compute_dirty_set"]
