"""The epoch engine: incremental re-runs over append-only deltas.

A longitudinal study grows by epochs: each week brings new scan rows,
pDNS aggregate updates, and CT entries, and the analyst wants the
updated report *now* — not after a full re-run over three years of
carried-over evidence.  The engine makes the epoch the unit of work:

1. **Merge** the delta onto the base bundle as an overlay
   (:func:`merge_inputs`).  The scan table extends id-stably
   (:func:`repro.segments.overlay.extend_scan_table`), pDNS re-folds the
   observations, CT gains one delta log; the result is equivalent to
   datasets built cold from the concatenated evidence.
2. **Schedule** exactly the domains the delta can affect
   (:func:`repro.epochs.dirty.compute_dirty_set`).
3. **Seed** the merged run's ``deployment_maps`` cache entry
   (:func:`run_epoch` via ``_seed_deployment``): clean domains reuse
   their base encodings verbatim — from the base run's stage entry or,
   when the base run was interrupted, from its per-shard products and
   resume manifest — and only dirty domains re-encode.  The pipeline
   then runs normally and finds step 1 already satisfied; downstream
   stages re-run over the (small) funnel survivors as usual.

Reuse is *sound*, not heuristic, because of three invariants the test
wall pins:

* pool-id prefix stability — appending after the base preserves every
  base id, and fault-degraded ``select()`` re-interns an identical
  kept-row prefix identically;
* fault decisions are identity-keyed (:class:`repro.faults.FaultClock`),
  so a base date or row degrades the same way with or without the delta
  appended after it;
* encodings depend only on the domain's own rows and each period's
  scan-calendar dates — so a delta that adds an *in-period* scan date
  flips ``calendar_changed`` and the engine skips seeding entirely
  (every encoding's calendar indices shifted), falling back to the
  executor's ordinary full sweep.

The non-negotiable oracle: ``run_epoch`` produces a report
**byte-identical** to a cold run over the merged dataset, on every
backend, warm or cold cache.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.pipeline import (
    HijackPipeline,
    PipelineConfig,
    PipelineInputs,
    build_stages,
)
from repro.ct.crtsh import CrtShService
from repro.ct.log import CTLog
from repro.epochs.dirty import DirtySet, compute_dirty_set
from repro.exec.metrics import StageStats
from repro.faults import DataQuality, FaultPlan, apply_faults
from repro.pdns.database import PassiveDNSDatabase
from repro.scan.dataset import ScanDataset
from repro.segments.overlay import extend_scan_table
from repro.tls.revocation import RevocationEntry, RevocationRegistry

if TYPE_CHECKING:
    from repro.cache.store import StageCache
    from repro.epochs.delta import EpochDelta

#: Sentinel for "this base ordinal's encoding is not available" in the
#: shard-resume reuse path (distinct from an encoding that is empty).
_MISSING = object()


def merge_inputs(inputs: PipelineInputs, delta: EpochDelta) -> PipelineInputs:
    """The merged bundle: ``inputs`` with ``delta`` appended.

    Equivalent — interned ids, pools, CSR indexes, service contents —
    to building every dataset cold from the concatenated evidence; the
    golden epoch suite pins that equivalence at report level and the
    overlay differential pins it at table level.  The base bundle is
    never modified.
    """
    scan = ScanDataset.from_table(
        extend_scan_table(inputs.scan.table, delta.scan_rows),
        tuple(sorted(set(inputs.scan.scan_dates) | set(delta.scan_dates))),
        known_missing_dates=(
            inputs.scan.known_missing_dates | frozenset(delta.known_missing)
        ),
    )

    # pDNS re-folds: aggregates are (first, last, count) triples, so the
    # merged database is the base rows re-inserted plus the delta's
    # observations folded in — exactly what a sensor network that saw
    # both streams would have aggregated.
    pdns = PassiveDNSDatabase()
    for record in inputs.pdns.all_records():
        pdns._insert_row(
            (record.rrname, record.rtype, record.rdata),
            record.first_seen,
            record.last_seen,
            record.count,
        )
    for rrname, rtype, rdata, day in delta.pdns_observations:
        pdns.add_observation(rrname, rtype, rdata, day)
    pdns.use_table = inputs.pdns.use_table

    return PipelineInputs(
        scan=scan,
        pdns=pdns,
        crtsh=_merge_crtsh(inputs.crtsh, delta),
        as2org=inputs.as2org,
        periods=inputs.periods,
        routing=inputs.routing,
        geo=inputs.geo,
    )


def _merge_crtsh(base: CrtShService, delta: EpochDelta) -> CrtShService:
    """The base CT view plus the delta's entries and revocations.

    New entries land in one extra log (CT queries are content-sorted,
    so the split-log layout answers identically to a single merged
    log); revocations install into a copied registry so the base
    service keeps answering with its pre-epoch knowledge.
    """
    logs = list(base._logs)
    if delta.ct_entries:
        log = CTLog(f"epoch-{delta.epoch}-delta")
        for cert, day in delta.ct_entries:
            log.submit(cert, day)
        logs.append(log)
    registry = RevocationRegistry()
    registry._mechanism = dict(base._revocations._mechanism)
    registry._entries = dict(base._revocations._entries)
    for fingerprint, on, reason in delta.revocations:
        registry._entries[fingerprint] = RevocationEntry(fingerprint, on, reason)
    merged = CrtShService(
        logs,
        registry,
        base._asof,
        publication_delay_days=base._publication_delay.days,
        publication_horizon=base._publication_horizon,
    )
    merged.use_table = base.use_table
    return merged


def run_epoch(
    inputs: PipelineInputs,
    delta: EpochDelta,
    *,
    config: PipelineConfig | None = None,
    faults: FaultPlan | str | None = None,
    backend=None,
    cache: StageCache | None = None,
    tracer=None,
    events=None,
    ledger=None,
    label: str = "epoch",
):
    """Apply ``delta`` to ``inputs`` and run the funnel incrementally.

    Returns ``(report, metrics, dirty)``.  The report is required to be
    byte-identical to a cold :meth:`HijackPipeline.profile` over
    :func:`merge_inputs`'s bundle.  With a cache, the merged run's
    ``deployment_maps`` entry is pre-seeded from the base run's products
    (stage entry or per-shard resume products), so the executor's sweep
    over the full domain population becomes a cache hit and only the
    dirty domains were re-encoded.  Without a cache the run is simply a
    cold run over the merged bundle.

    The manifest gains an ``epoch`` section, and the run's metrics gain
    ``epoch.domains_dirty`` / ``epoch.domains_reused`` counters (they
    flow into the ledger record and the OpenMetrics exposition like any
    other counter).
    """
    config = config or PipelineConfig()
    plan = faults if isinstance(faults, FaultPlan) else FaultPlan.from_spec(faults)
    merged = merge_inputs(inputs, delta)
    dirty = compute_dirty_set(inputs, delta)
    stats: dict[str, Any] = {
        "epoch": delta.epoch,
        "label": delta.label,
        "delta": delta.counts(),
        "domains": len(merged.scan.table.domains),
        "domains_dirty": len(dirty.all_dirty),
        "domains_reused": 0,
        "dirty": dirty.counts(),
        "calendar_changed": dirty.calendar_changed,
        "seeded": False,
        "reuse_disabled": None,
    }
    if cache is not None:
        seeded, reused, reason = _seed_deployment(
            inputs, merged, dirty, plan, config, cache
        )
        stats["seeded"] = seeded
        stats["domains_reused"] = reused
        stats["reuse_disabled"] = reason

    pipeline = HijackPipeline(merged, config=config, faults=plan)
    report, metrics = pipeline.profile(
        backend,
        tracer=tracer,
        cache=cache,
        events=events,
        ledger=ledger,
        label=label,
    )
    metrics.epoch = dict(stats)
    counters = dict(metrics.metrics or {})
    counters["epoch.domains_dirty"] = stats["domains_dirty"]
    counters["epoch.domains_reused"] = stats["domains_reused"]
    metrics.metrics = counters
    return report, metrics, dirty


def _seed_deployment(
    base_inputs: PipelineInputs,
    merged: PipelineInputs,
    dirty: DirtySet,
    plan: FaultPlan,
    config: PipelineConfig,
    cache: StageCache,
) -> tuple[bool, int, str | None]:
    """Pre-store the merged run's ``deployment_maps`` entry.

    Returns ``(seeded, domains_reused, reuse_disabled_reason)``.  When
    seeding is unsound (an in-period calendar change) or impossible (no
    base products banked), it declines and the executor's ordinary full
    sweep recomputes everything — slower, never wrong.
    """
    from repro.cache.fingerprint import derive_run_key, stage_fingerprint

    stage = build_stages()[0]
    chain = [(stage.name, stage.cache_version, stage.config_deps)]
    degraded_merged = apply_faults(merged, plan, DataQuality())
    merged_fp = stage_fingerprint(
        derive_run_key(degraded_merged, plan, config), chain
    )
    if cache.get(merged_fp) is not None:
        return False, 0, "already-cached"
    if dirty.calendar_changed:
        # Every encoding embeds per-period scan-calendar indices; an
        # in-period date shifts them all, so nothing is reusable.
        return False, 0, "calendar-changed"

    degraded_base = apply_faults(base_inputs, plan, DataQuality())
    base_fp = stage_fingerprint(
        derive_run_key(degraded_base, plan, config), chain
    )
    base_domains = degraded_base.scan.domains()
    base_encoded = _base_products(
        cache, base_fp, len(base_domains),
        degraded_base.scan.table.domain_index,
    )
    if base_encoded is None:
        return False, 0, "no-base-products"

    from repro.core.deployment import encode_domain_maps

    scan_direct = dirty.scan_direct
    periods = merged.periods
    max_gap = config.max_gap_scans
    merged_domains = degraded_merged.scan.domains()
    n_base = len(base_domains)
    spliced: list[tuple[str, Any]] = []
    reused = 0
    recomputed = 0
    if len(merged_domains) == n_base:
        # No new domains this epoch: merged domains are a sorted
        # superset of base domains, so equal counts mean identical
        # ordinals.  Reuse becomes one pass over the base products that
        # only touches domain *names* for the dirty set and the
        # (funnel-sized) non-empty encodings — no per-domain walk.
        dirty_ordinals: dict[int, str] = {}
        for name in scan_direct:
            ordinal = degraded_merged.scan.table.domain_index(name)
            if ordinal is not None:
                dirty_ordinals[ordinal] = name
        for ordinal, encoded in enumerate(base_encoded):
            name = dirty_ordinals.get(ordinal)
            if name is None and encoded is not _MISSING:
                reused += 1
                if encoded:
                    spliced.append((merged_domains[ordinal], encoded))
                continue
            if name is None:
                name = merged_domains[ordinal]
            encoded = encode_domain_maps(
                degraded_merged.scan, name, periods, max_gap
            )
            recomputed += 1
            if encoded:
                spliced.append((name, encoded))
    else:
        j = 0
        for name in merged_domains:
            # A single forward pointer aligns the two sorted domain
            # sequences without a lookup table.
            while j < n_base and base_domains[j] < name:
                j += 1
            encoded = _MISSING
            if (
                j < n_base
                and base_domains[j] == name
                and name not in scan_direct
            ):
                encoded = base_encoded[j]
            if encoded is _MISSING:
                encoded = encode_domain_maps(
                    degraded_merged.scan, name, periods, max_gap
                )
                recomputed += 1
            else:
                reused += 1
            if encoded:
                spliced.append((name, encoded))

    cache.put(
        merged_fp,
        stage.name,
        StageStats(
            n_in=len(merged_domains),
            n_out=len(spliced),
            detail={
                "domains_mapped": len(spliced),
                "epoch_domains_dirty": len(dirty.all_dirty),
                "epoch_domains_reused": reused,
                "epoch_domains_recomputed": recomputed,
            },
        ),
        {"encoded_maps": spliced},
    )
    return True, reused, None


def _base_products(
    cache: StageCache, base_fp: str, n_base: int, domain_index
) -> list | None:
    """The base run's per-domain encodings, aligned to base ordinals.

    Prefers the stage-level entry (every domain covered; the entry only
    lists non-empty encodings, so absence means empty — and the listed
    population is funnel-sized, so the name->ordinal scatter touches
    few pooled strings).  Falls back to the per-shard products an
    interrupted base run banked via its resume manifest — uncovered
    ordinals stay :data:`_MISSING` and are recomputed by the caller.
    """
    entry = cache.get(base_fp)
    if entry is not None:
        encoded: list = [()] * n_base
        for name, enc in entry.products["encoded_maps"]:
            ordinal = domain_index(name)
            if ordinal is None:
                return None  # entry from a different base population
            encoded[ordinal] = enc
        return encoded
    from repro.cache.resume import ResumeManifest

    manifest = ResumeManifest(cache.root)
    data = manifest.load(base_fp)
    if not data or data.get("kernel") != "deployment":
        return None
    if int(data.get("n_items", -1)) != n_base:
        return None
    completed = manifest.completed(base_fp)
    if not completed:
        return None
    n_shards = int(data.get("n_shards", 0))
    if n_shards <= 0:
        return None
    encoded = [_MISSING] * n_base
    for ordinal, shard_key in completed.items():
        shard = cache.get(shard_key)
        if shard is None:
            continue
        lo = ordinal * n_base // n_shards
        hi = (ordinal + 1) * n_base // n_shards
        results = shard.products["results"]
        if len(results) != hi - lo:
            continue
        encoded[lo:hi] = results
    return encoded


__all__ = ["merge_inputs", "run_epoch"]
