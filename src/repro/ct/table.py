"""Columnar struct-of-arrays storage for published CT log entries.

crt.sh fronts billions of log entries; the inspection stage's questions
— "all certificates under this registered domain", "this crt.sh id" —
were answered by walking per-base lists of ``(cert, logged_at)`` tuples,
with :meth:`~repro.ct.crtsh.CrtShService.lookup_id` scanning the whole
index.  :class:`CtTable` mirrors :class:`repro.scan.table.ScanTable` for
the CT channel: one row per *published* log entry in ``(log, entry)``
order, typed-array columns for the dates and crt.sh ids, and first-seen
-order interned pools (issuers, SAN sets, certificates keyed by
fingerprint) whose ids are a pure function of the row stream.

The registered-domain index replicates the legacy semantics exactly:
every row is appended to the bucket of each SAN's registered domain *per
SAN* (a certificate naming two subdomains of one base appears twice,
like the reference index), buckets keep first-insertion base order, and
each bucket also carries a stably ``(not_before, crtsh_id)``-sorted
permutation with a parallel not-before ordinal array — so a date-window
search is a ``bisect``-found contiguous slice.  Filtering a stably
sorted list by a predicate measurable in the sort key equals stably
sorting the filtered list, which is why the slice matches the
reference's filter-then-sort byte for byte.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from datetime import date, timedelta
from typing import TYPE_CHECKING, Iterable

from repro.net.names import registered_domain
from repro.scan.table import _Interner
from repro.tls.certificate import Certificate

if TYPE_CHECKING:
    from repro.ct.log import CTLog

#: Per-row columns, in declaration order (all aligned, one entry per row).
_ROW_COLUMNS = ("crtsh_id", "cert_id", "issuer_id", "sans_id", "nb_ord", "na_ord", "logged_ord")

#: Intern pools shared between a table and everything derived from it.
_POOLS = ("fps", "certs", "issuers", "san_sets")


class CtTable:
    """Struct-of-arrays CT entry store with interned value pools."""

    def __init__(self) -> None:
        # -- per-row columns -------------------------------------------------
        self.crtsh_id = array("Q")
        self.cert_id = array("I")
        self.issuer_id = array("I")
        self.sans_id = array("I")
        self.nb_ord = array("i")
        self.na_ord = array("i")
        self.logged_ord = array("i")  # publication (delayed) date
        # -- interned pools (id -> value, first-seen order) ------------------
        self.fps: list[str] = []
        self.certs: list[Certificate] = []
        self.issuers: list[str] = []
        self.san_sets: list[tuple[str, ...]] = []
        #: Entries whose delayed publication fell past the horizon.
        self.hidden_entries = 0
        # -- per-registered-domain CSR index ---------------------------------
        self.bases: tuple[str, ...] = ()
        self.base_rows = array("I")  # legacy append order, one slot per (row, SAN)
        self.base_sorted = array("I")  # per base: stable (not_before, crtsh_id) sort
        self.base_nb = array("i")  # not-before ordinals parallel to base_sorted
        self.base_off = array("I", [0])
        # -- lazy decode state (never pickled) -------------------------------
        self._base_index: dict[str, int] = {}
        self._by_crtsh: dict[int, int] | None = None
        self._row_index: dict[tuple[str, int], int] | None = None
        self._date_cache: dict[int, date] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_logs(
        cls,
        logs: Iterable[CTLog],
        delay_days: int = 0,
        horizon: date | None = None,
    ) -> CtTable:
        """Build from logs, applying the publication delay and horizon.

        Rows land in ``(log, entry)`` order — the canonical stream — so
        pool ids and row ids are a pure function of the logs' content.
        """
        delay = timedelta(days=delay_days)
        table = cls()
        builder = _CtTableBuilder(table)
        for log in logs:
            for entry in log.entries():
                published = entry.timestamp + delay
                if horizon is not None and published > horizon:
                    table.hidden_entries += 1
                    continue
                builder.append_entry(entry.certificate, published)
        builder.finish()
        return table

    def __len__(self) -> int:
        return len(self.crtsh_id)

    # -- decode helpers ------------------------------------------------------

    def interned_date(self, ordinal: int) -> date:
        cached = self._date_cache.get(ordinal)
        if cached is None:
            cached = date.fromordinal(ordinal)
            self._date_cache[ordinal] = cached
        return cached

    def certificate(self, row: int) -> Certificate:
        return self.certs[self.cert_id[row]]

    def logged_date(self, row: int) -> date:
        return self.interned_date(self.logged_ord[row])

    def lookup_row(self, crtsh_id: int) -> int | None:
        """First row carrying this crt.sh id, in the legacy traversal
        order (base insertion order, bucket append order)."""
        index = self._by_crtsh
        if index is None:
            index = {}
            ids = self.crtsh_id
            for row in self.base_rows:
                index.setdefault(ids[row], row)
            self._by_crtsh = index
        return index.get(crtsh_id)

    def row_of(self, fingerprint: str, logged_ord: int) -> int:
        """The first row for one ``(certificate, publication date)`` —
        the wire-form reference the inspection stage encodes, stable
        across processes regardless of log insertion order."""
        index = self._row_index
        if index is None:
            index = {}
            fps, cert_id = self.fps, self.cert_id
            for row in range(len(self.crtsh_id)):
                index.setdefault((fps[cert_id[row]], self.logged_ord[row]), row)
            self._row_index = index
        return index[(fingerprint, logged_ord)]

    # -- query kernels -------------------------------------------------------

    def search_rows(
        self,
        base: str,
        after_ord: int | None = None,
        before_ord: int | None = None,
    ) -> list[int]:
        """Rows under one registered domain whose not-before falls in
        the closed ordinal window, sorted ``(not_before, crtsh_id)``."""
        index = self._base_index.get(base)
        if index is None:
            return []
        lo, hi = self.base_off[index], self.base_off[index + 1]
        left = lo if after_ord is None else bisect_left(self.base_nb, after_ord, lo, hi)
        right = hi if before_ord is None else bisect_right(self.base_nb, before_ord, lo, hi)
        return list(self.base_sorted[left:right])

    # -- canonical walks -----------------------------------------------------

    def row_dicts(self) -> Iterable[dict]:
        """Canonical value-space walk of every row, in row order."""
        for row in range(len(self.crtsh_id)):
            yield {
                "crtsh_id": self.crtsh_id[row],
                "fp": self.fps[self.cert_id[row]],
                "issuer": self.issuers[self.issuer_id[row]],
                "sans": self.san_sets[self.sans_id[row]],
                "nb": self.nb_ord[row],
                "na": self.na_ord[row],
                "logged": self.logged_ord[row],
            }

    def column_bytes(self) -> int:
        """Bytes held by the typed-array columns (pools excluded)."""
        return sum(
            len(getattr(self, name)) * getattr(self, name).itemsize
            for name in _ROW_COLUMNS
        ) + sum(
            len(arr) * arr.itemsize
            for arr in (self.base_rows, self.base_sorted, self.base_nb, self.base_off)
        )

    # -- derived tables ------------------------------------------------------

    def select(self, rows: Iterable[int]) -> CtTable:
        """A new table holding only ``rows``, pools re-interned.

        Ids are re-assigned in first-seen order over the surviving rows,
        so a derived (fault-degraded) view interns exactly like a table
        freshly built from the surviving entry stream.
        """
        rows = list(rows)
        derived = CtTable()
        derived.crtsh_id = array("Q", (self.crtsh_id[r] for r in rows))
        derived.nb_ord = array("i", (self.nb_ord[r] for r in rows))
        derived.na_ord = array("i", (self.na_ord[r] for r in rows))
        derived.logged_ord = array("i", (self.logged_ord[r] for r in rows))
        certs = _Interner()
        issuers = _Interner()
        san_sets = _Interner()
        fps: list[str] = []
        for r in rows:
            fp = self.fps[self.cert_id[r]]
            ident = certs.intern(fp)
            if ident == len(fps):
                fps.append(fp)
                derived.certs.append(self.certs[self.cert_id[r]])
            derived.cert_id.append(ident)
            derived.issuer_id.append(issuers.intern(self.issuers[self.issuer_id[r]]))
            derived.sans_id.append(san_sets.intern(self.san_sets[self.sans_id[r]]))
        derived.fps = fps
        derived.issuers = issuers.values
        derived.san_sets = san_sets.values
        derived._build_index()
        return derived

    # -- index construction --------------------------------------------------

    def _build_index(self) -> None:
        # Registered domains of each distinct SAN set, one slot per SAN
        # (duplicates preserved — a cert naming two subdomains of one
        # base lands in that base's bucket twice, like the reference).
        bases_of: dict[int, tuple[str, ...]] = {}
        for ident, sans in enumerate(self.san_sets):
            bases: list[str] = []
            for san in sans:
                name = san[2:] if san.startswith("*.") else san
                try:
                    bases.append(registered_domain(name))
                except ValueError:
                    continue
            bases_of[ident] = tuple(bases)

        buckets: dict[str, list[int]] = {}
        sans_id = self.sans_id
        for row in range(len(self.crtsh_id)):
            for base in bases_of[sans_id[row]]:
                buckets.setdefault(base, []).append(row)

        self.bases = tuple(buckets)
        self._base_index = {base: i for i, base in enumerate(self.bases)}
        nb, ids = self.nb_ord, self.crtsh_id
        base_rows: list[int] = []
        base_sorted: list[int] = []
        base_nb = array("i")
        base_off = array("I", [0])
        for base in self.bases:
            bucket = buckets[base]
            base_rows.extend(bucket)
            ordered = sorted(bucket, key=lambda r: (nb[r], ids[r]))
            base_sorted.extend(ordered)
            base_nb.extend(nb[r] for r in ordered)
            base_off.append(len(base_rows))
        self.base_rows = array("I", base_rows)
        self.base_sorted = array("I", base_sorted)
        self.base_nb = base_nb
        self.base_off = base_off

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_base_index"] = None
        state["_by_crtsh"] = None
        state["_row_index"] = None
        state["_date_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._base_index = {base: i for i, base in enumerate(self.bases)}
        self._by_crtsh = None
        self._row_index = None
        self._date_cache = {}


class _CtTableBuilder:
    """Append-only builder: published entries in, indexed table out."""

    def __init__(self, table: CtTable) -> None:
        self.table = table
        self._certs = _Interner()
        self._issuers = _Interner()
        self._san_sets = _Interner()

    def append_entry(self, cert: Certificate, published: date) -> None:
        table = self.table
        ident = self._certs.intern(cert.fingerprint)
        if ident == len(table.certs):
            table.certs.append(cert)
        table.cert_id.append(ident)
        table.crtsh_id.append(cert.crtsh_id)
        table.issuer_id.append(self._issuers.intern(cert.issuer))
        table.sans_id.append(self._san_sets.intern(tuple(cert.sans)))
        table.nb_ord.append(cert.not_before.toordinal())
        table.na_ord.append(cert.not_after.toordinal())
        table.logged_ord.append(published.toordinal())

    def finish(self) -> None:
        table = self.table
        table.fps = self._certs.values
        table.issuers = self._issuers.values
        table.san_sets = self._san_sets.values
        table._build_index()
