"""crt.sh-style certificate search service.

Indexes logged certificates by the registered domain of every SAN and
answers the inspection stage's queries: all certificates ever issued for
names under a domain, optionally restricted to a date window or to a
specific FQDN, each annotated with issuer and retroactively determinable
revocation status (CRL-backed issuers only — the Table 9 asymmetry).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from typing import TYPE_CHECKING

from repro.ct.log import CTLog
from repro.net.names import registered_domain
from repro.tls.certificate import Certificate
from repro.tls.matching import san_matches
from repro.tls.revocation import RevocationRegistry, RevocationStatus

if TYPE_CHECKING:
    from repro.ct.table import CtTable


@dataclass(frozen=True, slots=True)
class CrtShEntry:
    """One search result row, as crt.sh would render it."""

    crtsh_id: int
    certificate: Certificate
    logged_at: date
    revocation: RevocationStatus

    @property
    def issuer(self) -> str:
        return self.certificate.issuer

    @property
    def issued_on(self) -> date:
        return self.certificate.not_before


class CrtShService:
    """Search interface over one or more CT logs."""

    def __init__(
        self,
        logs: list[CTLog] | None = None,
        revocations: RevocationRegistry | None = None,
        asof: date | None = None,
        publication_delay_days: int = 0,
        publication_horizon: date | None = None,
    ) -> None:
        self._logs = list(logs) if logs is not None else []
        # Note: `or` would discard an EMPTY registry (it has __len__ == 0).
        self._revocations = revocations if revocations is not None else RevocationRegistry()
        self._asof = asof
        # Publication lag: every entry surfaces ``delay`` days after its
        # log timestamp, and entries surfacing past the horizon (the
        # retroactive analysis date) are invisible to every query.
        self._publication_delay = timedelta(days=publication_delay_days)
        self._publication_horizon = publication_horizon
        self.hidden_entries = 0
        # registered domain -> list of (cert, logged_at); rebuilt lazily.
        # Kept as the row-at-a-time reference behind ``use_table``.
        self._index: dict[str, list[tuple[Certificate, date]]] = {}
        self._indexed_counts: dict[int, int] = {}
        #: Columnar query path toggle; the legacy index stays behind it
        #: for the differential suites and perf baselines.
        self.use_table = True
        self._table: CtTable | None = None
        self._table_count = -1
        self._entry_cache: dict[int, CrtShEntry] = {}
        self._status_cache: dict[str, RevocationStatus] = {}
        self._status_rev_len = -1

    def attach_log(self, log: CTLog) -> None:
        self._logs.append(log)

    @property
    def table(self) -> CtTable:
        """The columnar view of the published entries (see
        :class:`repro.ct.table.CtTable`), built lazily and rebuilt when
        the attached logs grow."""
        return self._ensure_table()

    def _ensure_table(self) -> CtTable:
        total = sum(len(log.entries()) for log in self._logs)
        if self._table is None or total != self._table_count:
            from repro.ct.table import CtTable

            self._table = CtTable.from_logs(
                self._logs,
                self._publication_delay.days,
                self._publication_horizon,
            )
            self._table_count = total
            self._entry_cache = {}
            self.hidden_entries = self._table.hidden_entries
        return self._table

    def _entry(self, row: int) -> CrtShEntry:
        """The row as a :class:`CrtShEntry`, memoized per row."""
        if len(self._revocations) != self._status_rev_len:
            # New revocations change the status baked into memoized
            # entries; drop them (``_status`` resets its own memo).
            self._entry_cache = {}
        entry = self._entry_cache.get(row)
        if entry is None:
            table = self._table
            cert = table.certs[table.cert_id[row]]
            entry = CrtShEntry(
                crtsh_id=table.crtsh_id[row],
                certificate=cert,
                logged_at=table.logged_date(row),
                revocation=self._status(cert),
            )
            self._entry_cache[row] = entry
        return entry

    def with_publication_delay(
        self, days: int, horizon: date | None = None
    ) -> CrtShService:
        """Derive a service whose log publication lags by ``days``.

        ``horizon`` is the date the retroactive analysis runs: entries
        whose delayed publication lands after it have not surfaced yet
        and are hidden.  The derived index is built eagerly so
        ``hidden_entries`` is immediately meaningful.
        """
        derived = CrtShService(
            self._logs,
            self._revocations,
            self._asof,
            publication_delay_days=days,
            publication_horizon=horizon,
        )
        derived.use_table = self.use_table
        if derived.use_table:
            derived._ensure_table()
        else:
            derived._refresh_index()
        return derived

    def _refresh_index(self) -> None:
        for log_pos, log in enumerate(self._logs):
            seen = self._indexed_counts.get(log_pos, 0)
            entries = log.entries()
            for entry in entries[seen:]:
                published = entry.timestamp + self._publication_delay
                if (
                    self._publication_horizon is not None
                    and published > self._publication_horizon
                ):
                    self.hidden_entries += 1
                    continue
                for san in entry.certificate.sans:
                    name = san[2:] if san.startswith("*.") else san
                    try:
                        base = registered_domain(name)
                    except ValueError:
                        continue
                    self._index.setdefault(base, []).append(
                        (entry.certificate, published)
                    )
            self._indexed_counts[log_pos] = len(entries)

    def _status(self, cert: Certificate) -> RevocationStatus:
        # Memoized per fingerprint; the registry is append-only, so the
        # memo only survives while its size is unchanged.
        n_revocations = len(self._revocations)
        if n_revocations != self._status_rev_len:
            self._status_cache = {}
            self._status_rev_len = n_revocations
        status = self._status_cache.get(cert.fingerprint)
        if status is None:
            asof = self._asof or (cert.not_after + timedelta(days=365))
            status = self._revocations.retroactive_status(cert, asof)
            self._status_cache[cert.fingerprint] = status
        return status

    def fingerprint_payload(self) -> dict:
        """The service's observable content as a JSON-safe dict.

        Covers everything that can change a query answer: every logged
        certificate (identity, log timestamp, retroactive revocation
        status) plus the as-of date and the publication delay/horizon a
        derived (fault-degraded) service filters through.  Entries are
        sorted, so two services with the same content produce the same
        payload regardless of log insertion order.
        """
        entries = []
        for log in self._logs:
            for entry in log.entries():
                cert = entry.certificate
                entries.append(
                    {
                        "crtsh_id": cert.crtsh_id,
                        "fingerprint": cert.fingerprint,
                        "logged_at": entry.timestamp.isoformat(),
                        "status": self._status(cert).name,
                    }
                )
        entries.sort(
            key=lambda e: (e["logged_at"], e["crtsh_id"], e["fingerprint"])
        )
        return {
            "asof": self._asof.isoformat() if self._asof else None,
            "delay_days": self._publication_delay.days,
            "horizon": (
                self._publication_horizon.isoformat()
                if self._publication_horizon
                else None
            ),
            "entries": entries,
        }

    def search(
        self,
        domain: str,
        issued_after: date | None = None,
        issued_before: date | None = None,
    ) -> list[CrtShEntry]:
        """All certificates securing names under ``domain``'s registered domain."""
        base = registered_domain(domain)
        if self.use_table:
            table = self._ensure_table()
            rows = table.search_rows(
                base,
                issued_after.toordinal() if issued_after is not None else None,
                issued_before.toordinal() if issued_before is not None else None,
            )
            return [self._entry(row) for row in rows]
        self._refresh_index()
        results: list[CrtShEntry] = []
        for cert, logged_at in self._index.get(base, []):
            if issued_after is not None and cert.not_before < issued_after:
                continue
            if issued_before is not None and cert.not_before > issued_before:
                continue
            results.append(
                CrtShEntry(
                    crtsh_id=cert.crtsh_id,
                    certificate=cert,
                    logged_at=logged_at,
                    revocation=self._status(cert),
                )
            )
        results.sort(key=lambda e: (e.issued_on, e.crtsh_id))
        return results

    def search_exact(
        self,
        fqdn: str,
        issued_after: date | None = None,
        issued_before: date | None = None,
    ) -> list[CrtShEntry]:
        """Certificates whose SANs cover exactly this FQDN."""
        return [
            entry
            for entry in self.search(fqdn, issued_after, issued_before)
            if any(san_matches(san, fqdn) for san in entry.certificate.sans)
        ]

    def lookup_id(self, crtsh_id: int) -> CrtShEntry | None:
        """Fetch a single entry by its crt.sh identifier."""
        if self.use_table:
            row = self._ensure_table().lookup_row(crtsh_id)
            return None if row is None else self._entry(row)
        self._refresh_index()
        for certs in self._index.values():
            for cert, logged_at in certs:
                if cert.crtsh_id == crtsh_id:
                    return CrtShEntry(crtsh_id, cert, logged_at, self._status(cert))
        return None

    def entry_at(self, fingerprint: str, logged_ord: int) -> CrtShEntry:
        """Decode one entry from its wire-form reference — the
        ``(certificate fingerprint, publication-date ordinal)`` pair the
        inspection stage's encoded evidence carries."""
        table = self._ensure_table()
        return self._entry(table.row_of(fingerprint, logged_ord))

    def __getstate__(self) -> dict:
        # The columnar view and its decode memos never travel: workers
        # rebuild them lazily from the logs, interning identical ids
        # because the (log, entry) row stream is canonical.
        state = self.__dict__.copy()
        state["_table"] = None
        state["_table_count"] = -1
        state["_entry_cache"] = {}
        state["_status_cache"] = {}
        state["_status_rev_len"] = -1
        return state

    def issued_in_window(
        self, fqdn: str, center: date, window_days: int
    ) -> list[CrtShEntry]:
        """Certificates for ``fqdn`` issued within ±``window_days`` of ``center``.

        This is the inspection stage's core question: "was a new
        certificate issued for this sensitive subdomain around the time
        of the transient deployment?"
        """
        lo = center - timedelta(days=window_days)
        hi = center + timedelta(days=window_days)
        return self.search_exact(fqdn, issued_after=lo, issued_before=hi)
