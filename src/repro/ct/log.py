"""The Certificate Transparency log.

CAs submit every certificate here before issuance (the paper's footnote:
CT participation is a de-facto browser requirement), receiving a signed
certificate timestamp.  Entries are append-only and backed by the Merkle
tree, and each logged certificate is assigned its crt.sh-style numeric
identifier at logging time.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.ct.merkle import MerkleTree
from repro.tls.certificate import Certificate


@dataclass(frozen=True, slots=True)
class SignedCertificateTimestamp:
    """Promise-to-log handed back to the submitting CA."""

    log_name: str
    entry_index: int
    timestamp: date


@dataclass(frozen=True, slots=True)
class LogEntry:
    index: int
    certificate: Certificate
    timestamp: date


class CTLog:
    """An append-only certificate log with Merkle-tree backing."""

    def __init__(self, name: str = "repro-ct-log", first_crtsh_id: int = 100_000_000) -> None:
        self.name = name
        self._entries: list[LogEntry] = []
        self._tree = MerkleTree()
        self._next_crtsh_id = first_crtsh_id
        self._by_fingerprint: dict[str, int] = {}

    def submit(self, cert: Certificate, timestamp: date) -> tuple[Certificate, SignedCertificateTimestamp]:
        """Log ``cert``; returns the cert (with crt.sh id stamped) + SCT.

        Submitting the same certificate twice returns the existing entry's
        SCT, as real logs deduplicate by certificate hash.  (Entry order,
        not timestamp, defines the Merkle sequence; the simulation batches
        submissions out of wall-clock order while building scenarios.)
        """
        existing = self._by_fingerprint.get(cert.fingerprint)
        if existing is not None:
            entry = self._entries[existing]
            sct = SignedCertificateTimestamp(self.name, entry.index, entry.timestamp)
            return entry.certificate, sct

        if cert.crtsh_id == 0:
            logged = Certificate(
                serial=cert.serial,
                common_name=cert.common_name,
                sans=cert.sans,
                issuer=cert.issuer,
                not_before=cert.not_before,
                not_after=cert.not_after,
                validation=cert.validation,
                crtsh_id=self._next_crtsh_id,
                key_id=cert.key_id,
            )
            self._next_crtsh_id += 1
        else:
            logged = cert
        index = self._tree.append(logged.fingerprint.encode())
        entry = LogEntry(index=index, certificate=logged, timestamp=timestamp)
        self._entries.append(entry)
        self._by_fingerprint[cert.fingerprint] = index
        self._by_fingerprint[logged.fingerprint] = index
        return logged, SignedCertificateTimestamp(self.name, index, timestamp)

    def entry(self, index: int) -> LogEntry:
        return self._entries[index]

    def entries(self) -> tuple[LogEntry, ...]:
        return tuple(self._entries)

    def root(self) -> bytes:
        return self._tree.root()

    def prove_inclusion(self, index: int) -> list[bytes]:
        return self._tree.inclusion_proof(index)

    def prove_consistency(self, old_size: int) -> list[bytes]:
        """Prove the first ``old_size`` entries are an unchanged prefix."""
        return self._tree.consistency_proof(old_size)

    def root_at(self, size: int) -> bytes:
        """The tree root as it stood after ``size`` entries."""
        return self._tree.root(size)

    def verify_entry(self, entry: LogEntry) -> bool:
        """Audit: verify the entry is included under the current root."""
        proof = self._tree.inclusion_proof(entry.index)
        return MerkleTree.verify_inclusion(
            entry.certificate.fingerprint.encode(),
            entry.index,
            len(self._tree),
            proof,
            self._tree.root(),
        )

    def __len__(self) -> int:
        return len(self._entries)
