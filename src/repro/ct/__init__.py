"""Certificate Transparency substrate.

An RFC 6962-style append-only Merkle-tree log (`CTLog`, with inclusion
and consistency proofs over the `MerkleTree`), and a crt.sh-style search
service (`CrtShService`) that indexes logged certificates by domain and
answers the "was a certificate for this name issued in this window, by
whom, and was it revoked?" queries the inspection stage performs.
"""

from repro.ct.crtsh import CrtShService, CrtShEntry
from repro.ct.log import CTLog, LogEntry, SignedCertificateTimestamp
from repro.ct.merkle import MerkleTree

__all__ = [
    "CrtShService",
    "CrtShEntry",
    "CTLog",
    "LogEntry",
    "SignedCertificateTimestamp",
    "MerkleTree",
]
