"""RFC 6962-style Merkle hash tree.

The CT log's tamper-evidence comes from this structure: leaves are hashed
with a 0x00 prefix and interior nodes with 0x01 (domain separation), the
tree over n leaves splits at the largest power of two smaller than n, and
auditors verify membership via inclusion proofs and append-only behaviour
via consistency proofs.
"""

from __future__ import annotations

import hashlib

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    return hashlib.sha256(_LEAF_PREFIX + data).digest()


def _hash_children(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


def _largest_power_of_two_below(n: int) -> int:
    """Largest power of two strictly less than ``n`` (n >= 2)."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


class MerkleTree:
    """Append-only Merkle tree over byte-string leaves."""

    def __init__(self) -> None:
        self._leaves: list[bytes] = []

    def append(self, data: bytes) -> int:
        """Append a leaf; returns its index."""
        self._leaves.append(_hash_leaf(data))
        return len(self._leaves) - 1

    def __len__(self) -> int:
        return len(self._leaves)

    def root(self, size: int | None = None) -> bytes:
        """Root hash over the first ``size`` leaves (default: all).

        The empty tree hashes to SHA-256 of the empty string, per RFC 6962.
        """
        size = len(self._leaves) if size is None else size
        if not 0 <= size <= len(self._leaves):
            raise ValueError(f"tree has {len(self._leaves)} leaves, asked for {size}")
        if size == 0:
            return hashlib.sha256(b"").digest()
        return self._subtree_root(0, size)

    def _subtree_root(self, start: int, size: int) -> bytes:
        if size == 1:
            return self._leaves[start]
        split = _largest_power_of_two_below(size)
        left = self._subtree_root(start, split)
        right = self._subtree_root(start + split, size - split)
        return _hash_children(left, right)

    def inclusion_proof(self, index: int, size: int | None = None) -> list[bytes]:
        """Audit path proving leaf ``index`` is in the ``size``-leaf tree."""
        size = len(self._leaves) if size is None else size
        if not 0 <= index < size <= len(self._leaves):
            raise ValueError(f"index {index} outside tree of size {size}")
        return self._proof(index, 0, size)

    def _proof(self, index: int, start: int, size: int) -> list[bytes]:
        if size == 1:
            return []
        split = _largest_power_of_two_below(size)
        if index - start < split:
            path = self._proof(index, start, split)
            path.append(self._subtree_root(start + split, size - split))
        else:
            path = self._proof(index, start + split, size - split)
            path.append(self._subtree_root(start, split))
        return path

    def consistency_proof(self, old_size: int, new_size: int | None = None) -> list[bytes]:
        """Prove the ``old_size``-leaf tree is a prefix of the current one
        (RFC 9162 §2.1.4.1)."""
        new_size = len(self._leaves) if new_size is None else new_size
        if not 0 < old_size <= new_size <= len(self._leaves):
            raise ValueError(f"invalid sizes: {old_size}, {new_size}")
        if old_size == new_size:
            return []
        return self._subproof(old_size, 0, new_size, True)

    def _subproof(self, m: int, start: int, size: int, complete: bool) -> list[bytes]:
        if m == size:
            return [] if complete else [self._subtree_root(start, size)]
        split = _largest_power_of_two_below(size)
        if m <= split:
            path = self._subproof(m, start, split, complete)
            path.append(self._subtree_root(start + split, size - split))
        else:
            path = self._subproof(m - split, start + split, size - split, False)
            path.append(self._subtree_root(start, split))
        return path

    @staticmethod
    def verify_consistency(
        old_size: int,
        new_size: int,
        old_root: bytes,
        new_root: bytes,
        proof: list[bytes],
    ) -> bool:
        """Verify a consistency proof (RFC 9162 §2.1.4.2)."""
        if old_size > new_size or old_size <= 0:
            return False
        if old_size == new_size:
            return not proof and old_root == new_root
        if not proof:
            return False
        # When old_size is a power of two, the old root is implicit.
        if old_size & (old_size - 1) == 0:
            proof = [old_root] + proof
        fn, sn = old_size - 1, new_size - 1
        while fn % 2 == 1:
            fn >>= 1
            sn >>= 1
        fr = sr = proof[0]
        for sibling in proof[1:]:
            if sn == 0:
                return False
            if fn % 2 == 1 or fn == sn:
                fr = _hash_children(sibling, fr)
                sr = _hash_children(sibling, sr)
                while fn % 2 == 0 and fn != 0:
                    fn >>= 1
                    sn >>= 1
            else:
                sr = _hash_children(sr, sibling)
            fn >>= 1
            sn >>= 1
        return sn == 0 and fr == old_root and sr == new_root

    @staticmethod
    def verify_inclusion(
        leaf_data: bytes, index: int, size: int, proof: list[bytes], root: bytes
    ) -> bool:
        """Verify an inclusion proof against a known root (RFC 9162 §2.1.3.2)."""
        if not 0 <= index < size:
            return False
        fn, sn = index, size - 1
        node = _hash_leaf(leaf_data)
        for sibling in proof:
            if sn == 0:
                return False
            if fn % 2 == 1 or fn == sn:
                node = _hash_children(sibling, node)
                if fn % 2 == 0:
                    while fn % 2 == 0 and fn != 0:
                        fn >>= 1
                        sn >>= 1
            else:
                node = _hash_children(node, sibling)
            fn >>= 1
            sn >>= 1
        return sn == 0 and node == root
