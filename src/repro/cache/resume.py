"""The per-stage shard resume manifest.

When a sharded stage streams its per-shard products through the stage
cache (``ProcessPoolBackend(partition="shard", shard_cache=True)``), the
backend also appends each completed shard to a small JSON manifest under
``<cache_root>/resume/<stage_fingerprint>.json``.  The manifest is pure
bookkeeping — shard *results* live in ordinary content-addressed cache
entries and are re-probed by key on every run — but it gives a killed
run's operator (and the crash/resume tests) a durable, human-readable
record of which shards finished, and it lets ``repro-hunt`` report how
much of an interrupted sweep is already banked without decoding any
entries.

Writes are atomic (temp file + ``os.replace``), matching the cache
store: a crash mid-update leaves the previous complete manifest, never a
torn one.  A manifest that fails to parse is treated as absent — the
shard entries themselves are still found by key, so resume correctness
never depends on this file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

MANIFEST_SCHEMA = "repro.cache.resume-manifest/1"


class ResumeManifest:
    """Durable record of which shards of a stage have completed."""

    def __init__(self, cache_root: str | Path) -> None:
        self.root = Path(cache_root) / "resume"

    def _path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def load(self, fingerprint: str) -> dict[str, Any]:
        """The manifest for one stage fingerprint ({} when absent/bad)."""
        try:
            data = json.loads(self._path(fingerprint).read_text("utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict) or data.get("schema") != MANIFEST_SCHEMA:
            return {}
        return data

    def completed(self, fingerprint: str) -> dict[int, str]:
        """Completed shard ordinals -> shard cache keys."""
        shards = self.load(fingerprint).get("shards", {})
        if not isinstance(shards, dict):
            return {}
        out: dict[int, str] = {}
        for ordinal, key in shards.items():
            try:
                out[int(ordinal)] = str(key)
            except (TypeError, ValueError):
                continue
        return out

    def record(
        self,
        fingerprint: str,
        kernel: str,
        n_items: int,
        n_shards: int,
        ordinal: int,
        shard_key: str,
        *,
        resumed: bool = False,
    ) -> None:
        """Append one completed shard (idempotent per ordinal)."""
        data = self.load(fingerprint)
        if not data:
            data = {
                "schema": MANIFEST_SCHEMA,
                "kernel": kernel,
                "n_items": n_items,
                "n_shards": n_shards,
                "shards": {},
                "resumed": 0,
            }
        shards = data.setdefault("shards", {})
        shards[str(ordinal)] = shard_key
        if resumed:
            data["resumed"] = int(data.get("resumed", 0)) + 1
        self._write(fingerprint, data)

    def discard(self, fingerprint: str) -> None:
        """Drop one stage's manifest (its stage-level entry landed)."""
        try:
            self._path(fingerprint).unlink()
        except OSError:
            pass

    def _write(self, fingerprint: str, data: dict[str, Any]) -> None:
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(data, sort_keys=True, indent=1).encode("utf-8")
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


__all__ = ["MANIFEST_SCHEMA", "ResumeManifest"]
