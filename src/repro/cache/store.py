"""The on-disk content-addressed stage-result store.

One cache entry per stage fingerprint, laid out
``<root>/<aa>/<fingerprint>.entry`` (two-hex-char shards keep directory
listings small).  An entry is::

    b"repro-cache/1\\n" + <hex blake2b of payload> + b"\\n" + <payload>

where the payload is a pickle of ``{"stage", "stats", "products"}`` —
the stage's :class:`~repro.exec.metrics.StageStats` plus the context
fields it produced.  The checksum line makes corruption (truncated
writes, bit flips, foreign files) a detectable *miss*: a bad entry is
evicted and the stage recomputed, never a crash or — worse — a silently
wrong report.

Writes are atomic (temp file + ``os.replace``), so a crashed run leaves
either a complete entry or none.  Reads touch the entry's mtime, which
is what :meth:`StageCache.gc` orders its least-recently-used eviction
by.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.exec.metrics import StageStats

_MAGIC = b"repro-cache/1\n"
_CHECKSUM_BYTES = 16


@dataclass
class CacheEntry:
    """One decoded stage result."""

    stage: str
    stats: StageStats
    products: dict[str, Any]
    nbytes: int


@dataclass(frozen=True, slots=True)
class CacheStats:
    """What :meth:`StageCache.stats` reports about the store on disk."""

    entries: int
    total_bytes: int


@dataclass
class CacheCounters:
    """This cache handle's lifetime counters (probe accounting)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


@dataclass
class GCResult:
    removed: int
    freed_bytes: int
    kept: int
    kept_bytes: int


class StageCache:
    """Content-addressed store of reduced stage results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.counters = CacheCounters()

    def _path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.entry"

    # -- the run-time API ------------------------------------------------------

    def get(self, fingerprint: str) -> CacheEntry | None:
        """The entry at ``fingerprint``, or None (miss / corrupt)."""
        path = self._path(fingerprint)
        try:
            blob = path.read_bytes()
        except OSError:
            self.counters.misses += 1
            return None
        entry = _decode(blob)
        if entry is None:
            # Corrupt or truncated: evict so the slot is rewritten by
            # the recompute instead of failing every future probe.
            self.counters.misses += 1
            self.counters.evictions += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # LRU touch for gc ordering
        except OSError:
            pass
        self.counters.hits += 1
        self.counters.bytes_read += entry.nbytes
        return entry

    def put(
        self,
        fingerprint: str,
        stage: str,
        stats: StageStats,
        products: dict[str, Any],
    ) -> int:
        """Store one stage result; returns the entry size in bytes."""
        payload = pickle.dumps(
            {"stage": stage, "stats": stats, "products": products},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        checksum = hashlib.blake2b(
            payload, digest_size=_CHECKSUM_BYTES
        ).hexdigest()
        blob = _MAGIC + checksum.encode("ascii") + b"\n" + payload
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fingerprint[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.counters.stores += 1
        self.counters.bytes_written += len(blob)
        return len(blob)

    # -- maintenance -----------------------------------------------------------

    def _entry_paths(self) -> list[Path]:
        return sorted(self.root.glob("??/*.entry"))

    def stats(self) -> CacheStats:
        paths = self._entry_paths()
        return CacheStats(
            entries=len(paths),
            total_bytes=sum(p.stat().st_size for p in paths),
        )

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for shard in self.root.glob("??"):
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed

    def _pinned_fingerprints(self) -> set[str]:
        """Fingerprints a resume manifest still references.

        A killed sharded run banks per-shard products plus a manifest
        naming them.  Those shard entries and their manifest are one
        resume unit: evicting a shard product while the manifest still
        lists it would make the resumed run silently recompute what the
        operator believes is banked.  Gc therefore pins every shard key
        (and the stage fingerprint itself) named by a live manifest —
        the executor discards the manifest once the stage-level entry
        lands, which is what unpins them.
        """
        from repro.cache.resume import ResumeManifest

        manifest = ResumeManifest(self.root)
        pinned: set[str] = set()
        for path in manifest.root.glob("*.json"):
            fingerprint = path.stem
            data = manifest.load(fingerprint)
            if not data:
                continue
            pinned.add(fingerprint)
            shards = data.get("shards", {})
            if isinstance(shards, dict):
                pinned.update(str(key) for key in shards.values())
        return pinned

    def gc(self, max_bytes: int) -> GCResult:
        """Evict least-recently-used entries down to a byte budget.

        Entries referenced by a live shard resume manifest are pinned:
        they are kept (and counted against the budget) regardless of
        age, so an interrupted run's banked shards survive until its
        stage-level entry lands and the manifest is discarded.
        """
        pinned = self._pinned_fingerprints()
        entries = []
        result = GCResult(removed=0, freed_bytes=0, kept=0, kept_bytes=0)
        budget = 0
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            if path.stem in pinned:
                budget += stat.st_size
                result.kept += 1
                result.kept_bytes += stat.st_size
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(reverse=True)  # newest (most recently used) first
        for mtime, size, path in entries:
            if budget + size <= max_bytes:
                budget += size
                result.kept += 1
                result.kept_bytes += size
                continue
            try:
                path.unlink()
                result.removed += 1
                result.freed_bytes += size
                self.counters.evictions += 1
            except OSError:
                pass
        return result


def _decode(blob: bytes) -> CacheEntry | None:
    """Decode one entry blob; None on any corruption."""
    if not blob.startswith(_MAGIC):
        return None
    body = blob[len(_MAGIC):]
    newline = body.find(b"\n")
    if newline != 2 * _CHECKSUM_BYTES:
        return None
    checksum, payload = body[:newline], body[newline + 1:]
    if hashlib.blake2b(payload, digest_size=_CHECKSUM_BYTES).hexdigest() != (
        checksum.decode("ascii", errors="replace")
    ):
        return None
    try:
        data = pickle.loads(payload)
        stage = data["stage"]
        stats = data["stats"]
        products = data["products"]
    except Exception:
        return None
    if not isinstance(stats, StageStats) or not isinstance(products, dict):
        return None
    return CacheEntry(
        stage=stage, stats=stats, products=products, nbytes=len(blob)
    )
