"""Canonical fingerprints for the content-addressed stage cache.

A stage result may be reused only when *everything* that could change it
is byte-identical: the input bundle the stages consume (post
fault-degradation), the fault plan (seed and spec — worker faults are
keyed per chunk, so a different ``--fault-seed`` is a different run),
the pipeline configuration, and the identity + code version of every
stage up to and including the one being keyed.  All of that is folded
into one :func:`stage_fingerprint` through the
:func:`repro.io.golden.canonical_json` encoder, so fingerprints are
independent of dict insertion order, of the execution backend, and of
the process that computed them.

The input digest is *content*-addressed, not object-addressed: it walks
the datasets through their canonical row forms (the same shapes
``repro.io`` serializes), so a dataset loaded from disk and the dataset
that was saved fingerprint identically, while dropping a single scan
record — or degrading anything via a fault plan — changes the key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, is_dataclass
from datetime import date, datetime
from enum import Enum
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.io.golden import canonical_json

if TYPE_CHECKING:
    from repro.core.pipeline import PipelineInputs
    from repro.faults.plan import FaultPlan

#: Global salt folded into every fingerprint; bump to invalidate every
#: cache entry at once (e.g. after a change to the entry format or the
#: digest scheme itself).
CACHE_SALT = "repro.cache/1"

#: Hex-digest length of a stage fingerprint (blake2b, 24 bytes).
_FINGERPRINT_BYTES = 24
_PART_BYTES = 16


def jsonable(value: Any) -> Any:
    """Recursively convert a value into a canonical JSON-safe form.

    Dataclasses become field dicts, enums their names, dates ISO
    strings; sets and frozensets become sorted lists; dicts become
    sorted ``[key, value]`` pair lists (keys converted too), which is
    what makes digests independent of insertion order even for
    non-string keys.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: jsonable(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, Enum):
        return value.name
    if isinstance(value, datetime):
        return value.isoformat()
    if isinstance(value, date):
        return value.isoformat()
    if isinstance(value, (set, frozenset)):
        converted = [jsonable(v) for v in value]
        return sorted(converted, key=canonical_json)
    if isinstance(value, dict):
        pairs = [[jsonable(k), jsonable(v)] for k, v in value.items()]
        return {"__pairs__": sorted(pairs, key=canonical_json)}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}")


def value_digest(value: Any) -> str:
    """Hex digest of an arbitrary value via its canonical form."""
    return hashlib.blake2b(
        canonical_json(jsonable(value)).encode("utf-8"), digest_size=_PART_BYTES
    ).hexdigest()


class _Hasher:
    """Incremental digest over named canonical parts.

    Feeding part by part keeps the peak allocation at one row's
    canonical encoding instead of one string for the whole dataset.
    """

    def __init__(self) -> None:
        self._h = hashlib.blake2b(digest_size=_PART_BYTES)
        self._h.update(CACHE_SALT.encode("utf-8"))

    def feed(self, part: str, payload: Any) -> None:
        self._h.update(part.encode("utf-8"))
        self._h.update(b"\x00")
        self._h.update(canonical_json(payload).encode("utf-8"))
        self._h.update(b"\n")

    def hexdigest(self) -> str:
        return self._h.hexdigest()


def _scan_rows(scan) -> Iterable[dict[str, Any]]:
    # Record order is part of the dataset's content (downstream lists
    # preserve it), so rows are fed in dataset order, not sorted.
    table = getattr(scan, "table", None)
    if table is not None:
        # Columnar fast path: walk the typed arrays directly — same row
        # shape, no record objects materialized.
        yield from table.row_dicts()
        return
    for record in scan.records():
        yield {
            "d": record.scan_date.isoformat(),
            "ip": record.ip,
            "ports": list(record.ports),
            "asn": record.asn,
            "cc": record.country,
            "trusted": record.trusted,
            "sensitive": record.sensitive,
            "names": list(record.names),
            "base": list(record.base_domains),
            # The certificate fingerprint is itself a content hash over
            # every identity field, so it stands in for the full cert.
            "cert": record.certificate.fingerprint,
        }


def _pdns_rows(pdns) -> list[dict[str, Any]]:
    rows = [
        {
            "rrname": r.rrname,
            "rtype": r.rtype.value,
            "rdata": r.rdata,
            "first": r.first_seen.isoformat(),
            "last": r.last_seen.isoformat(),
            "count": r.count,
        }
        for r in pdns.all_records()
    ]
    # The aggregate row set is the database's content; each key appears
    # once, so sorting makes the digest insertion-order independent.
    rows.sort(key=lambda r: (r["rrname"], r["rtype"], r["rdata"]))
    return rows


#: Rows per scan digest block.  The scan digest is a digest *of block
#: digests* rather than one flat hash over every row, so an epoch
#: overlay that appends rows to a base table re-digests only the base's
#: final partial block plus the appended rows (every full base block's
#: digest is reused verbatim) — O(delta) instead of O(dataset).
SCAN_BLOCK_ROWS = 4096


def _block_digests(rows: Iterable[dict[str, Any]]) -> Iterable[str]:
    """Digest of each ``SCAN_BLOCK_ROWS``-row block of the row stream.

    Blocks cover absolute row positions ``[k*B, (k+1)*B)`` in dataset
    order; each block digest folds its rows' canonical encodings, so the
    digest sequence is a pure function of the row stream (and of nothing
    else — two tables with identical rows share every block digest).
    """
    hasher = None
    count = 0
    for row in rows:
        if hasher is None:
            hasher = hashlib.blake2b(digest_size=_PART_BYTES)
        hasher.update(canonical_json(row).encode("utf-8"))
        hasher.update(b"\n")
        count += 1
        if count == SCAN_BLOCK_ROWS:
            yield hasher.hexdigest()
            hasher = None
            count = 0
    if hasher is not None:
        yield hasher.hexdigest()


def scan_block_digests(scan) -> tuple[str, ...]:
    """The scan dataset's per-block row digests, memoized on the table.

    The memo rides the backing table (datasets are never mutated in
    place), which lets three producers share one representation: a cold
    walk here, the segment loader seeding digests persisted in the
    segment header, and the epoch overlay extending a base table's
    digests with only the appended rows.
    """
    table = getattr(scan, "table", None)
    if table is None and hasattr(scan, "row_dicts"):
        table = scan  # a bare ScanTable digests like its dataset
    owner = scan if table is None else table
    memo = getattr(owner, "_repro_block_digests", None)
    if memo is not None and memo[0] == SCAN_BLOCK_ROWS:
        return memo[1]
    rows = table.row_dicts() if table is not None else _scan_rows(scan)
    digests = tuple(_block_digests(rows))
    try:
        object.__setattr__(owner, "_repro_block_digests", (SCAN_BLOCK_ROWS, digests))
    except (AttributeError, TypeError):
        pass
    return digests


def extended_block_digests(
    table, base_digests: Sequence[str], n_base_rows: int
) -> tuple[str, ...]:
    """Block digests of ``table`` — base rows plus appended rows —
    reusing the base's digest for every *full* base block and re-walking
    only the base's trailing partial block plus the appended rows.

    This is the epoch overlay's O(delta) fingerprint path; the result is
    byte-identical to :func:`scan_block_digests` over the full table
    (the property suite holds it to that).
    """
    full = n_base_rows // SCAN_BLOCK_ROWS
    tail = tuple(_block_digests(table.row_dicts(start=full * SCAN_BLOCK_ROWS)))
    return tuple(base_digests[:full]) + tail


def _memo_digest(obj: Any, build) -> str:
    """Memoize a content digest on the object that owns the content.

    Datasets are never mutated in place — fault degradation *derives*
    new objects (``scan.degraded``, ``pdns.without_windows``, …) — so a
    digest computed once is good for the object's lifetime.  Memoizing
    per component rather than per bundle matters because every
    ``run_pipeline`` call builds a fresh :class:`PipelineInputs` around
    the same long-lived datasets: the expensive content walk is paid on
    the first probe of a study, not on every run over it.
    """
    cached = getattr(obj, "_repro_content_digest", None)
    if cached is not None:
        return cached
    digest = build()
    try:
        object.__setattr__(obj, "_repro_content_digest", digest)
    except (AttributeError, TypeError):  # slots-only object: recompute
        pass
    return digest


def _scan_digest(scan) -> str:
    def build() -> str:
        hasher = _Hasher()
        hasher.feed(
            "scan.header",
            {
                "dates": [d.isoformat() for d in scan.scan_dates],
                "known_missing": sorted(
                    d.isoformat() for d in scan.known_missing_dates
                ),
            },
        )
        # The rows enter as per-block digests (see ``_block_digests``):
        # same content coverage as feeding every row, but an epoch
        # overlay can produce the block list incrementally.
        hasher.feed(
            "scan.blocks",
            {
                "block_rows": SCAN_BLOCK_ROWS,
                "digests": list(scan_block_digests(scan)),
            },
        )
        return hasher.hexdigest()

    return _memo_digest(scan, build)


def inputs_digest(inputs: PipelineInputs) -> str:
    """Content digest of everything the pipeline stages consume.

    Fault-degraded bundles digest the *degraded* content, so dataset
    faults change the key without any special-casing here.  Component
    digests are memoized on the dataset objects (see
    :func:`_memo_digest`), and the combined digest on the bundle, so
    repeat runs over the same study pay the content walk once.
    """
    cached = getattr(inputs, "_repro_inputs_digest", None)
    if cached is not None:
        return cached
    hasher = _Hasher()
    hasher.feed("scan", _scan_digest(inputs.scan))
    hasher.feed(
        "pdns",
        _memo_digest(inputs.pdns, lambda: value_digest(_pdns_rows(inputs.pdns))),
    )
    hasher.feed(
        "ct",
        _memo_digest(
            inputs.crtsh,
            lambda: value_digest(inputs.crtsh.fingerprint_payload()),
        ),
    )
    hasher.feed(
        "as2org",
        _memo_digest(
            inputs.as2org,
            lambda: value_digest(
                [
                    {"asn": asn, "org": org, "name": inputs.as2org.org_name(org)}
                    for asn, org in inputs.as2org.items()
                ]
            ),
        ),
    )
    hasher.feed(
        "periods",
        [
            {"index": p.index, "start": p.start.isoformat(), "end": p.end.isoformat()}
            for p in inputs.periods
        ],
    )
    hasher.feed(
        "routing",
        None
        if inputs.routing is None
        else _memo_digest(
            inputs.routing, lambda: value_digest(list(inputs.routing.prefixes()))
        ),
    )
    hasher.feed(
        "geo",
        None
        if inputs.geo is None
        else _memo_digest(inputs.geo, lambda: value_digest(inputs.geo.items())),
    )
    digest = hasher.hexdigest()
    try:
        # The bundle is a frozen dataclass; memoizing via its __dict__
        # does not affect field equality or downstream pickling.
        object.__setattr__(inputs, "_repro_inputs_digest", digest)
    except AttributeError:  # slots-only bundle: recompute every call
        pass
    return digest


#: Spec fields that only perturb the *scheduler* — crash/slowdown
#: injection and the retry policy.  Kernels are pure per-item maps and
#: retried chunks recompute identical results, so these knobs can never
#: change a stage's products; stripping them from the plan digest lets a
#: crash-interrupted run's clean re-run land on the same stage
#: fingerprints and resume from its completed shards (and lets a
#: worker-fault sweep share its data-identical cache entries).
_WORKER_FIELDS = frozenset(
    {"worker_crash", "worker_slow", "worker_slow_ms", "max_retries", "backoff_ms"}
)

#: Spec fields that actually degrade the evidence a stage consumes.
_DATA_FIELDS = (
    "drop_weeks",
    "drop_ports",
    "pdns_blackouts",
    "ct_delay_days",
    "routing_stale",
)


def plan_digest(plan: FaultPlan) -> str:
    """Digest of a fault plan's *data* identity.

    Worker-scheduler knobs are normalized away (see ``_WORKER_FIELDS``),
    and the seed only participates while some data channel is active —
    a seed that can only ever pick crash victims picks nothing that
    reaches a product.
    """
    payload = plan.fingerprint_payload()
    spec = {
        name: value
        for name, value in payload["spec"].items()
        if name not in _WORKER_FIELDS
    }
    data_active = any(spec[name] for name in _DATA_FIELDS)
    return value_digest(
        {"seed": payload["seed"] if data_active else 0, "spec": spec}
    )


def config_digest(config: Any) -> str:
    """Digest of the pipeline configuration (nested dataclass knobs)."""
    return value_digest(config)


@dataclass(frozen=True, slots=True)
class RunKey:
    """The per-run key material every stage fingerprint derives from.

    ``config_fields`` holds one ``(field, digest)`` pair per top-level
    configuration field, so a stage fingerprint can fold in only the
    fields that stage (and its upstream chain) actually reads — a sweep
    over inspection thresholds then still hits the deployment-map
    entries.  A non-dataclass config digests as the single anonymous
    field ``""``.
    """

    inputs: str
    faults: str
    config_fields: tuple[tuple[str, str], ...]


def derive_run_key(inputs: PipelineInputs, plan: FaultPlan, config: Any) -> RunKey:
    """Fingerprint one run's key material (the cache-probe hot path)."""
    if is_dataclass(config) and not isinstance(config, type):
        config_fields = tuple(
            (f.name, value_digest(getattr(config, f.name)))
            for f in fields(config)
        )
    else:
        config_fields = (("", value_digest(config)),)
    return RunKey(
        inputs=inputs_digest(inputs),
        faults=plan_digest(plan),
        config_fields=config_fields,
    )


def _config_material(
    run_key: RunKey, deps: Sequence[str] | None
) -> list[list[str]]:
    """The ``[field, digest]`` pairs one chain entry folds in.

    ``deps = None`` is the conservative default: the whole config.  A
    named dependency that is not a config field is a declaration bug and
    raises instead of silently under-keying.
    """
    if deps is None:
        return [[field, digest] for field, digest in run_key.config_fields]
    known = dict(run_key.config_fields)
    missing = [name for name in deps if name not in known]
    if missing:
        raise ValueError(
            f"unknown config dependencies {missing!r} "
            f"(config fields: {sorted(known)})"
        )
    return [[name, known[name]] for name in sorted(deps)]


def stage_fingerprint(
    run_key: RunKey,
    chain: Sequence[tuple[str, int, Sequence[str] | None]],
) -> str:
    """The cache address of one stage's result.

    ``chain`` is the ``(name, cache_version, config_deps)`` of every
    stage up to and including the one being keyed: a stage's output
    depends on the whole prefix of the stage list that produced its
    inputs, so editing (or version-bumping) any earlier stage — or
    changing a config field any stage in the prefix reads — re-keys
    everything downstream.
    """
    payload = {
        "salt": CACHE_SALT,
        "inputs": run_key.inputs,
        "faults": run_key.faults,
        "stages": [
            [name, version, _config_material(run_key, deps)]
            for name, version, deps in chain
        ],
    }
    return hashlib.blake2b(
        canonical_json(payload).encode("utf-8"), digest_size=_FINGERPRINT_BYTES
    ).hexdigest()
