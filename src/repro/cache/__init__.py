"""Content-addressed incremental stage cache.

Sweep-style workloads — parameter grids, fault-rate matrices, re-runs
with one changed input — recompute the same stage results over and over.
This package makes repeat runs cache loads instead:

* ``fingerprint`` — canonical content digests of everything that can
  change a stage's output (input bundle, fault plan, configuration,
  stage code versions), composed into per-stage fingerprints through the
  :func:`repro.io.golden.canonical_json` encoder.  Fingerprints are
  independent of dict ordering and of the execution backend.
* ``store`` — :class:`StageCache`, the checksummed on-disk store those
  fingerprints address.  Corrupt entries are detected, evicted, and
  recomputed; writes are atomic.

The executor (``repro.exec.executor``) probes the cache before each
cacheable stage and loads the stage's reduced products on a hit, so
serial and process-pool backends produce byte-identical reports warm or
cold — ``tests/test_golden_reports.py`` pins that equivalence against
the golden files.
"""

from repro.cache.fingerprint import (
    CACHE_SALT,
    SCAN_BLOCK_ROWS,
    RunKey,
    config_digest,
    derive_run_key,
    extended_block_digests,
    inputs_digest,
    jsonable,
    plan_digest,
    scan_block_digests,
    stage_fingerprint,
    value_digest,
)
from repro.cache.resume import MANIFEST_SCHEMA as RESUME_MANIFEST_SCHEMA
from repro.cache.resume import ResumeManifest
from repro.cache.store import (
    CacheCounters,
    CacheEntry,
    CacheStats,
    GCResult,
    StageCache,
)

__all__ = [
    "CACHE_SALT",
    "SCAN_BLOCK_ROWS",
    "RunKey",
    "config_digest",
    "derive_run_key",
    "extended_block_digests",
    "inputs_digest",
    "jsonable",
    "plan_digest",
    "scan_block_digests",
    "stage_fingerprint",
    "value_digest",
    "CacheCounters",
    "CacheEntry",
    "CacheStats",
    "GCResult",
    "RESUME_MANIFEST_SCHEMA",
    "ResumeManifest",
    "StageCache",
]
