"""Network fundamentals shared by every substrate.

This package holds the small, dependency-free building blocks the rest of
the library is written in terms of: domain-name parsing against an embedded
public-suffix list, the sensitive-subdomain matcher from the paper's
shortlisting stage, IPv4 address and prefix arithmetic, and the study
calendar (weekly scan dates and the nine six-month analysis periods).
"""

from repro.net.ipv4 import IPv4Prefix, int_to_ip, ip_in_prefix, ip_to_int
from repro.net.names import (
    SENSITIVE_SUBSTRINGS,
    DomainName,
    is_sensitive_name,
    registered_domain,
    sensitive_substring,
)
from repro.net.timeline import (
    STUDY_END,
    STUDY_START,
    DateInterval,
    Period,
    period_of,
    study_periods,
    weekly_scan_dates,
)

__all__ = [
    "IPv4Prefix",
    "int_to_ip",
    "ip_in_prefix",
    "ip_to_int",
    "SENSITIVE_SUBSTRINGS",
    "DomainName",
    "is_sensitive_name",
    "registered_domain",
    "sensitive_substring",
    "STUDY_END",
    "STUDY_START",
    "DateInterval",
    "Period",
    "period_of",
    "study_periods",
    "weekly_scan_dates",
]
